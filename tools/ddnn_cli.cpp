// ddnn — command-line interface to the DDNN library.
//
//   ddnn train    --preset c --filters 4 --epochs 40 --out model.ddnn
//   ddnn eval     --model model.ddnn --preset c --filters 4 --threshold 0.8
//   ddnn simulate --model model.ddnn --preset c --filters 4 --threshold 0.8 \
//                 --fail 1,6
//   ddnn dataset  --out-dir views --samples 2
//   ddnn report   --out results/report.html
//
// Every train/eval/simulate run appends a record to the run ledger
// (<results>/ledger.jsonl, see obs/ledger.hpp); `ddnn report` renders the
// ledger plus any series/CSV artifacts into one self-contained HTML page.
//
// The architecture is reconstructed from the flags, so eval/simulate must be
// invoked with the same --preset/--filters/--devices/--agg used at training
// time (a mismatch fails loudly at weight-load time).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "core/inference.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "data/ppm.hpp"
#include "dist/queueing.hpp"
#include "dist/runtime.hpp"
#include "dist/serve.hpp"
#include "infer/engine.hpp"
#include "infer/planner.hpp"
#include "nn/serialize.hpp"
#include "dist/transport.hpp"
#include "obs/json.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/tracemerge.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/results.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace ddnn;

namespace {

core::HierarchyPreset parse_preset(const std::string& name) {
  if (name == "a") return core::HierarchyPreset::kCloudOnly;
  if (name == "b") return core::HierarchyPreset::kDeviceCloud;
  if (name == "c") return core::HierarchyPreset::kDevicesCloud;
  if (name == "d") return core::HierarchyPreset::kDeviceEdgeCloud;
  if (name == "e") return core::HierarchyPreset::kDevicesEdgeCloud;
  if (name == "f") return core::HierarchyPreset::kDevicesEdgesCloud;
  DDNN_CHECK(false, "unknown preset '" << name << "' (expected a..f)");
  return core::HierarchyPreset::kDevicesCloud;
}

/// Architecture/data flags shared by every subcommand.
void add_model_options(ArgParser& args) {
  args.add_option("preset", "hierarchy configuration a..f (paper Fig. 2)", "c")
      .add_option("devices", "number of end devices", "6")
      .add_option("filters", "device ConvP filters f", "4")
      .add_option("local-agg", "local aggregation scheme MP|AP|CC|GA", "MP")
      .add_option("cloud-agg", "cloud aggregation scheme MP|AP|CC|GA", "CC")
      .add_flag("float-cloud", "use float32 NN blocks in the cloud section")
      .add_option("seed", "dataset + init seed", "42");
}

core::DdnnConfig config_from(const ArgParser& args) {
  auto cfg = core::DdnnConfig::preset(
      parse_preset(args.get("preset")),
      static_cast<int>(args.get_int("devices")),
      static_cast<int>(args.get_int("filters")));
  cfg.local_agg = core::parse_agg_kind(args.get("local-agg"));
  cfg.cloud_agg = core::parse_agg_kind(args.get("cloud-agg"));
  cfg.float_cloud = args.has_flag("float-cloud");
  if (!cfg.has_local_exit) cfg.local_agg = core::AggKind::kMaxPool;
  cfg.validate();
  return cfg;
}

data::MvmcDataset dataset_from(const ArgParser& args) {
  data::MvmcConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const int devices = static_cast<int>(args.get_int("devices"));
  cfg.num_devices = std::max(devices, 6);  // profiles cycle beyond 6
  return data::MvmcDataset::generate(cfg);
}

std::vector<int> device_map_from(const core::DdnnConfig& cfg) {
  std::vector<int> devices;
  for (int d = 0; d < cfg.num_devices; ++d) devices.push_back(d);
  return devices;
}

void add_engine_option(ArgParser& args) {
  args.add_option("engine",
                  "inference engine: autograd|plan (default: $DDNN_ENGINE, "
                  "else plan)",
                  "");
}

/// Apply --engine (when given) and return the engine that will run.
std::string select_engine(const ArgParser& args) {
  const std::string flag = args.get("engine");
  if (!flag.empty()) {
    infer::set_engine_kind(infer::parse_engine_kind(flag));
  }
  return infer::to_string(infer::engine_kind());
}

void add_mem_budget_option(ArgParser& args) {
  args.add_option("mem-budget",
                  "hard cap on any section's planned activation arena in "
                  "bytes (0 = unlimited); over-budget sections are "
                  "batch-sliced to fit",
                  "0");
}

/// Apply --mem-budget (validated: >= 0) and clear the per-tier peak stats so
/// this run reports only its own planned peaks.
void apply_mem_budget(const ArgParser& args) {
  infer::set_mem_budget(args.get_int_at_least("mem-budget", 0));
  infer::reset_plan_stats();
}

/// Export the per-tier planned activation peaks of this run as metrics
/// gauges and ledger metrics (runtime.mem_peak.{device,edge,cloud}; 0 for
/// tiers the hierarchy does not run). Byte-identical across reruns and
/// thread counts: plans are deterministic and the stats are pure maxima.
void record_mem_peaks(obs::LedgerRecord& rec) {
  const auto stats = infer::plan_stats();
  for (const auto tier :
       {infer::SectionTier::kDevice, infer::SectionTier::kEdge,
        infer::SectionTier::kCloud}) {
    const std::string name = "runtime.mem_peak." + infer::to_string(tier);
    const double bytes = static_cast<double>(stats.peak(tier));
    obs::global_metrics().gauge(name).set(bytes);
    rec.add_metric(name, bytes);
  }
}

void add_profile_flag(ArgParser& args) {
  args.add_flag("profile",
                "collect wall-clock per-op timings (same as DDNN_PROFILE=1) "
                "and print the table on exit");
}

/// Arm profiling when --profile was given (DDNN_PROFILE=1 also arms it).
void apply_profile_flag(const ArgParser& args) {
  if (args.has_flag("profile")) obs::set_profiling_enabled(true);
}

/// Print the per-op wall-clock table when profiling was armed.
void report_profile() {
  if (!obs::profiling_enabled()) return;
  std::printf("\nwall-clock profile:\n%s",
              obs::profile_table().to_string().c_str());
}

/// Start a ledger record pre-filled with the identity flags every
/// subcommand shares (preset/devices/filters/seed) plus the thread count.
obs::LedgerRecord ledger_record(const std::string& command,
                                const ArgParser& args) {
  obs::LedgerRecord rec;
  rec.command = command;
  rec.add_info("preset", args.get("preset"));
  rec.add_info("devices", args.get("devices"));
  rec.add_info("filters", args.get("filters"));
  rec.add_info("seed", args.get("seed"));
  rec.add_info("threads", std::to_string(ThreadPool::instance().size()));
  return rec;
}

/// Append and tell the user where the record went (silent when the results
/// dir is disabled).
void finish_ledger(const obs::LedgerRecord& rec) {
  const std::string path = obs::append_record(rec);
  if (!path.empty()) {
    std::printf("appended run record to %s\n", path.c_str());
  }
}

int cmd_train(int argc, const char* const* argv) {
  ArgParser args("ddnn train", "Jointly train a DDNN and save its weights.");
  add_model_options(args);
  args.add_option("epochs", "training epochs", "40")
      .add_option("batch", "mini-batch size", "32")
      .add_option("out", "output weight file", "model.ddnn")
      .add_option("metrics-out", "write the metrics registry as JSON", "")
      .add_option("series-out",
                  "write a per-epoch windowed series (loss, per-exit "
                  "accuracy, exit fractions) as CSV or .json",
                  "")
      .add_flag("verbose", "log per-epoch loss");
  add_profile_flag(args);
  if (!args.parse(argc, argv)) return 0;
  apply_profile_flag(args);

  const auto cfg = config_from(args);
  const auto dataset = dataset_from(args);
  core::DdnnModel model(cfg);

  core::TrainConfig train_cfg;
  train_cfg.epochs = static_cast<int>(args.get_int("epochs"));
  train_cfg.batch_size = static_cast<std::size_t>(args.get_int("batch"));
  train_cfg.verbose = args.has_flag("verbose");
  train_cfg.metrics = &obs::global_metrics();
  obs::WindowedSeries series(1.0, "epoch");
  if (!args.get("series-out").empty()) {
    train_cfg.series = &series;
    train_cfg.series_eval = &dataset.test();
  }
  std::printf("training %s for %d epochs...\n", cfg.cache_key().c_str(),
              train_cfg.epochs);
  const auto history = core::train_ddnn(model, dataset.train(),
                                        device_map_from(cfg), train_cfg);
  std::printf("final loss %.4f after %.1f s\n", history.final_loss(),
              history.total_seconds);
  nn::save_state(model, args.get("out"));
  std::printf("saved weights to %s\n", args.get("out").c_str());
  if (!args.get("metrics-out").empty()) {
    obs::global_metrics().write_json(args.get("metrics-out"));
    std::printf("wrote metrics to %s\n", args.get("metrics-out").c_str());
  }
  if (!args.get("series-out").empty()) {
    series.write(args.get("series-out"));
    std::printf("wrote %zu series windows to %s\n", series.window_count(),
                args.get("series-out").c_str());
  }

  obs::LedgerRecord rec = ledger_record("train", args);
  rec.add_info("epochs", args.get("epochs"));
  rec.add_info("batch", args.get("batch"));
  rec.add_info("out", args.get("out"));
  if (!args.get("series-out").empty()) {
    rec.add_info("series", args.get("series-out"));
  }
  rec.add_metric("train.final_loss", static_cast<double>(history.final_loss()));
  rec.add_metric("train.epochs", train_cfg.epochs);
  rec.add_metric("train.seconds", history.total_seconds);
  finish_ledger(rec);
  report_profile();
  return 0;
}

int cmd_eval(int argc, const char* const* argv) {
  ArgParser args("ddnn eval",
                 "Evaluate a trained DDNN: per-exit accuracy, staged policy, "
                 "confusion matrix.");
  add_model_options(args);
  args.add_option("model", "weight file from `ddnn train`", "model.ddnn")
      .add_option("threshold", "local exit threshold T (-1 = grid search)",
                  "0.8");
  add_engine_option(args);
  add_mem_budget_option(args);
  add_profile_flag(args);
  if (!args.parse(argc, argv)) return 0;
  apply_profile_flag(args);
  apply_mem_budget(args);

  const auto cfg = config_from(args);
  const auto dataset = dataset_from(args);
  core::DdnnModel model(cfg);
  nn::load_state(model, args.get("model"));
  std::printf("inference engine: %s\n", select_engine(args).c_str());

  const auto devices = device_map_from(cfg);
  const auto eval = core::evaluate_exits(model, dataset.test(), devices);
  obs::LedgerRecord rec = ledger_record("eval", args);
  rec.add_info("engine", infer::to_string(infer::engine_kind()));
  rec.add_info("model", args.get("model"));
  record_mem_peaks(rec);
  for (std::size_t e = 0; e < eval.num_exits(); ++e) {
    std::printf("%-5s accuracy (100%% exit there): %.1f%%\n",
                eval.exit_names[e].c_str(),
                100.0 * core::exit_accuracy(eval, e));
    rec.add_metric("exit_acc." + eval.exit_names[e],
                   core::exit_accuracy(eval, e));
  }
  if (cfg.num_exits() == 1) {
    finish_ledger(rec);
    report_profile();
    return 0;
  }

  std::vector<double> thresholds;
  const double t = args.get_double("threshold");
  if (t < 0.0) {
    thresholds = core::search_thresholds_best_overall(eval, 0.1);
    std::printf("grid-searched thresholds:");
    for (const double x : thresholds) std::printf(" %.2f", x);
    std::printf("\n");
  } else {
    thresholds.assign(static_cast<std::size_t>(cfg.num_exits()) - 1, t);
  }
  const auto policy = core::apply_policy(eval, thresholds);
  std::printf("overall accuracy %.1f%%; exit split:",
              100.0 * policy.overall_accuracy);
  for (const double f : policy.exit_fraction) std::printf(" %.1f%%", 100.0 * f);
  std::printf("\n\n");

  core::ConfusionMatrix confusion(cfg.num_classes);
  for (std::size_t i = 0; i < policy.decisions.size(); ++i) {
    confusion.add(eval.labels[i], policy.decisions[i].prediction);
  }
  std::printf("%s", confusion.to_table({"car", "bus", "person"})
                        .to_string()
                        .c_str());
  rec.add_info("threshold", args.get("threshold"));
  rec.add_metric("overall_acc", policy.overall_accuracy);
  for (std::size_t e = 0; e < policy.exit_fraction.size(); ++e) {
    rec.add_metric("exit_frac." + eval.exit_names[e],
                   policy.exit_fraction[e]);
  }
  finish_ledger(rec);
  report_profile();
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  ArgParser args("ddnn simulate",
                 "Run a trained DDNN on the simulated distributed hierarchy "
                 "with byte/latency accounting and optional failures.");
  add_model_options(args);
  args.add_option("model", "weight file from `ddnn train`", "model.ddnn")
      .add_option("threshold", "exit threshold for every non-final exit",
                  "0.8")
      .add_option("fail", "comma-separated 1-based devices to fail", "")
      .add_option("drop", "per-attempt link drop probability", "0")
      .add_option("intermittent",
                  "per-sample probability each device is unreachable", "0")
      .add_option("outage",
                  "edge outage window start:end (sample indices, edge "
                  "presets only)",
                  "")
      .add_option("retries", "retry budget per send", "2")
      .add_option("fault-seed", "seed for all fault draws", "7")
      .add_option("trace-out",
                  "write per-sample spans as Chrome trace_event JSON "
                  "(load in Perfetto)",
                  "")
      .add_option("metrics-out", "write the metrics registry as JSON", "")
      .add_option("decisions-out",
                  "write per-sample decisions CSV "
                  "(sample,exit,prediction,entropy,bytes,degraded,dead) — "
                  "the parity artifact `ddnn serve` drivers compare against",
                  "")
      .add_option("series-out",
                  "write windowed time series (exit fractions, per-link "
                  "bytes, faults, latency percentiles) as CSV or .json",
                  "")
      .add_option("series-window",
                  "series window width in simulated seconds", "0.5")
      .add_option("fleet-devices",
                  "fleet queueing network: number of devices (0 = off); "
                  "replays the per-sample traces of this run as open-loop "
                  "load over an N-device x M-edge topology",
                  "0")
      .add_option("fleet-edges", "fleet: number of edge stations", "4")
      .add_option("fleet-edge-servers", "fleet: servers per edge station",
                  "1")
      .add_option("fleet-cloud-servers", "fleet: servers in the cloud pool",
                  "2")
      .add_option("fleet-arrival-hz",
                  "fleet: whole-fleet Poisson arrival rate (samples/s)",
                  "200")
      .add_option("fleet-arrivals-file",
                  "fleet: trace-driven load — file with one inter-arrival "
                  "gap (seconds) per line, cycled (overrides "
                  "--fleet-arrival-hz)",
                  "")
      .add_option("fleet-stream", "fleet: number of open-loop arrivals",
                  "100000")
      .add_option("fleet-policy",
                  "fleet: edge selection nearest|least-loaded|round-robin",
                  "nearest")
      .add_option("fleet-edge-service-ms",
                  "fleet: edge section service time per dispatch (ms)", "2")
      .add_option("fleet-cloud-service-ms",
                  "fleet: cloud service time per sample (ms)", "4")
      .add_option("fleet-hop-ms", "fleet: edge->cloud hop latency (ms)",
                  "10")
      .add_option("fleet-batch",
                  "fleet: max samples fused per edge dispatch", "8")
      .add_option("fleet-batch-growth",
                  "fleet: marginal service cost per extra batched sample",
                  "0.25")
      .add_option("fleet-queue-cap",
                  "fleet: per-station queue bound (overflow is shed)", "256")
      .add_option("fleet-seed", "fleet: arrival-process seed", "1")
      .add_option("fleet-series-out",
                  "fleet: write windowed fleet series (throughput, latency "
                  "percentiles, shed/dead) as CSV or .json",
                  "")
      .add_option("fleet-series-window",
                  "fleet: series window width in simulated seconds", "5");
  add_engine_option(args);
  add_mem_budget_option(args);
  add_profile_flag(args);
  if (!args.parse(argc, argv)) return 0;
  apply_profile_flag(args);
  apply_mem_budget(args);

  const auto cfg = config_from(args);
  const auto dataset = dataset_from(args);
  core::DdnnModel model(cfg);
  nn::load_state(model, args.get("model"));
  model.set_training(false);  // eval-mode BN; also enables the plan engine
  std::printf("inference engine: %s\n", select_engine(args).c_str());

  const auto devices = device_map_from(cfg);
  const std::vector<double> thresholds(
      static_cast<std::size_t>(cfg.num_exits()) - 1,
      args.get_double("threshold"));
  dist::RuntimeConfig runtime_cfg;
  runtime_cfg.reliability.max_retries =
      static_cast<int>(args.get_int("retries"));
  dist::HierarchyRuntime runtime(model, thresholds, devices, runtime_cfg);
  for (const int failed : parse_int_list(args.get("fail"))) {
    DDNN_CHECK(failed >= 1 && failed <= cfg.num_devices,
               "--fail device " << failed << " out of range");
    runtime.set_device_failed(failed - 1, true);
    std::printf("device %d marked failed\n", failed);
  }

  dist::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  plan.link_drop_prob = args.get_double("drop");
  const double intermittent = args.get_double("intermittent");
  if (intermittent > 0.0) {
    plan.devices.assign(static_cast<std::size_t>(cfg.num_devices),
                        {.intermittent_down_prob = intermittent});
  }
  const std::string outage = args.get("outage");
  if (!outage.empty()) {
    const auto colon = outage.find(':');
    DDNN_CHECK(colon != std::string::npos,
               "--outage expects start:end, got '" << outage << "'");
    plan.edge_outages.push_back(
        {.group = -1,
         .start_sample = std::stoll(outage.substr(0, colon)),
         .end_sample = std::stoll(outage.substr(colon + 1))});
  }
  const bool faulty = plan.link_drop_prob > 0.0 || !plan.devices.empty() ||
                      !plan.edge_outages.empty();
  if (faulty) runtime.set_fault_plan(plan);

  obs::SpanTracer tracer;
  if (!args.get("trace-out").empty()) runtime.set_tracer(&tracer);
  if (!args.get("metrics-out").empty()) {
    runtime.bind_metrics(&obs::global_metrics());
  }
  obs::WindowedSeries series(args.get_double_greater_than("series-window", 0.0),
                             "t");
  if (!args.get("series-out").empty()) runtime.bind_series(&series);

  std::vector<dist::InferenceTrace> traces;
  traces.reserve(dataset.test().size());
  for (const auto& sample : dataset.test()) {
    traces.push_back(runtime.classify(sample));
  }
  const auto metrics = runtime.metrics();
  std::printf("accuracy %.1f%% over %lld samples\n", 100.0 * metrics.accuracy(),
              static_cast<long long>(metrics.samples));
  std::printf("exit counts:");
  for (const auto c : metrics.exit_counts) {
    std::printf(" %lld", static_cast<long long>(c));
  }
  std::printf("\nmean latency %.2f ms, %.1f B/sample/device, total %lld B\n",
              1e3 * metrics.mean_latency_s(),
              metrics.device_bytes_per_sample(0),
              static_cast<long long>(metrics.total_bytes));
  if (metrics.reliability.any()) {
    std::printf("reliability:\n%s",
                metrics.reliability.to_table().to_string().c_str());
  }
  {
    // Planned activation peak per hierarchy node. Devices (and edge
    // stations) run identical plans, so each node of a tier reports that
    // tier's packed arena peak.
    const auto plan_stats = infer::plan_stats();
    Table peaks({"node", "tier", "planned peak B"});
    for (int d = 0; d < cfg.num_devices; ++d) {
      peaks.add_row(
          {"device" + std::to_string(d + 1), "device",
           Table::num(static_cast<double>(plan_stats.device_peak_bytes), 0)});
    }
    for (std::size_t g = 0; g < cfg.edge_groups.size(); ++g) {
      peaks.add_row(
          {"edge" + std::to_string(g + 1), "edge",
           Table::num(static_cast<double>(plan_stats.edge_peak_bytes), 0)});
    }
    peaks.add_row(
        {"cloud", "cloud",
         Table::num(static_cast<double>(plan_stats.cloud_peak_bytes), 0)});
    std::printf("planned activation peaks:\n%s", peaks.to_string().c_str());
  }
  if (!args.get("trace-out").empty()) {
    tracer.write_json(args.get("trace-out"));
    std::printf("wrote %zu spans to %s\n", tracer.spans().size(),
                args.get("trace-out").c_str());
  }
  if (!args.get("metrics-out").empty()) {
    obs::global_metrics().write_json(args.get("metrics-out"));
    std::printf("wrote metrics to %s\n", args.get("metrics-out").c_str());
  }
  if (!args.get("series-out").empty()) {
    series.write(args.get("series-out"));
    std::printf("wrote %zu series windows to %s\n", series.window_count(),
                args.get("series-out").c_str());
  }
  if (!args.get("decisions-out").empty()) {
    dist::write_decisions_csv(args.get("decisions-out"), traces);
    std::printf("wrote %zu decisions to %s\n", traces.size(),
                args.get("decisions-out").c_str());
  }

  // Fleet queueing network: replay this run's traces as open-loop load.
  const auto fleet_devices =
      static_cast<int>(args.get_int_at_least("fleet-devices", 0));
  dist::FleetStats fleet;
  obs::WindowedSeries fleet_series(
      args.get_double_greater_than("fleet-series-window", 0.0), "t");
  if (fleet_devices > 0) {
    dist::FleetConfig fleet_cfg;
    fleet_cfg.num_devices = fleet_devices;
    fleet_cfg.num_edges =
        static_cast<int>(args.get_int_at_least("fleet-edges", 1));
    fleet_cfg.edge_servers =
        static_cast<int>(args.get_int_at_least("fleet-edge-servers", 1));
    fleet_cfg.cloud_servers =
        static_cast<int>(args.get_int_at_least("fleet-cloud-servers", 1));
    fleet_cfg.arrival_rate_hz =
        args.get_double_greater_than("fleet-arrival-hz", 0.0);
    fleet_cfg.edge_service_s =
        1e-3 * args.get_double_at_least("fleet-edge-service-ms", 0.0);
    fleet_cfg.cloud_service_s =
        1e-3 * args.get_double_at_least("fleet-cloud-service-ms", 0.0);
    fleet_cfg.edge_cloud_latency_s =
        1e-3 * args.get_double_at_least("fleet-hop-ms", 0.0);
    fleet_cfg.max_batch =
        static_cast<int>(args.get_int_at_least("fleet-batch", 1));
    fleet_cfg.batch_growth =
        args.get_double_at_least("fleet-batch-growth", 0.0);
    fleet_cfg.queue_capacity = args.get_int_at_least("fleet-queue-cap", 1);
    fleet_cfg.policy = dist::parse_edge_policy(args.get("fleet-policy"));
    fleet_cfg.seed = static_cast<std::uint64_t>(args.get_int("fleet-seed"));
    // The last exit of this model is its cloud exit; earlier escalation
    // tiers stop at the edge stations.
    fleet_cfg.first_cloud_exit = std::max(1, cfg.num_exits() - 1);
    const std::string arrivals_file = args.get("fleet-arrivals-file");
    if (!arrivals_file.empty()) {
      std::ifstream in(arrivals_file);
      DDNN_CHECK(in.good(),
                 "cannot read --fleet-arrivals-file '" << arrivals_file
                                                       << "'");
      double gap = 0.0;
      while (in >> gap) fleet_cfg.interarrival_s.push_back(gap);
      DDNN_CHECK(!fleet_cfg.interarrival_s.empty(),
                 "--fleet-arrivals-file '" << arrivals_file
                                           << "' holds no gaps");
    }
    const auto stream = args.get_int_at_least("fleet-stream", 1);
    fleet = dist::simulate_fleet(
        traces, fleet_cfg, stream,
        args.get("fleet-series-out").empty() ? nullptr : &fleet_series);
    std::printf(
        "\nfleet: %d devices x %d edges (%s), %lld arrivals over %.1f s\n",
        fleet_cfg.num_devices, fleet_cfg.num_edges,
        dist::to_string(fleet_cfg.policy).c_str(),
        static_cast<long long>(fleet.arrivals), fleet.horizon_s);
    std::printf(
        "fleet: %.1f samples/s, latency p50 %.2f ms p95 %.2f ms max %.2f "
        "ms; local %lld, escalated %lld, shed %lld, dead %lld\n",
        fleet.throughput_hz, 1e3 * fleet.p50_latency_s,
        1e3 * fleet.p95_latency_s, 1e3 * fleet.max_latency_s,
        static_cast<long long>(fleet.local),
        static_cast<long long>(fleet.escalated),
        static_cast<long long>(fleet.shed),
        static_cast<long long>(fleet.dead));
    std::printf("%s", fleet.station_table().to_string().c_str());
    if (!args.get("fleet-series-out").empty()) {
      fleet_series.write(args.get("fleet-series-out"));
      std::printf("wrote %zu fleet series windows to %s\n",
                  fleet_series.window_count(),
                  args.get("fleet-series-out").c_str());
    }
  }

  obs::LedgerRecord rec = ledger_record("simulate", args);
  rec.add_info("engine", infer::to_string(infer::engine_kind()));
  rec.add_info("threshold", args.get("threshold"));
  record_mem_peaks(rec);
  rec.add_info("fault-seed", args.get("fault-seed"));
  if (faulty) {
    rec.add_info("drop", args.get("drop"));
    rec.add_info("intermittent", args.get("intermittent"));
    if (!outage.empty()) rec.add_info("outage", outage);
    if (!args.get("fail").empty()) rec.add_info("fail", args.get("fail"));
  }
  if (!args.get("series-out").empty()) {
    rec.add_info("series", args.get("series-out"));
  }
  rec.add_metric("runtime.samples", static_cast<double>(metrics.samples));
  rec.add_metric("runtime.accuracy", metrics.accuracy());
  rec.add_metric("runtime.bytes_total",
                 static_cast<double>(metrics.total_bytes));
  rec.add_metric("runtime.mean_latency_ms", 1e3 * metrics.mean_latency_s());
  for (std::size_t e = 0; e < metrics.exit_counts.size(); ++e) {
    rec.add_metric("runtime.exit." + model.exit_names()[e],
                   static_cast<double>(metrics.exit_counts[e]));
  }
  rec.add_metric("runtime.drops",
                 static_cast<double>(metrics.reliability.drops));
  rec.add_metric("runtime.retries",
                 static_cast<double>(metrics.reliability.retries));
  rec.add_metric("runtime.timeouts",
                 static_cast<double>(metrics.reliability.timeouts));
  rec.add_metric("runtime.degraded",
                 static_cast<double>(metrics.reliability.degraded_exits));
  rec.add_metric("runtime.dead",
                 static_cast<double>(metrics.reliability.dead_samples));
  if (fleet_devices > 0) {
    rec.add_info("fleet-devices", args.get("fleet-devices"));
    rec.add_info("fleet-edges", args.get("fleet-edges"));
    rec.add_info("fleet-policy", args.get("fleet-policy"));
    if (!args.get("fleet-series-out").empty()) {
      rec.add_info("series", args.get("fleet-series-out"));
    }
    rec.add_metric("fleet.arrivals", static_cast<double>(fleet.arrivals));
    rec.add_metric("fleet.completed", static_cast<double>(fleet.completed));
    rec.add_metric("fleet.local", static_cast<double>(fleet.local));
    rec.add_metric("fleet.escalated", static_cast<double>(fleet.escalated));
    rec.add_metric("fleet.shed", static_cast<double>(fleet.shed));
    rec.add_metric("fleet.dead", static_cast<double>(fleet.dead));
    rec.add_metric("fleet.throughput_hz", fleet.throughput_hz);
    rec.add_metric("fleet.mean_latency_ms", 1e3 * fleet.mean_latency_s);
    rec.add_metric("fleet.p50_latency_ms", 1e3 * fleet.p50_latency_s);
    rec.add_metric("fleet.p95_latency_ms", 1e3 * fleet.p95_latency_s);
    rec.add_metric("fleet.max_latency_ms", 1e3 * fleet.max_latency_s);
    rec.add_metric("fleet.edge_util_mean", fleet.mean_edge_utilization());
    rec.add_metric("fleet.cloud_util", fleet.cloud.utilization);
  }
  finish_ledger(rec);
  report_profile();
  return 0;
}

int cmd_serve(int argc, const char* const* argv) {
  ArgParser args("ddnn serve",
                 "Run one tier of the hierarchy as a real process over TCP "
                 "loopback frames. `--role cloud` and `--role edge` serve; "
                 "`--role device` hosts the devices + gateway, drives the "
                 "test set through the stack and reports the same metrics "
                 "as `ddnn simulate` (with wall-clock latency).");
  add_model_options(args);
  args.add_option("role", "tier to run: device|edge|cloud", "")
      .add_option("model", "weight file from `ddnn train`", "model.ddnn")
      .add_option("threshold", "exit threshold for every non-final exit",
                  "0.8")
      .add_option("listen",
                  "serving roles: TCP port to listen on (0 = OS-assigned)",
                  "0")
      .add_option("port-file",
                  "serving roles: write the bound port to this file", "")
      .add_option("edge", "device role: edge address host:port", "")
      .add_option("cloud", "device/edge roles: cloud address host:port", "")
      .add_option("retries", "retry budget per send", "2")
      .add_option("timeout-ms", "per-attempt ACK timeout (ms)", "250")
      .add_option("decision-timeout",
                  "seconds to wait for a Decision before degrading", "5")
      .add_option("idle-timeout",
                  "serving roles: exit after this many idle seconds", "120")
      .add_option("max-samples",
                  "device role: classify only the first N test samples "
                  "(-1 = all)",
                  "-1")
      .add_flag("blackhole",
                "serving roles: accept frames, never respond (forces the "
                "peers' timeout/degradation routes)")
      .add_option("decisions-out",
                  "device role: write per-sample decisions CSV for parity "
                  "checks against `ddnn simulate --decisions-out`",
                  "")
      .add_option("trace-out",
                  "write this role's wall-clock spans as Chrome trace JSON "
                  "(merge the per-role files with `ddnn trace-merge`)",
                  "")
      .add_option("metrics-out",
                  "write this role's metrics registry as JSON (serving "
                  "roles also answer live Stats polls — see `ddnn top`)",
                  "");
  add_engine_option(args);
  add_mem_budget_option(args);
  add_profile_flag(args);
  if (!args.parse(argc, argv)) return 0;
  apply_profile_flag(args);
  apply_mem_budget(args);

  const std::string role = args.get("role");
  DDNN_CHECK(role == "device" || role == "edge" || role == "cloud",
             "--role must be device, edge or cloud (got '" << role << "')");

  const auto cfg = config_from(args);
  core::DdnnModel model(cfg);
  nn::load_state(model, args.get("model"));
  model.set_training(false);  // eval-mode BN; also enables the plan engine
  std::printf("inference engine: %s\n", select_engine(args).c_str());

  dist::ServeOptions opts;
  opts.listen_port = static_cast<int>(args.get_int_at_least("listen", 0));
  opts.port_file = args.get("port-file");
  opts.edge_addr = args.get("edge");
  opts.cloud_addr = args.get("cloud");
  opts.thresholds.assign(static_cast<std::size_t>(cfg.num_exits()) - 1,
                         args.get_double("threshold"));
  opts.reliability.max_retries = static_cast<int>(args.get_int("retries"));
  opts.reliability.timeout_s =
      1e-3 * args.get_double_greater_than("timeout-ms", 0.0);
  opts.decision_timeout_s =
      args.get_double_greater_than("decision-timeout", 0.0);
  opts.idle_timeout_s = args.get_double_greater_than("idle-timeout", 0.0);
  opts.max_samples = args.get_int("max-samples");
  opts.blackhole = args.has_flag("blackhole");
  opts.decisions_out = args.get("decisions-out");

  obs::SpanTracer tracer;
  if (!args.get("trace-out").empty()) opts.tracer = &tracer;
  if (!args.get("metrics-out").empty()) opts.metrics = &obs::global_metrics();

  if (role == "cloud" || role == "edge") {
    const int rc = role == "cloud" ? dist::serve_cloud(model, opts)
                                   : dist::serve_edge(model, opts);
    if (!args.get("trace-out").empty()) {
      tracer.write_json(args.get("trace-out"));
      std::printf("wrote %zu spans to %s\n", tracer.spans().size(),
                  args.get("trace-out").c_str());
    }
    if (!args.get("metrics-out").empty()) {
      obs::global_metrics().write_json(args.get("metrics-out"));
      std::printf("wrote metrics to %s\n", args.get("metrics-out").c_str());
    }
    report_profile();
    return rc;
  }

  // Device role: the driver. Same dataset, thresholds and summary lines as
  // `ddnn simulate`, so runs are directly comparable.
  const auto dataset = dataset_from(args);

  const auto result = dist::drive_hierarchy(model, dataset.test(),
                                            device_map_from(cfg), opts);
  const auto& metrics = result.metrics;
  std::printf("accuracy %.1f%% over %lld samples\n",
              100.0 * metrics.accuracy(),
              static_cast<long long>(metrics.samples));
  std::printf("exit counts:");
  for (const auto c : metrics.exit_counts) {
    std::printf(" %lld", static_cast<long long>(c));
  }
  std::printf("\nmean latency %.2f ms, %.1f B/sample/device, total %lld B\n",
              1e3 * metrics.mean_latency_s(),
              metrics.device_bytes_per_sample(0),
              static_cast<long long>(metrics.total_bytes));
  if (metrics.reliability.any()) {
    std::printf("reliability:\n%s",
                metrics.reliability.to_table().to_string().c_str());
  }
  if (!args.get("trace-out").empty()) {
    tracer.write_json(args.get("trace-out"));
    std::printf("wrote %zu spans to %s\n", tracer.spans().size(),
                args.get("trace-out").c_str());
  }
  if (!args.get("metrics-out").empty()) {
    obs::global_metrics().write_json(args.get("metrics-out"));
    std::printf("wrote metrics to %s\n", args.get("metrics-out").c_str());
  }
  if (!opts.decisions_out.empty()) {
    std::printf("wrote %zu decisions to %s\n", result.traces.size(),
                opts.decisions_out.c_str());
  }

  obs::LedgerRecord rec = ledger_record("serve", args);
  rec.add_info("role", role);
  rec.add_info("engine", infer::to_string(infer::engine_kind()));
  rec.add_info("threshold", args.get("threshold"));
  rec.add_info("transport", "socket");
  record_mem_peaks(rec);
  rec.add_metric("runtime.samples", static_cast<double>(metrics.samples));
  rec.add_metric("runtime.accuracy", metrics.accuracy());
  rec.add_metric("runtime.bytes_total",
                 static_cast<double>(metrics.total_bytes));
  rec.add_metric("runtime.mean_latency_ms", 1e3 * metrics.mean_latency_s());
  for (std::size_t e = 0; e < metrics.exit_counts.size(); ++e) {
    rec.add_metric("runtime.exit." + model.exit_names()[e],
                   static_cast<double>(metrics.exit_counts[e]));
  }
  rec.add_metric("runtime.drops",
                 static_cast<double>(metrics.reliability.drops));
  rec.add_metric("runtime.retries",
                 static_cast<double>(metrics.reliability.retries));
  rec.add_metric("runtime.timeouts",
                 static_cast<double>(metrics.reliability.timeouts));
  rec.add_metric("runtime.degraded",
                 static_cast<double>(metrics.reliability.degraded_exits));
  rec.add_metric("runtime.dead",
                 static_cast<double>(metrics.reliability.dead_samples));
  finish_ledger(rec);
  report_profile();
  return 0;
}

int cmd_trace_merge(int argc, const char* const* argv) {
  ArgParser args(
      "ddnn trace-merge",
      "Stitch the per-role trace files of a served run (driver first — it "
      "holds the handshake clock offsets) into one Perfetto-loadable "
      "timeline.\n\n  ddnn trace-merge driver.json edge.json cloud.json "
      "--out merged.json");
  args.add_option("out", "merged trace output path", "merged_trace.json");
  if (!args.parse(argc, argv)) return 0;
  DDNN_CHECK(!args.positionals().empty(),
             "ddnn trace-merge needs at least one input trace file");

  const auto stats = obs::merge_traces(args.positionals(), args.get("out"));
  std::printf("merged %zu spans from %d process(es) into %s\n", stats.spans,
              stats.processes, args.get("out").c_str());
  std::printf("max |clock offset| %.3f ms, global shift %.3f ms\n",
              1e3 * stats.max_abs_offset_s, 1e3 * stats.shift_s);

  obs::LedgerRecord rec;
  rec.command = "trace-merge";
  rec.add_info("out", args.get("out"));
  for (std::size_t i = 0; i < args.positionals().size(); ++i) {
    rec.add_info("input" + std::to_string(i), args.positionals()[i]);
  }
  rec.add_metric("merge.processes", static_cast<double>(stats.processes));
  rec.add_metric("merge.spans", static_cast<double>(stats.spans));
  rec.add_metric("merge.max_abs_offset_ms", 1e3 * stats.max_abs_offset_s);
  rec.add_metric("merge.shift_ms", 1e3 * stats.shift_s);
  finish_ledger(rec);
  return 0;
}

/// One request/reply round of a poll-style frame (Stats or Health) against
/// a serving role; returns the raw JSON payload exactly as the server
/// rendered it.
std::string poll_frame(dist::FrameConn& conn, dist::FrameKind kind,
                       std::uint64_t seq, double timeout_s) {
  const std::string label = dist::to_string(kind);
  dist::Frame req;
  req.kind = kind;
  req.seq = seq;
  DDNN_CHECK(conn.write_frame(req, timeout_s),
             label << " request send timed out");
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto reply = conn.read_frame(0.05);
    if (!reply.has_value()) {
      DDNN_CHECK(!conn.closed(),
                 "server closed the " << label << " connection");
      continue;
    }
    if (reply->kind != kind || reply->seq != seq) {
      continue;  // unrelated traffic on a shared connection
    }
    dist::PayloadReader r(reply->payload.data(), reply->payload.size(),
                          label.c_str());
    return r.str();
  }
  DDNN_CHECK(false, label << " poll timed out after " << timeout_s << " s");
  return "";
}

/// One Stats request/reply round against a serving role; returns the raw
/// metrics-registry JSON exactly as the server rendered it.
std::string poll_stats(dist::FrameConn& conn, std::uint64_t seq,
                       double timeout_s) {
  return poll_frame(conn, dist::FrameKind::kStats, seq, timeout_s);
}

/// Render one metrics snapshot as the familiar Metric/Type/Value table.
void print_stats(const std::string& json, int poll, double age_s) {
  const obs::JsonValue doc = obs::parse_json(json);
  const obs::JsonValue* metrics = doc.find("metrics");
  DDNN_CHECK(metrics != nullptr && metrics->is_array(),
             "stats reply is not a metrics registry snapshot");
  Table table({"Metric", "Type", "Value"});
  for (const obs::JsonValue& m : metrics->items) {
    const std::string type = m.at("type").s;
    std::string value;
    if (type == "histogram") {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "n=%lld p50=%g p99=%g",
                    static_cast<long long>(m.at("count").i),
                    m.at("p50").number(), m.at("p99").number());
      value = buf;
    } else if (type == "hdr") {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "n=%lld p99=%g p99.9=%g max=%g",
                    static_cast<long long>(m.at("count").i),
                    m.at("p99").number(), m.at("p999").number(),
                    m.at("max").number());
      value = buf;
    } else {
      const obs::JsonValue& v = m.at("value");
      value = v.kind == obs::JsonValue::Kind::kInt
                  ? std::to_string(v.i)
                  : Table::num(v.number(), 3);
    }
    table.add_row({m.at("name").s, type, value});
  }
  std::printf("poll %d (t=%.1f s, %zu metrics)\n%s", poll, age_s,
              metrics->items.size(), table.to_string().c_str());
  std::fflush(stdout);
}

int cmd_top(int argc, const char* const* argv) {
  ArgParser args(
      "ddnn top",
      "Live telemetry: poll a serving role's Stats channel and render its "
      "metrics registry. The poll is read-only on the server (it cannot "
      "perturb what it measures), so a final snapshot is byte-identical to "
      "the role's --metrics-out file.");
  args.add_option("target", "host:port of a `ddnn serve` role", "")
      .add_option("interval-ms", "poll period in milliseconds", "500")
      .add_option("timeout", "seconds to wait for connect and each reply",
                  "5")
      .add_flag("once", "poll once, print, exit")
      .add_option("json-out",
                  "write the final snapshot's raw metrics JSON here", "")
      .add_option("stop-file",
                  "take one last snapshot and exit once this file exists "
                  "(lets scripts sequence `top` against a served run)",
                  "");
  if (!args.parse(argc, argv)) return 0;
  DDNN_CHECK(!args.get("target").empty(), "ddnn top needs --target host:port");

  const double timeout_s = args.get_double_greater_than("timeout", 0.0);
  const double interval_s =
      1e-3 * args.get_double_greater_than("interval-ms", 0.0);
  const auto conn = dist::connect_to(args.get("target"), timeout_s);
  DDNN_CHECK(conn != nullptr, "cannot reach " << args.get("target"));

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t seq = 0;
  std::string last;
  while (true) {
    const bool stop = !args.get("stop-file").empty() &&
                      std::ifstream(args.get("stop-file")).good();
    last = poll_stats(*conn, ++seq, timeout_s);
    print_stats(last, static_cast<int>(seq),
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
    if (args.has_flag("once") || stop) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
  if (!args.get("json-out").empty()) {
    std::ofstream out(args.get("json-out"), std::ios::binary);
    DDNN_CHECK(out.good(), "cannot open '" << args.get("json-out")
                                           << "' for writing");
    out << last;
    std::printf("wrote final snapshot to %s\n", args.get("json-out").c_str());
  }
  return 0;
}

int cmd_health(int argc, const char* const* argv) {
  ArgParser args(
      "ddnn health",
      "Deterministic SLO health check. Replays a synthetic outcome pool "
      "through the fleet queueing network on the simulated clock, runs the "
      "multi-window burn-rate SLO engine over it and reports per-objective "
      "and per-tier health — byte-identical across reruns and any "
      "DDNN_THREADS. With --connect, polls a live `ddnn serve` role's "
      "Health channel instead (snapshot health computed from its metrics "
      "registry).");
  args.add_option("seed", "outcome-pool + arrival-process seed", "42")
      .add_option("pool", "synthetic outcome-pool size", "1000")
      .add_option("stream", "open-loop arrivals to replay", "100000")
      .add_option("arrival-hz",
                  "whole-fleet Poisson arrival rate (samples/s)", "2000")
      .add_option("latency-slo-ms",
                  "latency objective: per-sample threshold (ms)", "100")
      .add_option("latency-target",
                  "latency objective: fraction that must meet the "
                  "threshold",
                  "0.99")
      .add_option("availability-target",
                  "availability objective: fraction that must complete "
                  "(not shed, not dead)",
                  "0.999")
      .add_option("json-out",
                  "write the SLO engine state as JSON (byte-identical "
                  "across reruns)",
                  "")
      .add_option("connect",
                  "host:port of a `ddnn serve` role to poll instead of "
                  "simulating",
                  "")
      .add_option("timeout",
                  "seconds to wait for connect and reply (--connect)", "5");
  if (!args.parse(argc, argv)) return 0;

  if (!args.get("connect").empty()) {
    const double timeout_s = args.get_double_greater_than("timeout", 0.0);
    const auto conn = dist::connect_to(args.get("connect"), timeout_s);
    DDNN_CHECK(conn != nullptr, "cannot reach " << args.get("connect"));
    const std::string health =
        poll_frame(*conn, dist::FrameKind::kHealth, 1, timeout_s);
    std::printf("%s", health.c_str());
    if (!args.get("json-out").empty()) {
      std::ofstream out(args.get("json-out"), std::ios::binary);
      DDNN_CHECK(out.good(), "cannot open '" << args.get("json-out")
                                             << "' for writing");
      out << health;
      std::printf("wrote health snapshot to %s\n",
                  args.get("json-out").c_str());
    }
    return 0;
  }

  // Synthetic outcome pool: a fixed local/edge/cloud/dead mix with
  // seed-derived latencies and trace ids. No training and no dataset — the
  // health pipeline itself (queueing -> HDR tail -> SLO engine) is what
  // this command exercises, so it stays fast enough for CI gates.
  const auto pool = args.get_int_at_least("pool", 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  std::vector<dist::InferenceTrace> traces;
  traces.reserve(static_cast<std::size_t>(pool));
  for (std::int64_t i = 0; i < pool; ++i) {
    dist::InferenceTrace t;
    t.trace_id = (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(i + 1)) &
                 ((1ull << 48) - 1);
    const std::int64_t r = i % 100;
    if (r < 60) {  // local exit: answered on the device
      t.exit_taken = 0;
      t.latency_s = 1e-3 * rng.uniform(0.5, 3.0);
    } else if (r < 85) {  // edge exit: queued + batched at an edge station
      t.exit_taken = 1;
      t.latency_s = 1e-3 * rng.uniform(2.0, 12.0);
    } else if (r < 98) {  // cloud exit: rides the edge->cloud hop
      t.exit_taken = 2;
      t.latency_s = 1e-3 * rng.uniform(5.0, 30.0);
    } else {  // dead: nothing reached a classifier
      t.exit_taken = -1;
      t.dead = true;
    }
    traces.push_back(t);
  }

  dist::FleetConfig fleet;
  fleet.num_devices = 120;
  fleet.num_edges = 4;
  fleet.edge_servers = 1;
  fleet.cloud_servers = 10;
  fleet.arrival_rate_hz = args.get_double_greater_than("arrival-hz", 0.0);
  fleet.first_cloud_exit = 2;
  fleet.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  fleet.slo_latency_ms = args.get_double_greater_than("latency-slo-ms", 0.0);
  fleet.slo_latency_target = args.get_double("latency-target");
  fleet.slo_availability_target = args.get_double("availability-target");

  obs::MetricsRegistry registry;
  obs::SloEngine slo;
  const auto stats =
      dist::simulate_fleet(traces, fleet, args.get_int_at_least("stream", 1),
                           nullptr, &registry, &slo);
  std::printf(
      "replayed %lld arrivals over %.1f s: p99 %.2f ms, p99.9 %.2f ms, "
      "max %.2f ms; shed %lld, dead %lld\n\n",
      static_cast<long long>(stats.arrivals), stats.horizon_s,
      1e3 * stats.p99_latency_s, 1e3 * stats.p999_latency_s,
      1e3 * stats.max_latency_s, static_cast<long long>(stats.shed),
      static_cast<long long>(stats.dead));
  std::printf("%s", slo.to_table().to_string().c_str());
  for (const auto& tier : slo.tier_health()) {
    std::printf("tier %-8s %s\n", tier.tier.c_str(),
                obs::to_string(tier.state));
  }
  std::printf("overall: %s\n", obs::to_string(slo.overall()));
  if (!args.get("json-out").empty()) {
    std::ofstream out(args.get("json-out"), std::ios::binary);
    DDNN_CHECK(out.good(), "cannot open '" << args.get("json-out")
                                           << "' for writing");
    out << slo.to_json();
    std::printf("wrote SLO state to %s\n", args.get("json-out").c_str());
  }
  return 0;
}

int cmd_report(int argc, const char* const* argv) {
  ArgParser args("ddnn report",
                 "Render the run ledger, series exports and result CSVs "
                 "into one self-contained HTML dashboard.");
  args.add_option("results-dir",
                  "results directory (default $DDNN_RESULTS_DIR, else "
                  "'results')",
                  "")
      .add_option("out", "output HTML file (default <results-dir>/report.html)",
                  "")
      .add_option("title", "report title", "DDNN run report");
  if (!args.parse(argc, argv)) return 0;

  obs::ReportOptions opts;
  opts.results_dir =
      args.get("results-dir").empty() ? results_dir() : args.get("results-dir");
  opts.title = args.get("title");
  std::string out = args.get("out");
  if (out.empty()) {
    DDNN_CHECK(!opts.results_dir.empty(),
               "results are disabled (DDNN_RESULTS_DIR=off); pass --out");
    out = opts.results_dir + "/report.html";
  }
  obs::write_report_html(opts, out);
  std::printf("wrote report to %s\n", out.c_str());
  return 0;
}

int cmd_dataset(int argc, const char* const* argv) {
  ArgParser args("ddnn dataset",
                 "Inspect SynthMVMC: distribution table and PPM exports.");
  args.add_option("seed", "dataset seed", "42")
      .add_option("out-dir", "directory for PPM exports (empty = none)", "")
      .add_option("samples", "number of samples to export", "2");
  if (!args.parse(argc, argv)) return 0;

  data::MvmcConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto dataset = data::MvmcDataset::generate(cfg);
  std::printf("%s", dataset.distribution_table().to_string().c_str());

  const std::string out_dir = args.get("out-dir");
  if (!out_dir.empty()) {
    const auto n = std::min<std::size_t>(
        static_cast<std::size_t>(args.get_int("samples")),
        dataset.test().size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto& sample = dataset.test()[i];
      const std::string prefix = out_dir + "/sample" + std::to_string(i) +
                                 "_" + data::class_name(sample.label);
      data::write_sample_views(sample, prefix);
      std::printf("wrote %s_dev[1-%zu].ppm\n", prefix.c_str(),
                  sample.views.size());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: ddnn "
      "<train|eval|simulate|serve|trace-merge|top|health|dataset|report> "
      "[options]\nrun `ddnn <command> --help` for command options\n";
  if (argc < 2) {
    std::printf("%s", usage.c_str());
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "train") return cmd_train(argc - 1, argv + 1);
    if (command == "eval") return cmd_eval(argc - 1, argv + 1);
    if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (command == "serve") return cmd_serve(argc - 1, argv + 1);
    if (command == "trace-merge") return cmd_trace_merge(argc - 1, argv + 1);
    if (command == "top") return cmd_top(argc - 1, argv + 1);
    if (command == "health") return cmd_health(argc - 1, argv + 1);
    if (command == "dataset") return cmd_dataset(argc - 1, argv + 1);
    if (command == "report") return cmd_report(argc - 1, argv + 1);
    std::printf("unknown command '%s'\n%s", command.c_str(), usage.c_str());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
