#include "obs/profile.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // thread_shard / kMetricShards
#include "util/env.hpp"
#include "util/error.hpp"

namespace ddnn::obs {

namespace {

constexpr int kMaxOps = 128;

struct alignas(64) OpShard {
  std::atomic<std::int64_t> ns{0};
  std::atomic<std::int64_t> calls{0};
};

// Fixed-capacity op table: ids are dense indices into g_data; names are
// append-only under g_mu.
std::mutex g_mu;
std::vector<std::string>& op_names() {
  static std::vector<std::string> names;
  return names;
}
OpShard g_data[kMaxOps][kMetricShards];

std::atomic<bool> g_enabled{[] {
  return env_bool("DDNN_PROFILE", false);
}()};

}  // namespace

bool profiling_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

int profile_register_op(const char* name) {
  std::lock_guard<std::mutex> lock(g_mu);
  auto& names = op_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  DDNN_CHECK(names.size() < kMaxOps,
             "profile op table full (" << kMaxOps << " ops)");
  names.emplace_back(name);
  return static_cast<int>(names.size() - 1);
}

void profile_record(int op, std::int64_t ns) {
  OpShard& s = g_data[op][thread_shard()];
  s.ns.fetch_add(ns, std::memory_order_relaxed);
  s.calls.fetch_add(1, std::memory_order_relaxed);
}

namespace {

struct MergedOp {
  std::string name;
  std::int64_t calls = 0;
  std::int64_t ns = 0;
};

std::vector<MergedOp> merged_ops() {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    names = op_names();
  }
  std::vector<MergedOp> out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    MergedOp m;
    m.name = names[i];
    for (int s = 0; s < kMetricShards; ++s) {
      m.calls += g_data[i][s].calls.load(std::memory_order_relaxed);
      m.ns += g_data[i][s].ns.load(std::memory_order_relaxed);
    }
    if (m.calls > 0) out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

Table profile_table() {
  auto ops = merged_ops();
  // Heaviest first; ties keep registration order (stable_sort).
  std::stable_sort(ops.begin(), ops.end(),
                   [](const MergedOp& a, const MergedOp& b) {
                     return a.ns > b.ns;
                   });
  std::int64_t total_ns = 0;
  for (const auto& op : ops) total_ns += op.ns;

  Table table({"Op", "Calls", "Total ms", "us/call", "%"});
  for (const auto& op : ops) {
    const double ms = static_cast<double>(op.ns) / 1e6;
    const double us_per_call =
        static_cast<double>(op.ns) / 1e3 / static_cast<double>(op.calls);
    const double pct = total_ns == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(op.ns) /
                                 static_cast<double>(total_ns);
    table.add_row({op.name, std::to_string(op.calls), Table::num(ms, 3),
                   Table::num(us_per_call, 2), Table::num(pct, 1)});
  }
  return table;
}

std::int64_t profile_calls(const char* name) {
  for (const auto& op : merged_ops()) {
    if (op.name == name) return op.calls;
  }
  return 0;
}

void profile_reset() {
  std::size_t n;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    n = op_names().size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (int s = 0; s < kMetricShards; ++s) {
      g_data[i][s].ns.store(0, std::memory_order_relaxed);
      g_data[i][s].calls.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace ddnn::obs
