#include "obs/ledger.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/results.hpp"

namespace ddnn::obs {

namespace {

std::string fmt_metric(double v) {
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal strict parser for the ledger's own JSONL shape: an object with
/// string keys mapping to strings, numbers, or one level of nested
/// string->string / string->number objects. Not a general JSON parser.
class LineParser {
 public:
  LineParser(const std::string& line, std::size_t line_no)
      : s_(line), line_no_(line_no) {}

  LedgerRecord parse() {
    LedgerRecord rec;
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "command") {
        rec.command = parse_string();
      } else if (key == "info") {
        parse_object([&rec](const std::string& k, LineParser& p) {
          rec.info.emplace_back(k, p.parse_string());
        });
      } else if (key == "metrics") {
        parse_object([&rec](const std::string& k, LineParser& p) {
          rec.metrics.emplace_back(k, p.parse_number());
        });
      } else {
        fail("unknown ledger key '" + key + "'");
      }
    }
    expect('}');
    skip_ws();
    if (i_ != s_.size()) fail("trailing content after record");
    if (rec.command.empty()) fail("record has no command");
    return rec;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    DDNN_CHECK(false, "ledger line " << line_no_ << ": " << what
                                     << " (at offset " << i_ << ")");
    std::abort();  // unreachable; DDNN_CHECK throws
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    skip_ws();
    if (i_ >= s_.size()) fail("unexpected end of line");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\') {
        if (i_ >= s_.size()) fail("dangling escape");
        const char e = s_[i_++];
        switch (e) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case 'u': {
            if (i_ + 4 > s_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = s_[i_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            c = static_cast<char>(code);
            break;
          }
          default:
            fail("unsupported escape");
        }
      }
      out += c;
    }
    if (i_ >= s_.size()) fail("unterminated string");
    ++i_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '-' ||
            s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
    }
    if (i_ == start) fail("expected number");
    return std::stod(s_.substr(start, i_ - start));
  }

  template <typename Fn>
  void parse_object(Fn&& on_entry) {
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      on_entry(key, *this);
    }
    expect('}');
  }

  const std::string& s_;
  std::size_t i_ = 0;
  std::size_t line_no_;
};

}  // namespace

std::string default_ledger_path() {
  const std::string dir = results_dir();
  if (dir.empty()) return "";
  return dir + "/ledger.jsonl";
}

std::string to_json_line(const LedgerRecord& record) {
  DDNN_CHECK(!record.command.empty(), "ledger record needs a command");
  std::ostringstream os;
  os << "{\"command\": \"" << json_escape(record.command) << "\"";
  os << ", \"info\": {";
  for (std::size_t i = 0; i < record.info.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(record.info[i].first)
       << "\": \"" << json_escape(record.info[i].second) << "\"";
  }
  os << "}, \"metrics\": {";
  for (std::size_t i = 0; i < record.metrics.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(record.metrics[i].first)
       << "\": " << fmt_metric(record.metrics[i].second);
  }
  os << "}}";
  return os.str();
}

std::string append_record(const LedgerRecord& record, const std::string& path) {
  std::string resolved = path.empty() ? default_ledger_path() : path;
  if (resolved.empty()) return "";
  const std::size_t slash = resolved.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    ensure_dir(resolved.substr(0, slash));
  }
  const std::string line = to_json_line(record) + "\n";
  // One fwrite on an append-mode stream maps to one write(2) on the
  // O_APPEND descriptor: whole-line atomicity under concurrent writers.
  std::FILE* f = std::fopen(resolved.c_str(), "ab");
  DDNN_CHECK(f != nullptr, "cannot open ledger '" << resolved << "'");
  const std::size_t wrote = std::fwrite(line.data(), 1, line.size(), f);
  const int rc = std::fclose(f);
  DDNN_CHECK(wrote == line.size() && rc == 0,
             "short write to ledger '" << resolved << "'");
  return resolved;
}

std::vector<LedgerRecord> read_ledger(const std::string& path) {
  std::vector<LedgerRecord> out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    out.push_back(LineParser(line, line_no).parse());
  }
  return out;
}

}  // namespace ddnn::obs
