#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace ddnn::obs {

double JsonValue::number() const {
  if (kind == Kind::kInt) return static_cast<double>(i);
  DDNN_CHECK(kind == Kind::kDouble, "JSON value is not a number");
  return d;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  DDNN_CHECK(v != nullptr, "JSON object has no member '" << key << "'");
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    DDNN_CHECK(pos_ == text_.size(),
               "trailing JSON garbage at byte " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    DDNN_CHECK(pos_ < text_.size(),
               "unexpected end of JSON at byte " << pos_);
    return text_[pos_];
  }

  void expect(char c) {
    DDNN_CHECK(peek() == c, "expected '" << c << "' at byte " << pos_
                                         << ", found '" << text_[pos_]
                                         << "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.s = string();
        return v;
      }
      case 't': {
        JsonValue v;
        DDNN_CHECK(consume_literal("true"), "bad literal at byte " << pos_);
        v.kind = JsonValue::Kind::kBool;
        v.b = true;
        return v;
      }
      case 'f': {
        JsonValue v;
        DDNN_CHECK(consume_literal("false"), "bad literal at byte " << pos_);
        v.kind = JsonValue::Kind::kBool;
        v.b = false;
        return v;
      }
      case 'n': {
        JsonValue v;
        DDNN_CHECK(consume_literal("null"), "bad literal at byte " << pos_);
        return v;
      }
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          DDNN_CHECK(pos_ + 4 <= text_.size(),
                     "truncated \\u escape at byte " << pos_);
          const unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // The repo only emits \u00xx control escapes; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          DDNN_CHECK(false, "bad escape '\\" << esc << "' at byte " << pos_);
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '.' || c == 'e' || c == 'E') is_double = true;
      if (c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' ||
          (c >= '0' && c <= '9')) {
        ++pos_;
        continue;
      }
      break;
    }
    DDNN_CHECK(pos_ > start, "expected a JSON value at byte " << start);
    const std::string token = text_.substr(start, pos_ - start);
    JsonValue v;
    char* end = nullptr;
    if (!is_double) {
      errno = 0;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        v.kind = JsonValue::Kind::kInt;
        v.i = static_cast<std::int64_t>(parsed);
        return v;
      }
    }
    end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    DDNN_CHECK(end != nullptr && *end == '\0',
               "bad JSON number '" << token << "' at byte " << start);
    v.kind = JsonValue::Kind::kDouble;
    v.d = parsed;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace ddnn::obs
