#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ddnn::obs {

namespace {

/// Deterministic double formatting for JSON export: shortest representation
/// that round-trips (%.17g is exact for IEEE-754 doubles; printf of a given
/// double is locale-independent here because we never set a locale).
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int thread_shard() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id % kMetricShards;
}

// ----------------------------------------------------------------- Counter

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- Histogram

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), bins_(bins) {
  DDNN_CHECK(bins >= 1, "histogram needs at least one bin, got " << bins);
  DDNN_CHECK(hi > lo, "histogram range [" << lo << ", " << hi
                                          << ") is empty or inverted");
  shards_.reserve(kMetricShards);
  for (int i = 0; i < kMetricShards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->counts = std::vector<std::atomic<std::int64_t>>(
        static_cast<std::size_t>(bins));
    shard->bin_max =
        std::vector<std::atomic<double>>(static_cast<std::size_t>(bins));
    for (auto& c : shard->counts) c.store(0, std::memory_order_relaxed);
    for (auto& m : shard->bin_max) {
      m.store(-std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    }
    shard->mn.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard->mx.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
}

int Histogram::bin_index(double v) const {
  if (v < lo_) return 0;
  const auto i = static_cast<std::int64_t>((v - lo_) / width_);
  if (i >= bins_) return bins_ - 1;
  return static_cast<int>(i);
}

void Histogram::record(double v) {
  Shard& s = *shards_[static_cast<std::size_t>(thread_shard())];
  const auto b = static_cast<std::size_t>(bin_index(v));
  if (v < lo_) s.under.fetch_add(1, std::memory_order_relaxed);
  if (v >= hi_) s.over.fetch_add(1, std::memory_order_relaxed);
  s.counts[b].fetch_add(1, std::memory_order_relaxed);
  atomic_max(s.bin_max[b], v);
  atomic_min(s.mn, v);
  atomic_max(s.mx, v);
  s.n.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Histogram::count() const {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->n.load(std::memory_order_relaxed);
  return total;
}

std::int64_t Histogram::underflow() const {
  std::int64_t total = 0;
  for (const auto& s : shards_) {
    total += s->under.load(std::memory_order_relaxed);
  }
  return total;
}

std::int64_t Histogram::overflow() const {
  std::int64_t total = 0;
  for (const auto& s : shards_) {
    total += s->over.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::min() const {
  double m = std::numeric_limits<double>::infinity();
  for (const auto& s : shards_) {
    m = std::min(m, s->mn.load(std::memory_order_relaxed));
  }
  return std::isinf(m) ? 0.0 : m;
}

double Histogram::max() const {
  double m = -std::numeric_limits<double>::infinity();
  for (const auto& s : shards_) {
    m = std::max(m, s->mx.load(std::memory_order_relaxed));
  }
  return std::isinf(m) ? 0.0 : m;
}

std::vector<std::int64_t> Histogram::bin_counts() const {
  std::vector<std::int64_t> merged(static_cast<std::size_t>(bins_), 0);
  for (const auto& s : shards_) {
    for (int b = 0; b < bins_; ++b) {
      merged[static_cast<std::size_t>(b)] +=
          s->counts[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::percentile(double q) const {
  DDNN_CHECK(q > 0.0 && q <= 1.0, "percentile rank " << q << " not in (0, 1]");
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  const std::int64_t rank = nearest_rank(q, n);
  const auto counts = bin_counts();
  std::int64_t cum = 0;
  for (int b = 0; b < bins_; ++b) {
    cum += counts[static_cast<std::size_t>(b)];
    if (cum >= rank) {
      double m = -std::numeric_limits<double>::infinity();
      for (const auto& s : shards_) {
        m = std::max(m, s->bin_max[static_cast<std::size_t>(b)].load(
                            std::memory_order_relaxed));
      }
      return m;
    }
  }
  return max();  // unreachable when counts are consistent
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& c : s->counts) c.store(0, std::memory_order_relaxed);
    for (auto& m : s->bin_max) {
      m.store(-std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    }
    s->mn.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s->mx.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s->n.store(0, std::memory_order_relaxed);
    s->under.store(0, std::memory_order_relaxed);
    s->over.store(0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------- MetricsRegistry

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& e = *entries_[it->second];
    DDNN_CHECK(e.kind == kind,
               "metric '" << name << "' already registered with another type");
    return e;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Entry& e = find_or_create(name, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Entry& e = find_or_create(name, Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, int bins) {
  Entry& e = find_or_create(name, Kind::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(lo, hi, bins);
  return *e.histogram;
}

HdrHistogram& MetricsRegistry::hdr_histogram(const std::string& name,
                                             double unit, double max_value) {
  Entry& e = find_or_create(name, Kind::kHdrHistogram);
  if (!e.hdr) e.hdr = std::make_unique<HdrHistogram>(unit, max_value);
  return *e.hdr;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->counter) e->counter->reset();
    if (e->gauge) e->gauge->reset();
    if (e->histogram) e->histogram->reset();
    if (e->hdr) e->hdr->reset();
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e->name);
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = *entries_[i];
    os << "    {\"name\": \"" << e.name << "\", ";
    switch (e.kind) {
      case Kind::kCounter:
        os << "\"type\": \"counter\", \"value\": " << e.counter->value();
        break;
      case Kind::kGauge:
        os << "\"type\": \"gauge\", \"value\": "
           << fmt_double(e.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        os << "\"type\": \"histogram\", \"count\": " << h.count()
           << ", \"min\": " << fmt_double(h.min())
           << ", \"max\": " << fmt_double(h.max());
        if (h.count() > 0) {
          os << ", \"p50\": " << fmt_double(h.percentile(0.50))
             << ", \"p90\": " << fmt_double(h.percentile(0.90))
             << ", \"p99\": " << fmt_double(h.percentile(0.99));
        } else {
          os << ", \"p50\": 0, \"p90\": 0, \"p99\": 0";
        }
        os << ", \"underflow\": " << h.underflow()
           << ", \"overflow\": " << h.overflow();
        os << ", \"bins\": [";
        const auto counts = h.bin_counts();
        for (std::size_t b = 0; b < counts.size(); ++b) {
          if (b != 0) os << ", ";
          os << counts[b];
        }
        os << "]";
        break;
      }
      case Kind::kHdrHistogram: {
        const HdrHistogram& h = *e.hdr;
        os << "\"type\": \"hdr\", \"count\": " << h.count()
           << ", \"overflow\": " << h.overflow()
           << ", \"rel_err\": " << fmt_double(HdrHistogram::relative_error_bound())
           << ", \"min\": " << fmt_double(h.min())
           << ", \"max\": " << fmt_double(h.max());
        if (h.count() > 0) {
          os << ", \"p50\": " << fmt_double(h.percentile(0.50))
             << ", \"p90\": " << fmt_double(h.percentile(0.90))
             << ", \"p99\": " << fmt_double(h.percentile(0.99))
             << ", \"p999\": " << fmt_double(h.percentile(0.999));
        } else {
          os << ", \"p50\": 0, \"p90\": 0, \"p99\": 0, \"p999\": 0";
        }
        const HdrExemplar p99 = h.exemplar_at(0.99);
        const HdrExemplar p999 = h.exemplar_at(0.999);
        const HdrExemplar mx = h.max_exemplar();
        os << ", \"p99_sample\": " << p99.sample
           << ", \"p99_trace_id\": " << p99.trace_id
           << ", \"p999_sample\": " << p999.sample
           << ", \"p999_trace_id\": " << p999.trace_id
           << ", \"max_sample\": " << mx.sample
           << ", \"max_trace_id\": " << mx.trace_id;
        break;
      }
    }
    os << "}" << (i + 1 == entries_.size() ? "" : ",") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  DDNN_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << to_json();
  DDNN_CHECK(out.good(), "write to '" << path << "' failed");
}

Table MetricsRegistry::to_table() const {
  std::lock_guard<std::mutex> lock(mu_);
  Table table({"Metric", "Type", "Value"});
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        table.add_row({e->name, "counter", std::to_string(e->counter->value())});
        break;
      case Kind::kGauge:
        table.add_row({e->name, "gauge", Table::num(e->gauge->value(), 6)});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        std::ostringstream v;
        v << "n=" << h.count();
        if (h.count() > 0) {
          v << " min=" << Table::num(h.min(), 3)
            << " p50=" << Table::num(h.percentile(0.50), 3)
            << " p99=" << Table::num(h.percentile(0.99), 3)
            << " max=" << Table::num(h.max(), 3);
        }
        table.add_row({e->name, "histogram", v.str()});
        break;
      }
      case Kind::kHdrHistogram: {
        const HdrHistogram& h = *e->hdr;
        std::ostringstream v;
        v << "n=" << h.count();
        if (h.count() > 0) {
          v << " p50=" << Table::num(h.percentile(0.50), 3)
            << " p99=" << Table::num(h.percentile(0.99), 3)
            << " p99.9=" << Table::num(h.percentile(0.999), 3)
            << " max=" << Table::num(h.max(), 3);
          const HdrExemplar ex = h.exemplar_at(0.999);
          if (ex.valid()) v << " ex=#" << ex.sample;
        }
        table.add_row({e->name, "hdr", v.str()});
        break;
      }
    }
  }
  return table;
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace ddnn::obs
