// MetricsRegistry: named counters, gauges and fixed-bin histograms for the
// whole stack (runtime, trainer, CLI).
//
// Determinism contract (docs/ARCHITECTURE.md "Observability"): every metric
// is sharded per thread and merged in a fixed order, and every merged
// quantity is order-independent — counter shards hold exact integers and sum
// associatively, histogram shards hold integer bin counts plus per-bin /
// global extrema (max/min are commutative). Reported values therefore never
// depend on DDNN_THREADS or on which pool worker recorded what. Gauges are
// last-write-wins and must be set from a single thread (all of ours are set
// from the main thread).
//
// Export walks metrics in registration order, so two runs that register the
// same metrics in the same order produce byte-identical JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/hdr.hpp"
#include "util/table.hpp"

namespace ddnn::obs {

/// Number of per-thread shards behind every counter/histogram. Threads
/// beyond this share slots (atomics keep that exact).
inline constexpr int kMetricShards = 64;

/// Stable small id for the calling thread, in [0, kMetricShards).
int thread_shard();

/// Monotonically increasing integer metric. add() is wait-free on the
/// calling thread's shard; value() merges shards in index order (exact).
class Counter {
 public:
  void add(std::int64_t n = 1) {
    shards_[static_cast<std::size_t>(thread_shard())].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::int64_t value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::vector<Shard> shards_{kMetricShards};
};

/// Last-write-wins double. Not sharded: set it from one thread only.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp into the
/// first/last bin. Alongside the integer bin counts each bin tracks the
/// largest value recorded into it, so nearest-rank percentiles are *exact*
/// whenever a bin holds a single distinct value (n = 1, all-equal samples,
/// or bins aligned to the value grid) and an in-bin upper bound otherwise.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void record(double v);

  std::int64_t count() const;
  double min() const;  ///< smallest recorded value (0 when empty)
  double max() const;  ///< largest recorded value (0 when empty)
  /// Recordings below lo / at-or-above hi. They are clamped into the edge
  /// bins for the counts, so binned percentiles saturate there — but min()/
  /// max() stay exact, and these counters make the clamping visible in the
  /// export instead of silently misreporting the tail.
  std::int64_t underflow() const;
  std::int64_t overflow() const;

  /// Nearest-rank percentile at bin granularity: with n samples and rank
  /// r = max(1, ceil(q * n)), returns the largest recorded value in the bin
  /// containing the r-th smallest sample. q must be in (0, 1]. Returns 0
  /// when the histogram is empty. Agrees with
  /// dist::percentile_nearest_rank() whenever each bin holds one distinct
  /// value.
  double percentile(double q) const;

  /// Merged per-bin counts, in bin order.
  std::vector<std::int64_t> bin_counts() const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int bins() const { return bins_; }

  void reset();

 private:
  int bin_index(double v) const;

  double lo_;
  double hi_;
  double width_;
  int bins_;
  struct Shard {
    std::vector<std::atomic<std::int64_t>> counts;
    std::vector<std::atomic<double>> bin_max;
    std::atomic<double> mn;
    std::atomic<double> mx;
    std::atomic<std::int64_t> n{0};
    std::atomic<std::int64_t> under{0};
    std::atomic<std::int64_t> over{0};
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Name -> metric registry. Registration is get-or-create and thread-safe;
/// references stay valid for the registry's lifetime. Export (to_json /
/// to_table) walks metrics in registration order.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-requesting an existing histogram ignores lo/hi/bins.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       int bins);
  /// Log-bucketed histogram with trace exemplars (obs/hdr.hpp).
  /// Re-requesting an existing one ignores unit/max_value.
  HdrHistogram& hdr_histogram(const std::string& name, double unit,
                              double max_value);

  /// Zero every metric; registrations (and registration order) survive.
  void reset();

  std::size_t size() const;
  /// Registered names in registration order.
  std::vector<std::string> names() const;

  /// {"metrics": [{"name", "type", ...}, ...]} in registration order, with
  /// deterministic number formatting (byte-identical across reruns given
  /// identical values).
  std::string to_json() const;
  void write_json(const std::string& path) const;

  /// Metric | Type | Value summary table (histograms show n/min/p50/p99/max).
  Table to_table() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kHdrHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<HdrHistogram> hdr;
  };

  Entry& find_or_create(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;          // registration order
  std::unordered_map<std::string, std::size_t> index_;
};

/// Process-wide registry used by the CLI (`--metrics-out`).
MetricsRegistry& global_metrics();

}  // namespace ddnn::obs
