// Run ledger: an append-only JSONL file (one JSON object per line) that
// every CLI and bench entry point appends to, recording what ran and what
// it produced. The ledger is the join point of the observability layer:
// `ddnn report` renders it, and scripts/check_bench.py gates regressions
// against committed baselines by reading its newest records.
//
// One record per run:
//   {"command": "...", "info": {"k": "v", ...}, "metrics": {"k": 1.5, ...}}
//
// `info` holds identity strings (preset, engine, seeds-as-strings, output
// file paths); `metrics` holds the numeric final snapshot. Records carry no
// wall-clock timestamps — the file order is the run order, and keeping the
// payload deterministic keeps `ddnn report` golden-testable.
//
// Appends are a single write(2) to an O_APPEND descriptor, so concurrent
// writers (e.g. parallel bench invocations) interleave whole lines, never
// partial ones (POSIX guarantees atomicity for O_APPEND writes well beyond
// our line lengths on regular files).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace ddnn::obs {

struct LedgerRecord {
  /// Entry-point name, e.g. "simulate", "train", "bench.inference".
  std::string command;
  /// Identity strings, in insertion order: preset, engine, seed, ...
  std::vector<std::pair<std::string, std::string>> info;
  /// Final numeric metrics snapshot, in insertion order.
  std::vector<std::pair<std::string, double>> metrics;

  void add_info(const std::string& key, const std::string& value) {
    info.emplace_back(key, value);
  }
  void add_metric(const std::string& key, double value) {
    metrics.emplace_back(key, value);
  }
};

/// Default ledger location: "<results_dir>/ledger.jsonl", or "" when the
/// results dir is disabled (DDNN_RESULTS_DIR=off) — appends become no-ops.
std::string default_ledger_path();

/// One-line JSON serialization (no trailing newline). Deterministic:
/// insertion order preserved, integral metrics print as integers,
/// everything else as %.17g.
std::string to_json_line(const LedgerRecord& record);

/// Append `record` to the ledger at `path` ("" -> default_ledger_path()),
/// creating the file and its directory if needed. Silently does nothing
/// when the resolved path is "" (results disabled). Returns the path
/// written to ("" when disabled).
std::string append_record(const LedgerRecord& record,
                          const std::string& path = "");

/// Parse a JSONL ledger back into records. Unknown top-level keys are an
/// error (the format is ours); blank lines are skipped. Missing file ->
/// empty vector.
std::vector<LedgerRecord> read_ledger(const std::string& path);

}  // namespace ddnn::obs
