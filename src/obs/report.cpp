#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "obs/ledger.hpp"
#include "util/error.hpp"
#include "util/results.hpp"

namespace ddnn::obs {

namespace {

// ------------------------------------------------------------- small utils

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string fmt_short(double v) {
  char buf[40];
  if (v == std::floor(v) && std::abs(v) < 1.0e12) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

std::string fmt_coord(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

double to_double(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --------------------------------------------------------------- CSV input

struct CsvFile {
  std::string path;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  out.push_back(std::move(cell));
  return out;
}

/// Read a CSV written by Table::write_csv / WindowedSeries::write_csv.
/// Returns false (and leaves `out` empty) when the file cannot be opened.
bool read_csv(const std::string& path, CsvFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  out.path = path;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = split_csv_line(line);
    if (out.header.empty()) {
      out.header = std::move(cells);
    } else {
      cells.resize(out.header.size());
      out.rows.push_back(std::move(cells));
    }
  }
  return !out.header.empty();
}

/// Column indices whose every cell parses as a number (and the column has
/// at least one row).
std::vector<std::size_t> numeric_columns(const CsvFile& csv) {
  std::vector<std::size_t> out;
  if (csv.rows.empty()) return out;
  for (std::size_t c = 0; c < csv.header.size(); ++c) {
    bool all = true;
    for (const auto& row : csv.rows) {
      if (!is_number(row[c])) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(c);
  }
  return out;
}

// ------------------------------------------------------------- SVG charts

struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// One line chart: fixed viewport, recessive grid, class-styled series
/// (.s1 … .s6 — color comes from the stylesheet so dark mode restyles the
/// same markup), selective direct labels via a legend row, <title> native
/// tooltips per point.
std::string line_chart(const std::string& title, const std::string& x_name,
                       const std::vector<Series>& series) {
  constexpr int kW = 640, kH = 300;
  constexpr int kL = 56, kR = 14, kT = 14, kB = 40;
  constexpr int kPlotW = kW - kL - kR, kPlotH = kH - kT - kB;

  double x_lo = 0.0, x_hi = 1.0, y_lo = 0.0, y_hi = 1.0;
  bool first = true;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      if (first) {
        x_lo = x_hi = x;
        y_lo = y_hi = y;
        first = false;
      } else {
        x_lo = std::min(x_lo, x);
        x_hi = std::max(x_hi, x);
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
      }
    }
  }
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;
  const double pad = 0.06 * (y_hi - y_lo);
  y_lo -= pad;
  y_hi += pad;

  const auto sx = [&](double x) {
    return kL + (x - x_lo) / (x_hi - x_lo) * kPlotW;
  };
  const auto sy = [&](double y) {
    return kT + (1.0 - (y - y_lo) / (y_hi - y_lo)) * kPlotH;
  };

  std::ostringstream os;
  os << "<figure class=\"chart\">\n<figcaption>" << html_escape(title)
     << "</figcaption>\n";
  os << "<svg viewBox=\"0 0 " << kW << " " << kH << "\" role=\"img\" "
     << "aria-label=\"" << html_escape(title) << "\">\n";
  // Recessive grid + tick labels, 5 intervals per axis.
  for (int k = 0; k <= 5; ++k) {
    const double gx = x_lo + k * (x_hi - x_lo) / 5.0;
    const double gy = y_lo + k * (y_hi - y_lo) / 5.0;
    os << "<line class=\"grid\" x1=\"" << fmt_coord(sx(gx)) << "\" y1=\"" << kT
       << "\" x2=\"" << fmt_coord(sx(gx)) << "\" y2=\"" << (kT + kPlotH)
       << "\"/>\n";
    os << "<line class=\"grid\" x1=\"" << kL << "\" y1=\"" << fmt_coord(sy(gy))
       << "\" x2=\"" << (kL + kPlotW) << "\" y2=\"" << fmt_coord(sy(gy))
       << "\"/>\n";
    os << "<text class=\"tick\" x=\"" << fmt_coord(sx(gx)) << "\" y=\""
       << (kT + kPlotH + 16) << "\" text-anchor=\"middle\">" << fmt_short(gx)
       << "</text>\n";
    os << "<text class=\"tick\" x=\"" << (kL - 6) << "\" y=\""
       << fmt_coord(sy(gy) + 4) << "\" text-anchor=\"end\">" << fmt_short(gy)
       << "</text>\n";
  }
  os << "<rect class=\"frame\" x=\"" << kL << "\" y=\"" << kT << "\" width=\""
     << kPlotW << "\" height=\"" << kPlotH << "\"/>\n";
  os << "<text class=\"tick\" x=\"" << (kL + kPlotW / 2) << "\" y=\""
     << (kH - 6) << "\" text-anchor=\"middle\">" << html_escape(x_name)
     << "</text>\n";

  for (std::size_t i = 0; i < series.size(); ++i) {
    const std::string cls = "s" + std::to_string(i % 6 + 1);
    std::ostringstream d;
    for (std::size_t p = 0; p < series[i].points.size(); ++p) {
      const auto& [x, y] = series[i].points[p];
      d << (p == 0 ? "M " : "L ") << fmt_coord(sx(x)) << " "
        << fmt_coord(sy(y)) << " ";
    }
    os << "<path class=\"line " << cls << "\" d=\"" << d.str() << "\"/>\n";
    for (const auto& [x, y] : series[i].points) {
      os << "<circle class=\"dot " << cls << "\" cx=\"" << fmt_coord(sx(x))
         << "\" cy=\"" << fmt_coord(sy(y)) << "\" r=\"3\"><title>"
         << html_escape(series[i].name) << "\n" << html_escape(x_name) << " "
         << fmt_short(x) << ": " << fmt_short(y) << "</title></circle>\n";
    }
  }
  os << "</svg>\n";
  // Legend whenever identity needs naming (>= 2 series); one series is
  // named by the caption.
  if (series.size() >= 2) {
    os << "<div class=\"legend\">";
    for (std::size_t i = 0; i < series.size(); ++i) {
      os << "<span><i class=\"swatch s" << (i % 6 + 1) << "\"></i>"
         << html_escape(series[i].name) << "</span>";
    }
    os << "</div>\n";
  }
  os << "</figure>\n";
  return os.str();
}

std::string sparkline(const std::vector<double>& values) {
  constexpr int kW = 120, kH = 26, kPad = 3;
  if (values.size() < 2) return "";
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi == lo) hi = lo + 1.0;
  std::ostringstream d;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x =
        kPad + static_cast<double>(i) / static_cast<double>(values.size() - 1) *
                   (kW - 2 * kPad);
    const double y =
        kPad + (1.0 - (values[i] - lo) / (hi - lo)) * (kH - 2 * kPad);
    d << (i == 0 ? "M " : "L ") << fmt_coord(x) << " " << fmt_coord(y) << " ";
  }
  std::ostringstream os;
  os << "<svg class=\"spark\" viewBox=\"0 0 " << kW << " " << kH
     << "\"><path class=\"line s1\" d=\"" << d.str() << "\"/></svg>";
  return os.str();
}

/// Collapsible table view of a CSV — the accessibility fallback required
/// under every chart.
std::string csv_table(const CsvFile& csv) {
  std::ostringstream os;
  os << "<details><summary>table view</summary>\n<table>\n<tr>";
  for (const auto& h : csv.header) os << "<th>" << html_escape(h) << "</th>";
  os << "</tr>\n";
  for (const auto& row : csv.rows) {
    os << "<tr>";
    for (const auto& cell : row) os << "<td>" << html_escape(cell) << "</td>";
    os << "</tr>\n";
  }
  os << "</table>\n</details>\n";
  return os.str();
}

/// Chart of a results CSV: first numeric column is x, up to 6 further
/// numeric columns become series (the cap is stated, never silent).
std::string csv_chart(const std::string& title, const CsvFile& csv) {
  std::ostringstream os;
  const auto numeric = numeric_columns(csv);
  if (numeric.size() >= 2 && csv.rows.size() >= 2) {
    const std::size_t x_col = numeric[0];
    std::vector<Series> series;
    std::size_t dropped = 0;
    for (std::size_t k = 1; k < numeric.size(); ++k) {
      if (series.size() == 6) {
        ++dropped;
        continue;
      }
      Series s;
      s.name = csv.header[numeric[k]];
      for (const auto& row : csv.rows) {
        s.points.emplace_back(to_double(row[x_col]),
                              to_double(row[numeric[k]]));
      }
      std::sort(s.points.begin(), s.points.end());
      series.push_back(std::move(s));
    }
    os << line_chart(title, csv.header[x_col], series);
    if (dropped > 0) {
      os << "<p class=\"note\">showing 6 of " << (6 + dropped)
         << " numeric columns; the rest are in the table view</p>\n";
    }
  } else {
    os << "<h3>" << html_escape(title) << "</h3>\n";
  }
  os << csv_table(csv);
  return os.str();
}

// -------------------------------------------------------- series rendering

/// Column group of a series export: every column matching (prefix, suffix)
/// becomes one chart series, labeled with the middle of its name.
struct SeriesGroup {
  std::string title;
  std::string prefix;
  std::string suffix;  // "" = none
};

std::string render_series_csv(const std::string& label, const CsvFile& csv) {
  std::ostringstream os;
  os << "<h3>" << html_escape(label) << "</h3>\n";
  if (csv.header.size() < 4 || csv.rows.empty()) {
    os << "<p class=\"note\">empty series</p>\n" << csv_table(csv);
    return os.str();
  }
  const std::string x_name = csv.header[1];  // "<axis>_start"

  static const std::vector<SeriesGroup> kGroups = {
      {"Exit fractions per window", "runtime.exit_frac.", ""},
      {"Accuracy per window", "runtime.accuracy", ""},
      {"Sample latency percentiles (ms)", "runtime.latency_ms.p", ""},
      {"Drops / retries / timeouts per window", "runtime.drops", ""},
      {"Per-link bytes per window", "link.", ".bytes"},
      {"Fleet throughput (Hz)", "fleet.throughput_hz", ""},
      {"Fleet latency percentiles (ms)", "fleet.latency_ms.p", ""},
      {"Fleet HDR latency tail (ms)", "fleet.hdr_latency_ms.p", ""},
      {"Runtime HDR latency tail (ms)", "runtime.hdr_latency_ms.p", ""},
      {"Fleet outcomes per window", "fleet.completed", ""},
      {"Fleet queue depth", "fleet.queue_depth", ""},
      {"Per-station queue depth", "fleet.station.", ".queue"},
      {"Training loss", "train.loss", ""},
      {"Per-exit accuracy by epoch", "train.exit_acc.", ""},
      {"Exit fractions by epoch", "train.exit_frac.", ""},
  };

  // Column lookup by name.
  std::map<std::string, std::size_t> by_name;
  for (std::size_t c = 0; c < csv.header.size(); ++c) {
    by_name[csv.header[c]] = c;
  }
  const auto col_points = [&](std::size_t c) {
    std::vector<std::pair<double, double>> pts;
    pts.reserve(csv.rows.size());
    for (const auto& row : csv.rows) {
      pts.emplace_back(to_double(row[1]), to_double(row[c]));
    }
    return pts;
  };

  bool any_chart = false;
  for (const auto& group : kGroups) {
    std::vector<Series> series;
    std::size_t dropped = 0;
    for (std::size_t c = 3; c < csv.header.size(); ++c) {
      const std::string& name = csv.header[c];
      if (!starts_with(name, group.prefix)) continue;
      if (!group.suffix.empty() && !ends_with(name, group.suffix)) continue;
      if (series.size() == 6) {
        ++dropped;
        continue;
      }
      Series s;
      s.name = name.substr(group.prefix.size(),
                           name.size() - group.prefix.size() -
                               group.suffix.size());
      if (s.name.empty()) s.name = name;
      s.points = col_points(c);
      series.push_back(std::move(s));
    }
    if (series.empty()) continue;
    // The drops group pulls in its sibling columns explicitly.
    if (group.prefix == "runtime.drops") {
      for (const char* extra : {"runtime.retries", "runtime.timeouts"}) {
        const auto it = by_name.find(extra);
        if (it != by_name.end()) {
          Series s;
          s.name = std::string(extra).substr(8);
          s.points = col_points(it->second);
          series.push_back(std::move(s));
        }
      }
    }
    // The fleet outcome chart pulls in its sibling counters explicitly.
    if (group.prefix == "fleet.completed") {
      for (const char* extra :
           {"fleet.local", "fleet.escalated", "fleet.shed", "fleet.dead"}) {
        const auto it = by_name.find(extra);
        if (it != by_name.end()) {
          Series s;
          s.name = std::string(extra).substr(6);
          s.points = col_points(it->second);
          series.push_back(std::move(s));
        }
      }
    }
    if (group.prefix == "runtime.latency_ms.p" ||
        group.prefix == "fleet.latency_ms.p") {
      for (auto& s : series) s.name = "p" + s.name;
    }
    any_chart = true;
    os << line_chart(group.title, x_name, series);
    if (dropped > 0) {
      os << "<p class=\"note\">showing 6 of " << (6 + dropped) << " "
         << html_escape(group.title)
         << " columns; the rest are in the table view</p>\n";
    }
  }
  if (!any_chart) {
    os << "<p class=\"note\">no recognized column groups; see the table "
          "view</p>\n";
  }
  os << csv_table(csv);
  return os.str();
}

// ------------------------------------------------------------- stylesheet

const char* kStyle = R"css(
:root {
  --surface: #ffffff; --panel: #f6f7f9; --ink: #1a1d21; --muted: #5c6570;
  --grid: #e3e6ea; --frame: #b9c0c7;
  --c1: #2a78d6; --c2: #eb6834; --c3: #1baf7a;
  --c4: #eda100; --c5: #e87ba4; --c6: #008300;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #14171a; --panel: #1d2126; --ink: #e8eaed; --muted: #9aa3ad;
    --grid: #2b3138; --frame: #4a525b;
    --c1: #3987e5; --c2: #d95926; --c3: #199e70;
    --c4: #c98500; --c5: #d55181; --c6: #008300;
  }
}
body { background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem;
  padding: 0 1rem; }
h1, h2, h3 { line-height: 1.2; }
h2 { border-bottom: 1px solid var(--grid); padding-bottom: .3rem;
  margin-top: 2.2rem; }
table { border-collapse: collapse; margin: .6rem 0; }
th, td { border: 1px solid var(--grid); padding: .25rem .55rem;
  text-align: left; font-variant-numeric: tabular-nums; }
th { background: var(--panel); }
figure.chart { background: var(--panel); border-radius: 8px;
  padding: .8rem 1rem; margin: 1rem 0; max-width: 44rem; }
figure.chart figcaption { font-weight: 600; margin-bottom: .4rem; }
svg { display: block; width: 100%; height: auto; }
svg.spark { width: 120px; height: 26px; display: inline-block;
  vertical-align: middle; }
.grid { stroke: var(--grid); stroke-width: 1; }
.frame { fill: none; stroke: var(--frame); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 11px; }
.line { fill: none; stroke-width: 2; }
.dot { stroke: var(--surface); stroke-width: 1; }
.s1 { stroke: var(--c1); } .dot.s1 { fill: var(--c1); }
.s2 { stroke: var(--c2); } .dot.s2 { fill: var(--c2); }
.s3 { stroke: var(--c3); } .dot.s3 { fill: var(--c3); }
.s4 { stroke: var(--c4); } .dot.s4 { fill: var(--c4); }
.s5 { stroke: var(--c5); } .dot.s5 { fill: var(--c5); }
.s6 { stroke: var(--c6); } .dot.s6 { fill: var(--c6); }
.legend { display: flex; flex-wrap: wrap; gap: .4rem 1.1rem;
  margin-top: .5rem; color: var(--ink); }
.legend .swatch { display: inline-block; width: 14px; height: 3px;
  margin-right: .4rem; vertical-align: middle; border-radius: 2px; }
.swatch.s1 { background: var(--c1); } .swatch.s2 { background: var(--c2); }
.swatch.s3 { background: var(--c3); } .swatch.s4 { background: var(--c4); }
.swatch.s5 { background: var(--c5); } .swatch.s6 { background: var(--c6); }
.note, details summary { color: var(--muted); }
details { margin: .4rem 0 1rem; }
)css";

}  // namespace

std::string render_report_html(const ReportOptions& options) {
  const std::string dir =
      options.results_dir.empty() ? results_dir() : options.results_dir;
  const std::string ledger_path = options.ledger_path.empty()
                                      ? (dir.empty() ? "" : dir + "/ledger.jsonl")
                                      : options.ledger_path;
  const std::vector<LedgerRecord> ledger =
      ledger_path.empty() ? std::vector<LedgerRecord>{}
                          : read_ledger(ledger_path);

  std::ostringstream os;
  os << "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
     << "<meta name=\"viewport\" content=\"width=device-width, "
        "initial-scale=1\">\n"
     << "<title>" << html_escape(options.title) << "</title>\n<style>"
     << kStyle << "</style>\n</head>\n<body>\n";
  os << "<h1>" << html_escape(options.title) << "</h1>\n";
  os << "<p class=\"note\">results directory: <code>"
     << html_escape(dir.empty() ? std::string("(disabled)") : dir)
     << "</code></p>\n";

  // ------------------------------------------------------------ run ledger
  os << "<h2>Run ledger</h2>\n";
  if (ledger.empty()) {
    os << "<p class=\"note\">no ledger records ("
       << html_escape(ledger_path.empty() ? std::string("results disabled")
                                          : ledger_path)
       << ")</p>\n";
  } else {
    os << "<table>\n<tr><th>#</th><th>command</th><th>info</th>"
       << "<th>metrics</th></tr>\n";
    for (std::size_t i = 0; i < ledger.size(); ++i) {
      const auto& rec = ledger[i];
      os << "<tr><td>" << (i + 1) << "</td><td>" << html_escape(rec.command)
         << "</td><td>";
      for (std::size_t k = 0; k < rec.info.size(); ++k) {
        os << (k ? " · " : "") << html_escape(rec.info[k].first) << "="
           << html_escape(rec.info[k].second);
      }
      os << "</td><td>";
      for (std::size_t k = 0; k < rec.metrics.size(); ++k) {
        os << (k ? " · " : "") << html_escape(rec.metrics[k].first) << "="
           << fmt_short(rec.metrics[k].second);
      }
      os << "</td></tr>\n";
    }
    os << "</table>\n";

    // Trajectories: for commands with repeat runs, sparkline each metric
    // across the ledger in file (= run) order.
    std::vector<std::string> commands;
    for (const auto& rec : ledger) {
      if (std::find(commands.begin(), commands.end(), rec.command) ==
          commands.end()) {
        commands.push_back(rec.command);
      }
    }
    std::ostringstream traj;
    for (const auto& cmd : commands) {
      std::vector<const LedgerRecord*> runs;
      for (const auto& rec : ledger) {
        if (rec.command == cmd) runs.push_back(&rec);
      }
      if (runs.size() < 2) continue;
      // Metric keys of the newest run, in its order.
      for (const auto& [key, last_value] : runs.back()->metrics) {
        std::vector<double> values;
        for (const auto* run : runs) {
          for (const auto& [k, v] : run->metrics) {
            if (k == key) {
              values.push_back(v);
              break;
            }
          }
        }
        if (values.size() < 2) continue;
        traj << "<tr><td>" << html_escape(cmd) << "</td><td>"
             << html_escape(key) << "</td><td>" << sparkline(values)
             << "</td><td>" << fmt_short(last_value) << "</td></tr>\n";
      }
    }
    if (!traj.str().empty()) {
      os << "<h3>Metric trajectories across runs</h3>\n<table>\n"
         << "<tr><th>command</th><th>metric</th><th>trend</th>"
         << "<th>latest</th></tr>\n"
         << traj.str() << "</table>\n";
    }
  }

  // ------------------------------------------------------------ peak memory
  // Planned activation peaks (runtime.mem_peak.*) of the newest run that
  // recorded them: the per-tier arena sizes the memory planner committed to.
  {
    const LedgerRecord* newest = nullptr;
    for (const auto& rec : ledger) {
      for (const auto& [key, value] : rec.metrics) {
        if (key.rfind("runtime.mem_peak.", 0) == 0) {
          newest = &rec;
          break;
        }
      }
    }
    if (newest != nullptr) {
      os << "<h2>Peak memory</h2>\n"
         << "<p class=\"note\">planned activation arena peak per hierarchy "
            "tier (latest <code>"
         << html_escape(newest->command) << "</code> run)</p>\n"
         << "<table>\n<tr><th>tier</th><th>peak bytes</th></tr>\n";
      for (const auto& [key, value] : newest->metrics) {
        if (key.rfind("runtime.mem_peak.", 0) != 0) continue;
        os << "<tr><td>" << html_escape(key.substr(17)) << "</td><td>"
           << fmt_short(value) << "</td></tr>\n";
      }
      os << "</table>\n";
    }
  }

  // ------------------------------------------------------------ SLO health
  // Burn-rate SLO status (fleet.slo.*) of the newest run that recorded it:
  // per-objective good-event ratio, fast/slow burn rates and the resulting
  // health state from the multi-window alert rule (see obs/slo.hpp).
  {
    const LedgerRecord* newest = nullptr;
    for (const auto& rec : ledger) {
      for (const auto& [key, value] : rec.metrics) {
        if (key.rfind("fleet.slo.", 0) == 0) {
          newest = &rec;
          break;
        }
      }
    }
    if (newest != nullptr) {
      // Collect per-objective rows: fleet.slo.<objective>.<field>.
      std::map<std::string, std::map<std::string, double>> objectives;
      for (const auto& [key, value] : newest->metrics) {
        if (key.rfind("fleet.slo.", 0) != 0) continue;
        const std::string rest = key.substr(10);
        const auto dot = rest.rfind('.');
        if (dot == std::string::npos) continue;
        objectives[rest.substr(0, dot)][rest.substr(dot + 1)] = value;
      }
      const auto state_name = [](double s) {
        if (s >= 2.0) return "critical";
        if (s >= 1.0) return "warn";
        return "ok";
      };
      os << "<h2>SLO &amp; health</h2>\n"
         << "<p class=\"note\">burn-rate SLO status (latest <code>"
         << html_escape(newest->command)
         << "</code> run): burn &gt;= 1 spends error budget faster than "
            "the objective allows; an alert needs both the fast and the "
            "slow window burning</p>\n"
         << "<table>\n<tr><th>objective</th><th>good ratio</th>"
            "<th>fast burn</th><th>slow burn</th><th>state</th></tr>\n";
      for (const auto& [name, fields] : objectives) {
        const auto field = [&](const char* k, double fallback) {
          const auto it = fields.find(k);
          return it == fields.end() ? fallback : it->second;
        };
        os << "<tr><td>" << html_escape(name) << "</td><td>"
           << fmt_short(field("ratio", 0.0)) << "</td><td>"
           << fmt_short(field("fast_burn", 0.0)) << "</td><td>"
           << fmt_short(field("slow_burn", 0.0)) << "</td><td>"
           << state_name(field("state", 0.0)) << "</td></tr>\n";
      }
      os << "</table>\n";
    }
  }

  // -------------------------------------------------------- series exports
  // Every ledger record that points at a series file gets its charts; the
  // files are then excluded from the generic CSV section below.
  std::set<std::string> series_files;
  os << "<h2>Windowed series</h2>\n";
  bool any_series = false;
  for (std::size_t i = 0; i < ledger.size(); ++i) {
    for (const auto& [key, value] : ledger[i].info) {
      if (key != "series") continue;
      series_files.insert(value);
      CsvFile csv;
      if (!read_csv(value, csv)) continue;
      any_series = true;
      os << render_series_csv(
          "run " + std::to_string(i + 1) + " — " + ledger[i].command + " — " +
              value,
          csv);
    }
  }
  if (!any_series) {
    os << "<p class=\"note\">no series exports recorded (run with "
          "--series-out)</p>\n";
  }

  // ------------------------------------------------------------ bench CSVs
  os << "<h2>Result tables and figures</h2>\n";
  std::vector<std::string> csv_paths;
  if (!dir.empty() && std::filesystem::is_directory(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string path = entry.path().string();
      if (!ends_with(path, ".csv")) continue;
      if (series_files.count(path)) continue;
      csv_paths.push_back(path);
    }
    std::sort(csv_paths.begin(), csv_paths.end());
  }
  if (csv_paths.empty()) {
    os << "<p class=\"note\">no CSVs found (run the bench binaries with "
          "DDNN_RESULTS_DIR set)</p>\n";
  }
  for (const auto& path : csv_paths) {
    CsvFile csv;
    if (!read_csv(path, csv)) continue;
    const std::size_t slash = path.find_last_of('/');
    os << csv_chart(slash == std::string::npos ? path
                                               : path.substr(slash + 1),
                    csv);
  }

  os << "</body>\n</html>\n";
  return os.str();
}

std::string write_report_html(const ReportOptions& options,
                              const std::string& out_path) {
  const std::string html = render_report_html(options);
  std::ofstream out(out_path, std::ios::binary);
  DDNN_CHECK(out.good(), "cannot open '" << out_path << "' for writing");
  out << html;
  DDNN_CHECK(out.good(), "write to '" << out_path << "' failed");
  return out_path;
}

}  // namespace ddnn::obs
