// Per-sample span tracing over the *simulated* clock.
//
// The distributed runtime stamps every span with simulated seconds (the same
// latency model that produces InferenceTrace.latency_s), never wall-clock
// time, so a trace is a pure function of (model, data, fault plan) and is
// byte-identical across reruns and DDNN_THREADS settings. The tracer is a
// plain append-only buffer: recording never feeds back into the quantities
// being traced.
//
// Export is Chrome trace_event JSON ("X" complete events plus "M"
// thread_name metadata), loadable in Perfetto / chrome://tracing. ts/dur
// are microseconds; each span carries its raw arguments (bytes, attempts,
// entropy, ...) so tools can cross-check span sums against RuntimeMetrics
// (scripts/check_trace.py does exactly that).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ddnn::obs {

/// One key -> value span annotation.
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };
  std::string key;
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
};

/// One complete span on a track, in simulated seconds.
struct Span {
  std::string name;
  std::string cat;
  int track = 0;
  double start_s = 0.0;
  double dur_s = 0.0;
  std::vector<TraceArg> args;

  Span& with(std::string key, std::int64_t v);
  Span& with(std::string key, int v) { return with(std::move(key), static_cast<std::int64_t>(v)); }
  Span& with(std::string key, bool v) { return with(std::move(key), static_cast<std::int64_t>(v)); }
  Span& with(std::string key, double v);
  Span& with(std::string key, std::string v);
  Span& with(std::string key, const char* v) { return with(std::move(key), std::string(v)); }

  /// First arg with this key, or nullptr.
  const TraceArg* arg(const std::string& key) const;
};

class SpanTracer {
 public:
  /// Append a complete span; the returned reference is valid until the next
  /// add()/clear() (chain .with() calls immediately).
  Span& add(std::string name, std::string cat, int track, double start_s,
            double dur_s);

  /// Label a track (emitted as a thread_name metadata event).
  void set_track_name(int track, std::string name);

  /// Attribute this tracer to one process of a distributed run: every event
  /// is emitted with `pid` and a process_name metadata event. Unset (the
  /// default) keeps the legacy single-process output byte-identical.
  void set_process(int pid, std::string name);
  int pid() const { return pid_; }
  const std::string& process_name() const { return process_name_; }

  /// Attach run-level metadata (clock epoch, per-peer clock offsets, ...)
  /// exported as a top-level "ddnn" object. `ddnn trace-merge` consumes it
  /// to align per-process clocks. Only emitted when nonempty.
  void set_meta(const std::string& key, double value);
  const std::map<std::string, double>& meta() const { return meta_; }

  const std::vector<Span>& spans() const { return spans_; }
  const std::map<int, std::string>& track_names() const { return track_names_; }

  void clear() { spans_.clear(); }

  /// Chrome trace_event JSON. Deterministic formatting: identical spans
  /// produce byte-identical output.
  std::string to_json() const;
  void write_json(const std::string& path) const;

 private:
  std::vector<Span> spans_;
  std::map<int, std::string> track_names_;  // ordered -> deterministic emit
  int pid_ = 0;
  std::string process_name_;
  std::map<std::string, double> meta_;  // ordered -> deterministic emit
};

}  // namespace ddnn::obs
