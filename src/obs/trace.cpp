#include "obs/trace.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

// Formatting (json_escape / json_us / json_double) lives in obs/json.hpp,
// shared with trace-merge so a merged file renders spans byte-identically.
namespace ddnn::obs {

Span& Span::with(std::string key, std::int64_t v) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = TraceArg::Kind::kInt;
  a.i = v;
  args.push_back(std::move(a));
  return *this;
}

Span& Span::with(std::string key, double v) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = TraceArg::Kind::kDouble;
  a.d = v;
  args.push_back(std::move(a));
  return *this;
}

Span& Span::with(std::string key, std::string v) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = TraceArg::Kind::kString;
  a.s = std::move(v);
  args.push_back(std::move(a));
  return *this;
}

const TraceArg* Span::arg(const std::string& key) const {
  for (const auto& a : args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

Span& SpanTracer::add(std::string name, std::string cat, int track,
                      double start_s, double dur_s) {
  Span span;
  span.name = std::move(name);
  span.cat = std::move(cat);
  span.track = track;
  span.start_s = start_s;
  span.dur_s = dur_s;
  spans_.push_back(std::move(span));
  return spans_.back();
}

void SpanTracer::set_track_name(int track, std::string name) {
  track_names_[track] = std::move(name);
}

void SpanTracer::set_process(int pid, std::string name) {
  pid_ = pid;
  process_name_ = std::move(name);
}

void SpanTracer::set_meta(const std::string& key, double value) {
  meta_[key] = value;
}

std::string SpanTracer::to_json() const {
  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n";
  // Distributed-run attribution; absent on legacy single-process traces so
  // their golden output stays byte-identical.
  if (!process_name_.empty() || !meta_.empty()) {
    os << "  \"ddnn\": {\"process\": \"" << json_escape(process_name_)
       << "\", \"pid\": " << pid_ << ", \"meta\": {";
    bool first_meta = true;
    for (const auto& [key, value] : meta_) {
      if (!first_meta) os << ", ";
      first_meta = false;
      os << "\"" << json_escape(key) << "\": " << json_double(value);
    }
    os << "}},\n";
  }
  os << "  \"traceEvents\": [";
  bool first = true;
  auto sep = [&]() -> std::ostringstream& {
    os << (first ? "\n" : ",\n");
    first = false;
    return os;
  };
  if (!process_name_.empty()) {
    sep() << "    {\"ph\": \"M\", \"pid\": " << pid_
          << ", \"tid\": 0, \"name\": \"process_name\", \"args\": "
             "{\"name\": \""
          << json_escape(process_name_) << "\"}}";
  }
  for (const auto& [track, name] : track_names_) {
    sep() << "    {\"ph\": \"M\", \"pid\": " << pid_ << ", \"tid\": " << track
          << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
          << json_escape(name) << "\"}}";
  }
  for (const auto& s : spans_) {
    sep() << "    {\"ph\": \"X\", \"pid\": " << pid_
          << ", \"tid\": " << s.track << ", \"name\": \""
          << json_escape(s.name) << "\", \"cat\": \"" << json_escape(s.cat)
          << "\", \"ts\": " << json_us(s.start_s)
          << ", \"dur\": " << json_us(s.dur_s);
    if (!s.args.empty()) {
      os << ", \"args\": {";
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        const TraceArg& a = s.args[i];
        if (i != 0) os << ", ";
        os << "\"" << json_escape(a.key) << "\": ";
        switch (a.kind) {
          case TraceArg::Kind::kInt: os << a.i; break;
          case TraceArg::Kind::kDouble: os << json_double(a.d); break;
          case TraceArg::Kind::kString:
            os << "\"" << json_escape(a.s) << "\"";
            break;
        }
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

void SpanTracer::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  DDNN_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << to_json();
  DDNN_CHECK(out.good(), "write to '" << path << "' failed");
}

}  // namespace ddnn::obs
