#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace ddnn::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microsecond timestamps with fixed sub-microsecond precision: the same
/// double always renders to the same bytes.
std::string fmt_us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Span& Span::with(std::string key, std::int64_t v) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = TraceArg::Kind::kInt;
  a.i = v;
  args.push_back(std::move(a));
  return *this;
}

Span& Span::with(std::string key, double v) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = TraceArg::Kind::kDouble;
  a.d = v;
  args.push_back(std::move(a));
  return *this;
}

Span& Span::with(std::string key, std::string v) {
  TraceArg a;
  a.key = std::move(key);
  a.kind = TraceArg::Kind::kString;
  a.s = std::move(v);
  args.push_back(std::move(a));
  return *this;
}

const TraceArg* Span::arg(const std::string& key) const {
  for (const auto& a : args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

Span& SpanTracer::add(std::string name, std::string cat, int track,
                      double start_s, double dur_s) {
  Span span;
  span.name = std::move(name);
  span.cat = std::move(cat);
  span.track = track;
  span.start_s = start_s;
  span.dur_s = dur_s;
  spans_.push_back(std::move(span));
  return spans_.back();
}

void SpanTracer::set_track_name(int track, std::string name) {
  track_names_[track] = std::move(name);
}

std::string SpanTracer::to_json() const {
  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  auto sep = [&]() -> std::ostringstream& {
    os << (first ? "\n" : ",\n");
    first = false;
    return os;
  };
  for (const auto& [track, name] : track_names_) {
    sep() << "    {\"ph\": \"M\", \"pid\": 0, \"tid\": " << track
          << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
          << json_escape(name) << "\"}}";
  }
  for (const auto& s : spans_) {
    sep() << "    {\"ph\": \"X\", \"pid\": 0, \"tid\": " << s.track
          << ", \"name\": \"" << json_escape(s.name) << "\", \"cat\": \""
          << json_escape(s.cat) << "\", \"ts\": " << fmt_us(s.start_s)
          << ", \"dur\": " << fmt_us(s.dur_s);
    if (!s.args.empty()) {
      os << ", \"args\": {";
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        const TraceArg& a = s.args[i];
        if (i != 0) os << ", ";
        os << "\"" << json_escape(a.key) << "\": ";
        switch (a.kind) {
          case TraceArg::Kind::kInt: os << a.i; break;
          case TraceArg::Kind::kDouble: os << fmt_double(a.d); break;
          case TraceArg::Kind::kString:
            os << "\"" << json_escape(a.s) << "\"";
            break;
        }
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

void SpanTracer::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  DDNN_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << to_json();
  DDNN_CHECK(out.good(), "write to '" << path << "' failed");
}

}  // namespace ddnn::obs
