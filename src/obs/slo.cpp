#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace ddnn::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Burn when the error budget is zero (target == 1): any bad event is an
/// immediate, unbounded overspend; report a large finite rate so the JSON
/// stays parseable.
constexpr double kInfiniteBurn = 1.0e9;

double burn_rate(std::int64_t good, std::int64_t bad, double target) {
  const std::int64_t total = good + bad;
  if (total == 0) return 0.0;
  const double err = static_cast<double>(bad) / static_cast<double>(total);
  const double budget = 1.0 - target;
  if (budget <= 0.0) return bad > 0 ? kInfiniteBurn : 0.0;
  return err / budget;
}

}  // namespace

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kWarn:
      return "warn";
    case HealthState::kCritical:
      return "critical";
  }
  return "ok";
}

HealthState worse(HealthState a, HealthState b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

int SloEngine::add_objective(const SloObjective& objective) {
  DDNN_CHECK(!objective.name.empty(), "slo objective needs a name");
  DDNN_CHECK(objective.target > 0.0 && objective.target <= 1.0,
             "slo '" << objective.name << "' target " << objective.target
                     << " not in (0, 1]");
  DDNN_CHECK(objective.fast_window > 0.0 &&
                 objective.slow_window >= objective.fast_window,
             "slo '" << objective.name
                     << "' windows must satisfy 0 < fast <= slow");
  const int existing = objective_id(objective.name);
  if (existing >= 0) return existing;
  Objective o;
  o.config = objective;
  o.bucket_width = objective.fast_window / 12.0;
  objectives_.push_back(std::move(o));
  return static_cast<int>(objectives_.size()) - 1;
}

int SloEngine::objective_id(const std::string& name) const {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    if (objectives_[i].config.name == name) return static_cast<int>(i);
  }
  return -1;
}

void SloEngine::record(int id, double t, bool good) {
  DDNN_CHECK(id >= 0 && id < static_cast<int>(objectives_.size()),
             "record into unknown slo objective " << id);
  DDNN_CHECK(t >= 0.0, "slo clock " << t << " is negative");
  DDNN_CHECK(t >= last_t_, "slo clock went backwards: " << t << " < "
                                                        << last_t_);
  last_t_ = t;
  Objective& o = objectives_[static_cast<std::size_t>(id)];
  const auto b = static_cast<std::size_t>(t / o.bucket_width);
  if (b >= o.good.size()) {
    o.good.resize(b + 1, 0);
    o.bad.resize(b + 1, 0);
  }
  if (good) {
    ++o.good[b];
    ++o.total_good;
  } else {
    ++o.bad[b];
    ++o.total_bad;
  }
}

double SloEngine::window_burn(const Objective& o, double window) const {
  if (o.good.empty()) return 0.0;
  const auto cur = static_cast<std::int64_t>(last_t_ / o.bucket_width);
  const auto span = static_cast<std::int64_t>(
      std::ceil(window / o.bucket_width));
  const std::int64_t first = std::max<std::int64_t>(0, cur - span + 1);
  std::int64_t good = 0;
  std::int64_t bad = 0;
  const auto last = std::min<std::int64_t>(
      cur, static_cast<std::int64_t>(o.good.size()) - 1);
  for (std::int64_t b = first; b <= last; ++b) {
    good += o.good[static_cast<std::size_t>(b)];
    bad += o.bad[static_cast<std::size_t>(b)];
  }
  return burn_rate(good, bad, o.config.target);
}

SloStatus SloEngine::status_of(const Objective& o) const {
  SloStatus s;
  s.name = o.config.name;
  s.tier = o.config.tier;
  s.target = o.config.target;
  s.good = o.total_good;
  s.bad = o.total_bad;
  const std::int64_t total = s.good + s.bad;
  s.ratio = total == 0
                ? 1.0
                : static_cast<double>(s.good) / static_cast<double>(total);
  s.fast_burn = window_burn(o, o.config.fast_window);
  s.slow_burn = window_burn(o, o.config.slow_window);
  // Multi-window rule: degrade only when both windows agree — the fast one
  // proves it is happening now, the slow one that it is not a blip.
  if (s.fast_burn >= o.config.critical_burn &&
      s.slow_burn >= o.config.critical_burn) {
    s.state = HealthState::kCritical;
  } else if (s.fast_burn >= o.config.warn_burn &&
             s.slow_burn >= o.config.warn_burn) {
    s.state = HealthState::kWarn;
  } else {
    s.state = HealthState::kOk;
  }
  return s;
}

std::vector<SloStatus> SloEngine::evaluate() const {
  std::vector<SloStatus> out;
  out.reserve(objectives_.size());
  for (const auto& o : objectives_) out.push_back(status_of(o));
  return out;
}

std::vector<TierHealth> SloEngine::tier_health() const {
  std::vector<TierHealth> out;
  for (const auto& status : evaluate()) {
    TierHealth* slot = nullptr;
    for (auto& t : out) {
      if (t.tier == status.tier) slot = &t;
    }
    if (slot == nullptr) {
      out.push_back({status.tier, status.state});
    } else {
      slot->state = worse(slot->state, status.state);
    }
  }
  return out;
}

HealthState SloEngine::overall() const {
  HealthState state = HealthState::kOk;
  for (const auto& status : evaluate()) state = worse(state, status.state);
  return state;
}

std::string SloEngine::to_json() const {
  std::ostringstream os;
  os << "{\n  \"objectives\": [\n";
  const auto statuses = evaluate();
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    const SloStatus& s = statuses[i];
    os << "    {\"name\": \"" << s.name << "\", \"tier\": \"" << s.tier
       << "\", \"target\": " << fmt_double(s.target)
       << ", \"good\": " << s.good << ", \"bad\": " << s.bad
       << ", \"ratio\": " << fmt_double(s.ratio)
       << ", \"fast_burn\": " << fmt_double(s.fast_burn)
       << ", \"slow_burn\": " << fmt_double(s.slow_burn) << ", \"state\": \""
       << to_string(s.state) << "\"}"
       << (i + 1 == statuses.size() ? "" : ",") << "\n";
  }
  os << "  ],\n  \"tiers\": [\n";
  const auto tiers = tier_health();
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    os << "    {\"tier\": \"" << tiers[i].tier << "\", \"state\": \""
       << to_string(tiers[i].state) << "\"}"
       << (i + 1 == tiers.size() ? "" : ",") << "\n";
  }
  os << "  ],\n  \"overall\": \"" << to_string(overall()) << "\"\n}\n";
  return os.str();
}

Table SloEngine::to_table() const {
  Table table(
      {"Objective", "Tier", "Target", "Ratio", "Fast burn", "Slow burn",
       "State"});
  for (const auto& s : evaluate()) {
    table.add_row({s.name, s.tier, Table::num(s.target, 4),
                   Table::num(s.ratio, 6), Table::num(s.fast_burn, 3),
                   Table::num(s.slow_burn, 3), to_string(s.state)});
  }
  return table;
}

// ------------------------------------------------------ snapshot health

namespace {

HealthState latency_state(double p99, const SnapshotSloConfig& config) {
  if (p99 <= config.latency_slo_ms) return HealthState::kOk;
  if (p99 <= 2.0 * config.latency_slo_ms) return HealthState::kWarn;
  return HealthState::kCritical;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string health_from_metrics(const std::string& metrics_json,
                                const SnapshotSloConfig& config) {
  const JsonValue doc = parse_json(metrics_json);
  const JsonValue& metrics = doc.at("metrics");
  DDNN_CHECK(metrics.is_array(), "metrics export is not an array");

  std::ostringstream os;
  os << "{\n  \"slo\": {\"latency_ms\": " << fmt_double(config.latency_slo_ms)
     << ", \"availability_target\": "
     << fmt_double(config.availability_target) << "},\n  \"signals\": [\n";

  HealthState overall = HealthState::kOk;
  std::vector<std::string> signals;
  std::int64_t total = 0;
  std::int64_t degraded = 0;
  std::int64_t dead = 0;
  for (const JsonValue& m : metrics.items) {
    const std::string& name = m.at("name").s;
    const std::string& type = m.at("type").s;
    if (type == "counter") {
      if (ends_with(name, ".samples")) total += m.at("value").i;
      if (ends_with(name, ".degraded")) degraded += m.at("value").i;
      if (ends_with(name, ".dead")) dead += m.at("value").i;
      continue;
    }
    if ((type != "histogram" && type != "hdr") ||
        !ends_with(name, "latency_ms")) {
      continue;
    }
    const std::int64_t n = m.at("count").i;
    const double p99 = m.at("p99").number();
    const HealthState state =
        n == 0 ? HealthState::kOk : latency_state(p99, config);
    overall = worse(overall, state);
    std::ostringstream sig;
    sig << "    {\"name\": \"" << name << "\", \"kind\": \"latency\", \"n\": "
        << n << ", \"p99\": " << fmt_double(p99)
        << ", \"max\": " << fmt_double(m.at("max").number());
    if (const JsonValue* sample = m.find("p99_sample")) {
      sig << ", \"p99_sample\": " << sample->i
          << ", \"p99_trace_id\": " << m.at("p99_trace_id").i;
    }
    sig << ", \"state\": \"" << to_string(state) << "\"}";
    signals.push_back(sig.str());
  }
  for (std::size_t i = 0; i < signals.size(); ++i) {
    os << signals[i] << (i + 1 == signals.size() ? "" : ",") << "\n";
  }

  const std::int64_t bad = degraded + dead;
  const double ratio =
      total == 0 ? 1.0
                 : 1.0 - static_cast<double>(bad) / static_cast<double>(total);
  HealthState avail = HealthState::kOk;
  if (total > 0 && ratio < config.availability_target) {
    // One budget width below target is warn; beyond that, critical.
    const double budget = 1.0 - config.availability_target;
    avail = ratio >= config.availability_target - budget
                ? HealthState::kWarn
                : HealthState::kCritical;
  }
  overall = worse(overall, avail);

  os << "  ],\n  \"availability\": {\"total\": " << total
     << ", \"degraded\": " << degraded << ", \"dead\": " << dead
     << ", \"ratio\": " << fmt_double(ratio) << ", \"state\": \""
     << to_string(avail) << "\"},\n  \"overall\": \"" << to_string(overall)
     << "\"\n}\n";
  return os.str();
}

}  // namespace ddnn::obs
