#include "obs/tracemerge.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace ddnn::obs {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DDNN_CHECK(in.good(), "cannot open trace '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Microsecond timestamps already denominated in µs (trace files store µs;
/// SpanTracer's json_us takes seconds).
std::string fmt_us_raw(double us) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

void emit_value(std::ostringstream& os, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: os << "null"; break;
    case JsonValue::Kind::kBool: os << (v.b ? "true" : "false"); break;
    case JsonValue::Kind::kInt: os << v.i; break;
    case JsonValue::Kind::kDouble: os << json_double(v.d); break;
    case JsonValue::Kind::kString:
      os << "\"" << json_escape(v.s) << "\"";
      break;
    case JsonValue::Kind::kArray: {
      os << "[";
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) os << ", ";
        emit_value(os, v.items[i]);
      }
      os << "]";
      break;
    }
    case JsonValue::Kind::kObject: {
      os << "{";
      for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i != 0) os << ", ";
        os << "\"" << json_escape(v.members[i].first) << "\": ";
        emit_value(os, v.members[i].second);
      }
      os << "}";
      break;
    }
  }
}

struct ProcessTrace {
  std::string name;
  double epoch_s = 0.0;
  double offset_s = 0.0;  ///< reference minus this process's clock
  std::vector<std::pair<std::int64_t, std::string>> tracks;  // (tid, name)
  std::vector<const JsonValue*> spans;  // X events, file order
  JsonValue doc;
};

double meta_value(const JsonValue& doc, const std::string& key,
                  double fallback) {
  const JsonValue* ddnn = doc.find("ddnn");
  if (ddnn == nullptr) return fallback;
  const JsonValue* meta = ddnn->find("meta");
  if (meta == nullptr) return fallback;
  const JsonValue* v = meta->find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

}  // namespace

std::string merge_traces_json(const std::vector<std::string>& input_paths,
                              TraceMergeResult* stats) {
  DDNN_CHECK(!input_paths.empty(), "trace-merge needs at least one input");

  std::vector<ProcessTrace> procs(input_paths.size());
  for (std::size_t p = 0; p < input_paths.size(); ++p) {
    ProcessTrace& proc = procs[p];
    proc.doc = parse_json(read_file(input_paths[p]));
    const JsonValue* ddnn = proc.doc.find("ddnn");
    const JsonValue* pname =
        ddnn != nullptr ? ddnn->find("process") : nullptr;
    proc.name = pname != nullptr && pname->is_string() && !pname->s.empty()
                    ? pname->s
                    : "p" + std::to_string(p);
    proc.epoch_s = meta_value(proc.doc, "epoch_s", 0.0);
    const JsonValue* events = proc.doc.find("traceEvents");
    DDNN_CHECK(events != nullptr && events->is_array(),
               "'" << input_paths[p] << "' has no traceEvents array");
    for (const JsonValue& ev : events->items) {
      const JsonValue* ph = ev.find("ph");
      DDNN_CHECK(ph != nullptr && ph->is_string(),
                 "'" << input_paths[p] << "' event lacks a ph field");
      if (ph->s == "M") {
        if (ev.at("name").s == "thread_name") {
          proc.tracks.emplace_back(ev.at("tid").i,
                                   ev.at("args").at("name").s);
        }
        continue;  // process_name is re-derived from the ddnn block
      }
      DDNN_CHECK(ph->s == "X", "'" << input_paths[p]
                                   << "' has unsupported event ph '"
                                   << ph->s << "'");
      proc.spans.push_back(&ev);
    }
  }

  // The first input is the reference clock; it carries the handshake
  // offsets that place every other process on its timeline.
  const ProcessTrace& ref = procs[0];
  double max_abs_offset = 0.0;
  std::vector<double> adjust_us(procs.size(), 0.0);
  for (std::size_t p = 1; p < procs.size(); ++p) {
    procs[p].offset_s =
        meta_value(ref.doc, "offset_" + procs[p].name + "_s", 0.0);
    max_abs_offset = std::max(max_abs_offset, std::abs(procs[p].offset_s));
    adjust_us[p] =
        (procs[p].epoch_s + procs[p].offset_s - ref.epoch_s) * 1e6;
  }

  // Global shift: trace_event timestamps should not go negative after the
  // clock alignment pulls an early remote span before the reference epoch.
  double min_ts_us = 0.0;
  std::size_t total_spans = 0;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    for (const JsonValue* span : procs[p].spans) {
      min_ts_us =
          std::min(min_ts_us, span->at("ts").number() + adjust_us[p]);
      ++total_spans;
    }
  }
  const double shift_us = min_ts_us < 0.0 ? -min_ts_us : 0.0;

  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  auto sep = [&]() -> std::ostringstream& {
    os << (first ? "\n" : ",\n");
    first = false;
    return os;
  };
  for (std::size_t p = 0; p < procs.size(); ++p) {
    const ProcessTrace& proc = procs[p];
    sep() << "    {\"ph\": \"M\", \"pid\": " << p
          << ", \"tid\": 0, \"name\": \"process_name\", \"args\": "
             "{\"name\": \""
          << json_escape(proc.name) << "\"}}";
    for (const auto& [tid, name] : proc.tracks) {
      sep() << "    {\"ph\": \"M\", \"pid\": " << p << ", \"tid\": " << tid
            << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
            << json_escape(name) << "\"}}";
    }
    for (const JsonValue* span : proc.spans) {
      sep() << "    {\"ph\": \"X\", \"pid\": " << p
            << ", \"tid\": " << span->at("tid").i << ", \"name\": \""
            << json_escape(span->at("name").s) << "\", \"cat\": \""
            << json_escape(span->at("cat").s) << "\", \"ts\": "
            << fmt_us_raw(span->at("ts").number() + adjust_us[p] + shift_us)
            << ", \"dur\": " << fmt_us_raw(span->at("dur").number());
      const JsonValue* args = span->find("args");
      if (args != nullptr && !args->members.empty()) {
        os << ", \"args\": ";
        emit_value(os, *args);
      }
      os << "}";
    }
  }
  os << "\n  ]\n}\n";

  if (stats != nullptr) {
    stats->processes = static_cast<int>(procs.size());
    stats->spans = total_spans;
    stats->max_abs_offset_s = max_abs_offset;
    stats->shift_s = shift_us * 1e-6;
  }
  return os.str();
}

TraceMergeResult merge_traces(const std::vector<std::string>& input_paths,
                              const std::string& out_path) {
  TraceMergeResult stats;
  const std::string merged = merge_traces_json(input_paths, &stats);
  std::ofstream out(out_path, std::ios::binary);
  DDNN_CHECK(out.good(), "cannot open '" << out_path << "' for writing");
  out << merged;
  DDNN_CHECK(out.good(), "write to '" << out_path << "' failed");
  return stats;
}

}  // namespace ddnn::obs
