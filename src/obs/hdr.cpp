#include "obs/hdr.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ddnn::obs {

int HdrHistogram::bucket_for_unit(std::int64_t u) {
  if (u < 0) u = 0;
  if (u < kSubBuckets) return static_cast<int>(u);
  // Shift u down until it sits in [kSubBuckets, 2*kSubBuckets): k doublings
  // past the linear range, each power of two split into kSubBuckets slots.
  const int k =
      std::bit_width(static_cast<std::uint64_t>(u)) - (std::bit_width(static_cast<std::uint64_t>(kSubBuckets)) - 1) - 1;
  return kSubBuckets * k + static_cast<int>(u >> k);
}

std::int64_t HdrHistogram::bucket_upper_unit(int b) {
  if (b < kSubBuckets) return b;
  const int k = b / kSubBuckets - 1;
  const std::int64_t m = b % kSubBuckets + kSubBuckets;
  return ((m + 1) << k) - 1;
}

HdrHistogram::HdrHistogram(double unit, double max_value)
    : unit_(unit), max_value_(max_value) {
  DDNN_CHECK(unit > 0.0, "hdr histogram unit " << unit << " must be positive");
  DDNN_CHECK(max_value > unit,
             "hdr histogram range must exceed one unit (unit="
                 << unit << ", max=" << max_value << ")");
  max_unit_ = static_cast<std::int64_t>(max_value / unit);
  buckets_ = bucket_for_unit(max_unit_) + 1;
  shards_ = std::vector<std::atomic<Shard*>>(
      static_cast<std::size_t>(kMetricShards));
  for (auto& s : shards_) s.store(nullptr, std::memory_order_relaxed);
}

HdrHistogram::Shard& HdrHistogram::shard_for_thread() {
  auto& slot = shards_[static_cast<std::size_t>(thread_shard())];
  Shard* s = slot.load(std::memory_order_acquire);
  if (s != nullptr) return *s;
  std::lock_guard<std::mutex> lock(alloc_mu_);
  s = slot.load(std::memory_order_acquire);
  if (s != nullptr) return *s;
  auto fresh = std::make_unique<Shard>();
  fresh->counts =
      std::vector<std::atomic<std::int64_t>>(static_cast<std::size_t>(buckets_));
  fresh->exemplars = std::vector<Exemplar>(static_cast<std::size_t>(buckets_));
  for (auto& c : fresh->counts) c.store(0, std::memory_order_relaxed);
  fresh->mn.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  fresh->mx.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  s = fresh.get();
  owned_.push_back(std::move(fresh));
  slot.store(s, std::memory_order_release);
  return *s;
}

namespace {

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void HdrHistogram::record(double v, std::uint64_t trace_id,
                          std::int64_t sample_index) {
  Shard& s = shard_for_thread();
  auto u = static_cast<std::int64_t>(std::max(v, 0.0) / unit_);
  if (u > max_unit_) {
    u = max_unit_;
    s.over.fetch_add(1, std::memory_order_relaxed);
  }
  const auto b = static_cast<std::size_t>(bucket_for_unit(u));
  s.counts[b].fetch_add(1, std::memory_order_relaxed);
  atomic_min(s.mn, v);
  atomic_max(s.mx, v);
  s.n.fetch_add(1, std::memory_order_relaxed);
  if (sample_index >= 0) {
    // Smallest-sample-index-wins: commutative, so shard merge order and
    // recording interleaving cannot change which exemplar survives. The
    // trace id follows a won CAS; concurrent recorders of the *same* sample
    // index do not occur (sample indices are unique per run).
    Exemplar& e = s.exemplars[b];
    std::int64_t cur = e.sample.load(std::memory_order_relaxed);
    while (cur < 0 || sample_index < cur) {
      if (e.sample.compare_exchange_weak(cur, sample_index,
                                         std::memory_order_relaxed)) {
        e.trace.store(trace_id, std::memory_order_relaxed);
        break;
      }
    }
  }
}

std::int64_t HdrHistogram::count() const {
  std::int64_t total = 0;
  for (const auto& slot : shards_) {
    if (const Shard* s = slot.load(std::memory_order_acquire)) {
      total += s->n.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::int64_t HdrHistogram::overflow() const {
  std::int64_t total = 0;
  for (const auto& slot : shards_) {
    if (const Shard* s = slot.load(std::memory_order_acquire)) {
      total += s->over.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double HdrHistogram::min() const {
  double m = std::numeric_limits<double>::infinity();
  for (const auto& slot : shards_) {
    if (const Shard* s = slot.load(std::memory_order_acquire)) {
      m = std::min(m, s->mn.load(std::memory_order_relaxed));
    }
  }
  return std::isinf(m) ? 0.0 : m;
}

double HdrHistogram::max() const {
  double m = -std::numeric_limits<double>::infinity();
  for (const auto& slot : shards_) {
    if (const Shard* s = slot.load(std::memory_order_acquire)) {
      m = std::max(m, s->mx.load(std::memory_order_relaxed));
    }
  }
  return std::isinf(m) ? 0.0 : m;
}

std::int64_t HdrHistogram::merged_count(int b) const {
  std::int64_t total = 0;
  for (const auto& slot : shards_) {
    if (const Shard* s = slot.load(std::memory_order_acquire)) {
      total += s->counts[static_cast<std::size_t>(b)].load(
          std::memory_order_relaxed);
    }
  }
  return total;
}

HdrExemplar HdrHistogram::merged_exemplar(int b) const {
  HdrExemplar best;
  for (const auto& slot : shards_) {
    const Shard* s = slot.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    const Exemplar& e = s->exemplars[static_cast<std::size_t>(b)];
    const std::int64_t sample = e.sample.load(std::memory_order_relaxed);
    if (sample >= 0 && (!best.valid() || sample < best.sample)) {
      best.sample = sample;
      best.trace_id = e.trace.load(std::memory_order_relaxed);
    }
  }
  return best;
}

namespace {

/// Rank walk shared by percentile() and exemplar_at(): the bucket index
/// holding the nearest-rank sample, or -1 when empty.
int rank_bucket(const std::vector<std::int64_t>& counts, double q) {
  std::int64_t n = 0;
  for (const std::int64_t c : counts) n += c;
  if (n == 0) return -1;
  const std::int64_t rank = nearest_rank(q, n);
  std::int64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cum += counts[b];
    if (cum >= rank) return static_cast<int>(b);
  }
  return static_cast<int>(counts.size()) - 1;
}

}  // namespace

double HdrHistogram::percentile(double q) const {
  DDNN_CHECK(q > 0.0 && q <= 1.0, "percentile rank " << q << " not in (0, 1]");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(buckets_));
  for (int b = 0; b < buckets_; ++b) {
    counts[static_cast<std::size_t>(b)] = merged_count(b);
  }
  const int b = rank_bucket(counts, q);
  if (b < 0) return 0.0;
  // Upper edge of the bucket (the supremum of values it can hold), clamped
  // to the exact recorded max so the top bucket reports a real value.
  const double edge = static_cast<double>(bucket_upper_unit(b) + 1) * unit_;
  return std::min(edge, max());
}

HdrExemplar HdrHistogram::exemplar_at(double q) const {
  DDNN_CHECK(q > 0.0 && q <= 1.0, "percentile rank " << q << " not in (0, 1]");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(buckets_));
  for (int b = 0; b < buckets_; ++b) {
    counts[static_cast<std::size_t>(b)] = merged_count(b);
  }
  const int b = rank_bucket(counts, q);
  return b < 0 ? HdrExemplar{} : merged_exemplar(b);
}

int HdrHistogram::top_occupied_bucket() const {
  for (int b = buckets_ - 1; b >= 0; --b) {
    if (merged_count(b) > 0) return b;
  }
  return -1;
}

HdrExemplar HdrHistogram::max_exemplar() const {
  const int b = top_occupied_bucket();
  return b < 0 ? HdrExemplar{} : merged_exemplar(b);
}

void HdrHistogram::reset() {
  for (auto& slot : shards_) {
    Shard* s = slot.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (auto& c : s->counts) c.store(0, std::memory_order_relaxed);
    for (auto& e : s->exemplars) {
      e.sample.store(-1, std::memory_order_relaxed);
      e.trace.store(0, std::memory_order_relaxed);
    }
    s->mn.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s->mx.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s->n.store(0, std::memory_order_relaxed);
    s->over.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ddnn::obs
