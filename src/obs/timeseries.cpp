#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ddnn::obs {

namespace {

/// Deterministic cell formatting: integral values print as integers (so
/// counter columns sum exactly in downstream checkers), everything else as
/// %.17g (round-trips IEEE-754 doubles byte-stably).
std::string fmt_num(double v) {
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

WindowedSeries::WindowedSeries(double width, std::string axis)
    : width_(width), axis_(std::move(axis)) {
  DDNN_CHECK(width_ > 0.0, "window width " << width_ << " must be positive");
  DDNN_CHECK(!axis_.empty(), "windowed series needs an axis name");
}

int WindowedSeries::add_column(const std::string& name, Kind kind) {
  DDNN_CHECK(!sealed_registration_,
             "column '" << name << "' registered after the first record()");
  DDNN_CHECK(!name.empty(), "windowed series column needs a name");
  for (const auto& c : columns_) {
    DDNN_CHECK(c.name != name,
               "series column '" << name << "' registered twice");
  }
  Column c;
  c.name = name;
  c.kind = kind;
  columns_.push_back(std::move(c));
  return static_cast<int>(columns_.size()) - 1;
}

int WindowedSeries::add_counter(const std::string& name) {
  return add_column(name, Kind::kCounter);
}

int WindowedSeries::add_gauge(const std::string& name) {
  return add_column(name, Kind::kGauge);
}

int WindowedSeries::add_histogram(const std::string& name) {
  return add_column(name, Kind::kHistogram);
}

int WindowedSeries::add_ratio(const std::string& name, int numerator,
                              int denominator) {
  for (const int id : {numerator, denominator}) {
    DDNN_CHECK(id >= 0 && id < static_cast<int>(columns_.size()),
               "ratio '" << name << "' references unknown column " << id);
    DDNN_CHECK(columns_[static_cast<std::size_t>(id)].kind == Kind::kCounter,
               "ratio '" << name << "' must reference counter columns");
  }
  const int col = add_column(name, Kind::kRatio);
  columns_[static_cast<std::size_t>(col)].num = numerator;
  columns_[static_cast<std::size_t>(col)].den = denominator;
  return col;
}

int WindowedSeries::add_rate(const std::string& name, int counter) {
  DDNN_CHECK(counter >= 0 && counter < static_cast<int>(columns_.size()),
             "rate '" << name << "' references unknown column " << counter);
  DDNN_CHECK(columns_[static_cast<std::size_t>(counter)].kind ==
                 Kind::kCounter,
             "rate '" << name << "' must reference a counter column");
  const int col = add_column(name, Kind::kRate);
  columns_[static_cast<std::size_t>(col)].num = counter;
  return col;
}

int WindowedSeries::add_hdr(const std::string& name, double unit,
                            double max_value) {
  const int col = add_column(name, Kind::kHdr);
  columns_[static_cast<std::size_t>(col)].hdr =
      std::make_unique<HdrHistogram>(unit, max_value);
  return col;
}

void WindowedSeries::flush_window() {
  for (auto& c : columns_) {
    switch (c.kind) {
      case Kind::kCounter:
        c.flushed.push_back(c.sum);
        c.sum = 0.0;
        break;
      case Kind::kGauge:
        c.flushed.push_back(c.has_last ? c.last : 0.0);
        break;
      case Kind::kHistogram:
        c.flushed_values.push_back(std::move(c.values));
        c.values.clear();
        break;
      case Kind::kRatio:
      case Kind::kRate:
        c.flushed.push_back(0.0);  // derived at export
        break;
      case Kind::kHdr: {
        const double n = static_cast<double>(c.hdr->count());
        c.flushed_hdr.push_back(
            {n, n > 0 ? c.hdr->percentile(0.99) : 0.0,
             n > 0 ? c.hdr->percentile(0.999) : 0.0, c.hdr->max()});
        c.hdr->reset();
        break;
      }
    }
  }
  ++flushed_windows_;
  ++cur_window_;
  open_window_active_ = false;
}

void WindowedSeries::record(int col, double t, double value) {
  record(col, t, value, 0, -1);
}

void WindowedSeries::record(int col, double t, double value,
                            std::uint64_t trace_id,
                            std::int64_t sample_index) {
  DDNN_CHECK(col >= 0 && col < static_cast<int>(columns_.size()),
             "record into unknown series column " << col);
  DDNN_CHECK(t >= 0.0, "series clock " << t << " is negative");
  sealed_registration_ = true;
  const auto w = static_cast<std::int64_t>(t / width_);
  DDNN_CHECK(w >= cur_window_, "series clock went backwards: t="
                                   << t << " is before window " << cur_window_
                                   << " (the recording clocks are monotone)");
  while (cur_window_ < w) flush_window();
  Column& c = columns_[static_cast<std::size_t>(col)];
  switch (c.kind) {
    case Kind::kCounter:
      DDNN_CHECK(value >= 0.0,
                 "counter column '" << c.name << "' recorded negative delta "
                                    << value
                                    << " (counter resets must not wrap)");
      c.sum += value;
      break;
    case Kind::kGauge:
      c.last = value;
      c.has_last = true;
      break;
    case Kind::kHistogram:
      c.values.push_back(value);
      break;
    case Kind::kHdr:
      c.hdr->record(value, trace_id, sample_index);
      break;
    case Kind::kRatio:
    case Kind::kRate:
      DDNN_CHECK(false, "column '" << c.name
                                   << "' is derived; record into its "
                                      "underlying counter instead");
  }
  open_window_active_ = true;
}

std::size_t WindowedSeries::window_count() const {
  return static_cast<std::size_t>(flushed_windows_) +
         (open_window_active_ ? 1u : 0u);
}

std::vector<std::string> WindowedSeries::header() const {
  std::vector<std::string> out{"window", axis_ + "_start", axis_ + "_end"};
  for (const auto& c : columns_) {
    if (c.kind == Kind::kHistogram) {
      out.push_back(c.name + ".n");
      out.push_back(c.name + ".p50");
      out.push_back(c.name + ".p95");
      out.push_back(c.name + ".max");
    } else if (c.kind == Kind::kHdr) {
      out.push_back(c.name + ".n");
      out.push_back(c.name + ".p99");
      out.push_back(c.name + ".p999");
      out.push_back(c.name + ".max");
    } else {
      out.push_back(c.name);
    }
  }
  return out;
}

void WindowedSeries::append_cells(std::vector<double>& out, const Column& c,
                                  std::size_t w) const {
  const bool live = w >= static_cast<std::size_t>(flushed_windows_);
  switch (c.kind) {
    case Kind::kCounter:
      out.push_back(live ? c.sum : c.flushed[w]);
      break;
    case Kind::kGauge:
      out.push_back(live ? (c.has_last ? c.last : 0.0) : c.flushed[w]);
      break;
    case Kind::kHistogram: {
      std::vector<double> values = live ? c.values : c.flushed_values[w];
      std::sort(values.begin(), values.end());
      out.push_back(static_cast<double>(values.size()));
      if (values.empty()) {
        out.insert(out.end(), {0.0, 0.0, 0.0});
      } else {
        out.push_back(percentile_nearest_rank(values, 0.50));
        out.push_back(percentile_nearest_rank(values, 0.95));
        out.push_back(values.back());
      }
      break;
    }
    case Kind::kRatio: {
      const Column& num = columns_[static_cast<std::size_t>(c.num)];
      const Column& den = columns_[static_cast<std::size_t>(c.den)];
      const double n = live ? num.sum : num.flushed[w];
      const double d = live ? den.sum : den.flushed[w];
      out.push_back(d == 0.0 ? 0.0 : n / d);
      break;
    }
    case Kind::kRate: {
      const Column& num = columns_[static_cast<std::size_t>(c.num)];
      const double n = live ? num.sum : num.flushed[w];
      out.push_back(n / width_);
      break;
    }
    case Kind::kHdr: {
      if (live) {
        const double n = static_cast<double>(c.hdr->count());
        out.push_back(n);
        out.push_back(n > 0 ? c.hdr->percentile(0.99) : 0.0);
        out.push_back(n > 0 ? c.hdr->percentile(0.999) : 0.0);
        out.push_back(c.hdr->max());
      } else {
        const auto& s = c.flushed_hdr[w];
        out.insert(out.end(), {s[0], s[1], s[2], s[3]});
      }
      break;
    }
  }
}

std::string WindowedSeries::to_csv() const {
  std::ostringstream os;
  const auto head = header();
  for (std::size_t i = 0; i < head.size(); ++i) {
    os << (i ? "," : "") << head[i];
  }
  os << "\n";
  const std::size_t windows = window_count();
  for (std::size_t w = 0; w < windows; ++w) {
    std::vector<double> cells{static_cast<double>(w),
                              static_cast<double>(w) * width_,
                              static_cast<double>(w + 1) * width_};
    for (const auto& c : columns_) append_cells(cells, c, w);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i ? "," : "") << fmt_num(cells[i]);
    }
    os << "\n";
  }
  return os.str();
}

std::string WindowedSeries::to_json() const {
  std::ostringstream os;
  os << "{\n  \"axis\": \"" << axis_ << "\",\n  \"width\": "
     << fmt_num(width_) << ",\n  \"columns\": [";
  const auto head = header();
  for (std::size_t i = 0; i < head.size(); ++i) {
    os << (i ? ", " : "") << "\"" << head[i] << "\"";
  }
  os << "],\n  \"rows\": [\n";
  const std::size_t windows = window_count();
  for (std::size_t w = 0; w < windows; ++w) {
    std::vector<double> cells{static_cast<double>(w),
                              static_cast<double>(w) * width_,
                              static_cast<double>(w + 1) * width_};
    for (const auto& c : columns_) append_cells(cells, c, w);
    os << "    [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i ? ", " : "") << fmt_num(cells[i]);
    }
    os << "]" << (w + 1 == windows ? "" : ",") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

namespace {
void write_string(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  DDNN_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << body;
  DDNN_CHECK(out.good(), "write to '" << path << "' failed");
}
}  // namespace

void WindowedSeries::write_csv(const std::string& path) const {
  write_string(path, to_csv());
}

void WindowedSeries::write_json(const std::string& path) const {
  write_string(path, to_json());
}

void WindowedSeries::write(const std::string& path) const {
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    write_json(path);
  } else {
    write_csv(path);
  }
}

}  // namespace ddnn::obs
