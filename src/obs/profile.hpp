// Wall-clock profiling hooks for the hot paths.
//
// DDNN_PROFILE=1 (or set_profiling_enabled(true), e.g. from the CLI's
// --profile flag) arms scoped timers placed around the tensor kernels
// (matmul, im2col, the bitgemm XNOR/sign kernels), the model's section
// methods, the aggregator fuse and the trainer's per-batch phases. Each
// sample aggregates into a per-op (calls, total ns) table.
//
// These timers measure *wall-clock* time and are the one part of the
// observability layer that is allowed to be nondeterministic; they never
// appear in traces or metrics exports that carry the determinism contract
// (docs/ARCHITECTURE.md "Observability"). When profiling is disabled a hook
// costs one relaxed atomic load and a predictable branch — measured < 2%
// on the bench_kernels device_section (the acceptance bar).
//
// Recording is sharded per thread (same scheme as obs::Counter), so pool
// workers never contend on a cache line.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/table.hpp"

namespace ddnn::obs {

/// Is profiling armed? Initialized from DDNN_PROFILE, overridable below.
bool profiling_enabled();
void set_profiling_enabled(bool on);

/// Register (or look up) an op name; returns its stable id. Call once per
/// site via the static local inside DDNN_PROF_SCOPE.
int profile_register_op(const char* name);

/// Account `ns` nanoseconds and one call to op `op`.
void profile_record(int op, std::int64_t ns);

/// Per-op profile: Op | Calls | Total ms | us/call | %, sorted by total
/// time descending. Empty table (no rows) when nothing was recorded.
Table profile_table();

/// Total calls recorded for one op (tests).
std::int64_t profile_calls(const char* name);

/// Zero all per-op accumulators (op registrations survive).
void profile_reset();

/// RAII timer; near-free when profiling is disabled.
class ProfileScope {
 public:
  explicit ProfileScope(int op)
      : op_(op), active_(profiling_enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ProfileScope() {
    if (active_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      profile_record(op_, ns);
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  int op_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ddnn::obs

#define DDNN_PROF_CAT2(a, b) a##b
#define DDNN_PROF_CAT(a, b) DDNN_PROF_CAT2(a, b)

/// Time the enclosing scope under `name` when profiling is armed. The op id
/// is resolved once per call site (thread-safe static init).
#define DDNN_PROF_SCOPE(name)                                    \
  static const int DDNN_PROF_CAT(ddnn_prof_op_, __LINE__) =      \
      ::ddnn::obs::profile_register_op(name);                    \
  ::ddnn::obs::ProfileScope DDNN_PROF_CAT(ddnn_prof_scope_,      \
                                          __LINE__)(             \
      DDNN_PROF_CAT(ddnn_prof_op_, __LINE__))
