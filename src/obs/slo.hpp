// SloEngine: declarative service-level objectives evaluated over rolling
// windows on a deterministic clock, with multi-window burn-rate alerting.
//
// Each objective is a good/bad event ratio (latency-under-threshold,
// availability = 1 - degraded/dead fraction, ...) with a target (e.g.
// 0.99). The engine buckets events on the recording clock and evaluates
// two rolling windows per objective — a fast window (minutes of simulated
// time: catches sharp regressions quickly) and a slow window (the averaged
// view: filters one-off blips). The burn rate of a window is
//
//     burn = (bad fraction over the window) / (1 - target)
//
// i.e. how many times faster than "exactly on target" the error budget is
// being spent; 1.0 means the tier is consuming its budget exactly at the
// allowed rate. An objective degrades to `warn`/`critical` only when BOTH
// windows exceed the respective burn threshold — the standard multi-window
// rule: the fast window says "it is happening now", the slow window says
// "it is not just a blip".
//
// Determinism contract (docs/OBSERVABILITY.md): record() is single-writer
// on a monotone simulated clock (the same clocks WindowedSeries keys on),
// buckets are integer good/bad counts, and evaluation/export walk
// objectives in registration order — so to_json()/to_table() are
// byte-identical across reruns and DDNN_THREADS.
//
// health_from_metrics() is the snapshot sibling: serve roles have no
// deterministic simulated clock, so their kHealth answer is derived from
// the frozen MetricsRegistry export (p99 vs threshold, availability from
// the degraded/dead counters) rather than from rolling windows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace ddnn::obs {

enum class HealthState { kOk, kWarn, kCritical };

const char* to_string(HealthState s);
/// Worse of two states (critical > warn > ok).
HealthState worse(HealthState a, HealthState b);

/// One declarative objective: a good-event ratio target over rolling
/// windows. Windows are in recording-clock units (simulated seconds).
struct SloObjective {
  std::string name;        ///< unique id, e.g. "fleet.latency"
  std::string tier;        ///< tier it scores, e.g. "edge", "cloud", "fleet"
  double target = 0.99;    ///< required good fraction, in (0, 1]
  double fast_window = 60.0;   ///< "is it happening now" window
  double slow_window = 600.0;  ///< "is it sustained" window
  double warn_burn = 1.0;      ///< both-window burn threshold for warn
  double critical_burn = 2.0;  ///< both-window burn threshold for critical
};

/// Evaluated state of one objective at the current clock.
struct SloStatus {
  std::string name;
  std::string tier;
  double target = 0.0;
  std::int64_t good = 0;  ///< lifetime good events
  std::int64_t bad = 0;   ///< lifetime bad events
  double ratio = 1.0;     ///< lifetime good fraction (1 when no events)
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  HealthState state = HealthState::kOk;
};

struct TierHealth {
  std::string tier;
  HealthState state = HealthState::kOk;
};

class SloEngine {
 public:
  SloEngine() = default;
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Get-or-create by objective name (re-adding ignores the new config,
  /// mirroring MetricsRegistry registration). Returns the objective id.
  int add_objective(const SloObjective& objective);
  /// Id of a registered objective (-1 when unknown).
  int objective_id(const std::string& name) const;

  /// Record one event outcome at clock `t` (monotone per engine, >= 0).
  void record(int id, double t, bool good);

  /// Evaluate every objective at the latest recorded clock, in
  /// registration order.
  std::vector<SloStatus> evaluate() const;
  /// Worst objective state per tier, in first-seen tier order.
  std::vector<TierHealth> tier_health() const;
  /// Worst state across all objectives.
  HealthState overall() const;

  std::size_t objective_count() const { return objectives_.size(); }

  /// Deterministic health document: objectives (registration order), tiers
  /// (first-seen order), overall. Byte-identical across reruns.
  std::string to_json() const;
  /// Objective | Tier | Target | Ratio | Fast burn | Slow burn | State.
  Table to_table() const;

 private:
  struct Objective {
    SloObjective config;
    double bucket_width = 5.0;  ///< fast_window / 12
    std::vector<std::int64_t> good;  ///< per-bucket counts, index = bucket
    std::vector<std::int64_t> bad;
    std::int64_t total_good = 0;
    std::int64_t total_bad = 0;
  };

  /// Burn rate over the trailing `window` ending at the current clock.
  double window_burn(const Objective& o, double window) const;
  SloStatus status_of(const Objective& o) const;

  std::vector<Objective> objectives_;  // registration order
  double last_t_ = 0.0;
};

/// Snapshot health for roles without a deterministic simulated clock
/// (`ddnn serve`'s kHealth frame): derives per-signal latency states (p99
/// of every *latency_ms histogram/hdr metric vs the threshold) and an
/// availability state (degraded/dead counters vs total samples) from a
/// frozen MetricsRegistry JSON export. Output is byte-identical for
/// identical metrics JSON.
struct SnapshotSloConfig {
  double latency_slo_ms = 250.0;      ///< p99 at or under this is ok
  double availability_target = 0.99;  ///< required non-degraded fraction
};

std::string health_from_metrics(const std::string& metrics_json,
                                const SnapshotSloConfig& config);

}  // namespace ddnn::obs
