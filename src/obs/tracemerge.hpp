// Stitch per-process trace files from a served hierarchy run into one
// Perfetto-loadable timeline.
//
// Every role of `ddnn serve` writes its own trace_event file (SpanTracer
// with process attribution), each stamped over its own wall clock. The
// driver measures a per-peer clock offset during the Hello handshake
// (NTP-style: offset = (t0 + t3) / 2 - t1) and records it, together with
// each process's trace epoch, in the file's top-level "ddnn" metadata
// block. The merge:
//
//   1. parses every input (first input = reference clock, normally the
//      driver, whose metadata holds "offset_<process>_s" entries);
//   2. shifts process P's spans by (epoch_P + offset_P) - epoch_ref, which
//      places them on the reference timeline;
//   3. applies one global shift so the earliest span starts at ts 0
//      (trace_event timestamps should not be negative);
//   4. re-emits process_name/thread_name metadata plus every span with
//      pid = input index, in input order — byte-identical across reruns.
//
// Spans keep their original args (sample_index, trace_id, parent_span, ...)
// so scripts/check_trace.py can regroup the merged tree per sample and
// compare it against the simulator oracle.
#pragma once

#include <string>
#include <vector>

namespace ddnn::obs {

struct TraceMergeResult {
  int processes = 0;
  std::size_t spans = 0;
  /// Largest |clock offset| applied to any non-reference process (seconds).
  double max_abs_offset_s = 0.0;
  /// Global shift applied so the earliest merged span starts at ts 0.
  double shift_s = 0.0;
};

/// Merge per-process trace JSON into one document (returned as a string so
/// tests can diff in memory). Inputs missing a "ddnn" block merge as
/// offset-0 processes named "p<index>".
std::string merge_traces_json(const std::vector<std::string>& input_paths,
                              TraceMergeResult* stats);

/// merge_traces_json + write to `out_path`.
TraceMergeResult merge_traces(const std::vector<std::string>& input_paths,
                              const std::string& out_path);

}  // namespace ddnn::obs
