// HdrHistogram: log-bucketed value-range histogram with bounded relative
// error, exact extrema, and per-bucket trace exemplars.
//
// Values are quantized to integer units (u = floor(v / unit)) and binned
// into a log-linear layout: the first 128 buckets are exact (one unit
// each), after which every power of two is split into 128 sub-buckets. A
// bucket therefore never spans more than 1/128 (~0.78%) of the values it
// holds, so any percentile read from a bucket's upper edge is within 1% of
// the true sample percentile — across the whole range up to `max_value`
// (hours of latency at millisecond units) with a few thousand buckets, not
// the millions a fixed-bin histogram would need.
//
// Determinism contract (docs/ARCHITECTURE.md "Observability"): recording is
// sharded per thread exactly like obs::Counter/Histogram; bucket counts sum
// associatively, extrema are commutative max/min, and the per-bucket
// exemplar is merged by *smallest sample index* — an order-independent rule,
// so reads never depend on DDNN_THREADS or recording interleaving. The
// exact recorded max is tracked alongside the buckets, so `max()` (and any
// percentile that resolves to the top occupied bucket) reports a real
// recorded value, never a bucket edge.
//
// Trace exemplars: record(v, trace_id, sample_index) retains, per bucket,
// the (trace_id, sample_index) pair with the smallest sample index — the
// first sample to land there under any serial recording order. Reading a
// percentile can then name the concrete sample (and its span tree in the
// trace export) that produced it: "p99.9 = 412 ms, e.g. sample 31415".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace ddnn::obs {

/// One retained sample reference: `sample` is the sample index (-1 = none),
/// `trace_id` a 48-bit distributed trace id (round-trips through JSON
/// doubles).
struct HdrExemplar {
  std::int64_t sample = -1;
  std::uint64_t trace_id = 0;
  bool valid() const { return sample >= 0; }
};

class HdrHistogram {
 public:
  /// Sub-buckets per power of two: bounds the relative bucket error at
  /// 1/128 (~0.78%), under the documented 1% budget.
  static constexpr int kSubBuckets = 128;

  /// `unit`: value per integer count (the resolution floor, e.g. 1e-3 for
  /// microsecond-resolution millisecond values). `max_value`: largest value
  /// the buckets cover; larger recordings clamp into the top bucket (and
  /// are counted in overflow()) but still update the exact max.
  HdrHistogram(double unit, double max_value);

  void record(double v) { record(v, 0, -1); }
  /// Record with a trace exemplar. Exemplars follow the smallest-sample-
  /// index rule, so pass the deterministic per-run sample index.
  void record(double v, std::uint64_t trace_id, std::int64_t sample_index);

  std::int64_t count() const;
  std::int64_t overflow() const;  ///< recordings clamped into the top bucket
  double min() const;             ///< exact smallest recorded value (0 empty)
  double max() const;             ///< exact largest recorded value (0 empty)

  /// Nearest-rank percentile at bucket granularity: the upper edge of the
  /// bucket holding the rank-q sample, clamped to the exact recorded max.
  /// Relative error vs the true sample percentile is <= 1/kSubBuckets.
  /// q in (0, 1]; returns 0 when empty.
  double percentile(double q) const;

  /// Exemplar of the bucket percentile(q) resolves to (invalid when empty
  /// or when no exemplar was ever recorded there).
  HdrExemplar exemplar_at(double q) const;
  /// Exemplar of the top occupied bucket — the recorded max's bucket.
  HdrExemplar max_exemplar() const;

  double unit() const { return unit_; }
  double max_value() const { return max_value_; }
  int buckets() const { return buckets_; }
  /// Documented bound on the relative bucket error of percentile().
  static constexpr double relative_error_bound() {
    return 1.0 / kSubBuckets;
  }

  /// Bucket layout math, shared with tests: bucket index of an integer
  /// unit count, and a bucket's inclusive upper edge in units.
  static int bucket_for_unit(std::int64_t u);
  static std::int64_t bucket_upper_unit(int b);

  void reset();

 private:
  struct Exemplar {
    std::atomic<std::int64_t> sample{-1};
    std::atomic<std::uint64_t> trace{0};
  };
  struct Shard {
    std::vector<std::atomic<std::int64_t>> counts;
    std::vector<Exemplar> exemplars;
    std::atomic<double> mn;
    std::atomic<double> mx;
    std::atomic<std::int64_t> n{0};
    std::atomic<std::int64_t> over{0};
  };

  Shard& shard_for_thread();
  std::int64_t merged_count(int b) const;
  HdrExemplar merged_exemplar(int b) const;
  int top_occupied_bucket() const;  // -1 when empty

  double unit_;
  double max_value_;
  std::int64_t max_unit_;
  int buckets_;
  /// Shards allocate lazily on first record from a shard slot, so a
  /// single-writer histogram (the common case: simulator event loops)
  /// costs one shard, not kMetricShards.
  std::vector<std::atomic<Shard*>> shards_;
  std::vector<std::unique_ptr<Shard>> owned_;
  std::mutex alloc_mu_;
};

}  // namespace ddnn::obs
