// WindowedSeries: fixed-width windowed time series over a deterministic
// clock (the simulated run clock in dist::HierarchyRuntime, the epoch index
// in core::Trainer).
//
// A series is a set of named columns, each with an aggregation kind:
//   * counter   — per-window delta (sum of recorded values);
//   * gauge     — last value recorded in the window, carried forward across
//                 empty windows once set;
//   * histogram — per-window sample set, exported as <name>.n / .p50 / .p95
//                 / .max (exact nearest-rank over the window's raw values,
//                 shared with dist::percentile_nearest_rank via util/stats);
//   * ratio     — derived at export: counter delta / counter delta of the
//                 same window (0 when the denominator is 0);
//   * rate      — derived at export: counter delta / window width, i.e. the
//                 column in clock units per second (a throughput curve);
//   * hdr       — per-window log-bucketed histogram (obs/hdr.hpp), exported
//                 as <name>.n / .p99 / .p999 / .max: tail percentiles with
//                 bounded (≤1/128) relative bucket error and the exact
//                 window max, without retaining the window's raw values.
//
// Determinism contract (docs/ARCHITECTURE.md "Observability"): recording is
// single-writer — the runtime's classify() loop and the trainer's epoch
// loop are serial — and every recorded quantity already obeys the
// simulated-clock contract, so exports are byte-identical across reruns and
// DDNN_THREADS settings. Window sums of counter columns reconcile exactly
// with the final MetricsRegistry snapshot (scripts/check_trace.py
// --series checks this for every column named after a registry counter).
//
// Windows are half-open [k*width, (k+1)*width) on the recording clock.
// Export emits every window from 0 through the last recorded one, including
// empty interior windows (counters 0, gauges carried, histograms n=0) — an
// outage window shows up as a flat-lined row, not a gap in the axis.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/hdr.hpp"

namespace ddnn::obs {

class WindowedSeries {
 public:
  /// `width`: window width in clock units (simulated seconds, epochs, ...).
  /// `axis`: name of the clock axis, used for the <axis>_start/<axis>_end
  /// export columns ("t" for simulated time, "epoch" for training).
  explicit WindowedSeries(double width, std::string axis = "t");

  /// Register columns. Registration order is export order; ids are dense.
  /// Registering after the first record() is an error.
  int add_counter(const std::string& name);
  int add_gauge(const std::string& name);
  int add_histogram(const std::string& name);
  /// Derived column: delta(numerator)/delta(denominator) per window; both
  /// ids must name counter columns.
  int add_ratio(const std::string& name, int numerator, int denominator);
  /// Derived column: delta(counter) / window width per window — the
  /// counter's rate in events per clock unit. `counter` must name a
  /// counter column.
  int add_rate(const std::string& name, int counter);
  /// Log-bucketed tail column (obs/hdr.hpp layout): exports .n/.p99/.p999/
  /// .max per window. `unit`/`max_value` as in HdrHistogram.
  int add_hdr(const std::string& name, double unit, double max_value);

  /// Record `value` into column `col` at clock `t`. `t` must be >= 0 and
  /// must not precede the current window (the clocks we key on are
  /// monotone). Counter columns reject negative values: a counter reset
  /// must not wrap a window delta negative.
  void record(int col, double t, double value);
  /// Record into an hdr column with a trace exemplar (first-per-window by
  /// smallest sample index). Other column kinds ignore the exemplar.
  void record(int col, double t, double value, std::uint64_t trace_id,
              std::int64_t sample_index);

  double width() const { return width_; }
  const std::string& axis() const { return axis_; }
  std::size_t column_count() const { return columns_.size(); }
  /// Windows that would be exported right now (0 when nothing recorded).
  std::size_t window_count() const;

  /// Flat header of every exported CSV column, in order: "window",
  /// "<axis>_start", "<axis>_end", then one entry per column (histograms
  /// expand to .n/.p50/.p95/.max).
  std::vector<std::string> header() const;

  /// Deterministic exports: identical recordings produce byte-identical
  /// output (integral values print as integers, everything else as %.17g).
  std::string to_csv() const;
  std::string to_json() const;
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;
  /// Dispatch on extension: ".json" -> JSON, anything else -> CSV.
  void write(const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kRatio, kRate, kHdr };
  struct Column {
    std::string name;
    Kind kind;
    int num = -1;  // ratio numerator column id
    int den = -1;  // ratio denominator column id
    // Current-window accumulator state.
    double sum = 0.0;            // counter
    double last = 0.0;           // gauge (carried across windows)
    bool has_last = false;       // gauge ever set
    std::vector<double> values;  // histogram, this window only
    std::unique_ptr<HdrHistogram> hdr;  // hdr, reset at each window flush
    // Flushed per-window aggregates, parallel to rows_ windows. Counters
    // store the window delta, gauges the carried last value, histograms
    // their per-window raw values (kept for the percentile columns), hdr
    // columns their {n, p99, p999, max} summary.
    std::vector<double> flushed;
    std::vector<std::vector<double>> flushed_values;
    std::vector<std::array<double, 4>> flushed_hdr;
  };

  int add_column(const std::string& name, Kind kind);
  void flush_window();  // close the current window and advance
  /// Cells of window w for column c, in export order.
  void append_cells(std::vector<double>& out, const Column& c,
                    std::size_t w) const;

  double width_;
  std::string axis_;
  std::vector<Column> columns_;
  std::int64_t cur_window_ = 0;
  std::int64_t flushed_windows_ = 0;
  bool open_window_active_ = false;  // anything recorded since last flush
  bool sealed_registration_ = false;
};

}  // namespace ddnn::obs
