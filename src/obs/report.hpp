// `ddnn report`: render the run ledger, windowed series exports and the
// bench result CSVs into one self-contained HTML dashboard (inline SVG,
// inline CSS, zero external assets — the file opens from disk anywhere).
//
// The renderer is deterministic: files are discovered in sorted order, no
// wall-clock timestamp is embedded, and all numbers are formatted with
// fixed printf formats — rendering the same results directory twice yields
// byte-identical HTML (the report_smoke CTest golden check relies on this).
//
// Charts follow the repo's dataviz conventions: a fixed 6-hue categorical
// palette applied by CSS class (light and dark mode each get their own
// validated steps via prefers-color-scheme), one y-axis per chart, a legend
// whenever a chart has more than one series, native <title> tooltips on the
// data points, and a collapsible table view under every chart.
#pragma once

#include <string>

namespace ddnn::obs {

struct ReportOptions {
  /// Directory holding ledger.jsonl, series exports and bench CSVs.
  /// "" resolves to ddnn::results_dir().
  std::string results_dir;
  /// Ledger path override; "" resolves to <results_dir>/ledger.jsonl.
  std::string ledger_path;
  std::string title = "DDNN run report";
};

/// Render the dashboard. Missing inputs degrade gracefully: no ledger ->
/// a note, no CSVs -> empty sections; the function only throws on
/// malformed inputs (unparseable ledger line / CSV).
std::string render_report_html(const ReportOptions& options);

/// Render and write to `out_path`. Returns `out_path`.
std::string write_report_html(const ReportOptions& options,
                              const std::string& out_path);

}  // namespace ddnn::obs
