// Minimal, dependency-free JSON support for the observability tools.
//
// Two halves:
//
//   * parse_json — a strict recursive-descent parser producing a JsonValue
//     tree. Object members keep file order (merging must be deterministic),
//     and integers that fit int64 stay integers so ids like trace_id
//     round-trip without drifting through double formatting.
//   * emit helpers (json_escape / json_double / json_us) shared by
//     SpanTracer::to_json and `ddnn trace-merge`, so a merged trace renders
//     spans with exactly the bytes the per-process tracers wrote.
//
// This is not a general-purpose JSON library: it parses what this repo
// emits (trace_event files, MetricsRegistry snapshots) and throws
// ddnn::Error naming the defect on anything malformed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ddnn::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
  std::vector<JsonValue> items;  ///< kArray elements in file order
  std::vector<std::pair<std::string, JsonValue>>
      members;  ///< kObject members in file order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const {
    return kind == Kind::kInt || kind == Kind::kDouble;
  }

  /// Numeric value of kInt/kDouble (throws otherwise).
  double number() const;
  /// First object member with this key, or nullptr.
  const JsonValue* find(const std::string& key) const;
  /// find() + throw when absent — for required fields.
  const JsonValue& at(const std::string& key) const;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws ddnn::Error with byte offset on malformed input.
JsonValue parse_json(const std::string& text);

/// Escape for embedding inside a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

/// Deterministic %.17g rendering — the same double always produces the same
/// bytes, and the bytes parse back to the same double.
std::string json_double(double v);

/// Trace timestamps: seconds rendered as microseconds with fixed 3-decimal
/// sub-microsecond precision.
std::string json_us(double seconds);

}  // namespace ddnn::obs
