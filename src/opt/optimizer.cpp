#include "opt/optimizer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ddnn::opt {

Optimizer::Optimizer(std::vector<nn::Parameter> params)
    : params_(std::move(params)) {
  DDNN_CHECK(!params_.empty(), "optimizer with no parameters");
}

void Optimizer::set_gradient_clip(float max_norm) {
  DDNN_CHECK(max_norm >= 0.0f, "negative clip norm");
  clip_norm_ = max_norm;
}

void Optimizer::step() {
  if (clip_norm_ > 0.0f) {
    double sq = 0.0;
    for (auto& p : params_) {
      if (!p.var.has_grad()) continue;
      const Tensor& g = p.var.grad();
      for (std::int64_t j = 0; j < g.numel(); ++j) {
        sq += static_cast<double>(g[j]) * g[j];
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > clip_norm_) {
      const auto scale = static_cast<float>(clip_norm_ / norm);
      for (auto& p : params_) {
        if (!p.var.has_grad()) continue;
        Tensor& g = p.var.grad();
        for (std::int64_t j = 0; j < g.numel(); ++j) g[j] *= scale;
      }
    }
  }
  on_step_begin();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.var.has_grad()) continue;
    update(i, p.var.value(), p.var.grad());
    if (p.clamp_to_unit) {
      Tensor& w = p.var.value();
      for (std::int64_t j = 0; j < w.numel(); ++j) {
        w[j] = std::min(1.0f, std::max(-1.0f, w[j]));
      }
    }
    p.var.bump_version();  // invalidate packed-weight caches
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.var.zero_grad();
}

Adam::Adam(std::vector<nn::Parameter> params, AdamConfig config)
    : Optimizer(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::zeros(p.var.value().shape()));
    v_.push_back(Tensor::zeros(p.var.value().shape()));
  }
}

void Adam::update(std::size_t index, Tensor& value, const Tensor& grad) {
  Tensor& m = m_[index];
  Tensor& v = v_[index];
  const float b1 = config_.beta1, b2 = config_.beta2;
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = config_.lr;
  for (std::int64_t j = 0; j < value.numel(); ++j) {
    const float g = grad[j];
    m[j] = b1 * m[j] + (1.0f - b1) * g;
    v[j] = b2 * v[j] + (1.0f - b2) * g * g;
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    value[j] -= lr * mhat / (std::sqrt(vhat) + config_.eps);
  }
}

Sgd::Sgd(std::vector<nn::Parameter> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Tensor::zeros(p.var.value().shape()));
  }
}

void Sgd::update(std::size_t index, Tensor& value, const Tensor& grad) {
  Tensor& vel = velocity_[index];
  for (std::int64_t j = 0; j < value.numel(); ++j) {
    vel[j] = momentum_ * vel[j] - lr_ * grad[j];
    value[j] += vel[j];
  }
}

}  // namespace ddnn::opt
