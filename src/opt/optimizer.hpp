// Optimizers.
//
// Adam uses the paper's hyper-parameters by default (alpha 1e-3, beta1 0.9,
// beta2 0.999, eps 1e-8, Section IV-A). Both optimizers clamp latent binary
// weights (Parameter::clamp_to_unit) to [-1, 1] after each step, which keeps
// the straight-through gradient gate open — the BinaryConnect recipe.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace ddnn::opt {

class Optimizer {
 public:
  explicit Optimizer(std::vector<nn::Parameter> params);
  virtual ~Optimizer() = default;

  /// Apply one update from the gradients currently stored on the parameters;
  /// parameters without an allocated gradient are skipped.
  void step();

  void zero_grad();

  std::size_t parameter_count() const { return params_.size(); }

  /// Clip the GLOBAL gradient norm to `max_norm` before each step
  /// (0 disables, the default). Uses the usual scale-all-by
  /// max_norm/||g|| rule.
  void set_gradient_clip(float max_norm);

  /// Override the learning rate (e.g., from a schedule between epochs).
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;

 protected:
  /// Called once at the start of each step() (e.g. Adam's timestep).
  virtual void on_step_begin() {}

  /// Update a single parameter in place from its gradient.
  virtual void update(std::size_t index, Tensor& value, const Tensor& grad) = 0;

  std::vector<nn::Parameter> params_;

 private:
  float clip_norm_ = 0.0f;  // 0 = no clipping
};

/// Adam (Kingma & Ba), the paper's training optimizer.
struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

class Adam : public Optimizer {
 public:
  explicit Adam(std::vector<nn::Parameter> params, AdamConfig config = {});

  void set_learning_rate(float lr) override { config_.lr = lr; }
  float learning_rate() const override { return config_.lr; }

 protected:
  void on_step_begin() override { ++t_; }
  void update(std::size_t index, Tensor& value, const Tensor& grad) override;

 private:
  AdamConfig config_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// SGD with optional momentum (baseline / tests).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<nn::Parameter> params, float lr, float momentum = 0.0f);

  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 protected:
  void update(std::size_t index, Tensor& value, const Tensor& grad) override;

 private:
  float lr_, momentum_;
  std::vector<Tensor> velocity_;
};

}  // namespace ddnn::opt
