// Queueing study: end-to-end response time of a DDNN under streaming load.
//
// The paper's latency argument (Sections I and V) is per-sample: samples
// exiting locally skip the uplink. Under *load*, local exits matter even
// more — escalated samples contend for shared edge/cloud resources, and
// queueing delay compounds the transfer time. This module provides two
// deterministic simulators over per-sample inference traces:
//
//   * simulate_stream — the original single-server FIFO cloud: samples
//     arrive as a Poisson process; locally exited samples finish after
//     their device+gateway latency; escalated samples additionally pass
//     through one cloud server. Kept as the analytically transparent M/D/1
//     reference.
//
//   * simulate_fleet — an open-loop multi-server queueing network over an
//     N-device × M-edge × multi-cloud topology: per-edge and per-cloud
//     server pools with bounded FIFO queues (overflow is shed and counted,
//     never crashed on), Poisson- or trace-driven arrivals, per-edge
//     request batching that amortizes section forward passes over
//     concurrent samples, and pluggable edge-selection policies (nearest /
//     least-loaded / round-robin). Event processing is a single-threaded
//     heap ordered by (time, schedule sequence), so results are
//     byte-identical across reruns and DDNN_THREADS settings.
//
// Input is a trace of per-sample outcomes from HierarchyRuntime (exit tier
// and network latency), so the queueing layer composes with any trained
// model and threshold policy without re-running inference. Dead traces
// (exit_taken == -1, produced by the fault layer) never occupy a server in
// either simulator: they are counted separately and contribute no latency
// sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ddnn::dist {

struct QueueingConfig {
  /// Mean sample arrival rate of the whole camera fleet (samples/second).
  double arrival_rate_hz = 20.0;
  /// Cloud service time per escalated sample (NN layer processing).
  double cloud_service_s = 10e-3;
  std::uint64_t seed = 1;
};

struct QueueingStats {
  std::int64_t samples = 0;
  std::int64_t escalated = 0;
  /// Dead traces (exit_taken == -1): counted here, excluded from the
  /// server, the latency percentiles and the utilization horizon's load.
  std::int64_t dead = 0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double max_latency_s = 0.0;
  /// Busy fraction of the cloud server over the simulated horizon.
  double cloud_utilization = 0.0;
};

/// Nearest-rank percentile of an ascending-sorted sample: the value at
/// index ceil(q * n) - 1 (1-based rank ceil(q * n)). q must be in (0, 1].
/// Example: n=100, q=0.95 -> index 94 (the 95th value), not 95.
/// Thin alias for ddnn::percentile_nearest_rank (util/stats.hpp), kept so
/// queueing call sites and tests read in dist:: vocabulary.
double percentile_nearest_rank(const std::vector<double>& sorted_ascending,
                               double q);

/// Inverse-CDF exponential inter-arrival gap from a uniform draw u:
/// -log(1 - u) / rate_hz, with u clamped below 1 so the gap is always
/// finite (u == 1 would map to +inf and freeze the arrival clock).
/// rate_hz must be positive; u outside [0, 1] is clamped into it.
double exponential_from_uniform(double u, double rate_hz);

/// Simulate a Poisson sample stream over per-sample inference traces
/// (cycled if the stream is longer than the trace). Every trace's
/// `latency_s` is the network+compute latency without contention; samples
/// with `exit_taken` past the first exit additionally queue for the cloud
/// server. Dead traces (exit_taken == -1) are counted in `dead` and never
/// reach the server.
QueueingStats simulate_stream(const std::vector<InferenceTrace>& traces,
                              const QueueingConfig& config,
                              std::int64_t stream_length = 2000);

// ------------------------------------------------------ fleet-scale network

/// How an escalated sample picks its edge station.
enum class EdgePolicy {
  /// The device's home edge: contiguous blocks of devices per edge.
  kNearest,
  /// The edge with the fewest queued + in-service samples at routing time
  /// (ties broken toward the lowest index).
  kLeastLoaded,
  /// A global round-robin counter over the edges.
  kRoundRobin,
};

EdgePolicy parse_edge_policy(const std::string& name);
std::string to_string(EdgePolicy policy);

struct FleetConfig {
  /// Topology: N devices spread over M edges; one cloud with its own pool.
  int num_devices = 100;
  int num_edges = 4;
  /// Server-pool sizes: each edge runs `edge_servers` parallel servers,
  /// the cloud runs `cloud_servers`.
  int edge_servers = 1;
  int cloud_servers = 2;

  /// Open-loop arrivals: Poisson at `arrival_rate_hz` over the whole
  /// fleet, unless `interarrival_s` is non-empty — then the gaps (seconds,
  /// all >= 0) are replayed in order and cycled (trace-file-driven load).
  double arrival_rate_hz = 200.0;
  std::vector<double> interarrival_s;

  /// Deterministic service model (seconds).
  double edge_service_s = 2e-3;
  double cloud_service_s = 4e-3;
  /// Extra hop latency for samples forwarded from an edge to the cloud.
  double edge_cloud_latency_s = 10e-3;

  /// Per-edge request batching: a freeing server takes up to `max_batch`
  /// queued samples and serves them together in
  /// edge_service_s * (1 + (batch - 1) * batch_growth) — the section
  /// forward pass is amortized over the batch. The cloud serves one sample
  /// per dispatch (its section already runs at batch granularity upstream).
  int max_batch = 8;
  double batch_growth = 0.25;

  /// Bounded-queue admission control: a sample arriving at a station whose
  /// queue already holds `queue_capacity` samples is shed (counted, never
  /// crashed on) and leaves the network.
  std::int64_t queue_capacity = 256;

  /// Traces with exit_taken >= first_cloud_exit continue from their edge
  /// to the cloud tier. Three-exit traces (local/edge/cloud) use the
  /// default 2; two-exit traces (local/cloud) should set 1 so escalated
  /// samples pass through their gateway/edge station on the way up.
  int first_cloud_exit = 2;

  EdgePolicy policy = EdgePolicy::kNearest;
  std::uint64_t seed = 1;

  /// SLO configuration consumed when an obs::SloEngine is bound: a
  /// completion is "good" for the latency objective when its end-to-end
  /// latency is at or under `slo_latency_ms`; shed and dead samples are
  /// "bad" for the availability objective. Windows are simulated seconds.
  double slo_latency_ms = 100.0;
  double slo_latency_target = 0.99;
  double slo_availability_target = 0.999;
  double slo_fast_window_s = 60.0;
  double slo_slow_window_s = 600.0;
};

/// Per-station (edge or cloud) accounting.
struct StationStats {
  std::int64_t served = 0;   // samples that completed service here
  std::int64_t batches = 0;  // dispatches (served / batches = mean batch)
  std::int64_t shed = 0;     // arrivals rejected by admission control
  std::int64_t peak_queue = 0;
  double busy_s = 0.0;       // server-busy seconds summed over the pool
  double utilization = 0.0;  // busy_s / (servers * horizon)
};

struct FleetStats {
  std::int64_t arrivals = 0;
  std::int64_t completed = 0;  // samples that obtained a classification
  std::int64_t local = 0;      // completed at the device tier
  std::int64_t escalated = 0;  // completed after edge (and maybe cloud)
  std::int64_t dead = 0;       // dead traces: counted, never enqueued
  std::int64_t shed = 0;       // dropped by admission control (all stations)
  double horizon_s = 0.0;      // time of the last processed event
  double throughput_hz = 0.0;  // completed / horizon
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double max_latency_s = 0.0;
  /// Tail percentiles from the log-bucketed latency histogram (obs/hdr.hpp,
  /// relative bucket error <= 1/128); max_latency_s above stays exact.
  double p99_latency_s = 0.0;
  double p999_latency_s = 0.0;
  /// Trace exemplars of the p99 / p99.9 / max latency buckets: the sample
  /// index is the open-loop arrival index, the trace id the replayed
  /// InferenceTrace's distributed trace id (0 when the trace pool predates
  /// trace ids — then a seed-derived id stands in).
  obs::HdrExemplar p99_exemplar;
  obs::HdrExemplar p999_exemplar;
  obs::HdrExemplar max_exemplar;
  std::vector<StationStats> edges;
  StationStats cloud;

  double mean_edge_utilization() const;
  /// Per-station breakdown (station, servers implied by config, served,
  /// batches, shed, peak queue, utilization %).
  Table station_table() const;
};

/// Simulate `stream_length` open-loop arrivals over the fleet topology,
/// replaying `traces` cyclically. When `series` is given it must be freshly
/// constructed (no columns yet); the simulator registers fleet.* columns —
/// arrivals/completed/local/escalated/dead/shed counters, a
/// fleet.throughput_hz rate, a fleet.latency_ms histogram, a
/// fleet.hdr_latency_ms tail column (.n/.p99/.p999/.max), per-station
/// queue gauges and a fleet.queue_depth gauge — and records every event at
/// its simulated time, so exports are byte-identical across reruns and
/// DDNN_THREADS settings.
///
/// When `registry` is given the simulator additionally publishes a
/// fleet.hdr_latency_ms HDR histogram (with trace exemplars) and
/// fleet.station.* counters/gauges (served/batches/shed/peak_queue/
/// utilization per station). When `slo` is given it registers (get-or-
/// create) the fleet.latency and fleet.availability objectives from the
/// config's slo_* fields and feeds them on the simulated clock.
FleetStats simulate_fleet(const std::vector<InferenceTrace>& traces,
                          const FleetConfig& config,
                          std::int64_t stream_length,
                          obs::WindowedSeries* series = nullptr,
                          obs::MetricsRegistry* registry = nullptr,
                          obs::SloEngine* slo = nullptr);

}  // namespace ddnn::dist
