// Queueing study: end-to-end response time of a DDNN under streaming load.
//
// The paper's latency argument (Sections I and V) is per-sample: samples
// exiting locally skip the uplink. Under *load*, local exits matter even
// more — escalated samples contend for the shared cloud, and queueing delay
// compounds the transfer time. This module runs an event-driven simulation:
// samples arrive as a Poisson process; locally exited samples finish after
// their device+gateway latency; escalated samples additionally pass through
// a single-server FIFO cloud queue.
//
// Input is a trace of per-sample outcomes from HierarchyRuntime (exit tier
// and network latency), so the queueing layer composes with any trained
// model and threshold policy without re-running inference.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/runtime.hpp"
#include "util/rng.hpp"

namespace ddnn::dist {

struct QueueingConfig {
  /// Mean sample arrival rate of the whole camera fleet (samples/second).
  double arrival_rate_hz = 20.0;
  /// Cloud service time per escalated sample (NN layer processing).
  double cloud_service_s = 10e-3;
  std::uint64_t seed = 1;
};

struct QueueingStats {
  std::int64_t samples = 0;
  std::int64_t escalated = 0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double max_latency_s = 0.0;
  /// Busy fraction of the cloud server over the simulated horizon.
  double cloud_utilization = 0.0;
};

/// Nearest-rank percentile of an ascending-sorted sample: the value at
/// index ceil(q * n) - 1 (1-based rank ceil(q * n)). q must be in (0, 1].
/// Example: n=100, q=0.95 -> index 94 (the 95th value), not 95.
/// Thin alias for ddnn::percentile_nearest_rank (util/stats.hpp), kept so
/// queueing call sites and tests read in dist:: vocabulary.
double percentile_nearest_rank(const std::vector<double>& sorted_ascending,
                               double q);

/// Simulate a Poisson sample stream over per-sample inference traces
/// (cycled if the stream is longer than the trace). Every trace's
/// `latency_s` is the network+compute latency without contention; samples
/// with `exit_taken` past the first exit additionally queue for the cloud
/// server.
QueueingStats simulate_stream(const std::vector<InferenceTrace>& traces,
                              const QueueingConfig& config,
                              std::int64_t stream_length = 2000);

}  // namespace ddnn::dist
