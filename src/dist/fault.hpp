// Fault injection and reliability for the simulated hierarchy.
//
// The paper's fault-tolerance claim (Section IV-G) is that a DDNN keeps
// classifying when end devices fail, losing accuracy gradually. Real
// deployments fail in more ways than a permanently dead camera: links drop
// packets, devices flap, a whole edge tier goes dark for a while. This
// header provides
//
//   * FaultPlan      — a declarative, seeded description of what goes wrong
//                      (per-link drop probability, per-device permanent and
//                      intermittent failure schedules, edge-tier outages);
//   * FaultInjector  — the deterministic oracle the runtime consults. Every
//                      decision is a pure function of (seed, identifiers):
//                      hashed counter-mode draws through ddnn::Rng, so the
//                      same plan produces bit-identical failures regardless
//                      of call order, thread count or repetition;
//   * ReliableChannel — deadline-based timeout + bounded retry with
//                      exponential backoff and seeded jitter on top of a
//                      Link. With no injector it degenerates to exactly one
//                      attempt with plain link latency, so fault-free runs
//                      are byte- and latency-identical to the seed behavior.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dist/link.hpp"

namespace ddnn::dist {

/// Failure schedule for one device (model branch), in sample-index time.
struct DeviceFaultSchedule {
  /// Device is permanently down from this sample index on (-1 = never).
  std::int64_t permanent_fail_at = -1;
  /// Probability the device is unreachable for any given sample (flapping
  /// radio, duty-cycled sensor). Drawn independently per sample.
  double intermittent_down_prob = 0.0;
};

/// One edge-tier outage window, in sample-index time.
struct EdgeOutage {
  int group = -1;  ///< edge group index; -1 = every edge group
  std::int64_t start_sample = 0;
  std::int64_t end_sample = 0;  ///< half-open: [start_sample, end_sample)
};

/// Declarative description of everything that goes wrong in a run.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Default per-attempt drop probability for every link.
  double link_drop_prob = 0.0;
  /// Per-link overrides, keyed by Link::name().
  std::unordered_map<std::string, double> link_drop_overrides;
  /// Per-device schedules, indexed by model branch. Devices beyond the
  /// vector's size are healthy.
  std::vector<DeviceFaultSchedule> devices;
  std::vector<EdgeOutage> edge_outages;

  /// Throws ddnn::Error on out-of-range probabilities or inverted windows.
  void validate() const;
};

/// Deterministic failure oracle. Stateless after construction: every query
/// hashes (plan seed, entity id, sample index, attempt) into a fresh
/// ddnn::Rng draw, so results do not depend on query order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Is transmission attempt `attempt` of this sample's message on `link`
  /// lost in flight?
  bool drop(std::string_view link, std::int64_t sample, int attempt) const;

  /// Is device `branch` unreachable for `sample` (permanent schedule or
  /// intermittent draw)?
  bool device_down(int branch, std::int64_t sample) const;

  /// Is edge group `group` inside an outage window at `sample`?
  bool edge_down(int group, std::int64_t sample) const;

  /// Uniform [0, 1) jitter draw for the backoff before `attempt`.
  double backoff_jitter(std::string_view link, std::int64_t sample,
                        int attempt) const;

  /// Effective drop probability for a link (override or default).
  double drop_prob(std::string_view link) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
};

/// Retry/timeout policy for a ReliableChannel.
struct ReliabilityConfig {
  int max_retries = 2;           ///< re-attempts after the first send
  double timeout_s = 50e-3;      ///< per-attempt delivery deadline
  double backoff_base_s = 10e-3; ///< wait before the first retry
  double backoff_factor = 2.0;   ///< exponential growth per retry
  double jitter_frac = 0.2;      ///< +- fraction of the backoff, seeded

  void validate() const;
};

/// Outcome of one reliable send.
struct SendResult {
  bool delivered = false;
  int attempts = 0;         ///< total transmissions (1 + retries performed)
  int dropped_attempts = 0; ///< attempts lost in flight
  double latency_s = 0.0;   ///< transmit + timeout + backoff time elapsed
};

/// Deadline/retry/backoff wrapper around a Link. Cheap to construct per
/// send; all persistent accounting lives in LinkStats and the caller's
/// metrics.
class ReliableChannel {
 public:
  /// `injector` may be null: then every send is delivered on the first
  /// attempt at plain link latency.
  ReliableChannel(Link& link, const FaultInjector* injector,
                  const ReliabilityConfig& config);

  /// Attempt delivery of `msg` for sample `sample_index`, retrying dropped
  /// attempts up to config.max_retries times. A dropped attempt costs the
  /// full timeout; each retry is preceded by jittered exponential backoff.
  SendResult send(const Message& msg, std::int64_t sample_index);

 private:
  Link& link_;
  const FaultInjector* injector_;
  ReliabilityConfig config_;
};

}  // namespace ddnn::dist
