// HierarchyRuntime: end-to-end simulated execution of DDNN inference over
// the distributed computing hierarchy (paper Section III-D, steps 1-6).
//
// Per sample:
//   1. every healthy device runs its NN section and sends its class-score
//      message to the local aggregator (gateway);
//   2. the gateway fuses the scores and computes the normalized entropy;
//   3. eta <= T_local  -> classify locally, nothing else is transmitted;
//   4. otherwise every healthy device transmits its bit-packed binary
//      feature map to its edge (or straight to the cloud);
//   5. with an edge tier: each edge aggregates its members, runs its trunk,
//      and the fused edge exit decides; confident -> classify at the edge;
//   6. otherwise the edges (or devices) forward features to the cloud,
//      which always classifies.
//
// Every message crosses a Link, so byte counts and simulated latency are
// measured, not modeled; tests assert the measured per-device bytes match
// the paper's Eq. 1.
//
// With a FaultPlan installed (set_fault_plan), every send goes through a
// ReliableChannel (timeout + bounded retry + backoff) and the runtime
// degrades gracefully instead of aborting:
//   * a gateway that hears from zero devices escalates without a local
//     decision;
//   * a sample whose edge tier is in an outage window routes device
//     features straight to the cloud, which runs the edge section itself;
//   * when no feature reaches the cloud at all, alive devices fall back to
//     raw-image offload (the paper's traditional-offloading baseline);
//   * a sample no tier can classify yields a flagged dead trace
//     (exit_taken = -1) — counted, never crashed on.
// All fault randomness is counter-mode seeded (see dist/fault.hpp), so runs
// are bit-identical across repetitions and DDNN_THREADS settings.
#pragma once

#include <map>
#include <optional>

#include "core/inference.hpp"
#include "core/metrics.hpp"
#include "core/model.hpp"
#include "data/mvmc.hpp"
#include "dist/fault.hpp"
#include "dist/link.hpp"
#include "dist/node.hpp"
#include "dist/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace ddnn::dist {

struct RuntimeConfig {
  /// Device uplinks (to gateway / edge / cloud): constrained wireless.
  LinkConfig device_link{};
  /// Edge-to-cloud links: faster backhaul.
  LinkConfig edge_link{.bandwidth_bytes_per_s = 2e6, .base_latency_s = 10e-3};
  /// Fixed compute latency charged per tier per sample (seconds).
  double device_compute_s = 2e-3;
  double edge_compute_s = 1e-3;
  double cloud_compute_s = 0.5e-3;
  /// Timeout/retry/backoff policy applied to every send. With no fault plan
  /// installed nothing is ever dropped, so this is inert for healthy runs.
  ReliabilityConfig reliability{};
};

/// Outcome of classifying one sample on the simulated hierarchy.
struct InferenceTrace {
  int exit_taken = 0;            // index into exit_names(); -1 = dead sample
  std::int64_t prediction = 0;   // -1 when no tier could classify
  double entropy = 0.0;          // normalized entropy at the taken exit
  double latency_s = 0.0;        // simulated network + compute latency
  std::int64_t bytes_sent = 0;   // total delivered bytes across all links
  bool degraded = false;         // took a graceful-degradation route
  bool dead = false;             // nothing reached any classifier
  int retries = 0;               // re-transmissions spent on this sample
  /// Deterministic 48-bit distributed trace id, minted from the run seed
  /// and sample index (never the wall clock) — the key histogram exemplars
  /// carry so a p99.9 bucket resolves to this sample's span tree.
  std::uint64_t trace_id = 0;
};

/// argmax + normalized entropy of a [1, C] score vector — the decision rule
/// every exit applies to its fused scores. Shared by the simulator and the
/// served hierarchy (dist/serve.cpp) so the two paths cannot drift.
struct ExitDecision {
  std::int64_t prediction = 0;
  double entropy = 0.0;
};
ExitDecision decide_exit(const Tensor& logits);

/// Edge-outage fallback shared by the simulator and the served cloud
/// (dist/serve.cpp): run edge group `g`'s section on whatever member device
/// features arrived. Returns the feature message the cloud would have
/// received from that edge, or nullopt when no member delivered.
std::optional<Message> edge_section_at_cloud(
    core::DdnnModel& model, std::size_t g,
    const std::vector<std::optional<Message>>& features);

/// Raw-offload fallback shared by the simulator and the served cloud: run
/// the full network on delivered raw views (indexed by model branch).
/// Returns the final [1, C] scores.
Tensor cloud_forward_from_raw_views(
    core::DdnnModel& model, const std::vector<std::optional<Message>>& raws);

/// Aggregate statistics over a run.
struct RuntimeMetrics {
  std::int64_t samples = 0;
  std::vector<std::int64_t> exit_counts;   // per exit; dead samples excluded
  std::vector<std::int64_t> device_bytes;  // per device, all uplinks
  std::int64_t total_bytes = 0;
  double total_latency_s = 0.0;
  std::int64_t correct = 0;
  core::ReliabilityCounters reliability;

  double accuracy() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(samples);
  }
  double mean_latency_s() const {
    return samples == 0 ? 0.0 : total_latency_s / static_cast<double>(samples);
  }
  /// Average uplink bytes per sample for one device — the quantity the
  /// paper's Eq. 1 models.
  double device_bytes_per_sample(int device) const {
    return samples == 0
               ? 0.0
               : static_cast<double>(
                     device_bytes[static_cast<std::size_t>(device)]) /
                     static_cast<double>(samples);
  }
};

class HierarchyRuntime {
 public:
  /// `thresholds`: one normalized-entropy threshold per non-final exit.
  /// `device_map` maps model branches to dataset device ids (as in
  /// core::train_ddnn).
  HierarchyRuntime(core::DdnnModel& model, std::vector<double> thresholds,
                   std::vector<int> device_map, RuntimeConfig config = {});

  /// Mark a device (by model branch index) failed/healthy.
  void set_device_failed(int branch, bool failed);

  /// Install a fault plan: from now on link drops, device schedules and
  /// edge outages are drawn deterministically from the plan's seed, keyed
  /// by sample index (see reset_metrics() for the timeline).
  void set_fault_plan(FaultPlan plan);

  /// Remove the fault plan; subsequent runs are fault-free.
  void clear_fault_plan();

  const FaultInjector* fault_injector() const {
    return injector_ ? &*injector_ : nullptr;
  }

  /// Route every send through `transport` (not owned; null restores the
  /// builtin SimTransport). The installed fault injector follows the active
  /// transport, so set_fault_plan/clear_fault_plan keep working across
  /// swaps.
  void set_transport(Transport* transport);
  Transport& transport() {
    return transport_ != nullptr ? *transport_ : sim_transport_;
  }

  /// Classify one multi-view sample; updates metrics. Never throws for
  /// fault-induced conditions: a sample that no tier can classify yields a
  /// flagged dead trace (exit_taken = -1, prediction = -1) instead.
  InferenceTrace classify(const data::MvmcSample& sample);

  /// Classify a whole sample set (convenience; updates metrics).
  RuntimeMetrics run(const std::vector<data::MvmcSample>& samples);

  const RuntimeMetrics& metrics() const { return metrics_; }

  /// Clear metrics and link stats, and rewind the fault timeline to sample
  /// index 0 — so repeated runs of the same sample set under the same plan
  /// are bit-identical.
  void reset_metrics();

  /// Attach a span tracer (not owned; null detaches). Every subsequent
  /// classify() appends one span tree — a root "sample" span on track 0 plus
  /// per-tier child spans (device_section, send:*, gateway_fuse, edge_trunk,
  /// edge_exit_fuse, cloud_classify) — stamped with the *simulated* clock:
  /// span start times are offsets on a run timeline where sample k begins at
  /// the sum of the previous samples' latencies. Traces are therefore a pure
  /// function of (model, data, fault plan) and byte-identical across reruns.
  /// Track names for the hierarchy are registered on attach.
  void set_tracer(obs::SpanTracer* tracer);

  /// Bind a metrics registry (not owned; null unbinds). classify() then
  /// records runtime.* counters (samples, bytes_total, correct, retries,
  /// drops, timeouts, degraded, dead, exit.<name>), the
  /// runtime.total_latency_s gauge and the sample latency/bytes histograms
  /// into it. Registration happens here (once), so the export order is
  /// stable no matter which path the first sample takes.
  void bind_metrics(obs::MetricsRegistry* registry);

  /// Bind a windowed series (not owned; null unbinds). The runtime registers
  /// its columns — counters named exactly like the bind_metrics() registry
  /// counters (runtime.samples, runtime.bytes_total, runtime.correct,
  /// runtime.retries, runtime.drops, runtime.timeouts, runtime.degraded,
  /// runtime.dead, runtime.exit.<name>), per-exit runtime.exit_frac.<name>
  /// and runtime.accuracy ratios, a runtime.latency_ms histogram, and one
  /// link.<name>.bytes counter per link — and records every sample at its
  /// simulated start time (the same clock origin the tracer uses), so window
  /// sums of the counter columns reconcile exactly with the final metrics
  /// snapshot (scripts/check_trace.py --series).
  void bind_series(obs::WindowedSeries* series);

  /// Per-link traffic table (link, messages, bytes, bytes/sample) over the
  /// metrics window — the bytes-crossing-every-boundary view of a run.
  Table link_report() const;

  core::DdnnModel& model() { return model_; }

  /// Link inspection for tests/benches.
  const std::vector<Link>& device_gateway_links() const {
    return dev_gateway_links_;
  }
  const std::vector<Link>& device_uplink_links() const {
    return dev_uplink_links_;
  }
  const std::vector<Link>& edge_cloud_links() const {
    return edge_cloud_links_;
  }
  /// Direct device->cloud fallback links (edge configurations only): used
  /// when a device's edge tier is unreachable and for raw-image offload.
  const std::vector<Link>& device_cloud_fallback_links() const {
    return dev_cloud_links_;
  }

 private:
  core::DdnnModel& model_;
  std::vector<double> thresholds_;
  std::vector<int> device_map_;
  RuntimeConfig config_;

  std::vector<DeviceNode> devices_;
  std::optional<GatewayNode> gateway_;
  std::vector<EdgeNode> edges_;
  CloudNode cloud_;

  // Device -> gateway (class scores) and device -> edge/cloud (features).
  std::vector<Link> dev_gateway_links_;
  std::vector<Link> dev_uplink_links_;
  // Edge -> edge-exit coordinator (scores) and edge -> cloud (features).
  std::vector<Link> edge_coord_links_;
  std::vector<Link> edge_cloud_links_;
  // Device -> cloud fallback links (edge configurations only).
  std::vector<Link> dev_cloud_links_;

  RuntimeMetrics metrics_;
  std::optional<FaultInjector> injector_;
  std::int64_t sample_index_ = 0;  // fault-timeline clock

  /// Default transport (the simulator path) and the active override.
  SimTransport sim_transport_;
  Transport* transport_ = nullptr;  // not owned; null = sim_transport_

  obs::SpanTracer* tracer_ = nullptr;  // not owned
  /// Pre-registered metric handles (all null when no registry is bound).
  struct BoundMetrics {
    obs::MetricsRegistry* registry = nullptr;
    obs::Counter* samples = nullptr;
    obs::Counter* bytes_total = nullptr;
    obs::Counter* correct = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* drops = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* dead = nullptr;
    std::vector<obs::Counter*> exits;  // parallel to exit_names()
    obs::Gauge* total_latency_s = nullptr;
    obs::Histogram* latency_ms = nullptr;
    obs::HdrHistogram* hdr_latency_ms = nullptr;
    obs::Histogram* sample_bytes = nullptr;
    /// Per-destination reliability counters (link.<name>.attempts/retries/
    /// timeouts/bytes), so `ddnn report` can break retries down by link on
    /// any transport. Keyed by Link address (link vectors never grow).
    struct LinkCounters {
      obs::Counter* attempts = nullptr;
      obs::Counter* retries = nullptr;
      obs::Counter* timeouts = nullptr;
      obs::Counter* bytes = nullptr;
    };
    std::map<const Link*, LinkCounters> links;
  };
  BoundMetrics bound_;
  /// Pre-registered series column ids (series_ null when unbound). Link
  /// column lookup is by Link address — the link vectors never grow after
  /// construction.
  struct BoundSeries {
    obs::WindowedSeries* series = nullptr;
    int samples = -1;
    int bytes_total = -1;
    int correct = -1;
    int retries = -1;
    int drops = -1;
    int timeouts = -1;
    int degraded = -1;
    int dead = -1;
    std::vector<int> exits;       // parallel to exit_names()
    int latency_ms = -1;          // histogram
    int hdr_latency_ms = -1;      // hdr tail column (.n/.p99/.p999/.max)
    std::map<const Link*, int> link_bytes;
  };
  BoundSeries series_;

  // Trace track layout: 0 = samples, then devices, gateway, edges,
  // edge-exit coordinator, cloud.
  int device_track(int b) const { return 1 + b; }
  int gateway_track() const { return 1 + static_cast<int>(devices_.size()); }
  int edge_track(int g) const {
    return 2 + static_cast<int>(devices_.size()) + g;
  }
  int coord_track() const {
    return 2 + static_cast<int>(devices_.size() + edges_.size());
  }
  int cloud_track() const {
    return 3 + static_cast<int>(devices_.size() + edges_.size());
  }

  /// Edge group index for a model branch (-1 when no edge tier).
  int group_of(int branch) const;
};

}  // namespace ddnn::dist
