// Transport abstraction: how a Message moves between hierarchy nodes.
//
// Every place the runtime moves a Message — device→gateway scores,
// device→edge/cloud features, edge→cloud escalation, raw-image fallback —
// goes through one seam:
//
//   SendResult Transport::send(Link&, const Message&, sample_index)
//
// with two implementations:
//
//   * SimTransport    — the deterministic simulator path. Wraps the existing
//                       Link latency model, FaultInjector and ReliableChannel
//                       (timeout + bounded retry + jittered backoff) and is
//                       byte- and latency-identical to the pre-seam runtime:
//                       the simulator stays the oracle every determinism
//                       CTest pins.
//   * SocketTransport — real TCP. Each logical channel (Link::name()) is
//                       attached to a FrameConn; send() wraps the Message
//                       codec in a versioned length-prefixed frame
//                       (magic/version/kind/seq/length/CRC32), flushes it
//                       through a nonblocking fd and waits for the peer's
//                       ACK, reusing ReliabilityConfig timeout/retry/backoff
//                       semantics. send_batch() queues frames across
//                       channels and flushes each connection once (batched
//                       uplink flushes), then collects the pipelined ACKs.
//
// The frame layer is the served hierarchy's whole wire contract
// (docs/ARCHITECTURE.md "Transport layer"); `ddnn serve` (dist/serve.hpp)
// speaks nothing but these frames.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dist/fault.hpp"
#include "dist/link.hpp"
#include "dist/message.hpp"
#include "obs/metrics.hpp"

namespace ddnn::dist {

// ------------------------------------------------------------- interface

class Transport {
 public:
  virtual ~Transport() = default;

  /// Reliable delivery of `msg` on the logical channel identified by
  /// `link`, applying the implementation's timeout/retry/backoff policy.
  /// Delivered traffic (and dropped attempts) is accounted into `link`'s
  /// stats; `latency_s` is simulated seconds (sim) or measured wall seconds
  /// (socket).
  virtual SendResult send(Link& link, const Message& msg,
                          std::int64_t sample_index) = 0;

  /// Runtime notification that the fault oracle changed (null = cleared).
  /// Real-network transports ignore this: their faults are injected by the
  /// network itself, not drawn from a plan.
  virtual void set_fault_injector(const FaultInjector* injector) {
    (void)injector;
  }

  /// Implementation name ("sim", "socket") for logs and ledger records.
  virtual const char* name() const = 0;
};

/// The simulator path: ReliableChannel over the Link's latency model, faults
/// drawn from the installed injector. With no injector every send delivers
/// on the first attempt at plain link latency — exactly the seed behavior.
class SimTransport : public Transport {
 public:
  explicit SimTransport(ReliabilityConfig config = {});

  SendResult send(Link& link, const Message& msg,
                  std::int64_t sample_index) override;
  void set_fault_injector(const FaultInjector* injector) override {
    injector_ = injector;
  }
  const char* name() const override { return "sim"; }

  const FaultInjector* fault_injector() const { return injector_; }

 private:
  ReliabilityConfig config_;
  const FaultInjector* injector_ = nullptr;
};

// ------------------------------------------------------------ frame codec

/// "DDNN" little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x4E4E4444u;
/// v2: data-frame metadata carries a trace context (trace id + parent span)
/// after [sample][branch]; Hello and Classify payloads grew timestamp /
/// trace fields. The header layout is unchanged; the version equality check
/// keeps mismatched builds from talking past each other.
inline constexpr std::uint8_t kFrameVersion = 2;
/// magic(4) version(1) kind(1) reserved(2) seq(8) length(4) crc32(4); the
/// CRC covers header bytes [4, 20) plus the payload, so corruption anywhere
/// but the magic/CRC fields themselves fails the checksum (and those two
/// have their own equality checks).
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Sanity bound on a frame payload (largest legitimate payload — a raw
/// image batch — is orders of magnitude smaller).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameKind : std::uint8_t {
  // Control plane.
  kHello = 1,     ///< handshake: role + model signature; peer echoes
  kAck = 2,       ///< delivery ack; seq echoes the acked data frame
  kClassify = 3,  ///< "decide this sample": [i64 sample][u8 mode]
  kDecision = 4,  ///< exit decision for a sample (see DecisionPayload)
  kBye = 5,       ///< orderly shutdown
  kStats = 6,     ///< live telemetry poll; reply payload = metrics JSON
  kHealth = 7,    ///< SLO health poll; reply payload = health JSON

  // Data plane: a Message plus routing metadata, payload =
  // [i64 sample][i32 branch][u64 trace_id][u64 parent_span]
  // ++ Message::payload.
  kClassScores = 16,
  kBinaryFeatureMap = 17,
  kRawImage = 18,
};

const char* to_string(FrameKind kind);
bool is_data_kind(FrameKind kind);
FrameKind frame_kind_of(MessageKind kind);
MessageKind message_kind_of(FrameKind kind);

struct Frame {
  FrameKind kind = FrameKind::kAck;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `n` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Header + payload wire bytes.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decode one complete frame. Throws ddnn::Error naming the defect on bad
/// magic/version/kind, on a declared payload length that disagrees with the
/// buffer, and on a checksum mismatch (the CRC spans version through
/// payload, so a single flipped bit anywhere in the frame is rejected).
Frame decode_frame(const std::uint8_t* data, std::size_t n);

/// Total wire size (header + declared payload) from a complete header.
/// Validates magic/version and bounds the declared length, so a corrupt
/// length field fails loudly instead of asking for gigabytes.
std::size_t frame_size_from_header(const std::uint8_t* header);

// Bounds-checked little-endian payload IO. Readers throw ddnn::Error naming
// the truncation instead of walking off the buffer.
class PayloadWriter {
 public:
  void u8(std::uint8_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void bytes(const std::uint8_t* data, std::size_t n);
  void str(const std::string& s);  ///< u32 length prefix + bytes
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* data, std::size_t n, const char* what);
  std::uint8_t u8();
  std::int32_t i32();
  std::int64_t i64();
  std::uint64_t u64();
  double f64();
  std::string str();
  /// Everything not yet consumed.
  std::vector<std::uint8_t> rest();
  std::size_t remaining() const { return n_ - pos_; }

 private:
  void need(std::size_t n) const;
  const std::uint8_t* data_;
  std::size_t n_;
  std::size_t pos_ = 0;
  const char* what_;
};

/// Cross-process trace identity carried by every data and Classify frame:
/// which distributed trace a hop belongs to (`trace_id`, one per sample run)
/// and which driver span caused it (`parent_span`). Zero means "untraced".
/// Ids are kept within 48 bits so JSON consumers that parse numbers as
/// doubles (Perfetto, python json) round-trip them exactly.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// Wrap a Message (+ routing metadata) into a data frame / unwrap it back.
Frame make_message_frame(const Message& msg, std::int64_t sample,
                         std::int32_t branch,
                         const TraceContext& trace = TraceContext{});
struct MessageMeta {
  std::int64_t sample = 0;
  std::int32_t branch = 0;
  TraceContext trace;
};
Message frame_message(const Frame& frame, MessageMeta* meta);

// --------------------------------------------------------------- sockets

/// A connected stream socket speaking frames. The fd is nonblocking; writes
/// queue into an out-buffer flushed with poll()-driven partial writes, reads
/// accumulate into an in-buffer parsed into complete frames — large
/// messages survive arbitrary read/write fragmentation.
class FrameConn {
 public:
  explicit FrameConn(int fd);  ///< takes ownership; sets O_NONBLOCK
  ~FrameConn();
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  int fd() const { return fd_; }
  bool closed() const { return fd_ < 0; }
  void close();

  /// Queue a frame; no syscall until flush().
  void queue(const Frame& frame);
  /// Drive queued bytes out. Returns false when `timeout_s` elapses first;
  /// throws ddnn::Error on a connection error.
  bool flush(double timeout_s);
  bool write_frame(const Frame& frame, double timeout_s);

  /// Next frame within `timeout_s` (nullopt on timeout or orderly EOF —
  /// check closed() to tell them apart). Throws on protocol violations.
  std::optional<Frame> read_frame(double timeout_s);

  /// Consume whatever is readable right now without blocking; parsed
  /// complete frames land in arrival order.
  std::vector<Frame> poll_frames();

  std::size_t queued_bytes() const { return out_.size() - out_pos_; }

 private:
  bool fill_from_socket(double timeout_s);  ///< one poll+read round
  std::optional<Frame> parse_one();

  int fd_ = -1;
  std::vector<std::uint8_t> in_;
  std::vector<std::uint8_t> out_;
  std::size_t out_pos_ = 0;
};

/// Listening TCP socket on 127.0.0.1 (port 0 = OS-assigned ephemeral port —
/// the port-allocation story that lets parallel ctest jobs never collide;
/// the bound port is read back via port()).
class Listener {
 public:
  explicit Listener(int port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int port() const { return port_; }
  int fd() const { return fd_; }

  /// Accept one connection within `timeout_s` (nullptr on timeout).
  std::shared_ptr<FrameConn> accept(double timeout_s);

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Connect to "host:port" within `timeout_s`; nullptr on failure.
std::shared_ptr<FrameConn> connect_to(const std::string& host_port,
                                      double timeout_s);

/// Real-TCP transport: logical channels (Link names) attached to
/// connections; several channels may share one connection (all six device
/// uplinks ride the single device→edge socket).
class SocketTransport : public Transport {
 public:
  explicit SocketTransport(ReliabilityConfig config = {});

  void attach(const std::string& channel, std::shared_ptr<FrameConn> conn);
  void detach(const std::string& channel);
  bool attached(const std::string& channel) const;
  std::shared_ptr<FrameConn> conn(const std::string& channel) const;

  /// Fail sends on a channel immediately after its first undelivered send
  /// (circuit breaker), instead of waiting out the timeout ladder every
  /// sample. Off by default.
  void set_fail_fast(bool on) { fail_fast_ = on; }
  bool channel_down(const std::string& channel) const;

  /// Register per-channel `link.<name>.*` counters (attempts/retries/
  /// timeouts/bytes) plus breaker health (`transport.breaker_trips`,
  /// `transport.channels_down`) in `reg`. Registration is eager: existing
  /// channels get their columns immediately and every later attach()
  /// registers before the first send, so metrics/series exports have
  /// identical columns whether or not a link ever carried traffic. Control
  /// channels (names ending in "-ctl") carry no Link traffic and get no
  /// link columns. Pass nullptr to stop booking.
  void bind_metrics(obs::MetricsRegistry* reg);

  /// One frame: queue + flush + await ACK, retrying per ReliabilityConfig
  /// (each retry re-sends the frame after jitter-free backoff sleep).
  SendResult send(Link& link, const Message& msg,
                  std::int64_t sample_index) override;
  const char* name() const override { return "socket"; }

  /// Batched uplink flush: queue every frame first (one buffered write
  /// burst per connection), then collect the pipelined ACKs in order.
  struct BatchItem {
    Link* link = nullptr;
    const Message* msg = nullptr;
    std::int64_t sample = 0;
    std::int32_t branch = 0;
    TraceContext trace;
  };
  std::vector<SendResult> send_batch(const std::vector<BatchItem>& items);

  /// Fire a control frame down a channel (no ACK semantics). Returns false
  /// when the channel is unattached/down or the flush times out.
  bool post(const std::string& channel, const Frame& frame);

  /// Wait for the next frame of `kind` on `channel`, buffering any other
  /// non-ACK traffic into the channel's inbox. nullopt on timeout.
  std::optional<Frame> await(const std::string& channel, FrameKind kind,
                             double timeout_s);

  const ReliabilityConfig& reliability() const { return config_; }

 private:
  struct ChannelMetrics {
    obs::Counter* attempts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* bytes = nullptr;
  };
  struct Channel {
    std::shared_ptr<FrameConn> conn;
    bool down = false;
    ChannelMetrics metrics;
  };
  Channel* find(const std::string& channel);
  const Channel* find(const std::string& channel) const;
  /// Read frames until an ACK for `seq` arrives or the deadline passes;
  /// non-ACK frames are stashed into the connection's inbox.
  bool await_ack(FrameConn& conn, std::uint64_t seq, double timeout_s);
  void register_channel_metrics(const std::string& name, Channel& ch);
  /// One-way breaker transition; books transport.breaker_trips and the
  /// transport.channels_down gauge exactly once per channel.
  void mark_down(Channel& ch);

  ReliabilityConfig config_;
  bool fail_fast_ = false;
  std::uint64_t next_seq_ = 1;
  std::map<std::string, Channel> channels_;
  std::map<const FrameConn*, std::deque<Frame>> inbox_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* breaker_trips_ = nullptr;
  obs::Gauge* channels_down_ = nullptr;
};

}  // namespace ddnn::dist
