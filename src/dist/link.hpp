// A simulated network link with byte accounting and a linear latency model.
//
// latency(message) = base_latency + payload_bytes / bandwidth.
//
// The byte counters are the ground truth for the paper's communication
// claims: tests assert that a device's average bytes/sample on these links
// equals the analytic model of Eq. 1.
#pragma once

#include <cstdint>
#include <string>

#include "dist/message.hpp"

namespace ddnn::dist {

struct LinkStats {
  // Delivered traffic. `messages`/`bytes` keep their original meaning so
  // the paper's byte-accounting invariants (Eq. 1) stay expressed in terms
  // of what actually crossed the link.
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  // Delivery semantics under fault injection: every transmission attempt is
  // either delivered (counted above) or dropped in flight.
  std::int64_t attempts = 0;
  std::int64_t dropped = 0;
  std::int64_t bytes_dropped = 0;
};

/// Default link parameters: a constrained wireless uplink (the paper's
/// setting for device links).
struct LinkConfig {
  double bandwidth_bytes_per_s = 250e3;  // ~2 Mbit/s
  double base_latency_s = 5e-3;
};

class Link {
 public:
  Link(std::string name, LinkConfig config = {});

  /// Account for one message crossing this link; returns its latency.
  double transmit(const Message& msg);

  /// Account for an attempted transmission that was lost in flight (fault
  /// injection). The sender still spent airtime; the payload never arrived.
  void record_drop(const Message& msg);

  /// Latency a message of `bytes` would incur (no accounting).
  double latency_for(std::int64_t bytes) const;

  const std::string& name() const { return name_; }
  const LinkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  std::string name_;
  LinkConfig config_;
  LinkStats stats_;
};

}  // namespace ddnn::dist
