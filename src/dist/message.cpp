#include "dist/message.hpp"

#include <cmath>
#include <cstring>

#include "tensor/bitpack.hpp"
#include "util/error.hpp"

namespace ddnn::dist {

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kClassScores: return "class-scores";
    case MessageKind::kBinaryFeatureMap: return "binary-features";
    case MessageKind::kRawImage: return "raw-image";
  }
  return "?";
}

Message encode_class_scores(const Tensor& scores) {
  DDNN_CHECK(scores.defined(), "encoding undefined tensor");
  DDNN_CHECK(scores.ndim() == 1 || (scores.ndim() == 2 && scores.dim(0) == 1),
             "class scores must be [C] or [1, C], got "
                 << scores.shape().to_string());
  Message msg;
  msg.kind = MessageKind::kClassScores;
  msg.payload.resize(static_cast<std::size_t>(scores.numel()) * sizeof(float));
  std::memcpy(msg.payload.data(), scores.data(), msg.payload.size());
  return msg;
}

Tensor decode_class_scores(const Message& msg, std::int64_t num_classes) {
  DDNN_CHECK(msg.kind == MessageKind::kClassScores,
             "expected class-scores, got " << to_string(msg.kind));
  DDNN_CHECK(num_classes > 0,
             "class-scores decode needs a positive class count, got "
                 << num_classes);
  DDNN_CHECK(msg.payload.size() ==
                 static_cast<std::size_t>(num_classes) * sizeof(float),
             "truncated or oversized class-scores payload: "
                 << msg.payload.size() << " B, want "
                 << num_classes * sizeof(float) << " B for " << num_classes
                 << " classes");
  Tensor t(Shape{1, num_classes});
  std::memcpy(t.data(), msg.payload.data(), msg.payload.size());
  return t;
}

Message encode_binary_feature_map(const Tensor& features) {
  DDNN_CHECK(features.defined(), "encoding undefined tensor");
  // Precondition: the tensor really is binarized (exact +-1), otherwise
  // packing would silently lose information.
  for (std::int64_t i = 0; i < features.numel(); ++i) {
    DDNN_CHECK(features[i] == 1.0f || features[i] == -1.0f,
               "feature map is not binarized at index " << i << ": "
                                                        << features[i]);
  }
  Message msg;
  msg.kind = MessageKind::kBinaryFeatureMap;
  msg.payload = pack_signs(features);
  return msg;
}

Tensor decode_binary_feature_map(const Message& msg, Shape shape) {
  DDNN_CHECK(msg.kind == MessageKind::kBinaryFeatureMap,
             "expected binary-features, got " << to_string(msg.kind));
  DDNN_CHECK(static_cast<std::int64_t>(msg.payload.size()) ==
                 packed_size_bytes(shape.numel()),
             "truncated or oversized binary-features payload: "
                 << msg.payload.size() << " B, want "
                 << packed_size_bytes(shape.numel()) << " B for shape "
                 << shape.to_string());
  return unpack_signs(msg.payload, std::move(shape));
}

Message encode_raw_image(const Tensor& image) {
  DDNN_CHECK(image.defined(), "encoding undefined tensor");
  Message msg;
  msg.kind = MessageKind::kRawImage;
  msg.payload.resize(static_cast<std::size_t>(image.numel()));
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    const float clipped = std::fmin(1.0f, std::fmax(0.0f, image[i]));
    msg.payload[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(std::lround(clipped * 255.0f));
  }
  return msg;
}

Tensor decode_raw_image(const Message& msg, Shape shape) {
  DDNN_CHECK(msg.kind == MessageKind::kRawImage,
             "expected raw-image, got " << to_string(msg.kind));
  DDNN_CHECK(static_cast<std::int64_t>(msg.payload.size()) == shape.numel(),
             "truncated or oversized raw-image payload: "
                 << msg.payload.size() << " B, want " << shape.numel()
                 << " B for shape " << shape.to_string());
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(msg.payload[static_cast<std::size_t>(i)]) /
           255.0f;
  }
  return t;
}

Tensor decode_features(const Message& msg, const Shape& shape) {
  if (msg.kind == MessageKind::kRawImage) {
    return decode_raw_image(msg, shape);
  }
  return decode_binary_feature_map(msg, shape);
}

}  // namespace ddnn::dist
