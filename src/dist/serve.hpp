// `ddnn serve`: the simulated hierarchy as real device/edge/cloud processes.
//
// The simulator (dist/runtime.hpp) executes every tier in one process with a
// simulated clock; this header runs the SAME partitioned model as separate
// OS processes connected by SocketTransport frames (dist/transport.hpp):
//
//   driver (device role)          edge process           cloud process
//   ── DeviceNodes + gateway ──►  EdgeNode trunk/exit ─► CloudNode classify
//      feature frames + Classify     escalation             Decision
//      ◄─────────── Decision ◄──── relay ◄──────────────────┘
//
// The simulator stays the oracle: per-sample exits, predictions, entropies
// and delivered bytes are bit-identical between `ddnn simulate` and a
// loopback 3-process `ddnn serve` run on the same model + samples (proven
// by the serve_loopback_e2e CTest) — the codecs are lossless, the plan
// engine is deterministic, and both paths share decide_exit() and the
// degradation helpers. Only latency differs: serve measures wall clock.
//
// Degradation mirrors the simulator's ladder with real failures instead of
// injected ones: an edge that never ACKs (down, or started with
// --blackhole) routes device features straight to the cloud, which runs the
// edge section itself (mode kEdgeAtCloud); a cloud that cannot be fed
// features receives quantized raw views (mode kRawOffload); a sample no
// tier can classify yields the same flagged dead trace (exit_taken = -1).
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"
#include "data/mvmc.hpp"
#include "dist/runtime.hpp"
#include "dist/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ddnn::dist {

/// How the cloud/edge should interpret a Classify request's stored frames.
enum class ClassifyMode : std::uint8_t {
  kNormal = 0,      ///< features from the tier directly below
  kEdgeAtCloud = 1, ///< device features; cloud runs the edge section itself
  kRawOffload = 2,  ///< raw views; cloud runs the whole network
};

struct ServeOptions {
  /// Servers: TCP listen port (0 = OS-assigned ephemeral port) and an
  /// optional file the bound port is written to — how parallel test jobs
  /// discover each other without colliding.
  int listen_port = 0;
  std::string port_file;
  /// Driver: edge tier address (empty for hierarchies without an edge).
  std::string edge_addr;
  /// Driver and edge: cloud address (always required).
  std::string cloud_addr;

  /// One normalized-entropy threshold per non-final exit.
  std::vector<double> thresholds;
  /// Timeout/retry/backoff for every framed send (same struct the
  /// simulator's ReliableChannel uses).
  ReliabilityConfig reliability{};
  /// Driver/edge: how long to wait for a Decision before treating the tier
  /// above as unreachable.
  double decision_timeout_s = 5.0;
  double connect_timeout_s = 10.0;
  /// Servers: exit after this much silence (keeps CI runs from hanging).
  double idle_timeout_s = 120.0;

  /// Driver: classify only the first N test samples (-1 = all).
  std::int64_t max_samples = -1;
  /// Driver: after a channel's first undelivered send, fail its later sends
  /// immediately instead of waiting out the timeout ladder every sample.
  bool fail_fast = true;
  /// Servers: accept frames and never respond — the forced-timeout
  /// degradation hook the e2e test points at the edge tier.
  bool blackhole = false;

  /// Driver artifacts: per-sample decisions CSV (the parity artifact the
  /// e2e test compares against `ddnn simulate --decisions-out`), wall-clock
  /// spans, metrics registry.
  std::string decisions_out;
  obs::SpanTracer* tracer = nullptr;          // not owned
  obs::MetricsRegistry* metrics = nullptr;    // not owned
};

/// Run the cloud tier: listen, ACK feature/raw frames, answer Classify
/// requests with Decision frames (running the edge section or the whole
/// network itself for the degraded modes). Returns a process exit code.
int serve_cloud(core::DdnnModel& model, const ServeOptions& opts);

/// Run the edge tier: ACK device feature frames, run the edge trunk + fused
/// edge exit on Classify, escalate undecided samples to the cloud and relay
/// its Decision (adding the bytes this tier sent upstream).
int serve_edge(core::DdnnModel& model, const ServeOptions& opts);

/// The device tier doubles as the driver: hosts the DeviceNodes and the
/// gateway fuse locally (they are colocated in the paper's deployment too),
/// streams escalations over real sockets, and collects one InferenceTrace
/// per sample — the same struct the simulator produces, with wall-clock
/// latency.
struct DriveResult {
  RuntimeMetrics metrics;
  std::vector<InferenceTrace> traces;
};
DriveResult drive_hierarchy(core::DdnnModel& model,
                            const std::vector<data::MvmcSample>& samples,
                            const std::vector<int>& device_map,
                            const ServeOptions& opts);

/// Per-sample decisions CSV shared by `ddnn simulate --decisions-out` and
/// the serve driver: sample,exit,prediction,entropy,bytes,degraded,dead.
/// Entropy prints with enough digits to round-trip doubles exactly, so two
/// byte-identical files mean bit-identical decisions.
void write_decisions_csv(const std::string& path,
                         const std::vector<InferenceTrace>& traces);

/// Model-identity handshake payload: both ends of a connection must derive
/// the same signature from their --preset/--devices/--filters flags.
std::string model_signature(const core::DdnnModel& model);

}  // namespace ddnn::dist
