#include "dist/queueing.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ddnn::dist {

double percentile_nearest_rank(const std::vector<double>& sorted_ascending,
                               double q) {
  return ddnn::percentile_nearest_rank(sorted_ascending, q);
}

double exponential_from_uniform(double u, double rate_hz) {
  DDNN_CHECK(rate_hz > 0.0, "non-positive arrival rate " << rate_hz);
  // Clamp u away from 1: -log(1 - 1) is +inf, which would freeze the
  // arrival clock forever. The largest double below 1 keeps the tail gap
  // finite (~36.7 mean inter-arrival times) without biasing the body.
  constexpr double kBelowOne = 0x1.fffffffffffffp-1;
  u = std::clamp(u, 0.0, kBelowOne);
  return -std::log(1.0 - u) / rate_hz;
}

namespace {

/// Sort + summarize a latency sample; all-zero when the sample is empty
/// (e.g. every trace was dead), never UB.
void fill_latency_stats(std::vector<double>& latencies, double& mean,
                        double& p50, double& p95, double& max) {
  if (latencies.empty()) {
    mean = p50 = p95 = max = 0.0;
    return;
  }
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (const double l : latencies) sum += l;
  mean = sum / static_cast<double>(latencies.size());
  p50 = ddnn::percentile_nearest_rank(latencies, 0.50);
  p95 = ddnn::percentile_nearest_rank(latencies, 0.95);
  max = latencies.back();
}

}  // namespace

QueueingStats simulate_stream(const std::vector<InferenceTrace>& traces,
                              const QueueingConfig& config,
                              std::int64_t stream_length) {
  DDNN_CHECK(!traces.empty(), "queueing simulation needs at least one trace");
  DDNN_CHECK(config.arrival_rate_hz > 0.0, "non-positive arrival rate");
  DDNN_CHECK(config.cloud_service_s >= 0.0, "negative service time");
  DDNN_CHECK(stream_length > 0, "non-positive stream length");

  Rng rng(config.seed);
  QueueingStats stats;
  stats.samples = stream_length;

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(stream_length));

  double now = 0.0;              // arrival clock
  double cloud_free_at = 0.0;    // single-server FIFO cloud
  double cloud_busy_total = 0.0;

  for (std::int64_t k = 0; k < stream_length; ++k) {
    // Poisson arrivals: exponential inter-arrival times.
    now += exponential_from_uniform(rng.uniform(), config.arrival_rate_hz);
    const InferenceTrace& trace =
        traces[static_cast<std::size_t>(k) % traces.size()];

    if (trace.exit_taken < 0) {
      // Dead trace: nothing classified it, so nothing is serviced. It must
      // not occupy the cloud server or contribute a latency sample.
      ++stats.dead;
      continue;
    }
    if (trace.exit_taken == 0) {
      // Local exit: device + gateway latency only, no shared resource.
      latencies.push_back(trace.latency_s);
      continue;
    }
    ++stats.escalated;
    // The sample reaches the cloud after its network latency, then waits
    // for the server.
    const double at_cloud = now + trace.latency_s;
    const double start = std::max(at_cloud, cloud_free_at);
    const double done = start + config.cloud_service_s;
    cloud_busy_total += config.cloud_service_s;
    cloud_free_at = done;
    latencies.push_back(done - now);
  }

  fill_latency_stats(latencies, stats.mean_latency_s, stats.p50_latency_s,
                     stats.p95_latency_s, stats.max_latency_s);
  const double horizon = std::max(now, cloud_free_at);
  stats.cloud_utilization = horizon > 0.0 ? cloud_busy_total / horizon : 0.0;
  return stats;
}

// ------------------------------------------------------ fleet-scale network

EdgePolicy parse_edge_policy(const std::string& name) {
  if (name == "nearest") return EdgePolicy::kNearest;
  if (name == "least-loaded") return EdgePolicy::kLeastLoaded;
  if (name == "round-robin") return EdgePolicy::kRoundRobin;
  DDNN_CHECK(false, "unknown edge policy '"
                        << name
                        << "' (expected nearest|least-loaded|round-robin)");
  return EdgePolicy::kNearest;
}

std::string to_string(EdgePolicy policy) {
  switch (policy) {
    case EdgePolicy::kNearest: return "nearest";
    case EdgePolicy::kLeastLoaded: return "least-loaded";
    case EdgePolicy::kRoundRobin: return "round-robin";
  }
  return "?";
}

double FleetStats::mean_edge_utilization() const {
  if (edges.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : edges) sum += e.utilization;
  return sum / static_cast<double>(edges.size());
}

Table FleetStats::station_table() const {
  Table table({"Station", "Served", "Batches", "Shed", "Peak queue",
               "Util. (%)"});
  for (std::size_t g = 0; g < edges.size(); ++g) {
    const auto& e = edges[g];
    table.add_row({"edge" + std::to_string(g), std::to_string(e.served),
                   std::to_string(e.batches), std::to_string(e.shed),
                   std::to_string(e.peak_queue),
                   Table::num(100.0 * e.utilization, 1)});
  }
  table.add_row({"cloud", std::to_string(cloud.served),
                 std::to_string(cloud.batches), std::to_string(cloud.shed),
                 std::to_string(cloud.peak_queue),
                 Table::num(100.0 * cloud.utilization, 1)});
  return table;
}

namespace {

/// One sample in flight through the network.
struct Job {
  double entry_t = 0.0;     // network-entry time (open-loop arrival)
  bool needs_cloud = false; // continues edge -> cloud after edge service
  bool local = false;       // device-tier exit, never touches a station
  std::int64_t index = 0;   // arrival index — the exemplar sample index
  std::uint64_t trace_id = 0;  // replayed trace's distributed trace id
};

/// Heap events, processed in (t, seq) order. seq is the schedule sequence
/// number, so simultaneous events resolve in the deterministic order they
/// were created — never by allocation address or hash order.
struct Event {
  enum class Kind { kEntry, kStationArrival, kServerFree, kDone };
  double t = 0.0;
  std::int64_t seq = 0;
  Kind kind = Kind::kEntry;
  int station = -1;  // kStationArrival / kServerFree
  int server = -1;   // kServerFree
  std::int64_t index = 0;  // kEntry: arrival index
  Job job;           // kStationArrival / kDone
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

/// A FIFO station with a pool of identical servers and a bounded queue.
struct Station {
  std::vector<double> server_free_at;
  std::deque<Job> queue;
  StationStats stats;
};

/// fleet.* series column handles (all -1 when no series is bound).
struct FleetSeries {
  obs::WindowedSeries* series = nullptr;
  int arrivals = -1;
  int completed = -1;
  int local = -1;
  int escalated = -1;
  int dead = -1;
  int shed = -1;
  int latency_ms = -1;
  int hdr_latency_ms = -1;
  int queue_depth = -1;
  std::vector<int> station_queue;  // per-station queue gauge, cloud last
};

/// Deterministic stand-in trace id for pools that predate trace ids: the
/// same splitmix-style mix drive_hierarchy seeds span ids with, keyed by
/// the arrival index — never by wall clock, so exports stay byte-identical.
std::uint64_t minted_trace_id(std::int64_t index) {
  return (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(index + 1)) &
         ((1ull << 48) - 1);
}

/// Station metric name: fleet.station.edge<g> / fleet.station.cloud.
std::string station_prefix(int station, int cloud_idx) {
  return station == cloud_idx ? "fleet.station.cloud"
                              : "fleet.station.edge" + std::to_string(station);
}

}  // namespace

FleetStats simulate_fleet(const std::vector<InferenceTrace>& traces,
                          const FleetConfig& config,
                          std::int64_t stream_length,
                          obs::WindowedSeries* series,
                          obs::MetricsRegistry* registry,
                          obs::SloEngine* slo) {
  DDNN_CHECK(!traces.empty(), "fleet simulation needs at least one trace");
  DDNN_CHECK(stream_length > 0, "non-positive stream length");
  DDNN_CHECK(config.num_devices > 0, "fleet needs at least one device");
  DDNN_CHECK(config.num_edges > 0, "fleet needs at least one edge");
  DDNN_CHECK(config.edge_servers > 0 && config.cloud_servers > 0,
             "every server pool needs at least one server");
  DDNN_CHECK(config.edge_service_s >= 0.0 && config.cloud_service_s >= 0.0,
             "negative service time");
  DDNN_CHECK(config.edge_cloud_latency_s >= 0.0, "negative hop latency");
  DDNN_CHECK(config.max_batch >= 1, "max_batch must be >= 1");
  DDNN_CHECK(config.batch_growth >= 0.0, "negative batch growth");
  DDNN_CHECK(config.queue_capacity >= 1, "queue capacity must be >= 1");
  DDNN_CHECK(config.first_cloud_exit >= 1, "first_cloud_exit must be >= 1");
  if (config.interarrival_s.empty()) {
    DDNN_CHECK(config.arrival_rate_hz > 0.0, "non-positive arrival rate");
  } else {
    for (const double gap : config.interarrival_s) {
      DDNN_CHECK(gap >= 0.0 && std::isfinite(gap),
                 "inter-arrival gap " << gap << " must be finite and >= 0");
    }
  }

  // Latency tail buckets: millisecond values at microsecond resolution up
  // to an hour — a few thousand log buckets, <= 1/128 relative error.
  constexpr double kHdrUnitMs = 1e-3;
  constexpr double kHdrMaxMs = 3.6e6;
  const int cloud_idx = config.num_edges;

  FleetSeries fs;
  if (series != nullptr) {
    DDNN_CHECK(series->column_count() == 0,
               "simulate_fleet needs a freshly constructed series (it "
               "registers its own fleet.* columns)");
    fs.series = series;
    fs.arrivals = series->add_counter("fleet.arrivals");
    fs.completed = series->add_counter("fleet.completed");
    fs.local = series->add_counter("fleet.local");
    fs.escalated = series->add_counter("fleet.escalated");
    fs.dead = series->add_counter("fleet.dead");
    fs.shed = series->add_counter("fleet.shed");
    series->add_rate("fleet.throughput_hz", fs.completed);
    fs.latency_ms = series->add_histogram("fleet.latency_ms");
    fs.hdr_latency_ms =
        series->add_hdr("fleet.hdr_latency_ms", kHdrUnitMs, kHdrMaxMs);
    fs.queue_depth = series->add_gauge("fleet.queue_depth");
    for (int g = 0; g <= config.num_edges; ++g) {
      fs.station_queue.push_back(
          series->add_gauge(station_prefix(g, cloud_idx) + ".queue"));
    }
  }
  const auto tick = [&fs](int col, double t, double v) {
    if (fs.series != nullptr) fs.series->record(col, t, v);
  };

  // The tail histogram always runs (FleetStats reports p99/p99.9 and their
  // exemplars even without a registry); a bound registry shares it so the
  // same buckets land in the metrics export.
  obs::HdrHistogram local_hdr(kHdrUnitMs, kHdrMaxMs);
  obs::HdrHistogram& hdr =
      registry != nullptr
          ? registry->hdr_histogram("fleet.hdr_latency_ms", kHdrUnitMs,
                                    kHdrMaxMs)
          : local_hdr;

  int slo_latency = -1;
  int slo_availability = -1;
  if (slo != nullptr) {
    slo_latency = slo->add_objective(
        {.name = "fleet.latency",
         .tier = "fleet",
         .target = config.slo_latency_target,
         .fast_window = config.slo_fast_window_s,
         .slow_window = config.slo_slow_window_s});
    slo_availability = slo->add_objective(
        {.name = "fleet.availability",
         .tier = "fleet",
         .target = config.slo_availability_target,
         .fast_window = config.slo_fast_window_s,
         .slow_window = config.slo_slow_window_s});
  }

  FleetStats stats;
  stats.edges.resize(static_cast<std::size_t>(config.num_edges));

  // Stations 0..M-1 are edges, station M is the cloud.
  std::vector<Station> stations(static_cast<std::size_t>(config.num_edges) +
                                1);
  for (int g = 0; g < config.num_edges; ++g) {
    stations[static_cast<std::size_t>(g)].server_free_at.assign(
        static_cast<std::size_t>(config.edge_servers), 0.0);
  }
  stations[static_cast<std::size_t>(cloud_idx)].server_free_at.assign(
      static_cast<std::size_t>(config.cloud_servers), 0.0);

  std::priority_queue<Event, std::vector<Event>, EventAfter> events;
  std::int64_t seq = 0;
  const auto push = [&events, &seq](Event ev) {
    ev.seq = seq++;
    events.push(std::move(ev));
  };

  Rng rng(config.seed);
  std::int64_t queued_total = 0;  // across every station, for the gauge
  std::int64_t rr_next = 0;       // round-robin edge cursor
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(stream_length));

  // Dispatch loop for one station: every free server takes up to max_batch
  // queued samples (the cloud serves singly; its upstream edge already
  // batched the section forward pass) and serves the batch in
  // base * (1 + (k-1) * growth).
  const auto dispatch = [&](int station_idx, double now) {
    Station& st = stations[static_cast<std::size_t>(station_idx)];
    const bool is_cloud = station_idx == cloud_idx;
    const double base_service =
        is_cloud ? config.cloud_service_s : config.edge_service_s;
    while (!st.queue.empty()) {
      int srv = -1;
      for (std::size_t s = 0; s < st.server_free_at.size(); ++s) {
        if (st.server_free_at[s] <= now) {
          srv = static_cast<int>(s);
          break;
        }
      }
      if (srv < 0) return;
      const auto batch = is_cloud
                             ? std::int64_t{1}
                             : std::min<std::int64_t>(
                                   config.max_batch,
                                   static_cast<std::int64_t>(st.queue.size()));
      const double service =
          base_service *
          (1.0 + static_cast<double>(batch - 1) * config.batch_growth);
      const double done = now + service;
      st.server_free_at[static_cast<std::size_t>(srv)] = done;
      st.stats.busy_s += service;
      st.stats.served += batch;
      ++st.stats.batches;
      push({.t = done, .kind = Event::Kind::kServerFree,
            .station = station_idx, .server = srv, .job = {}});
      for (std::int64_t b = 0; b < batch; ++b) {
        Job job = st.queue.front();
        st.queue.pop_front();
        --queued_total;
        if (!is_cloud && job.needs_cloud) {
          push({.t = done + config.edge_cloud_latency_s,
                .kind = Event::Kind::kStationArrival, .station = cloud_idx,
                .job = job});
        } else {
          push({.t = done, .kind = Event::Kind::kDone, .job = job});
        }
      }
    }
  };

  // Seed the arrival chain: entry k schedules entry k+1, so the heap stays
  // small and the RNG draw order is exactly the arrival order.
  double arrival_clock =
      config.interarrival_s.empty()
          ? exponential_from_uniform(rng.uniform(), config.arrival_rate_hz)
          : config.interarrival_s[0];
  push({.t = arrival_clock, .kind = Event::Kind::kEntry, .index = 0,
        .job = {}});

  double horizon = 0.0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const double now = ev.t;
    horizon = std::max(horizon, now);
    switch (ev.kind) {
      case Event::Kind::kEntry: {
        if (ev.index + 1 < stream_length) {
          arrival_clock +=
              config.interarrival_s.empty()
                  ? exponential_from_uniform(rng.uniform(),
                                             config.arrival_rate_hz)
                  : config.interarrival_s[static_cast<std::size_t>(
                        (ev.index + 1) %
                        static_cast<std::int64_t>(
                            config.interarrival_s.size()))];
          push({.t = arrival_clock, .kind = Event::Kind::kEntry,
                .index = ev.index + 1, .job = {}});
        }
        ++stats.arrivals;
        tick(fs.arrivals, now, 1.0);
        const int device = static_cast<int>(
            rng.uniform_index(static_cast<std::uint64_t>(config.num_devices)));
        const InferenceTrace& trace =
            traces[static_cast<std::size_t>(ev.index) % traces.size()];
        if (trace.exit_taken < 0) {
          // Dead trace: no tier classified it — it must never occupy a
          // queueing server or contribute a latency sample. It does count
          // against availability: the fleet failed to classify it.
          ++stats.dead;
          tick(fs.dead, now, 1.0);
          if (slo != nullptr) slo->record(slo_availability, now, false);
          break;
        }
        Job job;
        job.entry_t = now;
        job.index = ev.index;
        job.trace_id = trace.trace_id != 0 ? trace.trace_id
                                           : minted_trace_id(ev.index);
        if (trace.exit_taken == 0) {
          job.local = true;
          push({.t = now + trace.latency_s, .kind = Event::Kind::kDone,
                .job = job});
          break;
        }
        job.needs_cloud = trace.exit_taken >= config.first_cloud_exit;
        int edge = 0;
        switch (config.policy) {
          case EdgePolicy::kNearest:
            edge = static_cast<int>(
                static_cast<std::int64_t>(device) * config.num_edges /
                config.num_devices);
            break;
          case EdgePolicy::kRoundRobin:
            edge = static_cast<int>(rr_next++ %
                                    static_cast<std::int64_t>(
                                        config.num_edges));
            break;
          case EdgePolicy::kLeastLoaded: {
            std::int64_t best = -1;
            for (int g = 0; g < config.num_edges; ++g) {
              const Station& st = stations[static_cast<std::size_t>(g)];
              auto load = static_cast<std::int64_t>(st.queue.size());
              for (const double free_at : st.server_free_at) {
                if (free_at > now) ++load;
              }
              if (best < 0 || load < best) {
                best = load;
                edge = g;
              }
            }
            break;
          }
        }
        push({.t = now + trace.latency_s,
              .kind = Event::Kind::kStationArrival, .station = edge,
              .job = job});
        break;
      }
      case Event::Kind::kStationArrival: {
        Station& st = stations[static_cast<std::size_t>(ev.station)];
        if (static_cast<std::int64_t>(st.queue.size()) >=
            config.queue_capacity) {
          // Admission control: the queue is full, so the sample is shed —
          // counted at both the station and the network, never crashed on.
          ++st.stats.shed;
          ++stats.shed;
          tick(fs.shed, now, 1.0);
          if (slo != nullptr) slo->record(slo_availability, now, false);
          break;
        }
        st.queue.push_back(ev.job);
        ++queued_total;
        st.stats.peak_queue = std::max(
            st.stats.peak_queue, static_cast<std::int64_t>(st.queue.size()));
        dispatch(ev.station, now);
        tick(fs.queue_depth, now, static_cast<double>(queued_total));
        if (!fs.station_queue.empty()) {
          tick(fs.station_queue[static_cast<std::size_t>(ev.station)], now,
               static_cast<double>(st.queue.size()));
        }
        break;
      }
      case Event::Kind::kServerFree: {
        dispatch(ev.station, now);
        tick(fs.queue_depth, now, static_cast<double>(queued_total));
        if (!fs.station_queue.empty()) {
          tick(fs.station_queue[static_cast<std::size_t>(ev.station)], now,
               static_cast<double>(
                   stations[static_cast<std::size_t>(ev.station)]
                       .queue.size()));
        }
        break;
      }
      case Event::Kind::kDone: {
        const double latency = now - ev.job.entry_t;
        latencies.push_back(latency);
        ++stats.completed;
        tick(fs.completed, now, 1.0);
        if (ev.job.local) {
          ++stats.local;
          tick(fs.local, now, 1.0);
        } else {
          ++stats.escalated;
          tick(fs.escalated, now, 1.0);
        }
        const double latency_ms = 1e3 * latency;
        tick(fs.latency_ms, now, latency_ms);
        hdr.record(latency_ms, ev.job.trace_id, ev.job.index);
        if (fs.series != nullptr) {
          fs.series->record(fs.hdr_latency_ms, now, latency_ms,
                            ev.job.trace_id, ev.job.index);
        }
        if (slo != nullptr) {
          slo->record(slo_latency, now, latency_ms <= config.slo_latency_ms);
          slo->record(slo_availability, now, true);
        }
        break;
      }
    }
  }

  fill_latency_stats(latencies, stats.mean_latency_s, stats.p50_latency_s,
                     stats.p95_latency_s, stats.max_latency_s);
  if (hdr.count() > 0) {
    stats.p99_latency_s = 1e-3 * hdr.percentile(0.99);
    stats.p999_latency_s = 1e-3 * hdr.percentile(0.999);
    stats.p99_exemplar = hdr.exemplar_at(0.99);
    stats.p999_exemplar = hdr.exemplar_at(0.999);
    stats.max_exemplar = hdr.max_exemplar();
  }
  stats.horizon_s = horizon;
  stats.throughput_hz =
      horizon > 0.0 ? static_cast<double>(stats.completed) / horizon : 0.0;
  for (int g = 0; g <= config.num_edges; ++g) {
    const Station& st = stations[static_cast<std::size_t>(g)];
    StationStats out = st.stats;
    const double pool =
        static_cast<double>(st.server_free_at.size()) * horizon;
    out.utilization = pool > 0.0 ? out.busy_s / pool : 0.0;
    if (g == cloud_idx) {
      stats.cloud = out;
    } else {
      stats.edges[static_cast<std::size_t>(g)] = out;
    }
    if (registry != nullptr) {
      const std::string prefix = station_prefix(g, cloud_idx);
      registry->counter(prefix + ".served").add(out.served);
      registry->counter(prefix + ".batches").add(out.batches);
      registry->counter(prefix + ".shed").add(out.shed);
      registry->gauge(prefix + ".peak_queue")
          .set(static_cast<double>(out.peak_queue));
      registry->gauge(prefix + ".utilization").set(out.utilization);
    }
  }
  return stats;
}

}  // namespace ddnn::dist
