#include "dist/queueing.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ddnn::dist {

double percentile_nearest_rank(const std::vector<double>& sorted_ascending,
                               double q) {
  return ddnn::percentile_nearest_rank(sorted_ascending, q);
}

QueueingStats simulate_stream(const std::vector<InferenceTrace>& traces,
                              const QueueingConfig& config,
                              std::int64_t stream_length) {
  DDNN_CHECK(!traces.empty(), "queueing simulation needs at least one trace");
  DDNN_CHECK(config.arrival_rate_hz > 0.0, "non-positive arrival rate");
  DDNN_CHECK(config.cloud_service_s >= 0.0, "negative service time");
  DDNN_CHECK(stream_length > 0, "non-positive stream length");

  Rng rng(config.seed);
  QueueingStats stats;
  stats.samples = stream_length;

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(stream_length));

  double now = 0.0;              // arrival clock
  double cloud_free_at = 0.0;    // single-server FIFO cloud
  double cloud_busy_total = 0.0;

  for (std::int64_t k = 0; k < stream_length; ++k) {
    // Poisson arrivals: exponential inter-arrival times.
    now += -std::log(1.0 - rng.uniform()) / config.arrival_rate_hz;
    const InferenceTrace& trace =
        traces[static_cast<std::size_t>(k) % traces.size()];

    if (trace.exit_taken == 0) {
      // Local exit: device + gateway latency only, no shared resource.
      latencies.push_back(trace.latency_s);
      continue;
    }
    ++stats.escalated;
    // The sample reaches the cloud after its network latency, then waits
    // for the server.
    const double at_cloud = now + trace.latency_s;
    const double start = std::max(at_cloud, cloud_free_at);
    const double done = start + config.cloud_service_s;
    cloud_busy_total += config.cloud_service_s;
    cloud_free_at = done;
    latencies.push_back(done - now);
  }

  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (const double l : latencies) sum += l;
  stats.mean_latency_s = sum / static_cast<double>(latencies.size());
  stats.p50_latency_s = percentile_nearest_rank(latencies, 0.50);
  stats.p95_latency_s = percentile_nearest_rank(latencies, 0.95);
  stats.max_latency_s = latencies.back();
  const double horizon = std::max(now, cloud_free_at);
  stats.cloud_utilization = horizon > 0.0 ? cloud_busy_total / horizon : 0.0;
  return stats;
}

}  // namespace ddnn::dist
