#include "dist/serve.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "core/inference.hpp"
#include "dist/node.hpp"
#include "infer/workspace.hpp"
#include "util/error.hpp"

namespace ddnn::dist {
namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------ protocol payloads

struct DecisionPayload {
  std::int64_t sample = 0;
  std::int32_t exit_taken = -1;
  std::int64_t prediction = -1;
  double entropy = 1.0;
  std::int64_t upstream_bytes = 0;
  bool degraded = false;
};

Frame decision_frame(const DecisionPayload& d) {
  Frame frame;
  frame.kind = FrameKind::kDecision;
  PayloadWriter w;
  w.i64(d.sample);
  w.i32(d.exit_taken);
  w.i64(d.prediction);
  w.f64(d.entropy);
  w.i64(d.upstream_bytes);
  w.u8(d.degraded ? 1 : 0);
  frame.payload = w.take();
  return frame;
}

DecisionPayload decode_decision(const Frame& frame) {
  PayloadReader r(frame.payload.data(), frame.payload.size(), "decision");
  DecisionPayload d;
  d.sample = r.i64();
  d.exit_taken = r.i32();
  d.prediction = r.i64();
  d.entropy = r.f64();
  d.upstream_bytes = r.i64();
  d.degraded = r.u8() != 0;
  return d;
}

Frame classify_frame(std::int64_t sample, ClassifyMode mode) {
  Frame frame;
  frame.kind = FrameKind::kClassify;
  PayloadWriter w;
  w.i64(sample);
  w.u8(static_cast<std::uint8_t>(mode));
  frame.payload = w.take();
  return frame;
}

Frame hello_frame(const std::string& role, const std::string& signature) {
  Frame frame;
  frame.kind = FrameKind::kHello;
  PayloadWriter w;
  w.str(role);
  w.str(signature);
  frame.payload = w.take();
  return frame;
}

// ----------------------------------------------------------- server loop

/// One accepted connection plus the per-sample frames it has delivered and
/// not yet consumed by a Classify. sample -> branch -> Message.
struct ServedConn {
  std::shared_ptr<FrameConn> conn;
  std::map<std::int64_t, std::map<std::int32_t, Message>> pending;
};

/// Shared edge/cloud skeleton: listen (writing the bound port to the port
/// file for the process that spawned us), poll every connection, feed
/// complete frames to `handle(ServedConn&, Frame&)`, exit when every peer
/// has disconnected (or the idle timeout fires). Servers are
/// single-threaded: each request runs to completion on the accept thread,
/// so per-thread == per-connection inference workspaces (infer/workspace).
class FrameServer {
 public:
  FrameServer(const char* role, const ServeOptions& opts)
      : role_(role), opts_(opts), listener_(opts.listen_port) {
    if (!opts_.port_file.empty()) {
      std::ofstream out(opts_.port_file);
      DDNN_CHECK(out.good(),
                 "cannot write port file '" << opts_.port_file << "'");
      out << listener_.port() << "\n";
    }
    std::printf("ddnn serve [%s]: listening on 127.0.0.1:%d%s\n", role_,
                listener_.port(), opts_.blackhole ? " (blackhole)" : "");
    std::fflush(stdout);
  }

  int port() const { return listener_.port(); }

  template <typename Handler>
  int run(Handler&& handle) {
    double last_activity = wall_s();
    bool saw_conn = false;
    while (true) {
      // One poll over the listener and every live connection.
      std::vector<pollfd> fds;
      fds.push_back({listener_.fd(), POLLIN, 0});
      for (auto& sc : conns_) {
        if (!sc.conn->closed()) fds.push_back({sc.conn->fd(), POLLIN, 0});
      }
      ::poll(fds.data(), fds.size(), 100);

      if (auto conn = listener_.accept(0.0)) {
        conns_.push_back(ServedConn{std::move(conn), {}});
        saw_conn = true;
        last_activity = wall_s();
      }
      for (auto& sc : conns_) {
        if (sc.conn->closed()) continue;
        std::vector<Frame> frames;
        try {
          frames = sc.conn->poll_frames();
        } catch (const ddnn::Error& e) {
          std::fprintf(stderr, "ddnn serve [%s]: dropping peer: %s\n", role_,
                       e.what());
          sc.conn->close();
          continue;
        }
        if (!frames.empty()) last_activity = wall_s();
        for (Frame& frame : frames) {
          if (opts_.blackhole) continue;  // read everything, answer nothing
          if (frame.kind == FrameKind::kBye) {
            sc.conn->close();
            break;
          }
          try {
            handle(sc, frame);
          } catch (const ddnn::Error& e) {
            std::fprintf(stderr, "ddnn serve [%s]: request failed: %s\n",
                         role_, e.what());
          }
        }
        if (!sc.conn->closed()) sc.conn->flush(opts_.reliability.timeout_s);
      }
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [](const ServedConn& sc) {
                                    return sc.conn->closed();
                                  }),
                   conns_.end());
      if (saw_conn && conns_.empty()) break;  // every peer hung up
      if (wall_s() - last_activity > opts_.idle_timeout_s) {
        std::fprintf(stderr, "ddnn serve [%s]: idle for %.0f s, exiting\n",
                     role_, opts_.idle_timeout_s);
        return saw_conn ? 0 : 1;
      }
    }
    std::printf("ddnn serve [%s]: all peers disconnected, exiting\n", role_);
    return 0;
  }

  /// ACK a data frame and stash its Message under (sample, branch).
  void accept_data(ServedConn& sc, const Frame& frame) {
    MessageMeta meta;
    Message msg = frame_message(frame, &meta);
    sc.pending[meta.sample][meta.branch] = std::move(msg);
    // Bound the stash: a sample the driver abandoned (timeout ladder) would
    // otherwise pin its features forever.
    while (sc.pending.size() > 64) sc.pending.erase(sc.pending.begin());
    Frame ack;
    ack.kind = FrameKind::kAck;
    ack.seq = frame.seq;
    sc.conn->queue(ack);
  }

  /// Answer a Hello with our own (role, signature); a mismatched model is a
  /// loud failure on both ends instead of silently-diverging inference.
  void answer_hello(ServedConn& sc, const Frame& frame,
                    const std::string& signature) {
    PayloadReader r(frame.payload.data(), frame.payload.size(), "hello");
    const std::string peer_role = r.str();
    const std::string peer_sig = r.str();
    DDNN_CHECK(peer_sig == signature,
               "model mismatch: peer '" << peer_role << "' runs " << peer_sig
                                        << ", this " << role_ << " runs "
                                        << signature);
    Frame reply = hello_frame(role_, signature);
    reply.seq = frame.seq;
    sc.conn->queue(reply);
  }

  /// Collect sample `s`'s pending messages into a branch-indexed vector and
  /// drop the stash (plus anything older — those samples were abandoned).
  std::vector<std::optional<Message>> take_sample(ServedConn& sc,
                                                  std::int64_t s,
                                                  std::size_t branches) {
    std::vector<std::optional<Message>> out(branches);
    const auto it = sc.pending.find(s);
    if (it != sc.pending.end()) {
      for (auto& [branch, msg] : it->second) {
        if (branch >= 0 && static_cast<std::size_t>(branch) < branches) {
          out[static_cast<std::size_t>(branch)] = std::move(msg);
        }
      }
    }
    sc.pending.erase(sc.pending.begin(), sc.pending.upper_bound(s));
    return out;
  }

 private:
  const char* role_;
  const ServeOptions& opts_;
  Listener listener_;
  std::vector<ServedConn> conns_;
};

}  // namespace

std::string model_signature(const core::DdnnModel& model) {
  const auto& cfg = model.config();
  std::ostringstream os;
  os << "devices=" << cfg.num_devices << ";filters=" << cfg.device_filters
     << ";classes=" << cfg.num_classes << ";exits=" << cfg.num_exits()
     << ";local_exit=" << (cfg.has_local_exit ? 1 : 0) << ";groups=";
  for (const auto& g : cfg.edge_groups) os << g.size() << ",";
  return os.str();
}

void write_decisions_csv(const std::string& path,
                         const std::vector<InferenceTrace>& traces) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  DDNN_CHECK(f != nullptr, "cannot write decisions CSV '" << path << "'");
  std::fprintf(f, "sample,exit,prediction,entropy,bytes,degraded,dead\n");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const InferenceTrace& t = traces[i];
    // %.17g round-trips doubles exactly: byte-identical files mean
    // bit-identical decisions.
    std::fprintf(f, "%zu,%d,%lld,%.17g,%lld,%d,%d\n", i, t.exit_taken,
                 static_cast<long long>(t.prediction), t.entropy,
                 static_cast<long long>(t.bytes_sent), t.degraded ? 1 : 0,
                 t.dead ? 1 : 0);
  }
  std::fclose(f);
}

// ------------------------------------------------------------------ cloud

int serve_cloud(core::DdnnModel& model, const ServeOptions& opts) {
  const auto& cfg = model.config();
  CloudNode cloud(model);
  FrameServer server("cloud", opts);
  const std::string signature = model_signature(model);
  const std::size_t n_dev = static_cast<std::size_t>(cfg.num_devices);
  const std::size_t n_groups = cfg.edge_groups.size();

  return server.run([&](ServedConn& sc, const Frame& frame) {
    if (frame.kind == FrameKind::kHello) {
      server.answer_hello(sc, frame, signature);
      return;
    }
    if (is_data_kind(frame.kind)) {
      server.accept_data(sc, frame);
      return;
    }
    if (frame.kind != FrameKind::kClassify) return;

    PayloadReader r(frame.payload.data(), frame.payload.size(), "classify");
    const std::int64_t sample = r.i64();
    const auto mode = static_cast<ClassifyMode>(r.u8());

    DecisionPayload d;
    d.sample = sample;
    d.degraded = mode != ClassifyMode::kNormal;
    if (mode == ClassifyMode::kNormal) {
      // Features from the tier directly below: edge branches when the
      // hierarchy has an edge tier, device branches otherwise — the
      // simulator's healthy stage-6 path.
      const std::size_t branches = cfg.has_edge() ? n_groups : n_dev;
      auto feats = server.take_sample(sc, sample, branches);
      const bool any = std::any_of(feats.begin(), feats.end(),
                                   [](const auto& m) { return m.has_value(); });
      if (any) {
        const ExitDecision dec = decide_exit(cloud.process(feats, 1));
        d.exit_taken = cfg.num_exits() - 1;
        d.prediction = dec.prediction;
        d.entropy = dec.entropy;
      }
    } else if (mode == ClassifyMode::kEdgeAtCloud) {
      // Edge outage route: device features arrived directly; this process
      // runs every edge group's section itself, then classifies — the same
      // computation the simulator's whole-tier outage performs.
      auto feats = server.take_sample(sc, sample, n_dev);
      std::vector<std::optional<Message>> branches(n_groups);
      for (std::size_t g = 0; g < n_groups; ++g) {
        branches[g] = edge_section_at_cloud(model, g, feats);
      }
      const bool any =
          std::any_of(branches.begin(), branches.end(),
                      [](const auto& m) { return m.has_value(); });
      if (any) {
        const ExitDecision dec = decide_exit(cloud.process(branches, 1));
        d.exit_taken = cfg.num_exits() - 1;
        d.prediction = dec.prediction;
        d.entropy = dec.entropy;
      }
    } else if (mode == ClassifyMode::kRawOffload) {
      auto raws = server.take_sample(sc, sample, n_dev);
      const bool any = std::any_of(raws.begin(), raws.end(),
                                   [](const auto& m) { return m.has_value(); });
      if (any) {
        const ExitDecision dec =
            decide_exit(cloud_forward_from_raw_views(model, raws));
        d.exit_taken = cfg.num_exits() - 1;
        d.prediction = dec.prediction;
        d.entropy = dec.entropy;
      }
    }
    sc.conn->queue(decision_frame(d));
  });
}

// ------------------------------------------------------------------- edge

int serve_edge(core::DdnnModel& model, const ServeOptions& opts) {
  const auto& cfg = model.config();
  DDNN_CHECK(cfg.has_edge(), "edge role on a hierarchy without an edge tier");
  DDNN_CHECK(cfg.edge_groups.size() == 1,
             "ddnn serve runs one edge process; multi-edge presets are "
             "simulator-only for now");
  EdgeNode edge(0, model);
  const std::string signature = model_signature(model);
  const std::size_t n_dev = static_cast<std::size_t>(cfg.num_devices);
  const int edge_exit_index = cfg.has_local_exit ? 1 : 0;
  const double threshold =
      opts.thresholds.at(static_cast<std::size_t>(edge_exit_index));

  // Upstream leg: this process is itself a SocketTransport client of the
  // cloud. The Link mirrors the simulator's edge->cloud backhaul so the
  // delivered-byte accounting reported in Decision.upstream_bytes matches.
  SocketTransport uplink(opts.reliability);
  Link edge_cloud_link("edge0->cloud", RuntimeConfig{}.edge_link);
  if (!opts.blackhole) {
    DDNN_CHECK(!opts.cloud_addr.empty(), "edge role needs --cloud host:port");
    auto cloud_conn = connect_to(opts.cloud_addr, opts.connect_timeout_s);
    DDNN_CHECK(cloud_conn != nullptr,
               "cannot reach the cloud at " << opts.cloud_addr);
    uplink.attach(edge_cloud_link.name(), cloud_conn);
    uplink.attach("cloud-ctl", cloud_conn);
    DDNN_CHECK(uplink.post("cloud-ctl", hello_frame("edge", signature)),
               "cloud handshake send failed");
    const auto reply =
        uplink.await("cloud-ctl", FrameKind::kHello, opts.connect_timeout_s);
    DDNN_CHECK(reply.has_value(), "cloud handshake timed out");
  }

  FrameServer server("edge", opts);
  const int rc = server.run([&](ServedConn& sc, const Frame& frame) {
    if (frame.kind == FrameKind::kHello) {
      server.answer_hello(sc, frame, signature);
      return;
    }
    if (is_data_kind(frame.kind)) {
      server.accept_data(sc, frame);
      return;
    }
    if (frame.kind != FrameKind::kClassify) return;

    PayloadReader r(frame.payload.data(), frame.payload.size(), "classify");
    const std::int64_t sample = r.i64();
    r.u8();  // mode: an edge only serves the normal route

    DecisionPayload d;
    d.sample = sample;
    auto feats = server.take_sample(sc, sample, n_dev);
    std::vector<std::optional<Message>> members;
    bool any = false;
    for (int dev : cfg.edge_groups[0]) {
      members.push_back(feats[static_cast<std::size_t>(dev)]);
      any = any || members.back().has_value();
    }
    if (!any) {  // classify without a single delivered feature
      sc.conn->queue(decision_frame(d));
      return;
    }

    // Trunk + fused edge exit, exactly the simulator's stages 3-4. The
    // score message's bytes are charged as upstream traffic: the simulator
    // sends them to the edge-exit coordinator over a real link.
    Message scores = edge.process(members, 1);
    d.upstream_bytes += scores.payload_bytes();
    std::vector<core::Variable> logits;
    logits.emplace_back(decode_class_scores(scores, cfg.num_classes));
    const Tensor fused =
        model.edge_exit_aggregate(logits, {true}).value();
    const ExitDecision dec = decide_exit(fused);
    if (core::should_exit(dec.entropy, threshold)) {
      d.exit_taken = edge_exit_index;
      d.prediction = dec.prediction;
      d.entropy = dec.entropy;
      sc.conn->queue(decision_frame(d));
      return;
    }

    // Stage 5: escalate this edge's features to the cloud and relay its
    // Decision, adding the bytes spent on the way up.
    const Message features = edge.feature_message();
    const SendResult sent = uplink.send(edge_cloud_link, features, sample);
    if (sent.delivered &&
        uplink.post("cloud-ctl", classify_frame(sample,
                                                ClassifyMode::kNormal))) {
      d.upstream_bytes += features.payload_bytes();
      const double deadline = wall_s() + opts.decision_timeout_s;
      while (wall_s() < deadline) {
        const auto reply = uplink.await("cloud-ctl", FrameKind::kDecision,
                                        deadline - wall_s());
        if (!reply.has_value()) break;
        DecisionPayload cloud_d = decode_decision(*reply);
        if (cloud_d.sample != sample) continue;  // stale abandoned sample
        d.exit_taken = cloud_d.exit_taken;
        d.prediction = cloud_d.prediction;
        d.entropy = cloud_d.entropy;
        d.degraded = d.degraded || cloud_d.degraded;
        d.upstream_bytes += cloud_d.upstream_bytes;
        break;
      }
    }
    sc.conn->queue(decision_frame(d));  // exit stays -1 if the cloud failed
  });
  if (!opts.blackhole && !uplink.channel_down("cloud-ctl")) {
    Frame bye;
    bye.kind = FrameKind::kBye;
    uplink.post("cloud-ctl", bye);
  }
  return rc;
}

// ----------------------------------------------------------------- driver

namespace {

/// Driver-side registry handles (mirrors HierarchyRuntime::bind_metrics so
/// `ddnn report` reads the served path with the same names, including the
/// per-destination link.* reliability breakdown).
struct DriverMetrics {
  obs::MetricsRegistry* registry = nullptr;
  obs::Counter* samples = nullptr;
  obs::Counter* bytes_total = nullptr;
  obs::Counter* correct = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* drops = nullptr;
  obs::Counter* timeouts = nullptr;
  obs::Counter* degraded = nullptr;
  obs::Counter* dead = nullptr;
  obs::Gauge* arena_bytes = nullptr;
  struct LinkCounters {
    obs::Counter* attempts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* bytes = nullptr;
  };
  std::map<const Link*, LinkCounters> links;

  void bind(obs::MetricsRegistry* reg, const std::vector<Link*>& all_links) {
    registry = reg;
    if (reg == nullptr) return;
    samples = &reg->counter("runtime.samples");
    bytes_total = &reg->counter("runtime.bytes_total");
    correct = &reg->counter("runtime.correct");
    retries = &reg->counter("runtime.retries");
    drops = &reg->counter("runtime.drops");
    timeouts = &reg->counter("runtime.timeouts");
    degraded = &reg->counter("runtime.degraded");
    dead = &reg->counter("runtime.dead");
    arena_bytes = &reg->gauge("serve.arena_bytes");
    for (const Link* link : all_links) {
      LinkCounters c;
      c.attempts = &reg->counter("link." + link->name() + ".attempts");
      c.retries = &reg->counter("link." + link->name() + ".retries");
      c.timeouts = &reg->counter("link." + link->name() + ".timeouts");
      c.bytes = &reg->counter("link." + link->name() + ".bytes");
      links[link] = c;
    }
  }
};

}  // namespace

DriveResult drive_hierarchy(core::DdnnModel& model,
                            const std::vector<data::MvmcSample>& samples,
                            const std::vector<int>& device_map,
                            const ServeOptions& opts) {
  const auto& cfg = model.config();
  DDNN_CHECK(!cfg.float_devices,
             "float-device models have no 1-bit wire format");
  DDNN_CHECK(static_cast<int>(opts.thresholds.size()) + 1 == cfg.num_exits(),
             "need one threshold per non-final exit");
  DDNN_CHECK(cfg.edge_groups.size() <= 1,
             "ddnn serve runs one edge process; multi-edge presets are "
             "simulator-only for now");
  DDNN_CHECK(!opts.cloud_addr.empty(), "driver needs --cloud host:port");
  const std::size_t n_dev = static_cast<std::size_t>(cfg.num_devices);
  const std::string signature = model_signature(model);
  const RuntimeConfig link_cfg{};  // the simulator's link parameters

  // Device-tier state: nodes, the colocated gateway, and the same Link
  // names/configs the simulator uses so byte accounting lines up.
  std::vector<DeviceNode> devices;
  std::vector<Link> gw_links;
  std::vector<Link> up_links;
  std::vector<Link> fb_links;
  for (std::size_t b = 0; b < n_dev; ++b) {
    devices.emplace_back(static_cast<int>(b), model, static_cast<int>(b));
    gw_links.emplace_back("device" + std::to_string(b) + "->gateway",
                          link_cfg.device_link);
    const std::string up_target = cfg.has_edge() ? "edge" : "cloud";
    up_links.emplace_back("device" + std::to_string(b) + "->" + up_target,
                          link_cfg.device_link);
    if (cfg.has_edge()) {
      fb_links.emplace_back("device" + std::to_string(b) + "->cloud(fallback)",
                            link_cfg.device_link);
    }
  }
  std::optional<GatewayNode> gateway;
  if (cfg.has_local_exit) gateway.emplace(model);

  // Wire up the transport: every cloud-bound channel shares one socket,
  // every edge-bound channel shares another.
  SocketTransport transport(opts.reliability);
  transport.set_fail_fast(opts.fail_fast);
  auto cloud_conn = connect_to(opts.cloud_addr, opts.connect_timeout_s);
  DDNN_CHECK(cloud_conn != nullptr,
             "cannot reach the cloud at " << opts.cloud_addr);
  transport.attach("cloud-ctl", cloud_conn);
  for (auto& l : fb_links) transport.attach(l.name(), cloud_conn);
  if (!cfg.has_edge()) {
    for (auto& l : up_links) transport.attach(l.name(), cloud_conn);
  }
  DDNN_CHECK(transport.post("cloud-ctl", hello_frame("driver", signature)),
             "cloud handshake send failed");
  DDNN_CHECK(transport.await("cloud-ctl", FrameKind::kHello,
                             opts.connect_timeout_s)
                 .has_value(),
             "cloud handshake timed out");

  bool edge_up = false;
  if (cfg.has_edge()) {
    DDNN_CHECK(!opts.edge_addr.empty(), "driver needs --edge host:port");
    if (auto edge_conn = connect_to(opts.edge_addr, opts.connect_timeout_s)) {
      transport.attach("edge-ctl", edge_conn);
      for (auto& l : up_links) transport.attach(l.name(), edge_conn);
      // A silent edge (down, blackholed) fails the handshake and the run
      // degrades from sample 0 — the served twin of a whole-run outage.
      edge_up = transport.post("edge-ctl", hello_frame("driver", signature)) &&
                transport
                    .await("edge-ctl", FrameKind::kHello,
                           opts.decision_timeout_s)
                    .has_value();
    }
    if (!edge_up) {
      std::fprintf(stderr,
                   "ddnn serve [driver]: edge unreachable, degrading to "
                   "cloud-only routes\n");
    }
  }

  DriveResult result;
  result.metrics.exit_counts.assign(
      static_cast<std::size_t>(cfg.num_exits()), 0);
  result.metrics.device_bytes.assign(n_dev, 0);
  DriverMetrics dm;
  {
    std::vector<Link*> all;
    for (auto& l : gw_links) all.push_back(&l);
    for (auto& l : up_links) all.push_back(&l);
    for (auto& l : fb_links) all.push_back(&l);
    dm.bind(opts.metrics, all);
  }
  obs::SpanTracer* tr = opts.tracer;
  if (tr != nullptr) {
    tr->set_track_name(0, "samples");
    tr->set_track_name(1, "driver-net");
  }
  const int cloud_exit = cfg.num_exits() - 1;
  const double run_start = wall_s();
  const std::int64_t limit =
      opts.max_samples < 0
          ? static_cast<std::int64_t>(samples.size())
          : std::min<std::int64_t>(opts.max_samples,
                                   static_cast<std::int64_t>(samples.size()));

  // Await the Decision for `sidx` on a control channel; stale decisions for
  // abandoned samples are discarded.
  auto await_decision =
      [&](const std::string& ctl,
          std::int64_t sidx) -> std::optional<DecisionPayload> {
    const double deadline = wall_s() + opts.decision_timeout_s;
    while (wall_s() < deadline) {
      const auto reply =
          transport.await(ctl, FrameKind::kDecision, deadline - wall_s());
      if (!reply.has_value()) return std::nullopt;
      DecisionPayload d = decode_decision(*reply);
      if (d.sample == sidx) return d;
    }
    return std::nullopt;
  };

  for (std::int64_t sidx = 0; sidx < limit; ++sidx) {
    const data::MvmcSample& sample = samples[static_cast<std::size_t>(sidx)];
    const double t0 = wall_s();
    InferenceTrace trace;

    // Book the finished trace (same shape as the simulator's commit).
    auto commit = [&](int exit_taken, std::int64_t prediction,
                      double entropy) {
      trace.exit_taken = exit_taken;
      trace.prediction = prediction;
      trace.entropy = entropy;
      trace.latency_s = wall_s() - t0;
      RuntimeMetrics& m = result.metrics;
      if (exit_taken >= 0) {
        ++m.exit_counts[static_cast<std::size_t>(exit_taken)];
      }
      ++m.samples;
      m.total_bytes += trace.bytes_sent;
      m.total_latency_s += trace.latency_s;
      if (trace.degraded) ++m.reliability.degraded_exits;
      if (trace.dead) ++m.reliability.dead_samples;
      if (trace.prediction == sample.label) ++m.correct;
      if (tr != nullptr) {
        tr->add("sample", "sample", 0, t0 - run_start, trace.latency_s)
            .with("sample_index", sidx)
            .with("exit", exit_taken)
            .with("prediction", prediction)
            .with("label", sample.label)
            .with("entropy", entropy)
            .with("bytes", trace.bytes_sent)
            .with("degraded", trace.degraded)
            .with("dead", trace.dead);
      }
      if (dm.registry != nullptr) {
        dm.samples->add(1);
        dm.bytes_total->add(trace.bytes_sent);
        if (trace.prediction == sample.label) dm.correct->add(1);
        if (trace.degraded) dm.degraded->add(1);
        if (trace.dead) dm.dead->add(1);
        dm.arena_bytes->set(
            static_cast<double>(infer::thread_arena_bytes()));
      }
      result.traces.push_back(trace);
    };

    // A delivered local send (device and gateway are colocated; the frame
    // still crosses the simulated gateway link for byte parity).
    auto local_send = [&](Link& link, const Message& msg, int branch) {
      link.transmit(msg);
      trace.bytes_sent += msg.payload_bytes();
      result.metrics.device_bytes[static_cast<std::size_t>(branch)] +=
          msg.payload_bytes();
      if (dm.registry != nullptr) {
        const auto& lc = dm.links.at(&link);
        lc.attempts->add(1);
        lc.bytes->add(msg.payload_bytes());
      }
    };

    // Account one socket SendResult exactly like the simulator's send().
    auto book_send = [&](Link& link, const Message& msg,
                         const SendResult& res, int branch) {
      result.metrics.reliability.drops += res.dropped_attempts;
      result.metrics.reliability.retries += res.attempts - 1;
      trace.retries += res.attempts - 1;
      if (res.delivered) {
        trace.bytes_sent += msg.payload_bytes();
        if (branch >= 0) {
          result.metrics.device_bytes[static_cast<std::size_t>(branch)] +=
              msg.payload_bytes();
        }
      } else {
        ++result.metrics.reliability.timeouts;
      }
      if (dm.registry != nullptr) {
        dm.drops->add(res.dropped_attempts);
        dm.retries->add(res.attempts - 1);
        if (!res.delivered) dm.timeouts->add(1);
        const auto& lc = dm.links.at(&link);
        lc.attempts->add(res.attempts);
        lc.retries->add(res.attempts - 1);
        if (!res.delivered) lc.timeouts->add(1);
        if (res.delivered) lc.bytes->add(msg.payload_bytes());
      }
      if (tr != nullptr) {
        tr->add("send", "net", 1, wall_s() - run_start, res.latency_s)
            .with("link", link.name())
            .with("sample_index", sidx)
            .with("attempts", res.attempts)
            .with("delivered", res.delivered);
      }
    };

    // Batched uplink flush of one message per device over `links`; returns
    // how many were delivered.
    auto send_all = [&](std::vector<Link>& links,
                        const std::vector<Message>& msgs) {
      std::vector<SocketTransport::BatchItem> batch;
      for (std::size_t b = 0; b < n_dev; ++b) {
        batch.push_back({&links[b], &msgs[b], sidx,
                         static_cast<std::int32_t>(b)});
      }
      const auto results = transport.send_batch(batch);
      int delivered = 0;
      for (std::size_t b = 0; b < n_dev; ++b) {
        book_send(links[b], msgs[b], results[b], static_cast<int>(b));
        if (results[b].delivered) ++delivered;
      }
      return delivered;
    };

    // --- Stage 0: every device senses its view and runs its section.
    for (std::size_t b = 0; b < n_dev; ++b) {
      devices[b].sense(
          sample.views.at(static_cast<std::size_t>(device_map[b])));
    }

    // --- Stage 1: local exit at the colocated gateway.
    int exit_index = 0;
    if (cfg.has_local_exit) {
      std::vector<std::optional<Message>> scores(n_dev);
      for (std::size_t b = 0; b < n_dev; ++b) {
        Message msg = devices[b].scores_message();
        local_send(gw_links[b], msg, static_cast<int>(b));
        scores[b] = std::move(msg);
      }
      const ExitDecision d = decide_exit(gateway->aggregate(scores));
      if (core::should_exit(d.entropy, opts.thresholds[0])) {
        commit(0, d.prediction, d.entropy);
        continue;
      }
      exit_index = 1;
    }

    // --- Stage 2: escalate features over real sockets, then ask the tier
    // above to decide. Fallbacks mirror the simulator's ladder.
    std::vector<Message> feats;
    for (std::size_t b = 0; b < n_dev; ++b) {
      feats.push_back(devices[b].feature_message());
    }

    bool decided = false;
    bool try_edge_at_cloud = false;
    if (cfg.has_edge() && edge_up) {
      if (send_all(up_links, feats) > 0 &&
          transport.post("edge-ctl",
                         classify_frame(sidx, ClassifyMode::kNormal))) {
        if (const auto d = await_decision("edge-ctl", sidx)) {
          if (d->exit_taken >= 0) {
            trace.bytes_sent += d->upstream_bytes;
            trace.degraded = trace.degraded || d->degraded;
            commit(d->exit_taken, d->prediction, d->entropy);
            decided = true;
          } else {
            try_edge_at_cloud = true;  // the edge could not reach a verdict
          }
        } else {
          edge_up = false;  // silent edge: degrade for the rest of the run
          try_edge_at_cloud = true;
        }
      } else {
        edge_up = edge_up && !transport.channel_down("edge-ctl");
        try_edge_at_cloud = true;
      }
    } else if (cfg.has_edge()) {
      try_edge_at_cloud = true;
    }

    if (!decided && cfg.has_edge() && try_edge_at_cloud) {
      // Edge unreachable: features go straight to the cloud, which runs the
      // edge section itself (the simulator's outage route).
      trace.degraded = true;
      if (send_all(fb_links, feats) > 0 &&
          transport.post("cloud-ctl",
                         classify_frame(sidx, ClassifyMode::kEdgeAtCloud))) {
        if (const auto d = await_decision("cloud-ctl", sidx)) {
          if (d->exit_taken >= 0) {
            commit(d->exit_taken, d->prediction, d->entropy);
            decided = true;
          }
        }
      }
    }
    if (!decided && !cfg.has_edge()) {
      if (send_all(up_links, feats) > 0 &&
          transport.post("cloud-ctl",
                         classify_frame(sidx, ClassifyMode::kNormal))) {
        if (const auto d = await_decision("cloud-ctl", sidx)) {
          if (d->exit_taken >= 0) {
            trace.degraded = trace.degraded || d->degraded;
            commit(d->exit_taken, d->prediction, d->entropy);
            decided = true;
          }
        }
      }
    }

    if (!decided) {
      // Last-resort raw offload over the cloud-bound links, then dead.
      trace.degraded = true;
      std::vector<Message> raws;
      for (std::size_t b = 0; b < n_dev; ++b) {
        raws.push_back(devices[b].raw_image_message());
      }
      std::vector<Link>& to_cloud = cfg.has_edge() ? fb_links : up_links;
      if (send_all(to_cloud, raws) > 0 &&
          transport.post("cloud-ctl",
                         classify_frame(sidx, ClassifyMode::kRawOffload))) {
        if (const auto d = await_decision("cloud-ctl", sidx)) {
          if (d->exit_taken >= 0) {
            commit(cloud_exit, d->prediction, d->entropy);
            decided = true;
          }
        }
      }
      if (!decided) {
        trace.dead = true;
        commit(-1, -1, 1.0);
      }
    }
  }

  Frame bye;
  bye.kind = FrameKind::kBye;
  if (cfg.has_edge() && !transport.channel_down("edge-ctl")) {
    transport.post("edge-ctl", bye);
  }
  transport.post("cloud-ctl", bye);

  if (!opts.decisions_out.empty()) {
    write_decisions_csv(opts.decisions_out, result.traces);
  }
  return result;
}

}  // namespace ddnn::dist
