#include "dist/serve.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "core/inference.hpp"
#include "dist/node.hpp"
#include "obs/slo.hpp"
#include "infer/workspace.hpp"
#include "util/error.hpp"

namespace ddnn::dist {
namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------ protocol payloads

struct DecisionPayload {
  std::int64_t sample = 0;
  std::int32_t exit_taken = -1;
  std::int64_t prediction = -1;
  double entropy = 1.0;
  std::int64_t upstream_bytes = 0;
  bool degraded = false;
};

Frame decision_frame(const DecisionPayload& d) {
  Frame frame;
  frame.kind = FrameKind::kDecision;
  PayloadWriter w;
  w.i64(d.sample);
  w.i32(d.exit_taken);
  w.i64(d.prediction);
  w.f64(d.entropy);
  w.i64(d.upstream_bytes);
  w.u8(d.degraded ? 1 : 0);
  frame.payload = w.take();
  return frame;
}

DecisionPayload decode_decision(const Frame& frame) {
  PayloadReader r(frame.payload.data(), frame.payload.size(), "decision");
  DecisionPayload d;
  d.sample = r.i64();
  d.exit_taken = r.i32();
  d.prediction = r.i64();
  d.entropy = r.f64();
  d.upstream_bytes = r.i64();
  d.degraded = r.u8() != 0;
  return d;
}

Frame classify_frame(std::int64_t sample, ClassifyMode mode,
                     const TraceContext& trace = TraceContext{}) {
  Frame frame;
  frame.kind = FrameKind::kClassify;
  PayloadWriter w;
  w.i64(sample);
  w.u8(static_cast<std::uint8_t>(mode));
  w.u64(trace.trace_id);
  w.u64(trace.parent_span);
  frame.payload = w.take();
  return frame;
}

/// `t_send` is the sender's wall clock at send time; the Hello round trip
/// doubles as an NTP-style clock-offset probe (offset = (t0 + t3)/2 - t1)
/// that trace-merge uses to align per-process span timelines.
Frame hello_frame(const std::string& role, const std::string& signature,
                  double t_send) {
  Frame frame;
  frame.kind = FrameKind::kHello;
  PayloadWriter w;
  w.str(role);
  w.str(signature);
  w.f64(t_send);
  frame.payload = w.take();
  return frame;
}

/// The span name the simulator gives a hop carrying this message kind —
/// served traces must match the oracle's span-tree shape name-for-name.
const char* send_span_name(MessageKind kind) {
  switch (kind) {
    case MessageKind::kClassScores: return "send:scores";
    case MessageKind::kBinaryFeatureMap: return "send:features";
    case MessageKind::kRawImage: return "send:raw_image";
  }
  return "send";
}

// ----------------------------------------------------------- server loop

/// One accepted connection plus the per-sample frames it has delivered and
/// not yet consumed by a Classify. sample -> branch -> Message.
struct ServedConn {
  std::shared_ptr<FrameConn> conn;
  std::map<std::int64_t, std::map<std::int32_t, Message>> pending;
  /// Sent at least one non-Stats frame — a hierarchy peer, counted by the
  /// serve.connections gauge. Stats pollers observe the event loop and must
  /// not perturb what they measure.
  bool saw_data = false;
  /// Out-queue depth gauge (serve.conn<N>.queued_bytes), N = connection
  /// slot. Slots are pooled: a disconnecting peer returns its slot (gauge
  /// zeroed), and the next accept reuses the lowest free one — reconnecting
  /// peers do not mint unbounded registry entries.
  obs::Gauge* queued = nullptr;
  int slot = -1;
};

/// Shared edge/cloud skeleton: listen (writing the bound port to the port
/// file for the process that spawned us), poll every connection, feed
/// complete frames to `handle(ServedConn&, Frame&)`, exit when every peer
/// has disconnected (or the idle timeout fires). Servers are
/// single-threaded: each request runs to completion on the accept thread,
/// so per-thread == per-connection inference workspaces (infer/workspace).
class FrameServer {
 public:
  FrameServer(const char* role, const ServeOptions& opts)
      : role_(role), opts_(opts), listener_(opts.listen_port) {
    if (opts_.metrics != nullptr) {
      frames_in_ = &opts_.metrics->counter("serve.frames_in");
      bytes_in_ = &opts_.metrics->counter("serve.bytes_in");
      loop_lag_ms_ = &opts_.metrics->gauge("serve.loop.lag_ms");
      connections_ = &opts_.metrics->gauge("serve.connections");
      queued_bytes_ = &opts_.metrics->gauge("serve.queued_bytes");
    }
    if (!opts_.port_file.empty()) {
      std::ofstream out(opts_.port_file);
      DDNN_CHECK(out.good(),
                 "cannot write port file '" << opts_.port_file << "'");
      out << listener_.port() << "\n";
    }
    std::printf("ddnn serve [%s]: listening on 127.0.0.1:%d%s\n", role_,
                listener_.port(), opts_.blackhole ? " (blackhole)" : "");
    std::fflush(stdout);
  }

  int port() const { return listener_.port(); }

  template <typename Handler>
  int run(Handler&& handle) {
    double last_activity = wall_s();
    bool saw_conn = false;
    while (true) {
      // One poll over the listener and every live connection.
      std::vector<pollfd> fds;
      fds.push_back({listener_.fd(), POLLIN, 0});
      for (auto& sc : conns_) {
        if (!sc.conn->closed()) fds.push_back({sc.conn->fd(), POLLIN, 0});
      }
      ::poll(fds.data(), fds.size(), 100);

      // Runtime-health gauges only move on hierarchy activity (accepts,
      // data/control frames, peer departures), never on Stats polls: once
      // the driver finishes, the registry freezes and a final poll returns
      // bytes identical to the --metrics-out file written at exit.
      const double handle_start = wall_s();
      bool activity = false;
      if (auto conn = listener_.accept(0.0)) {
        ServedConn sc;
        sc.conn = std::move(conn);
        if (opts_.metrics != nullptr) {
          sc.slot = claim_slot();
          sc.queued = slot_gauges_[static_cast<std::size_t>(sc.slot)];
        }
        conns_.push_back(std::move(sc));
        saw_conn = true;
        activity = true;
        last_activity = wall_s();
      }
      for (auto& sc : conns_) {
        if (sc.conn->closed()) continue;
        std::vector<Frame> frames;
        try {
          frames = sc.conn->poll_frames();
        } catch (const ddnn::Error& e) {
          std::fprintf(stderr, "ddnn serve [%s]: dropping peer: %s\n", role_,
                       e.what());
          sc.conn->close();
          continue;
        }
        if (!frames.empty()) last_activity = wall_s();
        for (Frame& frame : frames) {
          if (opts_.blackhole) continue;  // read everything, answer nothing
          if (frame.kind == FrameKind::kStats) {
            answer_stats(sc, frame);
            continue;
          }
          if (frame.kind == FrameKind::kHealth) {
            answer_health(sc, frame);
            continue;
          }
          sc.saw_data = true;
          activity = true;
          if (frames_in_ != nullptr) {
            frames_in_->add(1);
            bytes_in_->add(static_cast<std::int64_t>(kFrameHeaderBytes +
                                                     frame.payload.size()));
          }
          if (frame.kind == FrameKind::kBye) {
            sc.conn->close();
            break;
          }
          try {
            handle(sc, frame);
          } catch (const ddnn::Error& e) {
            std::fprintf(stderr, "ddnn serve [%s]: request failed: %s\n",
                         role_, e.what());
          }
        }
        if (!sc.conn->closed()) sc.conn->flush(opts_.reliability.timeout_s);
      }
      bool data_peer_left = false;
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [&](const ServedConn& sc) {
                                    if (!sc.conn->closed()) return false;
                                    data_peer_left |= sc.saw_data;
                                    release_slot(sc);
                                    return true;
                                  }),
                   conns_.end());
      activity = activity || data_peer_left;
      if (activity && opts_.metrics != nullptr) update_gauges(handle_start);
      if (saw_conn && conns_.empty()) break;  // every peer hung up
      if (wall_s() - last_activity > opts_.idle_timeout_s) {
        std::fprintf(stderr, "ddnn serve [%s]: idle for %.0f s, exiting\n",
                     role_, opts_.idle_timeout_s);
        return saw_conn ? 0 : 1;
      }
    }
    std::printf("ddnn serve [%s]: all peers disconnected, exiting\n", role_);
    return 0;
  }

  /// ACK a data frame and stash its Message under (sample, branch).
  void accept_data(ServedConn& sc, const Frame& frame) {
    MessageMeta meta;
    Message msg = frame_message(frame, &meta);
    sc.pending[meta.sample][meta.branch] = std::move(msg);
    // Bound the stash: a sample the driver abandoned (timeout ladder) would
    // otherwise pin its features forever.
    while (sc.pending.size() > 64) sc.pending.erase(sc.pending.begin());
    Frame ack;
    ack.kind = FrameKind::kAck;
    ack.seq = frame.seq;
    sc.conn->queue(ack);
  }

  /// Answer a Hello with our own (role, signature); a mismatched model is a
  /// loud failure on both ends instead of silently-diverging inference. The
  /// reply timestamp is this process's clock at handling time — the t1 of
  /// the sender's NTP-style offset estimate.
  void answer_hello(ServedConn& sc, const Frame& frame,
                    const std::string& signature) {
    PayloadReader r(frame.payload.data(), frame.payload.size(), "hello");
    const std::string peer_role = r.str();
    const std::string peer_sig = r.str();
    DDNN_CHECK(peer_sig == signature,
               "model mismatch: peer '" << peer_role << "' runs " << peer_sig
                                        << ", this " << role_ << " runs "
                                        << signature);
    Frame reply = hello_frame(role_, signature, wall_s());
    reply.seq = frame.seq;
    sc.conn->queue(reply);
  }

  /// Live telemetry: reply with a MetricsRegistry snapshot. Deliberately
  /// side-effect-free so polling cannot change what it observes.
  void answer_stats(ServedConn& sc, const Frame& frame) {
    Frame reply;
    reply.kind = FrameKind::kStats;
    reply.seq = frame.seq;
    PayloadWriter w;
    w.str(opts_.metrics != nullptr ? opts_.metrics->to_json()
                                   : std::string("{\n  \"metrics\": []\n}\n"));
    reply.payload = w.take();
    sc.conn->queue(reply);
  }

  /// SLO health poll: reply with the snapshot health document derived from
  /// the frozen registry (obs::health_from_metrics) — serve roles have no
  /// deterministic simulated clock, so health here is a registry snapshot,
  /// not a burn-rate window. Side-effect-free like answer_stats: once the
  /// driver finishes and the registry freezes, repeated polls return
  /// byte-identical payloads.
  void answer_health(ServedConn& sc, const Frame& frame) {
    Frame reply;
    reply.kind = FrameKind::kHealth;
    reply.seq = frame.seq;
    PayloadWriter w;
    if (opts_.metrics != nullptr) {
      w.str(obs::health_from_metrics(opts_.metrics->to_json(),
                                     obs::SnapshotSloConfig{}));
    } else {
      w.str(std::string("{\n  \"signals\": [],\n  \"overall\": \"ok\"\n}\n"));
    }
    reply.payload = w.take();
    sc.conn->queue(reply);
  }

  /// Collect sample `s`'s pending messages into a branch-indexed vector and
  /// drop the stash (plus anything older — those samples were abandoned).
  std::vector<std::optional<Message>> take_sample(ServedConn& sc,
                                                  std::int64_t s,
                                                  std::size_t branches) {
    std::vector<std::optional<Message>> out(branches);
    const auto it = sc.pending.find(s);
    if (it != sc.pending.end()) {
      for (auto& [branch, msg] : it->second) {
        if (branch >= 0 && static_cast<std::size_t>(branch) < branches) {
          out[static_cast<std::size_t>(branch)] = std::move(msg);
        }
      }
    }
    sc.pending.erase(sc.pending.begin(), sc.pending.upper_bound(s));
    return out;
  }

 private:
  /// Lowest free connection-slot gauge, minting serve.conn<slot>.queued_bytes
  /// only the first time a slot index is ever used — the registry holds at
  /// most peak-concurrent-connections slot gauges, however many times peers
  /// reconnect.
  int claim_slot() {
    for (std::size_t s = 0; s < slot_free_.size(); ++s) {
      if (slot_free_[s]) {
        slot_free_[s] = false;
        return static_cast<int>(s);
      }
    }
    const int slot = static_cast<int>(slot_gauges_.size());
    slot_gauges_.push_back(&opts_.metrics->gauge(
        "serve.conn" + std::to_string(slot) + ".queued_bytes"));
    slot_free_.push_back(false);
    return slot;
  }

  /// Retire a departed connection's slot: zero the gauge (the queue is
  /// gone) and return the slot to the pool.
  void release_slot(const ServedConn& sc) {
    if (sc.slot < 0) return;
    sc.queued->set(0.0);
    slot_free_[static_cast<std::size_t>(sc.slot)] = true;
  }

  void update_gauges(double handle_start) {
    loop_lag_ms_->set((wall_s() - handle_start) * 1e3);
    std::int64_t open_data = 0;
    double total_queued = 0.0;
    for (const ServedConn& sc : conns_) {
      const double q = static_cast<double>(sc.conn->queued_bytes());
      if (sc.queued != nullptr) sc.queued->set(q);
      total_queued += q;
      if (sc.saw_data && !sc.conn->closed()) ++open_data;
    }
    connections_->set(static_cast<double>(open_data));
    queued_bytes_->set(total_queued);
  }

  const char* role_;
  const ServeOptions& opts_;
  Listener listener_;
  std::vector<ServedConn> conns_;
  /// Connection-slot gauge pool: index = slot, minted lazily by claim_slot.
  std::vector<obs::Gauge*> slot_gauges_;
  std::vector<bool> slot_free_;
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Gauge* loop_lag_ms_ = nullptr;
  obs::Gauge* connections_ = nullptr;
  obs::Gauge* queued_bytes_ = nullptr;
};

}  // namespace

std::string model_signature(const core::DdnnModel& model) {
  const auto& cfg = model.config();
  std::ostringstream os;
  os << "devices=" << cfg.num_devices << ";filters=" << cfg.device_filters
     << ";classes=" << cfg.num_classes << ";exits=" << cfg.num_exits()
     << ";local_exit=" << (cfg.has_local_exit ? 1 : 0) << ";groups=";
  for (const auto& g : cfg.edge_groups) os << g.size() << ",";
  return os.str();
}

void write_decisions_csv(const std::string& path,
                         const std::vector<InferenceTrace>& traces) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  DDNN_CHECK(f != nullptr, "cannot write decisions CSV '" << path << "'");
  std::fprintf(f, "sample,exit,prediction,entropy,bytes,degraded,dead\n");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const InferenceTrace& t = traces[i];
    // %.17g round-trips doubles exactly: byte-identical files mean
    // bit-identical decisions.
    std::fprintf(f, "%zu,%d,%lld,%.17g,%lld,%d,%d\n", i, t.exit_taken,
                 static_cast<long long>(t.prediction), t.entropy,
                 static_cast<long long>(t.bytes_sent), t.degraded ? 1 : 0,
                 t.dead ? 1 : 0);
  }
  std::fclose(f);
}

// ------------------------------------------------------------------ cloud

int serve_cloud(core::DdnnModel& model, const ServeOptions& opts) {
  const auto& cfg = model.config();
  CloudNode cloud(model);
  FrameServer server("cloud", opts);
  const std::string signature = model_signature(model);
  const std::size_t n_dev = static_cast<std::size_t>(cfg.num_devices);
  const std::size_t n_groups = cfg.edge_groups.size();

  obs::SpanTracer* tr = opts.tracer;
  const double epoch = wall_s();
  if (tr != nullptr) {
    tr->set_process(2, "cloud");
    tr->set_meta("epoch_s", epoch);
    tr->set_track_name(0, "cloud");
  }

  return server.run([&](ServedConn& sc, const Frame& frame) {
    if (frame.kind == FrameKind::kHello) {
      server.answer_hello(sc, frame, signature);
      return;
    }
    if (is_data_kind(frame.kind)) {
      server.accept_data(sc, frame);
      return;
    }
    if (frame.kind != FrameKind::kClassify) return;

    PayloadReader r(frame.payload.data(), frame.payload.size(), "classify");
    const std::int64_t sample = r.i64();
    const auto mode = static_cast<ClassifyMode>(r.u8());
    TraceContext ctx;
    ctx.trace_id = r.u64();
    ctx.parent_span = r.u64();

    // Spans mirror the simulator oracle's cloud-tier shape:
    // edge_section_at_cloud per dark group (outage route) then
    // cloud_classify, all attributed to this process under the driver's
    // trace context.
    auto span = [&](const char* name, double start, double dur) -> obs::Span& {
      return tr->add(name, "compute", 0, start - epoch, dur)
          .with("sample_index", sample)
          .with("trace_id", static_cast<std::int64_t>(ctx.trace_id))
          .with("parent_span", static_cast<std::int64_t>(ctx.parent_span));
    };

    DecisionPayload d;
    d.sample = sample;
    d.degraded = mode != ClassifyMode::kNormal;
    if (mode == ClassifyMode::kNormal) {
      // Features from the tier directly below: edge branches when the
      // hierarchy has an edge tier, device branches otherwise — the
      // simulator's healthy stage-6 path.
      const std::size_t branches = cfg.has_edge() ? n_groups : n_dev;
      auto feats = server.take_sample(sc, sample, branches);
      const bool any = std::any_of(feats.begin(), feats.end(),
                                   [](const auto& m) { return m.has_value(); });
      if (any) {
        const double t0 = wall_s();
        const ExitDecision dec = decide_exit(cloud.process(feats, 1));
        d.exit_taken = cfg.num_exits() - 1;
        d.prediction = dec.prediction;
        d.entropy = dec.entropy;
        if (tr != nullptr) {
          span("cloud_classify", t0, wall_s() - t0)
              .with("raw_offload", false)
              .with("entropy", dec.entropy);
        }
      }
    } else if (mode == ClassifyMode::kEdgeAtCloud) {
      // Edge outage route: device features arrived directly; this process
      // runs every edge group's section itself, then classifies — the same
      // computation the simulator's whole-tier outage performs.
      auto feats = server.take_sample(sc, sample, n_dev);
      std::vector<std::optional<Message>> branches(n_groups);
      for (std::size_t g = 0; g < n_groups; ++g) {
        const double tg = wall_s();
        branches[g] = edge_section_at_cloud(model, g, feats);
        if (tr != nullptr) {
          span("edge_section_at_cloud", tg, wall_s() - tg)
              .with("group", static_cast<std::int64_t>(g))
              .with("delivered", branches[g].has_value());
        }
      }
      const bool any =
          std::any_of(branches.begin(), branches.end(),
                      [](const auto& m) { return m.has_value(); });
      if (any) {
        const double t0 = wall_s();
        const ExitDecision dec = decide_exit(cloud.process(branches, 1));
        d.exit_taken = cfg.num_exits() - 1;
        d.prediction = dec.prediction;
        d.entropy = dec.entropy;
        if (tr != nullptr) {
          span("cloud_classify", t0, wall_s() - t0)
              .with("raw_offload", false)
              .with("entropy", dec.entropy);
        }
      }
    } else if (mode == ClassifyMode::kRawOffload) {
      auto raws = server.take_sample(sc, sample, n_dev);
      const bool any = std::any_of(raws.begin(), raws.end(),
                                   [](const auto& m) { return m.has_value(); });
      if (any) {
        const double t0 = wall_s();
        const ExitDecision dec =
            decide_exit(cloud_forward_from_raw_views(model, raws));
        d.exit_taken = cfg.num_exits() - 1;
        d.prediction = dec.prediction;
        d.entropy = dec.entropy;
        if (tr != nullptr) {
          span("cloud_classify", t0, wall_s() - t0)
              .with("raw_offload", true)
              .with("entropy", dec.entropy);
        }
      }
    }
    sc.conn->queue(decision_frame(d));
  });
}

// ------------------------------------------------------------------- edge

int serve_edge(core::DdnnModel& model, const ServeOptions& opts) {
  const auto& cfg = model.config();
  DDNN_CHECK(cfg.has_edge(), "edge role on a hierarchy without an edge tier");
  DDNN_CHECK(cfg.edge_groups.size() == 1,
             "ddnn serve runs one edge process; multi-edge presets are "
             "simulator-only for now");
  EdgeNode edge(0, model);
  const std::string signature = model_signature(model);
  const std::size_t n_dev = static_cast<std::size_t>(cfg.num_devices);
  const int edge_exit_index = cfg.has_local_exit ? 1 : 0;
  const double threshold =
      opts.thresholds.at(static_cast<std::size_t>(edge_exit_index));

  obs::SpanTracer* tr = opts.tracer;
  const double epoch = wall_s();
  if (tr != nullptr) {
    tr->set_process(1, "edge");
    tr->set_meta("epoch_s", epoch);
    tr->set_track_name(0, "edge0");
    tr->set_track_name(1, "edge-coord");
  }

  // Upstream leg: this process is itself a SocketTransport client of the
  // cloud. The Link mirrors the simulator's edge->cloud backhaul so the
  // delivered-byte accounting reported in Decision.upstream_bytes matches.
  SocketTransport uplink(opts.reliability);
  uplink.bind_metrics(opts.metrics);  // eager link.* columns pre-traffic
  Link edge_cloud_link("edge0->cloud", RuntimeConfig{}.edge_link);
  if (!opts.blackhole) {
    DDNN_CHECK(!opts.cloud_addr.empty(), "edge role needs --cloud host:port");
    auto cloud_conn = connect_to(opts.cloud_addr, opts.connect_timeout_s);
    DDNN_CHECK(cloud_conn != nullptr,
               "cannot reach the cloud at " << opts.cloud_addr);
    uplink.attach(edge_cloud_link.name(), cloud_conn);
    uplink.attach("cloud-ctl", cloud_conn);
    DDNN_CHECK(
        uplink.post("cloud-ctl", hello_frame("edge", signature, wall_s())),
        "cloud handshake send failed");
    const auto reply =
        uplink.await("cloud-ctl", FrameKind::kHello, opts.connect_timeout_s);
    DDNN_CHECK(reply.has_value(), "cloud handshake timed out");
  }

  FrameServer server("edge", opts);
  const int rc = server.run([&](ServedConn& sc, const Frame& frame) {
    if (frame.kind == FrameKind::kHello) {
      server.answer_hello(sc, frame, signature);
      return;
    }
    if (is_data_kind(frame.kind)) {
      server.accept_data(sc, frame);
      return;
    }
    if (frame.kind != FrameKind::kClassify) return;

    PayloadReader r(frame.payload.data(), frame.payload.size(), "classify");
    const std::int64_t sample = r.i64();
    r.u8();  // mode: an edge only serves the normal route
    TraceContext ctx;
    ctx.trace_id = r.u64();
    ctx.parent_span = r.u64();

    auto span = [&](const char* name, const char* cat, int track,
                    double start, double dur) -> obs::Span& {
      return tr->add(name, cat, track, start - epoch, dur)
          .with("sample_index", sample)
          .with("trace_id", static_cast<std::int64_t>(ctx.trace_id))
          .with("parent_span", static_cast<std::int64_t>(ctx.parent_span));
    };

    DecisionPayload d;
    d.sample = sample;
    auto feats = server.take_sample(sc, sample, n_dev);
    std::vector<std::optional<Message>> members;
    bool any = false;
    for (int dev : cfg.edge_groups[0]) {
      members.push_back(feats[static_cast<std::size_t>(dev)]);
      any = any || members.back().has_value();
    }
    if (!any) {  // classify without a single delivered feature
      sc.conn->queue(decision_frame(d));
      return;
    }

    // Trunk + fused edge exit, exactly the simulator's stages 3-4. The
    // score message's bytes are charged as upstream traffic: the simulator
    // sends them to the edge-exit coordinator over a real link (here the
    // coordinator is colocated, so the hop is a zero-duration span with the
    // same name/bytes the oracle books).
    const double t_trunk = wall_s();
    Message scores = edge.process(members, 1);
    d.upstream_bytes += scores.payload_bytes();
    if (tr != nullptr) {
      span("edge_trunk", "compute", 0, t_trunk, wall_s() - t_trunk)
          .with("group", 0);
      span("send:edge_scores", "net", 0, wall_s(), 0.0)
          .with("link", "edge0->coord")
          .with("bytes", scores.payload_bytes())
          .with("attempts", 1)
          .with("delivered", true);
    }
    const double t_fuse = wall_s();
    std::vector<core::Variable> logits;
    logits.emplace_back(decode_class_scores(scores, cfg.num_classes));
    const Tensor fused =
        model.edge_exit_aggregate(logits, {true}).value();
    const ExitDecision dec = decide_exit(fused);
    if (tr != nullptr) {
      span("edge_exit_fuse", "compute", 1, t_fuse, wall_s() - t_fuse)
          .with("entropy", dec.entropy);
    }
    if (core::should_exit(dec.entropy, threshold)) {
      d.exit_taken = edge_exit_index;
      d.prediction = dec.prediction;
      d.entropy = dec.entropy;
      sc.conn->queue(decision_frame(d));
      return;
    }

    // Stage 5: escalate this edge's features to the cloud and relay its
    // Decision, adding the bytes spent on the way up.
    const Message features = edge.feature_message();
    const double t_send = wall_s();
    std::vector<SocketTransport::BatchItem> batch;
    batch.push_back({&edge_cloud_link, &features, sample, 0, ctx});
    const SendResult sent = uplink.send_batch(batch)[0];
    if (tr != nullptr) {
      span("send:edge_features", "net", 0, t_send, sent.latency_s)
          .with("link", edge_cloud_link.name())
          .with("bytes", sent.delivered ? features.payload_bytes() : 0)
          .with("attempts", sent.attempts)
          .with("delivered", sent.delivered);
    }
    if (sent.delivered &&
        uplink.post("cloud-ctl",
                    classify_frame(sample, ClassifyMode::kNormal, ctx))) {
      d.upstream_bytes += features.payload_bytes();
      const double deadline = wall_s() + opts.decision_timeout_s;
      while (wall_s() < deadline) {
        const auto reply = uplink.await("cloud-ctl", FrameKind::kDecision,
                                        deadline - wall_s());
        if (!reply.has_value()) break;
        DecisionPayload cloud_d = decode_decision(*reply);
        if (cloud_d.sample != sample) continue;  // stale abandoned sample
        d.exit_taken = cloud_d.exit_taken;
        d.prediction = cloud_d.prediction;
        d.entropy = cloud_d.entropy;
        d.degraded = d.degraded || cloud_d.degraded;
        d.upstream_bytes += cloud_d.upstream_bytes;
        break;
      }
    }
    sc.conn->queue(decision_frame(d));  // exit stays -1 if the cloud failed
  });
  if (!opts.blackhole && !uplink.channel_down("cloud-ctl")) {
    Frame bye;
    bye.kind = FrameKind::kBye;
    uplink.post("cloud-ctl", bye);
  }
  return rc;
}

// ----------------------------------------------------------------- driver

namespace {

/// Driver-side registry handles (mirrors HierarchyRuntime::bind_metrics so
/// `ddnn report` and scripts/check_trace.py read the served path with the
/// same names). Only the colocated gateway links are booked here; socket
/// links are booked — and registered eagerly — by
/// SocketTransport::bind_metrics.
struct DriverMetrics {
  obs::MetricsRegistry* registry = nullptr;
  obs::Counter* samples = nullptr;
  obs::Counter* bytes_total = nullptr;
  obs::Counter* correct = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* drops = nullptr;
  obs::Counter* timeouts = nullptr;
  obs::Counter* degraded = nullptr;
  obs::Counter* dead = nullptr;
  obs::Gauge* total_latency_s = nullptr;
  obs::Gauge* arena_bytes = nullptr;
  std::vector<obs::Counter*> exits;
  struct LinkCounters {
    obs::Counter* attempts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* bytes = nullptr;
  };
  std::map<const Link*, LinkCounters> links;

  void bind(obs::MetricsRegistry* reg,
            const std::vector<std::string>& exit_names,
            const std::vector<Link*>& local_links) {
    registry = reg;
    if (reg == nullptr) return;
    samples = &reg->counter("runtime.samples");
    bytes_total = &reg->counter("runtime.bytes_total");
    correct = &reg->counter("runtime.correct");
    retries = &reg->counter("runtime.retries");
    drops = &reg->counter("runtime.drops");
    timeouts = &reg->counter("runtime.timeouts");
    degraded = &reg->counter("runtime.degraded");
    dead = &reg->counter("runtime.dead");
    for (const auto& name : exit_names) {
      exits.push_back(&reg->counter("runtime.exit." + name));
    }
    total_latency_s = &reg->gauge("runtime.total_latency_s");
    arena_bytes = &reg->gauge("serve.arena_bytes");
    for (const Link* link : local_links) {
      LinkCounters c;
      c.attempts = &reg->counter("link." + link->name() + ".attempts");
      c.retries = &reg->counter("link." + link->name() + ".retries");
      c.timeouts = &reg->counter("link." + link->name() + ".timeouts");
      c.bytes = &reg->counter("link." + link->name() + ".bytes");
      links[link] = c;
    }
  }
};

}  // namespace

DriveResult drive_hierarchy(core::DdnnModel& model,
                            const std::vector<data::MvmcSample>& samples,
                            const std::vector<int>& device_map,
                            const ServeOptions& opts) {
  const auto& cfg = model.config();
  DDNN_CHECK(!cfg.float_devices,
             "float-device models have no 1-bit wire format");
  DDNN_CHECK(static_cast<int>(opts.thresholds.size()) + 1 == cfg.num_exits(),
             "need one threshold per non-final exit");
  DDNN_CHECK(cfg.edge_groups.size() <= 1,
             "ddnn serve runs one edge process; multi-edge presets are "
             "simulator-only for now");
  DDNN_CHECK(!opts.cloud_addr.empty(), "driver needs --cloud host:port");
  const std::size_t n_dev = static_cast<std::size_t>(cfg.num_devices);
  const std::string signature = model_signature(model);
  const RuntimeConfig link_cfg{};  // the simulator's link parameters

  // Device-tier state: nodes, the colocated gateway, and the same Link
  // names/configs the simulator uses so byte accounting lines up.
  std::vector<DeviceNode> devices;
  std::vector<Link> gw_links;
  std::vector<Link> up_links;
  std::vector<Link> fb_links;
  for (std::size_t b = 0; b < n_dev; ++b) {
    devices.emplace_back(static_cast<int>(b), model, static_cast<int>(b));
    gw_links.emplace_back("device" + std::to_string(b) + "->gateway",
                          link_cfg.device_link);
    const std::string up_target = cfg.has_edge() ? "edge" : "cloud";
    up_links.emplace_back("device" + std::to_string(b) + "->" + up_target,
                          link_cfg.device_link);
    if (cfg.has_edge()) {
      fb_links.emplace_back("device" + std::to_string(b) + "->cloud(fallback)",
                            link_cfg.device_link);
    }
  }
  std::optional<GatewayNode> gateway;
  if (cfg.has_local_exit) gateway.emplace(model);

  // Registry layout: runtime.* and the colocated gateway links first, then
  // the socket links in attach order — eagerly, before any traffic, so the
  // metrics columns are identical whether or not a link ever carried a
  // frame (a degraded run exports the same schema as a healthy one).
  DriveResult result;
  result.metrics.exit_counts.assign(
      static_cast<std::size_t>(cfg.num_exits()), 0);
  result.metrics.device_bytes.assign(n_dev, 0);
  DriverMetrics dm;
  {
    std::vector<Link*> local;
    for (auto& l : gw_links) local.push_back(&l);
    dm.bind(opts.metrics, model.exit_names(), local);
  }

  // Tracer attribution: this process is pid 0 ("driver"), the reference
  // clock of the merged timeline. Spans are recorded relative to `epoch`;
  // trace-merge reads epoch_s plus the handshake-measured per-peer offsets
  // from the file's metadata to place every role on this clock.
  obs::SpanTracer* tr = opts.tracer;
  const double epoch = wall_s();
  if (tr != nullptr) {
    tr->set_process(0, "driver");
    tr->set_meta("epoch_s", epoch);
    tr->set_track_name(0, "samples");
    for (std::size_t b = 0; b < n_dev; ++b) {
      tr->set_track_name(static_cast<int>(1 + b),
                         "device" + std::to_string(b));
    }
    if (cfg.has_local_exit) {
      tr->set_track_name(static_cast<int>(1 + n_dev), "gateway");
    }
  }
  const int gateway_track = static_cast<int>(1 + n_dev);

  // Wire up the transport: every cloud-bound channel shares one socket,
  // every edge-bound channel shares another.
  SocketTransport transport(opts.reliability);
  transport.set_fail_fast(opts.fail_fast);
  transport.bind_metrics(opts.metrics);
  auto cloud_conn = connect_to(opts.cloud_addr, opts.connect_timeout_s);
  DDNN_CHECK(cloud_conn != nullptr,
             "cannot reach the cloud at " << opts.cloud_addr);
  transport.attach("cloud-ctl", cloud_conn);
  for (auto& l : fb_links) transport.attach(l.name(), cloud_conn);
  if (!cfg.has_edge()) {
    for (auto& l : up_links) transport.attach(l.name(), cloud_conn);
  }
  const double cloud_t0 = wall_s();
  DDNN_CHECK(
      transport.post("cloud-ctl", hello_frame("driver", signature, cloud_t0)),
      "cloud handshake send failed");
  {
    const auto reply = transport.await("cloud-ctl", FrameKind::kHello,
                                       opts.connect_timeout_s);
    DDNN_CHECK(reply.has_value(), "cloud handshake timed out");
    const double cloud_t3 = wall_s();
    PayloadReader hr(reply->payload.data(), reply->payload.size(), "hello");
    hr.str();  // role
    hr.str();  // signature
    const double cloud_t1 = hr.f64();
    if (tr != nullptr) {
      // NTP-style: what to add to a cloud clock reading to land on ours.
      tr->set_meta("offset_cloud_s", 0.5 * (cloud_t0 + cloud_t3) - cloud_t1);
    }
  }

  bool edge_up = false;
  if (cfg.has_edge()) {
    DDNN_CHECK(!opts.edge_addr.empty(), "driver needs --edge host:port");
    if (auto edge_conn = connect_to(opts.edge_addr, opts.connect_timeout_s)) {
      transport.attach("edge-ctl", edge_conn);
      for (auto& l : up_links) transport.attach(l.name(), edge_conn);
      // A silent edge (down, blackholed) fails the handshake and the run
      // degrades from sample 0 — the served twin of a whole-run outage.
      const double edge_t0 = wall_s();
      if (transport.post("edge-ctl",
                         hello_frame("driver", signature, edge_t0))) {
        const auto reply = transport.await("edge-ctl", FrameKind::kHello,
                                           opts.decision_timeout_s);
        if (reply.has_value()) {
          edge_up = true;
          const double edge_t3 = wall_s();
          PayloadReader hr(reply->payload.data(), reply->payload.size(),
                           "hello");
          hr.str();  // role
          hr.str();  // signature
          const double edge_t1 = hr.f64();
          if (tr != nullptr) {
            tr->set_meta("offset_edge_s",
                         0.5 * (edge_t0 + edge_t3) - edge_t1);
          }
        }
      }
    }
    if (!edge_up) {
      std::fprintf(stderr,
                   "ddnn serve [driver]: edge unreachable, degrading to "
                   "cloud-only routes\n");
    }
  }

  // Per-sample distributed trace ids: a run nonce folded with the sample
  // index, masked to 48 bits so JSON double parsing round-trips them.
  const std::uint64_t run_nonce = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const auto trace_id_of = [run_nonce](std::int64_t sidx) {
    const std::uint64_t mixed =
        (run_nonce ^ (0x9E3779B97F4A7C15ull *
                      (static_cast<std::uint64_t>(sidx) + 1ull)));
    return mixed & ((1ull << 48) - 1ull);
  };

  const int cloud_exit = cfg.num_exits() - 1;
  const double run_start = epoch;
  const std::int64_t limit =
      opts.max_samples < 0
          ? static_cast<std::int64_t>(samples.size())
          : std::min<std::int64_t>(opts.max_samples,
                                   static_cast<std::int64_t>(samples.size()));

  // Await the Decision for `sidx` on a control channel; stale decisions for
  // abandoned samples are discarded.
  auto await_decision =
      [&](const std::string& ctl,
          std::int64_t sidx) -> std::optional<DecisionPayload> {
    const double deadline = wall_s() + opts.decision_timeout_s;
    while (wall_s() < deadline) {
      const auto reply =
          transport.await(ctl, FrameKind::kDecision, deadline - wall_s());
      if (!reply.has_value()) return std::nullopt;
      DecisionPayload d = decode_decision(*reply);
      if (d.sample == sidx) return d;
    }
    return std::nullopt;
  };

  for (std::int64_t sidx = 0; sidx < limit; ++sidx) {
    const data::MvmcSample& sample = samples[static_cast<std::size_t>(sidx)];
    const double t0 = wall_s();
    InferenceTrace trace;

    // The distributed trace identity every hop of this sample carries: the
    // remote tiers stamp their spans with (trace_id, parent_span) so the
    // merged timeline can regroup the cross-process tree per sample.
    TraceContext ctx;
    ctx.trace_id = trace_id_of(sidx);
    ctx.parent_span = (static_cast<std::uint64_t>(sidx) << 8) | 1ull;

    // Book the finished trace (same shape as the simulator's commit).
    auto commit = [&](int exit_taken, std::int64_t prediction,
                      double entropy) {
      trace.exit_taken = exit_taken;
      trace.prediction = prediction;
      trace.entropy = entropy;
      trace.latency_s = wall_s() - t0;
      RuntimeMetrics& m = result.metrics;
      if (exit_taken >= 0) {
        ++m.exit_counts[static_cast<std::size_t>(exit_taken)];
      }
      ++m.samples;
      m.total_bytes += trace.bytes_sent;
      m.total_latency_s += trace.latency_s;
      if (trace.degraded) ++m.reliability.degraded_exits;
      if (trace.dead) ++m.reliability.dead_samples;
      if (trace.prediction == sample.label) ++m.correct;
      if (tr != nullptr) {
        tr->add("sample", "sample", 0, t0 - run_start, trace.latency_s)
            .with("sample_index", sidx)
            .with("exit", exit_taken)
            .with("prediction", prediction)
            .with("label", sample.label)
            .with("entropy", entropy)
            .with("latency_s", trace.latency_s)
            .with("bytes", trace.bytes_sent)
            .with("retries", trace.retries)
            .with("degraded", trace.degraded)
            .with("dead", trace.dead)
            .with("trace_id", static_cast<std::int64_t>(ctx.trace_id))
            .with("span_id", static_cast<std::int64_t>(ctx.parent_span));
      }
      if (dm.registry != nullptr) {
        dm.samples->add(1);
        dm.bytes_total->add(trace.bytes_sent);
        if (trace.prediction == sample.label) dm.correct->add(1);
        if (trace.degraded) dm.degraded->add(1);
        if (trace.dead) dm.dead->add(1);
        if (exit_taken >= 0) {
          dm.exits[static_cast<std::size_t>(exit_taken)]->add(1);
        }
        dm.total_latency_s->set(m.total_latency_s);
        dm.arena_bytes->set(
            static_cast<double>(infer::thread_arena_bytes()));
      }
      result.traces.push_back(trace);
    };

    // Every child span carries the sample identity + trace context.
    auto child = [&](const char* name, const char* cat, int track,
                     double start, double dur) -> obs::Span& {
      return tr->add(name, cat, track, start - run_start, dur)
          .with("sample_index", sidx)
          .with("trace_id", static_cast<std::int64_t>(ctx.trace_id))
          .with("parent_span", static_cast<std::int64_t>(ctx.parent_span));
    };

    // A delivered local send (device and gateway are colocated; the frame
    // still crosses the simulated gateway link for byte parity).
    auto local_send = [&](Link& link, const Message& msg, int branch) {
      link.transmit(msg);
      trace.bytes_sent += msg.payload_bytes();
      result.metrics.device_bytes[static_cast<std::size_t>(branch)] +=
          msg.payload_bytes();
      if (dm.registry != nullptr) {
        const auto& lc = dm.links.at(&link);
        lc.attempts->add(1);
        lc.bytes->add(msg.payload_bytes());
      }
      if (tr != nullptr) {
        child(send_span_name(msg.kind), "net", 1 + branch, wall_s(), 0.0)
            .with("link", link.name())
            .with("bytes", msg.payload_bytes())
            .with("attempts", 1)
            .with("delivered", true);
      }
    };

    // Account one socket SendResult exactly like the simulator's send().
    // Socket link.* counters are booked inside the transport; only the
    // runtime aggregates and the span live here.
    auto book_send = [&](Link& link, const Message& msg,
                         const SendResult& res, int branch,
                         double batch_start) {
      result.metrics.reliability.drops += res.dropped_attempts;
      result.metrics.reliability.retries += res.attempts - 1;
      trace.retries += res.attempts - 1;
      if (res.delivered) {
        trace.bytes_sent += msg.payload_bytes();
        if (branch >= 0) {
          result.metrics.device_bytes[static_cast<std::size_t>(branch)] +=
              msg.payload_bytes();
        }
      } else {
        ++result.metrics.reliability.timeouts;
      }
      if (dm.registry != nullptr) {
        dm.drops->add(res.dropped_attempts);
        dm.retries->add(res.attempts - 1);
        if (!res.delivered) dm.timeouts->add(1);
      }
      if (tr != nullptr) {
        child(send_span_name(msg.kind), "net", 1 + branch, batch_start,
              res.latency_s)
            .with("link", link.name())
            .with("bytes", res.delivered ? msg.payload_bytes() : 0)
            .with("attempts", res.attempts)
            .with("delivered", res.delivered);
      }
    };

    // Batched uplink flush of one message per device over `links`; returns
    // how many were delivered.
    auto send_all = [&](std::vector<Link>& links,
                        const std::vector<Message>& msgs) {
      std::vector<SocketTransport::BatchItem> batch;
      for (std::size_t b = 0; b < n_dev; ++b) {
        batch.push_back({&links[b], &msgs[b], sidx,
                         static_cast<std::int32_t>(b), ctx});
      }
      const double batch_start = wall_s();
      const auto results = transport.send_batch(batch);
      int delivered = 0;
      for (std::size_t b = 0; b < n_dev; ++b) {
        book_send(links[b], msgs[b], results[b], static_cast<int>(b),
                  batch_start);
        if (results[b].delivered) ++delivered;
      }
      return delivered;
    };

    // --- Stage 0: every device senses its view and runs its section.
    for (std::size_t b = 0; b < n_dev; ++b) {
      const double tb = wall_s();
      devices[b].sense(
          sample.views.at(static_cast<std::size_t>(device_map[b])));
      if (tr != nullptr) {
        child("device_section", "compute", static_cast<int>(1 + b), tb,
              wall_s() - tb)
            .with("branch", static_cast<std::int64_t>(b));
      }
    }

    // --- Stage 1: local exit at the colocated gateway.
    int exit_index = 0;
    if (cfg.has_local_exit) {
      std::vector<std::optional<Message>> scores(n_dev);
      for (std::size_t b = 0; b < n_dev; ++b) {
        Message msg = devices[b].scores_message();
        local_send(gw_links[b], msg, static_cast<int>(b));
        scores[b] = std::move(msg);
      }
      const double t_fuse = wall_s();
      const ExitDecision d = decide_exit(gateway->aggregate(scores));
      if (tr != nullptr) {
        child("gateway_fuse", "compute", gateway_track, t_fuse,
              wall_s() - t_fuse)
            .with("delivered", static_cast<std::int64_t>(n_dev))
            .with("entropy", d.entropy);
      }
      if (core::should_exit(d.entropy, opts.thresholds[0])) {
        commit(0, d.prediction, d.entropy);
        continue;
      }
      exit_index = 1;
    }

    // --- Stage 2: escalate features over real sockets, then ask the tier
    // above to decide. Fallbacks mirror the simulator's ladder.
    std::vector<Message> feats;
    for (std::size_t b = 0; b < n_dev; ++b) {
      feats.push_back(devices[b].feature_message());
    }

    bool decided = false;
    bool try_edge_at_cloud = false;
    if (cfg.has_edge() && edge_up) {
      if (send_all(up_links, feats) > 0 &&
          transport.post("edge-ctl",
                         classify_frame(sidx, ClassifyMode::kNormal, ctx))) {
        if (const auto d = await_decision("edge-ctl", sidx)) {
          if (d->exit_taken >= 0) {
            trace.bytes_sent += d->upstream_bytes;
            trace.degraded = trace.degraded || d->degraded;
            commit(d->exit_taken, d->prediction, d->entropy);
            decided = true;
          } else {
            try_edge_at_cloud = true;  // the edge could not reach a verdict
          }
        } else {
          edge_up = false;  // silent edge: degrade for the rest of the run
          try_edge_at_cloud = true;
        }
      } else {
        edge_up = edge_up && !transport.channel_down("edge-ctl");
        try_edge_at_cloud = true;
      }
    } else if (cfg.has_edge()) {
      try_edge_at_cloud = true;
    }

    if (!decided && cfg.has_edge() && try_edge_at_cloud) {
      // Edge unreachable: features go straight to the cloud, which runs the
      // edge section itself (the simulator's outage route).
      trace.degraded = true;
      if (send_all(fb_links, feats) > 0 &&
          transport.post("cloud-ctl",
                         classify_frame(sidx, ClassifyMode::kEdgeAtCloud,
                                        ctx))) {
        if (const auto d = await_decision("cloud-ctl", sidx)) {
          if (d->exit_taken >= 0) {
            commit(d->exit_taken, d->prediction, d->entropy);
            decided = true;
          }
        }
      }
    }
    if (!decided && !cfg.has_edge()) {
      if (send_all(up_links, feats) > 0 &&
          transport.post("cloud-ctl",
                         classify_frame(sidx, ClassifyMode::kNormal, ctx))) {
        if (const auto d = await_decision("cloud-ctl", sidx)) {
          if (d->exit_taken >= 0) {
            trace.degraded = trace.degraded || d->degraded;
            commit(d->exit_taken, d->prediction, d->entropy);
            decided = true;
          }
        }
      }
    }

    if (!decided) {
      // Last-resort raw offload over the cloud-bound links, then dead.
      trace.degraded = true;
      std::vector<Message> raws;
      for (std::size_t b = 0; b < n_dev; ++b) {
        raws.push_back(devices[b].raw_image_message());
      }
      std::vector<Link>& to_cloud = cfg.has_edge() ? fb_links : up_links;
      if (send_all(to_cloud, raws) > 0 &&
          transport.post("cloud-ctl",
                         classify_frame(sidx, ClassifyMode::kRawOffload,
                                        ctx))) {
        if (const auto d = await_decision("cloud-ctl", sidx)) {
          if (d->exit_taken >= 0) {
            commit(cloud_exit, d->prediction, d->entropy);
            decided = true;
          }
        }
      }
      if (!decided) {
        trace.dead = true;
        commit(-1, -1, 1.0);
      }
    }
  }

  Frame bye;
  bye.kind = FrameKind::kBye;
  if (cfg.has_edge() && !transport.channel_down("edge-ctl")) {
    transport.post("edge-ctl", bye);
  }
  transport.post("cloud-ctl", bye);

  if (!opts.decisions_out.empty()) {
    write_decisions_csv(opts.decisions_out, result.traces);
  }
  return result;
}

}  // namespace ddnn::dist
