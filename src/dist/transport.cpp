#include "dist/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>

#include "obs/profile.hpp"
#include "util/error.hpp"

namespace ddnn::dist {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_s(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

int poll_ms_for(double timeout_s) {
  if (timeout_s <= 0.0) return 0;
  const double ms = timeout_s * 1e3;
  if (ms >= 60'000.0) return 60'000;
  const int rounded = static_cast<int>(ms);
  return rounded > 0 ? rounded : 1;
}

void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v & 0xFF));
  buf.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

bool known_frame_kind(std::uint8_t raw) {
  switch (static_cast<FrameKind>(raw)) {
    case FrameKind::kHello:
    case FrameKind::kAck:
    case FrameKind::kClassify:
    case FrameKind::kDecision:
    case FrameKind::kBye:
    case FrameKind::kStats:
    case FrameKind::kHealth:
    case FrameKind::kClassScores:
    case FrameKind::kBinaryFeatureMap:
    case FrameKind::kRawImage:
      return true;
  }
  return false;
}

double backoff_before_retry(const ReliabilityConfig& config, int retry_index) {
  double backoff = config.backoff_base_s;
  for (int i = 0; i < retry_index; ++i) backoff *= config.backoff_factor;
  return backoff;
}

}  // namespace

// ---------------------------------------------------------- SimTransport

SimTransport::SimTransport(ReliabilityConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

SendResult SimTransport::send(Link& link, const Message& msg,
                              std::int64_t sample_index) {
  ReliableChannel channel(link, injector_, config_);
  return channel.send(msg, sample_index);
}

// ----------------------------------------------------------- frame codec

const char* to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello: return "hello";
    case FrameKind::kAck: return "ack";
    case FrameKind::kClassify: return "classify";
    case FrameKind::kDecision: return "decision";
    case FrameKind::kBye: return "bye";
    case FrameKind::kStats: return "stats";
    case FrameKind::kHealth: return "health";
    case FrameKind::kClassScores: return "class-scores";
    case FrameKind::kBinaryFeatureMap: return "binary-features";
    case FrameKind::kRawImage: return "raw-image";
  }
  return "?";
}

bool is_data_kind(FrameKind kind) {
  return kind == FrameKind::kClassScores ||
         kind == FrameKind::kBinaryFeatureMap || kind == FrameKind::kRawImage;
}

FrameKind frame_kind_of(MessageKind kind) {
  switch (kind) {
    case MessageKind::kClassScores: return FrameKind::kClassScores;
    case MessageKind::kBinaryFeatureMap: return FrameKind::kBinaryFeatureMap;
    case MessageKind::kRawImage: return FrameKind::kRawImage;
  }
  DDNN_CHECK(false, "unknown MessageKind " << static_cast<int>(kind));
  return FrameKind::kClassScores;
}

MessageKind message_kind_of(FrameKind kind) {
  switch (kind) {
    case FrameKind::kClassScores: return MessageKind::kClassScores;
    case FrameKind::kBinaryFeatureMap: return MessageKind::kBinaryFeatureMap;
    case FrameKind::kRawImage: return MessageKind::kRawImage;
    default: break;
  }
  DDNN_CHECK(false,
             "frame kind " << to_string(kind) << " carries no Message");
  return MessageKind::kClassScores;
}

namespace {

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t n) {
  const auto& table = crc_table();
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

/// The frame checksum: header bytes [4, 20) (version, kind, reserved, seq,
/// length) chained with the payload, so a bit flip anywhere outside the
/// magic/CRC fields themselves fails the check.
std::uint32_t frame_crc(const std::uint8_t* header_4_20,
                        const std::uint8_t* payload, std::size_t n) {
  DDNN_PROF_SCOPE("transport.crc32");
  std::uint32_t crc = crc32_update(0xFFFFFFFFu, header_4_20, 16);
  return crc32_update(crc, payload, n) ^ 0xFFFFFFFFu;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  DDNN_PROF_SCOPE("transport.crc32");
  return crc32_update(0xFFFFFFFFu, data, n) ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  DDNN_PROF_SCOPE("transport.frame_encode");
  DDNN_CHECK(frame.payload.size() <= kMaxFramePayload,
             "frame payload " << frame.payload.size() << " B exceeds cap "
                              << kMaxFramePayload);
  std::vector<std::uint8_t> wire;
  wire.reserve(kFrameHeaderBytes + frame.payload.size());
  put_u32(wire, kFrameMagic);
  wire.push_back(kFrameVersion);
  wire.push_back(static_cast<std::uint8_t>(frame.kind));
  put_u16(wire, 0);  // reserved
  put_u64(wire, frame.seq);
  put_u32(wire, static_cast<std::uint32_t>(frame.payload.size()));
  put_u32(wire,
          frame_crc(wire.data() + 4, frame.payload.data(),
                    frame.payload.size()));
  wire.insert(wire.end(), frame.payload.begin(), frame.payload.end());
  return wire;
}

std::size_t frame_size_from_header(const std::uint8_t* header) {
  const std::uint32_t magic = get_u32(header);
  DDNN_CHECK(magic == kFrameMagic,
             "bad frame magic 0x" << std::hex << magic << " (want 0x"
                                  << kFrameMagic << ")");
  DDNN_CHECK(header[4] == kFrameVersion,
             "unsupported frame version " << static_cast<int>(header[4])
                                          << " (speak version "
                                          << static_cast<int>(kFrameVersion)
                                          << ")");
  const std::uint32_t length = get_u32(header + 16);
  DDNN_CHECK(length <= kMaxFramePayload,
             "frame declares " << length << " B payload, over the "
                               << kMaxFramePayload << " B cap");
  return kFrameHeaderBytes + length;
}

Frame decode_frame(const std::uint8_t* data, std::size_t n) {
  DDNN_PROF_SCOPE("transport.frame_decode");
  DDNN_CHECK(n >= kFrameHeaderBytes,
             "truncated frame: " << n << " B is smaller than the "
                                 << kFrameHeaderBytes << " B header");
  const std::size_t want = frame_size_from_header(data);
  DDNN_CHECK(n == want, "frame declares " << (want - kFrameHeaderBytes)
                                          << " B payload but buffer holds "
                                          << (n - kFrameHeaderBytes) << " B");
  DDNN_CHECK(known_frame_kind(data[5]),
             "unknown frame kind " << static_cast<int>(data[5]));
  Frame frame;
  frame.kind = static_cast<FrameKind>(data[5]);
  frame.seq = get_u64(data + 8);
  frame.payload.assign(data + kFrameHeaderBytes, data + want);
  const std::uint32_t declared_crc = get_u32(data + 20);
  const std::uint32_t actual_crc =
      frame_crc(data + 4, frame.payload.data(), frame.payload.size());
  DDNN_CHECK(declared_crc == actual_crc,
             "frame CRC mismatch on " << to_string(frame.kind)
                                      << ": header says 0x" << std::hex
                                      << declared_crc << ", frame hashes 0x"
                                      << actual_crc);
  return frame;
}

// ------------------------------------------------------------ payload IO

void PayloadWriter::u8(std::uint8_t v) { buf_.push_back(v); }
void PayloadWriter::i32(std::int32_t v) {
  put_u32(buf_, static_cast<std::uint32_t>(v));
}
void PayloadWriter::i64(std::int64_t v) {
  put_u64(buf_, static_cast<std::uint64_t>(v));
}
void PayloadWriter::u64(std::uint64_t v) { put_u64(buf_, v); }
void PayloadWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(buf_, bits);
}
void PayloadWriter::bytes(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}
void PayloadWriter::str(const std::string& s) {
  put_u32(buf_, static_cast<std::uint32_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

PayloadReader::PayloadReader(const std::uint8_t* data, std::size_t n,
                             const char* what)
    : data_(data), n_(n), what_(what) {}

void PayloadReader::need(std::size_t n) const {
  DDNN_CHECK(pos_ + n <= n_, "truncated " << what_ << " payload: need " << n
                                          << " B at offset " << pos_
                                          << ", only " << (n_ - pos_)
                                          << " B remain");
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return data_[pos_++];
}
std::int32_t PayloadReader::i32() {
  need(4);
  const std::uint32_t v = get_u32(data_ + pos_);
  pos_ += 4;
  return static_cast<std::int32_t>(v);
}
std::int64_t PayloadReader::i64() {
  need(8);
  const std::uint64_t v = get_u64(data_ + pos_);
  pos_ += 8;
  return static_cast<std::int64_t>(v);
}
std::uint64_t PayloadReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(data_ + pos_);
  pos_ += 8;
  return v;
}
double PayloadReader::f64() {
  need(8);
  const std::uint64_t bits = get_u64(data_ + pos_);
  pos_ += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
std::string PayloadReader::str() {
  need(4);
  const std::uint32_t len = get_u32(data_ + pos_);
  pos_ += 4;
  need(len);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}
std::vector<std::uint8_t> PayloadReader::rest() {
  std::vector<std::uint8_t> out(data_ + pos_, data_ + n_);
  pos_ = n_;
  return out;
}

Frame make_message_frame(const Message& msg, std::int64_t sample,
                         std::int32_t branch, const TraceContext& trace) {
  Frame frame;
  frame.kind = frame_kind_of(msg.kind);
  PayloadWriter w;
  w.i64(sample);
  w.i32(branch);
  w.u64(trace.trace_id);
  w.u64(trace.parent_span);
  w.bytes(msg.payload.data(), msg.payload.size());
  frame.payload = w.take();
  return frame;
}

Message frame_message(const Frame& frame, MessageMeta* meta) {
  DDNN_CHECK(is_data_kind(frame.kind),
             "frame kind " << to_string(frame.kind) << " carries no Message");
  PayloadReader r(frame.payload.data(), frame.payload.size(),
                  to_string(frame.kind));
  MessageMeta m;
  m.sample = r.i64();
  m.branch = r.i32();
  m.trace.trace_id = r.u64();
  m.trace.parent_span = r.u64();
  if (meta != nullptr) *meta = m;
  Message msg;
  msg.kind = message_kind_of(frame.kind);
  msg.payload = r.rest();
  return msg;
}

// -------------------------------------------------------------- FrameConn

FrameConn::FrameConn(int fd) : fd_(fd) {
  DDNN_CHECK(fd_ >= 0, "FrameConn needs a valid fd");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

FrameConn::~FrameConn() { close(); }

void FrameConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FrameConn::queue(const Frame& frame) {
  const std::vector<std::uint8_t> wire = encode_frame(frame);
  out_.insert(out_.end(), wire.begin(), wire.end());
}

bool FrameConn::flush(double timeout_s) {
  DDNN_PROF_SCOPE("transport.flush");
  const double deadline = now_s() + timeout_s;
  while (out_pos_ < out_.size()) {
    DDNN_CHECK(fd_ >= 0, "flush on closed connection");
    const ssize_t n = ::send(fd_, out_.data() + out_pos_,
                             out_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const double remaining = deadline - now_s();
      if (remaining <= 0.0) return false;
      struct pollfd pfd {
        fd_, POLLOUT, 0
      };
      ::poll(&pfd, 1, poll_ms_for(remaining));
      continue;
    }
    const int err = errno;
    close();
    DDNN_CHECK(false, "connection write failed: " << std::strerror(err));
  }
  out_.clear();
  out_pos_ = 0;
  return true;
}

bool FrameConn::write_frame(const Frame& frame, double timeout_s) {
  queue(frame);
  return flush(timeout_s);
}

bool FrameConn::fill_from_socket(double timeout_s) {
  DDNN_PROF_SCOPE("transport.poll");
  if (fd_ < 0) return false;
  std::uint8_t chunk[64 * 1024];
  ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    if (timeout_s <= 0.0) return false;
    struct pollfd pfd {
      fd_, POLLIN, 0
    };
    if (::poll(&pfd, 1, poll_ms_for(timeout_s)) <= 0) return false;
    n = ::recv(fd_, chunk, sizeof(chunk), 0);
  }
  if (n > 0) {
    in_.insert(in_.end(), chunk, chunk + n);
    return true;
  }
  if (n == 0) {
    close();  // orderly EOF
    return false;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
  const int err = errno;
  close();
  DDNN_CHECK(false, "connection read failed: " << std::strerror(err));
  return false;
}

std::optional<Frame> FrameConn::parse_one() {
  if (in_.size() < kFrameHeaderBytes) return std::nullopt;
  const std::size_t total = frame_size_from_header(in_.data());
  if (in_.size() < total) return std::nullopt;
  Frame frame = decode_frame(in_.data(), total);
  in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(total));
  return frame;
}

std::optional<Frame> FrameConn::read_frame(double timeout_s) {
  const double deadline = now_s() + timeout_s;
  while (true) {
    if (auto frame = parse_one()) return frame;
    if (closed()) return std::nullopt;
    const double remaining = deadline - now_s();
    const bool got_bytes = fill_from_socket(remaining > 0.0 ? remaining : 0.0);
    if (!got_bytes && now_s() >= deadline) {
      // Last chance: bytes may have landed on the final fill.
      return parse_one();
    }
  }
}

std::vector<Frame> FrameConn::poll_frames() {
  while (fill_from_socket(0.0)) {
  }
  std::vector<Frame> frames;
  while (auto frame = parse_one()) frames.push_back(std::move(*frame));
  return frames;
}

// --------------------------------------------------------------- Listener

Listener::Listener(int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DDNN_CHECK(fd_ >= 0, "socket(): " << std::strerror(errno));
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  DDNN_CHECK(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
                 0,
             "bind(127.0.0.1:" << port << "): " << std::strerror(errno));
  DDNN_CHECK(::listen(fd_, 16) == 0, "listen(): " << std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  DDNN_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
                 0,
             "getsockname(): " << std::strerror(errno));
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

std::shared_ptr<FrameConn> Listener::accept(double timeout_s) {
  const double deadline = now_s() + timeout_s;
  while (true) {
    struct pollfd pfd {
      fd_, POLLIN, 0
    };
    const double remaining = deadline - now_s();
    if (::poll(&pfd, 1, poll_ms_for(remaining)) > 0) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) return std::make_shared<FrameConn>(client);
    }
    if (now_s() >= deadline) return nullptr;
  }
}

std::shared_ptr<FrameConn> connect_to(const std::string& host_port,
                                      double timeout_s) {
  const auto colon = host_port.rfind(':');
  DDNN_CHECK(colon != std::string::npos,
             "address must be host:port, got '" << host_port << "'");
  const std::string host = host_port.substr(0, colon);
  const int port = std::stoi(host_port.substr(colon + 1));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  DDNN_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "bad IPv4 address '" << host << "'");

  const double deadline = now_s() + timeout_s;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DDNN_CHECK(fd >= 0, "socket(): " << std::strerror(errno));
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) return std::make_shared<FrameConn>(fd);
    if (errno == EINPROGRESS) {
      struct pollfd pfd {
        fd, POLLOUT, 0
      };
      const double remaining = deadline - now_s();
      if (::poll(&pfd, 1, poll_ms_for(remaining)) > 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) return std::make_shared<FrameConn>(fd);
      }
    }
    ::close(fd);
    if (now_s() >= deadline) return nullptr;
    sleep_s(20e-3);  // server may still be coming up; retry until deadline
  }
}

// -------------------------------------------------------- SocketTransport

SocketTransport::SocketTransport(ReliabilityConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

namespace {

/// Control channels ("cloud-ctl", "edge-ctl") carry handshake/decision
/// frames, not Link traffic — they get no link.* columns.
bool is_control_channel(const std::string& name) {
  return name.size() >= 4 && name.compare(name.size() - 4, 4, "-ctl") == 0;
}

}  // namespace

void SocketTransport::attach(const std::string& channel,
                             std::shared_ptr<FrameConn> conn) {
  Channel& ch = channels_[channel];
  ch.conn = std::move(conn);
  ch.down = false;
  register_channel_metrics(channel, ch);
}

void SocketTransport::detach(const std::string& channel) {
  channels_.erase(channel);
}

bool SocketTransport::attached(const std::string& channel) const {
  return find(channel) != nullptr;
}

std::shared_ptr<FrameConn> SocketTransport::conn(
    const std::string& channel) const {
  const Channel* ch = find(channel);
  return ch != nullptr ? ch->conn : nullptr;
}

bool SocketTransport::channel_down(const std::string& channel) const {
  const Channel* ch = find(channel);
  return ch == nullptr || ch->down || ch->conn == nullptr ||
         ch->conn->closed();
}

SocketTransport::Channel* SocketTransport::find(const std::string& channel) {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : &it->second;
}

const SocketTransport::Channel* SocketTransport::find(
    const std::string& channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? nullptr : &it->second;
}

void SocketTransport::bind_metrics(obs::MetricsRegistry* reg) {
  metrics_ = reg;
  if (reg == nullptr) {
    breaker_trips_ = nullptr;
    channels_down_ = nullptr;
    for (auto& [name, ch] : channels_) ch.metrics = ChannelMetrics{};
    return;
  }
  breaker_trips_ = &reg->counter("transport.breaker_trips");
  channels_down_ = &reg->gauge("transport.channels_down");
  for (auto& [name, ch] : channels_) register_channel_metrics(name, ch);
}

void SocketTransport::register_channel_metrics(const std::string& name,
                                               Channel& ch) {
  if (metrics_ == nullptr || is_control_channel(name)) return;
  const std::string base = "link." + name + ".";
  ch.metrics.attempts = &metrics_->counter(base + "attempts");
  ch.metrics.retries = &metrics_->counter(base + "retries");
  ch.metrics.timeouts = &metrics_->counter(base + "timeouts");
  ch.metrics.bytes = &metrics_->counter(base + "bytes");
}

void SocketTransport::mark_down(Channel& ch) {
  if (ch.down) return;
  ch.down = true;
  if (metrics_ == nullptr) return;
  std::int64_t down = 0;
  for (const auto& [name, c] : channels_) down += c.down ? 1 : 0;
  breaker_trips_->add(1);
  channels_down_->set(static_cast<double>(down));
}

bool SocketTransport::await_ack(FrameConn& conn, std::uint64_t seq,
                                double timeout_s) {
  const double deadline = now_s() + timeout_s;
  while (true) {
    const double remaining = deadline - now_s();
    auto frame = conn.read_frame(remaining > 0.0 ? remaining : 0.0);
    if (!frame.has_value()) {
      if (now_s() >= deadline || conn.closed()) return false;
      continue;
    }
    if (frame->kind == FrameKind::kAck) {
      if (frame->seq == seq) return true;
      continue;  // stale ack from an earlier timed-out attempt
    }
    inbox_[&conn].push_back(std::move(*frame));
  }
}

SendResult SocketTransport::send(Link& link, const Message& msg,
                                 std::int64_t sample_index) {
  std::vector<BatchItem> one(1);
  one[0] = BatchItem{&link, &msg, sample_index, 0, TraceContext{}};
  return send_batch(one)[0];
}

std::vector<SendResult> SocketTransport::send_batch(
    const std::vector<BatchItem>& items) {
  std::vector<SendResult> results(items.size());
  std::vector<Frame> frames(items.size());
  std::vector<Channel*> routed(items.size(), nullptr);
  std::set<FrameConn*> touched;

  // Phase 1: queue every frame, then flush each connection exactly once —
  // the whole uplink burst leaves in one buffered write per socket.
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    Channel* ch = find(item.link->name());
    const bool usable = ch != nullptr && ch->conn != nullptr &&
                        !ch->conn->closed() && !(fail_fast_ && ch->down);
    if (!usable) {
      item.link->record_drop(*item.msg);
      results[i] = SendResult{false, 1, 1, 0.0};
      if (ch != nullptr && ch->metrics.attempts != nullptr) {
        ch->metrics.attempts->add(1);
        ch->metrics.timeouts->add(1);
      }
      continue;
    }
    frames[i] =
        make_message_frame(*item.msg, item.sample, item.branch, item.trace);
    frames[i].seq = next_seq_++;
    ch->conn->queue(frames[i]);
    routed[i] = ch;
    touched.insert(ch->conn.get());
  }
  for (FrameConn* conn : touched) {
    try {
      conn->flush(config_.timeout_s);
    } catch (const ddnn::Error&) {
      // Connection died mid-flush; the per-item ack wait below will see the
      // closed fd and report the failure with proper accounting.
    }
  }

  // Phase 2: collect the pipelined acks in send order; a timed-out item
  // falls back to the per-frame retry ladder.
  for (std::size_t i = 0; i < items.size(); ++i) {
    Channel* ch = routed[i];
    if (ch == nullptr) continue;
    const BatchItem& item = items[i];
    const double start = now_s();
    SendResult res;
    res.attempts = 1;
    bool delivered = false;
    try {
      delivered = await_ack(*ch->conn, frames[i].seq, config_.timeout_s);
      while (!delivered && res.attempts <= config_.max_retries) {
        item.link->record_drop(*item.msg);
        res.dropped_attempts += 1;
        sleep_s(backoff_before_retry(config_, res.attempts - 1));
        res.attempts += 1;
        if (ch->conn->closed()) break;
        if (!ch->conn->write_frame(frames[i], config_.timeout_s)) continue;
        delivered = await_ack(*ch->conn, frames[i].seq, config_.timeout_s);
      }
    } catch (const ddnn::Error&) {
      delivered = false;  // reset or protocol error mid-wait
    }
    if (delivered) {
      item.link->transmit(*item.msg);  // delivered-byte accounting only
    } else {
      item.link->record_drop(*item.msg);
      res.dropped_attempts += 1;
      mark_down(*ch);
    }
    res.delivered = delivered;
    res.latency_s = now_s() - start;
    if (ch->metrics.attempts != nullptr) {
      ch->metrics.attempts->add(res.attempts);
      ch->metrics.retries->add(res.attempts - 1);
      if (delivered) {
        ch->metrics.bytes->add(
            static_cast<std::int64_t>(item.msg->payload_bytes()));
      } else {
        ch->metrics.timeouts->add(1);
      }
    }
    results[i] = res;
  }
  return results;
}

bool SocketTransport::post(const std::string& channel, const Frame& frame) {
  Channel* ch = find(channel);
  if (ch == nullptr || ch->conn == nullptr || ch->conn->closed() ||
      (fail_fast_ && ch->down)) {
    return false;
  }
  Frame out = frame;
  if (out.seq == 0) out.seq = next_seq_++;
  try {
    return ch->conn->write_frame(out, config_.timeout_s);
  } catch (const ddnn::Error&) {
    mark_down(*ch);
    return false;
  }
}

std::optional<Frame> SocketTransport::await(const std::string& channel,
                                            FrameKind kind,
                                            double timeout_s) {
  Channel* ch = find(channel);
  if (ch == nullptr || ch->conn == nullptr) return std::nullopt;
  auto& inbox = inbox_[ch->conn.get()];
  for (auto it = inbox.begin(); it != inbox.end(); ++it) {
    if (it->kind == kind) {
      Frame frame = std::move(*it);
      inbox.erase(it);
      return frame;
    }
  }
  const double deadline = now_s() + timeout_s;
  while (!ch->conn->closed()) {
    const double remaining = deadline - now_s();
    if (remaining <= 0.0) break;
    std::optional<Frame> frame;
    try {
      frame = ch->conn->read_frame(remaining);
    } catch (const ddnn::Error&) {
      mark_down(*ch);
      return std::nullopt;
    }
    if (!frame.has_value()) continue;
    if (frame->kind == kind) return frame;
    if (frame->kind != FrameKind::kAck) inbox.push_back(std::move(*frame));
  }
  return std::nullopt;
}

}  // namespace ddnn::dist
