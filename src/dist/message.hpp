// Wire format for the simulated distributed hierarchy.
//
// Three payload kinds cross physical boundaries in a DDNN (paper Sections
// III-E and IV-H):
//   * class scores     — float32 vector of length |C| (4*|C| bytes), sent by
//                        every device to the local aggregator for every
//                        sample, and by edges to the edge-exit coordinator;
//   * binary features  — bit-packed sign bits of a binarized feature map
//                        (f*o/8 bytes), sent upward when a sample does not
//                        exit locally; lossless because binarized activations
//                        are exactly +-1;
//   * raw image        — 1 byte per pixel per channel (3072 B for 3x32x32),
//                        the paper's traditional-offloading baseline.
//
// Shapes travel out of band: both endpoints know the architecture, exactly
// as a deployed DDNN's endpoints would.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ddnn::dist {

enum class MessageKind : std::uint8_t {
  kClassScores = 0,
  kBinaryFeatureMap = 1,
  kRawImage = 2,
};

const char* to_string(MessageKind kind);

struct Message {
  MessageKind kind = MessageKind::kClassScores;
  std::vector<std::uint8_t> payload;

  std::int64_t payload_bytes() const {
    return static_cast<std::int64_t>(payload.size());
  }
};

/// [C] or [1, C] float scores -> 4*C bytes (exact float32 round trip).
Message encode_class_scores(const Tensor& scores);
Tensor decode_class_scores(const Message& msg, std::int64_t num_classes);

/// Binarized tensor (+-1 values) -> ceil(numel/8) bytes (exact round trip).
Message encode_binary_feature_map(const Tensor& features);
Tensor decode_binary_feature_map(const Message& msg, Shape shape);

/// [0,1] float image -> 1 byte per value (quantized; the baseline the paper
/// charges 3072 B per 32x32 RGB frame for). Out-of-range values clamp to
/// [0, 1] before quantization.
Message encode_raw_image(const Tensor& image);
Tensor decode_raw_image(const Message& msg, Shape shape);

/// Decode a device/edge feature message of known shape, dispatching on the
/// payload kind: raw images are the config-(a) device payload (and the
/// graceful-degradation raw-offload fallback); everything else is
/// bit-packed binary.
Tensor decode_features(const Message& msg, const Shape& shape);

}  // namespace ddnn::dist
