// Simulated hierarchy nodes.
//
// Each node executes its partition of the jointly-trained DDNN by calling
// the model's section API (core::DdnnModel::device_section_*, edge_section,
// cloud_section), so the distributed execution is the SAME computation as
// the centralized forward pass — with the intermediate tensors round-tripped
// through the wire format in between (lossless for binarized features).
#pragma once

#include <optional>

#include "core/model.hpp"
#include "dist/message.hpp"

namespace ddnn::dist {

/// Shape of a single-sample device feature tensor under `cfg` (the raw view
/// shape when the device runs no NN blocks). Out-of-band wire knowledge:
/// both endpoints of a feature message derive it from the shared config.
Shape device_feature_shape(const core::DdnnConfig& cfg);
/// Shape of a single-sample edge feature tensor under `cfg`.
Shape edge_feature_shape(const core::DdnnConfig& cfg);

/// An end device: senses one view, runs its trunk + local exit head.
class DeviceNode {
 public:
  /// `branch` is the model input branch this device drives.
  DeviceNode(int id, core::DdnnModel& model, int branch);

  int id() const { return id_; }
  bool failed() const { return failed_; }

  /// Marking a device failed clears its cached view and features: a device
  /// that comes back must sense() again before it can serve messages, so a
  /// failure can never silently serve pre-failure state.
  void set_failed(bool failed);

  /// Run the device NN section on a sensed view ([3, S, S]); caches the
  /// features for a later escalation. No-op when failed.
  void sense(const Tensor& view);

  /// Class-score message for the local aggregator (requires a local exit
  /// and a prior sense()).
  Message scores_message();

  /// Feature message for the tier above: bit-packed binary features, or the
  /// quantized raw image when the device runs no NN blocks (config (a)).
  Message feature_message() const;

  /// Quantized raw view for the graceful-degradation fallback: when no
  /// higher tier can be fed features, alive devices offload their raw
  /// images and the cloud runs the whole network (traditional offloading).
  Message raw_image_message() const;

  /// Shape of the feature tensor this device forwards upward.
  Shape feature_shape() const;

 private:
  int id_;
  core::DdnnModel& model_;
  int branch_;
  bool failed_ = false;
  Tensor view_;                    // last sensed input (config (a) path)
  core::Variable features_;        // cached trunk output
};

/// The local aggregator / gateway: fuses device class scores and makes the
/// local exit decision.
class GatewayNode {
 public:
  explicit GatewayNode(core::DdnnModel& model);

  /// Decode and fuse the per-device score messages (slots of failed devices
  /// carry no message => std::nullopt). Returns the fused [1, C] scores.
  Tensor aggregate(const std::vector<std::optional<Message>>& scores);

 private:
  core::DdnnModel& model_;
};

/// An edge server handling one device group.
class EdgeNode {
 public:
  EdgeNode(std::size_t group, core::DdnnModel& model);

  /// Decode member feature messages, run the edge section. Caches features.
  /// Returns this edge's exit-score message.
  Message process(const std::vector<std::optional<Message>>& member_features,
                  std::int64_t batch);

  /// Bit-packed edge features for the cloud (requires a prior process()).
  Message feature_message() const;

  Shape feature_shape() const;

 private:
  std::size_t group_;
  core::DdnnModel& model_;
  core::Variable features_;
};

/// The cloud: fuses incoming branches and produces the final classification.
class CloudNode {
 public:
  explicit CloudNode(core::DdnnModel& model);

  /// `branches[i]`: feature message from device/edge branch i (nullopt for
  /// failed branches). Returns the final [1, C] scores.
  Tensor process(const std::vector<std::optional<Message>>& branches,
                 std::int64_t batch);

 private:
  core::DdnnModel& model_;
};

}  // namespace ddnn::dist
