#include "dist/runtime.hpp"

#include <algorithm>

#include "autograd/grad_mode.hpp"
#include "core/entropy.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::dist {

ExitDecision decide_exit(const Tensor& logits) {
  const Tensor probs = ops::softmax_rows(logits);
  return {ops::argmax_rows(probs)[0], core::normalized_entropy_row(probs, 0)};
}

HierarchyRuntime::HierarchyRuntime(core::DdnnModel& model,
                                   std::vector<double> thresholds,
                                   std::vector<int> device_map,
                                   RuntimeConfig config)
    : model_(model),
      thresholds_(std::move(thresholds)),
      device_map_(std::move(device_map)),
      config_(config),
      cloud_(model),
      sim_transport_(config.reliability) {
  const auto& cfg = model_.config();
  DDNN_CHECK(!cfg.float_devices,
             "float-device models have no 1-bit wire format; the distributed "
             "runtime requires binarized device sections");
  DDNN_CHECK(static_cast<int>(thresholds_.size()) + 1 == cfg.num_exits(),
             "need one threshold per non-final exit");
  DDNN_CHECK(static_cast<int>(device_map_.size()) == cfg.num_devices,
             "device map size mismatch");
  config_.reliability.validate();

  for (int b = 0; b < cfg.num_devices; ++b) {
    devices_.emplace_back(b, model_, b);
    dev_gateway_links_.emplace_back("device" + std::to_string(b) + "->gateway",
                                    config_.device_link);
    const std::string up_target = cfg.has_edge() ? "edge" : "cloud";
    dev_uplink_links_.emplace_back(
        "device" + std::to_string(b) + "->" + up_target, config_.device_link);
    if (cfg.has_edge()) {
      // Degraded-routing path: when the edge tier is unreachable, devices
      // escalate straight to the cloud over these links. (Without an edge
      // tier the normal uplink already terminates at the cloud.)
      dev_cloud_links_.emplace_back(
          "device" + std::to_string(b) + "->cloud(fallback)",
          config_.device_link);
    }
  }
  if (cfg.has_local_exit) gateway_.emplace(model_);
  if (cfg.has_edge()) {
    for (std::size_t g = 0; g < cfg.edge_groups.size(); ++g) {
      edges_.emplace_back(g, model_);
      edge_coord_links_.emplace_back("edge" + std::to_string(g) + "->coord",
                                     config_.edge_link);
      edge_cloud_links_.emplace_back("edge" + std::to_string(g) + "->cloud",
                                     config_.edge_link);
    }
  }
  reset_metrics();
}

void HierarchyRuntime::set_device_failed(int branch, bool failed) {
  DDNN_CHECK(branch >= 0 &&
                 branch < static_cast<int>(devices_.size()),
             "branch out of range");
  devices_[static_cast<std::size_t>(branch)].set_failed(failed);
}

void HierarchyRuntime::set_fault_plan(FaultPlan plan) {
  plan.validate();
  DDNN_CHECK(plan.devices.size() <= devices_.size(),
             "fault plan schedules " << plan.devices.size()
                                     << " devices but the runtime has "
                                     << devices_.size());
  const int n_groups = static_cast<int>(model_.config().edge_groups.size());
  for (const auto& o : plan.edge_outages) {
    DDNN_CHECK(n_groups > 0,
               "edge outage in the plan but this hierarchy has no edge tier");
    DDNN_CHECK(o.group < n_groups, "edge outage group out of range");
  }
  injector_.emplace(std::move(plan));
  transport().set_fault_injector(fault_injector());
}

void HierarchyRuntime::clear_fault_plan() {
  injector_.reset();
  transport().set_fault_injector(nullptr);
}

void HierarchyRuntime::set_transport(Transport* transport) {
  transport_ = transport;
  // The new transport inherits the installed fault oracle (a no-op for
  // transports that ignore injectors, e.g. real sockets).
  this->transport().set_fault_injector(fault_injector());
}

void HierarchyRuntime::reset_metrics() {
  metrics_ = {};
  metrics_.exit_counts.assign(
      static_cast<std::size_t>(model_.config().num_exits()), 0);
  metrics_.device_bytes.assign(devices_.size(), 0);
  for (auto& l : dev_gateway_links_) l.reset_stats();
  for (auto& l : dev_uplink_links_) l.reset_stats();
  for (auto& l : edge_coord_links_) l.reset_stats();
  for (auto& l : edge_cloud_links_) l.reset_stats();
  for (auto& l : dev_cloud_links_) l.reset_stats();
  sample_index_ = 0;
}

void HierarchyRuntime::set_tracer(obs::SpanTracer* tracer) {
  tracer_ = tracer;
  if (!tracer_) return;
  tracer_->set_track_name(0, "samples");
  for (std::size_t b = 0; b < devices_.size(); ++b) {
    tracer_->set_track_name(device_track(static_cast<int>(b)),
                            "device" + std::to_string(b));
  }
  if (gateway_) tracer_->set_track_name(gateway_track(), "gateway");
  for (std::size_t g = 0; g < edges_.size(); ++g) {
    tracer_->set_track_name(edge_track(static_cast<int>(g)),
                            "edge" + std::to_string(g));
  }
  if (!edges_.empty()) tracer_->set_track_name(coord_track(), "edge-coord");
  tracer_->set_track_name(cloud_track(), "cloud");
}

void HierarchyRuntime::bind_metrics(obs::MetricsRegistry* registry) {
  bound_ = {};
  bound_.registry = registry;
  if (!registry) return;
  bound_.samples = &registry->counter("runtime.samples");
  bound_.bytes_total = &registry->counter("runtime.bytes_total");
  bound_.correct = &registry->counter("runtime.correct");
  bound_.retries = &registry->counter("runtime.retries");
  bound_.drops = &registry->counter("runtime.drops");
  bound_.timeouts = &registry->counter("runtime.timeouts");
  bound_.degraded = &registry->counter("runtime.degraded");
  bound_.dead = &registry->counter("runtime.dead");
  for (const auto& name : model_.exit_names()) {
    bound_.exits.push_back(&registry->counter("runtime.exit." + name));
  }
  bound_.total_latency_s = &registry->gauge("runtime.total_latency_s");
  bound_.latency_ms =
      &registry->histogram("runtime.sample_latency_ms", 0.0, 1000.0, 100);
  // Tail companion to the fixed-bin histogram: microsecond resolution up to
  // an hour of latency, with per-bucket trace exemplars.
  bound_.hdr_latency_ms =
      &registry->hdr_histogram("runtime.hdr_latency_ms", 1e-3, 3.6e6);
  bound_.sample_bytes =
      &registry->histogram("runtime.sample_bytes", 0.0, 1048576.0, 64);
  // Per-destination reliability breakdown. The link.<name>.bytes counters
  // share names with the bind_series() columns deliberately:
  // scripts/check_trace.py reconciles same-named pairs exactly.
  auto add_links = [&](const std::vector<Link>& links) {
    for (const auto& link : links) {
      BoundMetrics::LinkCounters c;
      c.attempts = &registry->counter("link." + link.name() + ".attempts");
      c.retries = &registry->counter("link." + link.name() + ".retries");
      c.timeouts = &registry->counter("link." + link.name() + ".timeouts");
      c.bytes = &registry->counter("link." + link.name() + ".bytes");
      bound_.links[&link] = c;
    }
  };
  add_links(dev_gateway_links_);
  add_links(dev_uplink_links_);
  add_links(edge_coord_links_);
  add_links(edge_cloud_links_);
  add_links(dev_cloud_links_);
}

void HierarchyRuntime::bind_series(obs::WindowedSeries* series) {
  series_ = {};
  series_.series = series;
  if (!series) return;
  // Counter columns share their names with the bind_metrics() registry
  // counters on purpose: scripts/check_trace.py --series matches them up and
  // demands the window sums equal the final snapshot exactly.
  series_.samples = series->add_counter("runtime.samples");
  series_.bytes_total = series->add_counter("runtime.bytes_total");
  series_.correct = series->add_counter("runtime.correct");
  series_.retries = series->add_counter("runtime.retries");
  series_.drops = series->add_counter("runtime.drops");
  series_.timeouts = series->add_counter("runtime.timeouts");
  series_.degraded = series->add_counter("runtime.degraded");
  series_.dead = series->add_counter("runtime.dead");
  const auto exit_names = model_.exit_names();
  for (const auto& name : exit_names) {
    series_.exits.push_back(series->add_counter("runtime.exit." + name));
  }
  for (std::size_t e = 0; e < series_.exits.size(); ++e) {
    series->add_ratio("runtime.exit_frac." + exit_names[e], series_.exits[e],
                      series_.samples);
  }
  series->add_ratio("runtime.accuracy", series_.correct, series_.samples);
  series_.latency_ms = series->add_histogram("runtime.latency_ms");
  series_.hdr_latency_ms =
      series->add_hdr("runtime.hdr_latency_ms", 1e-3, 3.6e6);
  auto add_links = [&](const std::vector<Link>& links) {
    for (const auto& link : links) {
      series_.link_bytes[&link] =
          series->add_counter("link." + link.name() + ".bytes");
    }
  };
  add_links(dev_gateway_links_);
  add_links(dev_uplink_links_);
  add_links(edge_coord_links_);
  add_links(edge_cloud_links_);
  add_links(dev_cloud_links_);
}

int HierarchyRuntime::group_of(int branch) const {
  const auto& groups = model_.config().edge_groups;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int d : groups[g]) {
      if (d == branch) return static_cast<int>(g);
    }
  }
  return -1;
}

Table HierarchyRuntime::link_report() const {
  Table table({"Link", "Messages", "Dropped", "Bytes", "Bytes/sample"});
  const std::int64_t n = metrics_.samples;
  auto emit = [&](const std::vector<Link>& links) {
    for (const auto& link : links) {
      // An empty metrics window has no meaningful per-sample rate; emit "-"
      // instead of mistaking the byte total for a rate.
      const std::string per_sample =
          n == 0 ? "-"
                 : Table::num(static_cast<double>(link.stats().bytes) /
                                  static_cast<double>(n),
                              1);
      table.add_row({link.name(), std::to_string(link.stats().messages),
                     std::to_string(link.stats().dropped),
                     std::to_string(link.stats().bytes), per_sample});
    }
  };
  emit(dev_gateway_links_);
  emit(dev_uplink_links_);
  emit(edge_coord_links_);
  emit(edge_cloud_links_);
  emit(dev_cloud_links_);
  return table;
}

std::optional<Message> edge_section_at_cloud(
    core::DdnnModel& model, std::size_t g,
    const std::vector<std::optional<Message>>& features) {
  const auto& cfg = model.config();
  autograd::NoGradGuard no_grad;
  const Shape shape = device_feature_shape(cfg);
  std::vector<core::Variable> members;
  std::vector<bool> active;
  bool any = false;
  for (int d : cfg.edge_groups[g]) {
    const auto& msg = features[static_cast<std::size_t>(d)];
    if (msg.has_value()) {
      members.emplace_back(decode_features(*msg, shape));
      active.push_back(true);
      any = true;
    } else {
      members.emplace_back(Tensor::zeros(shape));
      active.push_back(false);
    }
  }
  if (!any) return std::nullopt;
  const auto result = model.edge_section(g, members, active);
  return encode_binary_feature_map(result.features.value());
}

Tensor cloud_forward_from_raw_views(
    core::DdnnModel& model, const std::vector<std::optional<Message>>& raws) {
  const auto& cfg = model.config();
  autograd::NoGradGuard no_grad;
  const Shape view_shape{1, cfg.input_channels, cfg.input_size,
                         cfg.input_size};
  const Shape feature_shape = device_feature_shape(cfg);
  std::vector<core::Variable> feats;
  std::vector<bool> active;
  for (std::size_t b = 0; b < raws.size(); ++b) {
    if (raws[b].has_value()) {
      const core::Variable input(decode_raw_image(*raws[b], view_shape));
      feats.emplace_back(cfg.device_conv_blocks == 0
                             ? input
                             : model.device_section_features(
                                   static_cast<int>(b), input));
      active.push_back(true);
    } else {
      feats.emplace_back(Tensor::zeros(feature_shape));
      active.push_back(false);
    }
  }
  if (!cfg.has_edge()) return model.cloud_section(feats, active).value();

  const Shape edge_shape = edge_feature_shape(cfg);
  std::vector<core::Variable> branches;
  std::vector<bool> branch_active;
  for (std::size_t g = 0; g < cfg.edge_groups.size(); ++g) {
    std::vector<core::Variable> members;
    std::vector<bool> member_active;
    bool any = false;
    for (int d : cfg.edge_groups[g]) {
      members.push_back(feats[static_cast<std::size_t>(d)]);
      member_active.push_back(active[static_cast<std::size_t>(d)]);
      any = any || active[static_cast<std::size_t>(d)];
    }
    if (any) {
      branches.push_back(model.edge_section(g, members, member_active)
                             .features);
      branch_active.push_back(true);
    } else {
      branches.emplace_back(Tensor::zeros(edge_shape));
      branch_active.push_back(false);
    }
  }
  return model.cloud_section(branches, branch_active).value();
}

InferenceTrace HierarchyRuntime::classify(const data::MvmcSample& sample) {
  const auto& cfg = model_.config();
  const auto n_dev = devices_.size();
  const std::int64_t sidx = sample_index_++;
  const FaultInjector* inj = fault_injector();
  InferenceTrace trace;
  // 48-bit trace id minted from the sample index alone (splitmix-style
  // multiply) — never the wall clock, so any export carrying it stays
  // byte-identical across reruns.
  trace.trace_id =
      (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(sidx + 1)) &
      ((1ull << 48) - 1);
  int exit_index = 0;
  const int cloud_exit = cfg.num_exits() - 1;

  // Simulated-clock origin of this sample on the run timeline: samples lay
  // out sequentially, each starting where the previous one's latency ended.
  obs::SpanTracer* tr = tracer_;
  const double base = metrics_.total_latency_s;

  // Book a finished trace into the run metrics; every return goes through
  // here exactly once.
  auto commit = [&](int exit_taken, std::int64_t prediction,
                    double entropy) -> InferenceTrace& {
    trace.exit_taken = exit_taken;
    trace.prediction = prediction;
    trace.entropy = entropy;
    if (exit_taken >= 0) {
      ++metrics_.exit_counts[static_cast<std::size_t>(exit_taken)];
    }
    ++metrics_.samples;
    metrics_.total_bytes += trace.bytes_sent;
    metrics_.total_latency_s += trace.latency_s;
    if (trace.degraded) ++metrics_.reliability.degraded_exits;
    if (trace.dead) ++metrics_.reliability.dead_samples;
    if (trace.prediction == sample.label) ++metrics_.correct;
    if (tr) {
      // Root span: dur_s and the latency_s/bytes args are the *exact*
      // doubles/integers booked into RuntimeMetrics, so trace consumers can
      // cross-check the two exports bit-for-bit (scripts/check_trace.py).
      tr->add("sample", "sample", 0, base, trace.latency_s)
          .with("sample_index", sidx)
          .with("exit", exit_taken)
          .with("prediction", prediction)
          .with("label", sample.label)
          .with("entropy", entropy)
          .with("latency_s", trace.latency_s)
          .with("bytes", trace.bytes_sent)
          .with("retries", trace.retries)
          .with("degraded", trace.degraded)
          .with("dead", trace.dead);
    }
    if (bound_.registry) {
      bound_.samples->add(1);
      bound_.bytes_total->add(trace.bytes_sent);
      if (trace.prediction == sample.label) bound_.correct->add(1);
      if (trace.degraded) bound_.degraded->add(1);
      if (trace.dead) bound_.dead->add(1);
      if (exit_taken >= 0) {
        bound_.exits[static_cast<std::size_t>(exit_taken)]->add(1);
      }
      bound_.total_latency_s->set(metrics_.total_latency_s);
      bound_.latency_ms->record(trace.latency_s * 1e3);
      bound_.hdr_latency_ms->record(trace.latency_s * 1e3, trace.trace_id,
                                    sidx);
      bound_.sample_bytes->record(static_cast<double>(trace.bytes_sent));
    }
    if (series_.series) {
      // Everything the sample contributes is recorded at its start time
      // `base` (send() already booked its per-send columns there too), so a
      // sample lands in exactly one window and counter-column window sums
      // reconcile with the final metrics snapshot.
      obs::WindowedSeries& ws = *series_.series;
      ws.record(series_.samples, base, 1.0);
      ws.record(series_.bytes_total, base,
                static_cast<double>(trace.bytes_sent));
      if (trace.prediction == sample.label) {
        ws.record(series_.correct, base, 1.0);
      }
      if (trace.degraded) ws.record(series_.degraded, base, 1.0);
      if (trace.dead) ws.record(series_.dead, base, 1.0);
      if (exit_taken >= 0) {
        ws.record(series_.exits[static_cast<std::size_t>(exit_taken)], base,
                  1.0);
      }
      ws.record(series_.latency_ms, base, trace.latency_s * 1e3);
      ws.record(series_.hdr_latency_ms, base, trace.latency_s * 1e3,
                trace.trace_id, sidx);
    }
    return trace;
  };

  // Reliable send: retries/timeouts are accounted here; delivered bytes are
  // charged to the trace and (for device senders) the per-device counters.
  // The elapsed time joins the stage's parallel-sender critical path. The
  // span starts at the stage's start on the sender's track (`t_off` shifts
  // it past compute charged before the send, e.g. the edge trunk).
  auto send = [&](Link& link, const Message& msg, int branch,
                  double& stage_latency, int track, const char* span_name,
                  double t_off = 0.0) -> bool {
    const SendResult res = transport().send(link, msg, sidx);
    metrics_.reliability.drops += res.dropped_attempts;
    metrics_.reliability.retries += res.attempts - 1;
    trace.retries += res.attempts - 1;
    if (res.delivered) {
      trace.bytes_sent += msg.payload_bytes();
      if (branch >= 0) {
        metrics_.device_bytes[static_cast<std::size_t>(branch)] +=
            msg.payload_bytes();
      }
    } else {
      ++metrics_.reliability.timeouts;
    }
    if (bound_.registry) {
      bound_.drops->add(res.dropped_attempts);
      bound_.retries->add(res.attempts - 1);
      if (!res.delivered) bound_.timeouts->add(1);
      const auto& lc = bound_.links.at(&link);
      lc.attempts->add(res.attempts);
      lc.retries->add(res.attempts - 1);
      if (!res.delivered) lc.timeouts->add(1);
      if (res.delivered) lc.bytes->add(msg.payload_bytes());
    }
    if (series_.series) {
      obs::WindowedSeries& ws = *series_.series;
      if (res.dropped_attempts > 0) {
        ws.record(series_.drops, base,
                  static_cast<double>(res.dropped_attempts));
      }
      if (res.attempts > 1) {
        ws.record(series_.retries, base,
                  static_cast<double>(res.attempts - 1));
      }
      if (!res.delivered) ws.record(series_.timeouts, base, 1.0);
      if (res.delivered) {
        ws.record(series_.link_bytes.at(&link), base,
                  static_cast<double>(msg.payload_bytes()));
      }
    }
    if (tr) {
      tr->add(span_name, "net", track, base + trace.latency_s + t_off,
              res.latency_s)
          .with("link", link.name())
          .with("bytes", res.delivered ? msg.payload_bytes()
                                       : std::int64_t{0})
          .with("attempts", res.attempts)
          .with("delivered", res.delivered);
    }
    stage_latency = std::max(stage_latency, res.latency_s);
    return res.delivered;
  };

  // --- Stage 0: every reachable device runs its NN section on its view.
  std::vector<bool> alive(n_dev, false);
  bool any_alive = false;
  for (std::size_t b = 0; b < n_dev; ++b) {
    if (devices_[b].failed()) continue;
    if (inj && inj->device_down(static_cast<int>(b), sidx)) continue;
    const auto dev_id = static_cast<std::size_t>(device_map_[b]);
    devices_[b].sense(sample.views.at(dev_id));
    alive[b] = true;
    any_alive = true;
  }
  if (!any_alive) {
    // Every device is down: nothing sensed, nothing to classify. Count the
    // sample as a flagged dead trace instead of aborting the run — accuracy
    // degrades, the system keeps serving.
    trace.degraded = trace.dead = true;
    return commit(-1, -1, 1.0);
  }
  if (tr) {
    for (std::size_t b = 0; b < n_dev; ++b) {
      if (!alive[b]) continue;
      tr->add("device_section", "compute", device_track(static_cast<int>(b)),
              base, config_.device_compute_s)
          .with("branch", static_cast<int>(b));
    }
  }
  trace.latency_s += config_.device_compute_s;

  // --- Stage 1: local exit.
  if (cfg.has_local_exit) {
    std::vector<std::optional<Message>> scores(n_dev);
    double stage_latency = 0.0;
    int delivered = 0;
    for (std::size_t b = 0; b < n_dev; ++b) {
      if (!alive[b]) continue;
      Message msg = devices_[b].scores_message();
      if (send(dev_gateway_links_[b], msg, static_cast<int>(b),
               stage_latency, device_track(static_cast<int>(b)),
               "send:scores")) {
        scores[b] = std::move(msg);
        ++delivered;
      }
    }
    trace.latency_s += stage_latency;
    if (delivered > 0) {
      const Tensor fused = gateway_->aggregate(scores);
      const ExitDecision d = decide_exit(fused);
      if (tr) {
        tr->add("gateway_fuse", "compute", gateway_track(),
                base + trace.latency_s, 0.0)
            .with("delivered", delivered)
            .with("entropy", d.entropy);
      }
      if (core::should_exit(d.entropy, thresholds_[0])) {
        return commit(0, d.prediction, d.entropy);
      }
    } else {
      // The gateway heard from zero devices: it cannot make a local
      // decision, so the sample escalates without one.
      trace.degraded = true;
    }
    exit_index = 1;
  }

  // --- Stage 2: devices escalate their features upward. A device whose
  // edge group is inside an outage window routes straight to the cloud.
  std::vector<std::optional<Message>> features(n_dev);
  {
    double stage_latency = 0.0;
    for (std::size_t b = 0; b < n_dev; ++b) {
      if (!alive[b]) continue;
      const int g = cfg.has_edge() ? group_of(static_cast<int>(b)) : -1;
      const bool edge_up = g < 0 || !(inj && inj->edge_down(g, sidx));
      if (!edge_up) trace.degraded = true;
      Link& uplink = edge_up ? dev_uplink_links_[b] : dev_cloud_links_[b];
      Message msg = devices_[b].feature_message();
      if (send(uplink, msg, static_cast<int>(b), stage_latency,
               device_track(static_cast<int>(b)), "send:features")) {
        features[b] = std::move(msg);
      }
    }
    trace.latency_s += stage_latency;
  }

  std::vector<std::optional<Message>> cloud_branches;
  if (cfg.has_edge()) {
    // --- Stage 3: reachable edges process their member devices.
    const auto n_groups = cfg.edge_groups.size();
    std::vector<std::optional<Message>> edge_scores(n_groups);
    std::vector<bool> group_active(n_groups, false);
    std::vector<bool> edge_up(n_groups, true);
    double stage_latency = 0.0;
    bool any_edge_ran = false;
    for (std::size_t g = 0; g < n_groups; ++g) {
      edge_up[g] = !(inj && inj->edge_down(static_cast<int>(g), sidx));
      if (!edge_up[g]) continue;
      std::vector<std::optional<Message>> members;
      bool any = false;
      for (int d : cfg.edge_groups[g]) {
        members.push_back(features[static_cast<std::size_t>(d)]);
        any = any || features[static_cast<std::size_t>(d)].has_value();
      }
      group_active[g] = any;
      if (!any) continue;
      Message msg = edges_[g].process(members, 1);
      any_edge_ran = true;
      if (tr) {
        tr->add("edge_trunk", "compute", edge_track(static_cast<int>(g)),
                base + trace.latency_s, config_.edge_compute_s)
            .with("group", static_cast<int>(g));
      }
      if (send(edge_coord_links_[g], msg, -1, stage_latency,
               edge_track(static_cast<int>(g)), "send:edge_scores",
               config_.edge_compute_s)) {
        edge_scores[g] = std::move(msg);
      }
    }
    if (any_edge_ran) trace.latency_s += config_.edge_compute_s;
    trace.latency_s += stage_latency;

    // --- Stage 4: fused edge exit decision (skipped when the coordinator
    // heard from zero edges — the sample escalates straight to the cloud).
    const bool any_score =
        std::any_of(edge_scores.begin(), edge_scores.end(),
                    [](const auto& s) { return s.has_value(); });
    if (any_score) {
      std::vector<core::Variable> edge_logits;
      std::vector<bool> active;
      for (std::size_t g = 0; g < n_groups; ++g) {
        if (edge_scores[g].has_value()) {
          edge_logits.emplace_back(
              decode_class_scores(*edge_scores[g], cfg.num_classes));
          active.push_back(true);
        } else {
          edge_logits.emplace_back(Tensor::zeros(Shape{1, cfg.num_classes}));
          active.push_back(false);
        }
      }
      const Tensor fused =
          model_.edge_exit_aggregate(edge_logits, active).value();
      const ExitDecision d = decide_exit(fused);
      if (tr) {
        tr->add("edge_exit_fuse", "compute", coord_track(),
                base + trace.latency_s, 0.0)
            .with("entropy", d.entropy);
      }
      if (core::should_exit(
              d.entropy, thresholds_[static_cast<std::size_t>(exit_index)])) {
        return commit(exit_index, d.prediction, d.entropy);
      }
    } else {
      trace.degraded = true;
    }
    ++exit_index;

    // --- Stage 5: edges forward their features to the cloud; groups whose
    // edge is dark have their edge section computed by the cloud itself on
    // the member features that arrived over the fallback links.
    double cloud_latency = 0.0;
    cloud_branches.resize(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) {
      if (!edge_up[g]) {
        cloud_branches[g] = edge_section_at_cloud(model_, g, features);
        if (tr) {
          tr->add("edge_section_at_cloud", "compute", cloud_track(),
                  base + trace.latency_s, 0.0)
              .with("group", static_cast<int>(g))
              .with("delivered", cloud_branches[g].has_value());
        }
        continue;
      }
      if (!group_active[g]) continue;
      Message msg = edges_[g].feature_message();
      if (send(edge_cloud_links_[g], msg, -1, cloud_latency,
               edge_track(static_cast<int>(g)), "send:edge_features")) {
        cloud_branches[g] = std::move(msg);
      }
    }
    trace.latency_s += cloud_latency;
  } else {
    cloud_branches = std::move(features);
  }

  // --- Stage 6: the cloud always classifies.
  const bool any_branch =
      std::any_of(cloud_branches.begin(), cloud_branches.end(),
                  [](const auto& b) { return b.has_value(); });
  if (!any_branch) {
    // Last-resort raw offload: no feature reached the cloud, so alive
    // devices retransmit their quantized raw views and the cloud runs the
    // whole network itself (the paper's traditional-offloading path).
    trace.degraded = true;
    std::vector<std::optional<Message>> raws(n_dev);
    double stage_latency = 0.0;
    int delivered = 0;
    for (std::size_t b = 0; b < n_dev; ++b) {
      if (!alive[b]) continue;
      Message msg = devices_[b].raw_image_message();
      Link& to_cloud =
          cfg.has_edge() ? dev_cloud_links_[b] : dev_uplink_links_[b];
      if (send(to_cloud, msg, static_cast<int>(b), stage_latency,
               device_track(static_cast<int>(b)), "send:raw_image")) {
        raws[b] = std::move(msg);
        ++delivered;
      }
    }
    trace.latency_s += stage_latency;
    if (delivered == 0) {
      trace.dead = true;
      return commit(-1, -1, 1.0);
    }
    const ExitDecision d = decide_exit(cloud_forward_from_raw_views(model_, raws));
    if (tr) {
      tr->add("cloud_classify", "compute", cloud_track(),
              base + trace.latency_s, config_.cloud_compute_s)
          .with("raw_offload", true)
          .with("entropy", d.entropy);
    }
    trace.latency_s += config_.cloud_compute_s;
    return commit(cloud_exit, d.prediction, d.entropy);
  }
  const Tensor logits = cloud_.process(cloud_branches, 1);
  const ExitDecision d = decide_exit(logits);
  if (tr) {
    tr->add("cloud_classify", "compute", cloud_track(),
            base + trace.latency_s, config_.cloud_compute_s)
        .with("raw_offload", false)
        .with("entropy", d.entropy);
  }
  trace.latency_s += config_.cloud_compute_s;
  return commit(cloud_exit, d.prediction, d.entropy);
}

RuntimeMetrics HierarchyRuntime::run(
    const std::vector<data::MvmcSample>& samples) {
  for (const auto& s : samples) classify(s);
  return metrics_;
}

}  // namespace ddnn::dist
