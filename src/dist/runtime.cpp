#include "dist/runtime.hpp"

#include <algorithm>

#include "core/entropy.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::dist {

namespace {

/// argmax + normalized entropy of a [1, C] score vector.
struct Decision {
  std::int64_t prediction;
  double entropy;
};

Decision decide(const Tensor& logits) {
  const Tensor probs = ops::softmax_rows(logits);
  return {ops::argmax_rows(probs)[0], core::normalized_entropy_row(probs, 0)};
}

}  // namespace

HierarchyRuntime::HierarchyRuntime(core::DdnnModel& model,
                                   std::vector<double> thresholds,
                                   std::vector<int> device_map,
                                   RuntimeConfig config)
    : model_(model),
      thresholds_(std::move(thresholds)),
      device_map_(std::move(device_map)),
      config_(config),
      cloud_(model) {
  const auto& cfg = model_.config();
  DDNN_CHECK(!cfg.float_devices,
             "float-device models have no 1-bit wire format; the distributed "
             "runtime requires binarized device sections");
  DDNN_CHECK(static_cast<int>(thresholds_.size()) + 1 == cfg.num_exits(),
             "need one threshold per non-final exit");
  DDNN_CHECK(static_cast<int>(device_map_.size()) == cfg.num_devices,
             "device map size mismatch");

  for (int b = 0; b < cfg.num_devices; ++b) {
    devices_.emplace_back(b, model_, b);
    dev_gateway_links_.emplace_back("device" + std::to_string(b) + "->gateway",
                                    config_.device_link);
    const std::string up_target = cfg.has_edge() ? "edge" : "cloud";
    dev_uplink_links_.emplace_back(
        "device" + std::to_string(b) + "->" + up_target, config_.device_link);
  }
  if (cfg.has_local_exit) gateway_.emplace(model_);
  if (cfg.has_edge()) {
    for (std::size_t g = 0; g < cfg.edge_groups.size(); ++g) {
      edges_.emplace_back(g, model_);
      edge_coord_links_.emplace_back("edge" + std::to_string(g) + "->coord",
                                     config_.edge_link);
      edge_cloud_links_.emplace_back("edge" + std::to_string(g) + "->cloud",
                                     config_.edge_link);
    }
  }
  reset_metrics();
}

void HierarchyRuntime::set_device_failed(int branch, bool failed) {
  DDNN_CHECK(branch >= 0 &&
                 branch < static_cast<int>(devices_.size()),
             "branch out of range");
  devices_[static_cast<std::size_t>(branch)].set_failed(failed);
}

void HierarchyRuntime::reset_metrics() {
  metrics_ = {};
  metrics_.exit_counts.assign(
      static_cast<std::size_t>(model_.config().num_exits()), 0);
  metrics_.device_bytes.assign(devices_.size(), 0);
  for (auto& l : dev_gateway_links_) l.reset_stats();
  for (auto& l : dev_uplink_links_) l.reset_stats();
  for (auto& l : edge_coord_links_) l.reset_stats();
  for (auto& l : edge_cloud_links_) l.reset_stats();
}

int HierarchyRuntime::group_of(int branch) const {
  const auto& groups = model_.config().edge_groups;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int d : groups[g]) {
      if (d == branch) return static_cast<int>(g);
    }
  }
  return -1;
}

Table HierarchyRuntime::link_report() const {
  Table table({"Link", "Messages", "Bytes", "Bytes/sample"});
  const double n = std::max<double>(1.0, static_cast<double>(metrics_.samples));
  auto emit = [&](const std::vector<Link>& links) {
    for (const auto& link : links) {
      table.add_row({link.name(), std::to_string(link.stats().messages),
                     std::to_string(link.stats().bytes),
                     Table::num(static_cast<double>(link.stats().bytes) / n,
                                1)});
    }
  };
  emit(dev_gateway_links_);
  emit(dev_uplink_links_);
  emit(edge_coord_links_);
  emit(edge_cloud_links_);
  return table;
}

InferenceTrace HierarchyRuntime::classify(const data::MvmcSample& sample) {
  const auto& cfg = model_.config();
  const auto n_dev = devices_.size();
  InferenceTrace trace;
  int exit_index = 0;

  auto account = [&](Link& link, const Message& msg, int branch) -> double {
    trace.bytes_sent += msg.payload_bytes();
    if (branch >= 0) {
      metrics_.device_bytes[static_cast<std::size_t>(branch)] +=
          msg.payload_bytes();
    }
    return link.transmit(msg);
  };

  // --- Stage 0: every healthy device runs its NN section on its view.
  bool any_active = false;
  for (std::size_t b = 0; b < n_dev; ++b) {
    if (devices_[b].failed()) continue;
    const auto dev_id = static_cast<std::size_t>(device_map_[b]);
    devices_[b].sense(sample.views.at(dev_id));
    any_active = true;
  }
  DDNN_CHECK(any_active, "classify with every device failed");
  trace.latency_s += config_.device_compute_s;

  // --- Stage 1: local exit.
  if (cfg.has_local_exit) {
    std::vector<std::optional<Message>> scores(n_dev);
    double stage_latency = 0.0;
    for (std::size_t b = 0; b < n_dev; ++b) {
      if (devices_[b].failed()) continue;
      Message msg = devices_[b].scores_message();
      stage_latency = std::max(
          stage_latency, account(dev_gateway_links_[b], msg,
                                 static_cast<int>(b)));
      scores[b] = std::move(msg);
    }
    trace.latency_s += stage_latency;
    const Tensor fused = gateway_->aggregate(scores);
    const Decision d = decide(fused);
    if (core::should_exit(d.entropy, thresholds_[0])) {
      trace.exit_taken = 0;
      trace.prediction = d.prediction;
      trace.entropy = d.entropy;
      ++metrics_.exit_counts[0];
      ++metrics_.samples;
      metrics_.total_bytes += trace.bytes_sent;
      metrics_.total_latency_s += trace.latency_s;
      if (trace.prediction == sample.label) ++metrics_.correct;
      return trace;
    }
    exit_index = 1;
  }

  // --- Stage 2: devices escalate their features upward.
  std::vector<std::optional<Message>> features(n_dev);
  {
    double stage_latency = 0.0;
    for (std::size_t b = 0; b < n_dev; ++b) {
      if (devices_[b].failed()) continue;
      Message msg = devices_[b].feature_message();
      stage_latency = std::max(
          stage_latency,
          account(dev_uplink_links_[b], msg, static_cast<int>(b)));
      features[b] = std::move(msg);
    }
    trace.latency_s += stage_latency;
  }

  std::vector<std::optional<Message>> cloud_branches;
  if (cfg.has_edge()) {
    // --- Stage 3: edges process their member devices.
    const auto n_groups = cfg.edge_groups.size();
    std::vector<std::optional<Message>> edge_scores(n_groups);
    std::vector<bool> group_active(n_groups, false);
    double stage_latency = 0.0;
    for (std::size_t g = 0; g < n_groups; ++g) {
      std::vector<std::optional<Message>> members;
      bool any = false;
      for (int d : cfg.edge_groups[g]) {
        members.push_back(features[static_cast<std::size_t>(d)]);
        any = any || features[static_cast<std::size_t>(d)].has_value();
      }
      group_active[g] = any;
      if (!any) continue;
      Message msg = edges_[g].process(members, 1);
      stage_latency =
          std::max(stage_latency, account(edge_coord_links_[g], msg, -1));
      edge_scores[g] = std::move(msg);
    }
    trace.latency_s += config_.edge_compute_s + stage_latency;

    // --- Stage 4: fused edge exit decision.
    std::vector<core::Variable> edge_logits;
    std::vector<bool> active;
    for (std::size_t g = 0; g < n_groups; ++g) {
      if (edge_scores[g].has_value()) {
        edge_logits.emplace_back(
            decode_class_scores(*edge_scores[g], cfg.num_classes));
        active.push_back(true);
      } else {
        edge_logits.emplace_back(Tensor::zeros(Shape{1, cfg.num_classes}));
        active.push_back(false);
      }
    }
    const Tensor fused =
        model_.edge_exit_aggregate(edge_logits, active).value();
    const Decision d = decide(fused);
    if (core::should_exit(d.entropy,
                          thresholds_[static_cast<std::size_t>(exit_index)])) {
      trace.exit_taken = exit_index;
      trace.prediction = d.prediction;
      trace.entropy = d.entropy;
      ++metrics_.exit_counts[static_cast<std::size_t>(exit_index)];
      ++metrics_.samples;
      metrics_.total_bytes += trace.bytes_sent;
      metrics_.total_latency_s += trace.latency_s;
      if (trace.prediction == sample.label) ++metrics_.correct;
      return trace;
    }
    ++exit_index;

    // --- Stage 5: edges forward their features to the cloud.
    double cloud_latency = 0.0;
    cloud_branches.resize(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) {
      if (!group_active[g]) continue;
      Message msg = edges_[g].feature_message();
      cloud_latency =
          std::max(cloud_latency, account(edge_cloud_links_[g], msg, -1));
      cloud_branches[g] = std::move(msg);
    }
    trace.latency_s += cloud_latency;
  } else {
    cloud_branches = std::move(features);
  }

  // --- Stage 6: the cloud always classifies.
  const Tensor logits = cloud_.process(cloud_branches, 1);
  const Decision d = decide(logits);
  trace.latency_s += config_.cloud_compute_s;
  trace.exit_taken = exit_index;
  trace.prediction = d.prediction;
  trace.entropy = d.entropy;
  ++metrics_.exit_counts[static_cast<std::size_t>(exit_index)];
  ++metrics_.samples;
  metrics_.total_bytes += trace.bytes_sent;
  metrics_.total_latency_s += trace.latency_s;
  if (trace.prediction == sample.label) ++metrics_.correct;
  return trace;
}

RuntimeMetrics HierarchyRuntime::run(
    const std::vector<data::MvmcSample>& samples) {
  for (const auto& s : samples) classify(s);
  return metrics_;
}

}  // namespace ddnn::dist
