#include "dist/node.hpp"

#include "autograd/grad_mode.hpp"
#include "util/error.hpp"

namespace ddnn::dist {

using core::DdnnConfig;
using core::Variable;

/// Shape of a single-sample device feature tensor under `cfg`.
Shape device_feature_shape(const DdnnConfig& cfg) {
  if (cfg.device_conv_blocks == 0) {
    return Shape{1, cfg.input_channels, cfg.input_size, cfg.input_size};
  }
  const std::int64_t s = cfg.device_out_size();
  return Shape{1, cfg.device_filters, s, s};
}

Shape edge_feature_shape(const DdnnConfig& cfg) {
  const std::int64_t s = cfg.edge_out_size();
  return Shape{1, cfg.edge_filters, s, s};
}

DeviceNode::DeviceNode(int id, core::DdnnModel& model, int branch)
    : id_(id), model_(model), branch_(branch) {
  DDNN_CHECK(branch >= 0 && branch < model.config().num_devices,
             "branch out of range");
}

void DeviceNode::set_failed(bool failed) {
  failed_ = failed;
  if (failed_) {
    // Drop cached state so a later recovery cannot serve pre-failure data:
    // the accessors DDNN_CHECK on undefined tensors until the next sense().
    view_ = Tensor();
    features_ = Variable();
  }
}

void DeviceNode::sense(const Tensor& view) {
  if (failed_) return;
  DDNN_CHECK(view.ndim() == 3, "sense expects a single [C, S, S] view");
  autograd::NoGradGuard no_grad;
  view_ = view;
  const Variable input(view.reshape(
      Shape{1, view.dim(0), view.dim(1), view.dim(2)}));
  if (model_.config().device_conv_blocks == 0) {
    features_ = input;  // raw offload: no on-device NN blocks
  } else {
    features_ = model_.device_section_features(branch_, input);
  }
}

Message DeviceNode::scores_message() {
  DDNN_CHECK(!failed_, "failed device asked for scores");
  DDNN_CHECK(features_.defined(), "scores_message before sense()");
  autograd::NoGradGuard no_grad;
  const Variable logits = model_.device_section_logits(branch_, features_);
  return encode_class_scores(logits.value());
}

Message DeviceNode::feature_message() const {
  DDNN_CHECK(!failed_, "failed device asked for features");
  DDNN_CHECK(features_.defined(), "feature_message before sense()");
  if (model_.config().device_conv_blocks == 0) {
    return encode_raw_image(view_);
  }
  return encode_binary_feature_map(features_.value());
}

Message DeviceNode::raw_image_message() const {
  DDNN_CHECK(!failed_, "failed device asked for its raw view");
  DDNN_CHECK(view_.defined(), "raw_image_message before sense()");
  return encode_raw_image(view_);
}

Shape DeviceNode::feature_shape() const {
  return device_feature_shape(model_.config());
}

GatewayNode::GatewayNode(core::DdnnModel& model) : model_(model) {
  DDNN_CHECK(model.config().has_local_exit,
             "gateway requires a model with a local exit");
}

Tensor GatewayNode::aggregate(
    const std::vector<std::optional<Message>>& scores) {
  autograd::NoGradGuard no_grad;
  const std::int64_t c = model_.config().num_classes;
  std::vector<Variable> logits;
  std::vector<bool> active;
  bool any = false;
  for (const auto& msg : scores) {
    if (msg.has_value()) {
      logits.emplace_back(decode_class_scores(*msg, c));
      active.push_back(true);
      any = true;
    } else {
      logits.emplace_back(Tensor::zeros(Shape{1, c}));
      active.push_back(false);
    }
  }
  // A gateway that heard from zero devices has nothing to fuse; the runtime
  // must escalate instead of asking for a decision from silence.
  DDNN_CHECK(any, "gateway aggregation with zero delivered score messages");
  return model_.local_aggregate(logits, active).value();
}

EdgeNode::EdgeNode(std::size_t group, core::DdnnModel& model)
    : group_(group), model_(model) {
  DDNN_CHECK(model.config().has_edge(), "edge node without an edge tier");
  DDNN_CHECK(group < model.config().edge_groups.size(),
             "edge group out of range");
}

Message EdgeNode::process(
    const std::vector<std::optional<Message>>& member_features,
    std::int64_t batch) {
  DDNN_CHECK(batch == 1, "the simulated runtime classifies one sample at a time");
  autograd::NoGradGuard no_grad;
  const Shape shape = device_feature_shape(model_.config());
  std::vector<Variable> features;
  std::vector<bool> active;
  for (const auto& msg : member_features) {
    if (msg.has_value()) {
      features.emplace_back(decode_features(*msg, shape));
      active.push_back(true);
    } else {
      features.emplace_back(Tensor::zeros(shape));
      active.push_back(false);
    }
  }
  const auto result = model_.edge_section(group_, features, active);
  features_ = result.features;
  return encode_class_scores(result.logits.value());
}

Message EdgeNode::feature_message() const {
  DDNN_CHECK(features_.defined(), "feature_message before process()");
  return encode_binary_feature_map(features_.value());
}

Shape EdgeNode::feature_shape() const {
  return edge_feature_shape(model_.config());
}

CloudNode::CloudNode(core::DdnnModel& model) : model_(model) {}

Tensor CloudNode::process(const std::vector<std::optional<Message>>& branches,
                          std::int64_t batch) {
  DDNN_CHECK(batch == 1, "the simulated runtime classifies one sample at a time");
  autograd::NoGradGuard no_grad;
  const Shape shape = model_.config().has_edge()
                          ? edge_feature_shape(model_.config())
                          : device_feature_shape(model_.config());
  std::vector<Variable> features;
  std::vector<bool> active;
  for (const auto& msg : branches) {
    if (msg.has_value()) {
      features.emplace_back(decode_features(*msg, shape));
      active.push_back(true);
    } else {
      features.emplace_back(Tensor::zeros(shape));
      active.push_back(false);
    }
  }
  return model_.cloud_section(features, active).value();
}

}  // namespace ddnn::dist
