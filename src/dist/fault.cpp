#include "dist/fault.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ddnn::dist {

namespace {

// Salts separating the draw families so a drop decision never correlates
// with a jitter or availability draw at the same coordinates.
constexpr std::uint64_t kLinkDropSalt = 0x6c696e6b64726f70ull;   // "linkdrop"
constexpr std::uint64_t kDeviceDownSalt = 0x646576646f776e21ull; // "devdown!"
constexpr std::uint64_t kJitterSalt = 0x6a69747465722121ull;     // "jitter!!"

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Counter-mode seed derivation: mixes the plan seed with the entity id,
/// sample index, attempt number and a salt through splitmix64. The returned
/// value seeds a throwaway ddnn::Rng, so every stochastic decision flows
/// through the repo's one PRNG family and is a pure function of its
/// coordinates — independent of call order and thread count.
std::uint64_t mix(std::uint64_t seed, std::uint64_t entity,
                  std::int64_t sample, int attempt, std::uint64_t salt) {
  std::uint64_t state = seed;
  state ^= splitmix64(state) + entity;
  state ^= splitmix64(state) + static_cast<std::uint64_t>(sample);
  state ^= splitmix64(state) +
           static_cast<std::uint64_t>(attempt) * 0x632BE59BD9B4E019ull;
  state ^= splitmix64(state) + salt;
  return splitmix64(state);
}

void check_prob(double p, const char* what) {
  DDNN_CHECK(p >= 0.0 && p <= 1.0,
             what << " probability " << p << " outside [0, 1]");
}

}  // namespace

void FaultPlan::validate() const {
  check_prob(link_drop_prob, "link drop");
  for (const auto& [name, p] : link_drop_overrides) {
    check_prob(p, ("link '" + name + "' drop").c_str());
  }
  for (const auto& d : devices) {
    check_prob(d.intermittent_down_prob, "intermittent device down");
    DDNN_CHECK(d.permanent_fail_at >= -1,
               "permanent_fail_at must be a sample index or -1");
  }
  for (const auto& o : edge_outages) {
    DDNN_CHECK(o.group >= -1, "edge outage group must be an index or -1");
    DDNN_CHECK(o.start_sample >= 0 && o.end_sample >= o.start_sample,
               "edge outage window [" << o.start_sample << ", "
                                      << o.end_sample << ") is inverted");
  }
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
}

double FaultInjector::drop_prob(std::string_view link) const {
  const auto it = plan_.link_drop_overrides.find(std::string(link));
  return it != plan_.link_drop_overrides.end() ? it->second
                                               : plan_.link_drop_prob;
}

bool FaultInjector::drop(std::string_view link, std::int64_t sample,
                         int attempt) const {
  const double p = drop_prob(link);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  Rng rng(mix(plan_.seed, fnv1a(link), sample, attempt, kLinkDropSalt));
  return rng.bernoulli(p);
}

bool FaultInjector::device_down(int branch, std::int64_t sample) const {
  if (branch < 0 || static_cast<std::size_t>(branch) >= plan_.devices.size()) {
    return false;
  }
  const auto& sched = plan_.devices[static_cast<std::size_t>(branch)];
  if (sched.permanent_fail_at >= 0 && sample >= sched.permanent_fail_at) {
    return true;
  }
  const double p = sched.intermittent_down_prob;
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  Rng rng(mix(plan_.seed, static_cast<std::uint64_t>(branch), sample, 0,
              kDeviceDownSalt));
  return rng.bernoulli(p);
}

bool FaultInjector::edge_down(int group, std::int64_t sample) const {
  for (const auto& o : plan_.edge_outages) {
    if (o.group != -1 && o.group != group) continue;
    if (sample >= o.start_sample && sample < o.end_sample) return true;
  }
  return false;
}

double FaultInjector::backoff_jitter(std::string_view link,
                                     std::int64_t sample, int attempt) const {
  Rng rng(mix(plan_.seed, fnv1a(link), sample, attempt, kJitterSalt));
  return rng.uniform();
}

void ReliabilityConfig::validate() const {
  DDNN_CHECK(max_retries >= 0, "negative retry budget");
  DDNN_CHECK(timeout_s > 0.0, "non-positive delivery deadline");
  DDNN_CHECK(backoff_base_s >= 0.0, "negative backoff base");
  DDNN_CHECK(backoff_factor >= 1.0, "backoff factor below 1 would shrink");
  DDNN_CHECK(jitter_frac >= 0.0 && jitter_frac < 1.0,
             "jitter fraction outside [0, 1)");
}

ReliableChannel::ReliableChannel(Link& link, const FaultInjector* injector,
                                 const ReliabilityConfig& config)
    : link_(link), injector_(injector), config_(config) {
  config_.validate();
}

SendResult ReliableChannel::send(const Message& msg,
                                 std::int64_t sample_index) {
  SendResult result;
  double backoff = config_.backoff_base_s;
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Jitter is symmetric around the nominal backoff: [1-j, 1+j).
      const double u =
          injector_ ? injector_->backoff_jitter(link_.name(), sample_index,
                                                attempt)
                    : 0.5;
      result.latency_s +=
          backoff * (1.0 + config_.jitter_frac * (2.0 * u - 1.0));
      backoff *= config_.backoff_factor;
    }
    ++result.attempts;
    if (injector_ && injector_->drop(link_.name(), sample_index, attempt)) {
      link_.record_drop(msg);
      ++result.dropped_attempts;
      result.latency_s += config_.timeout_s;  // sender waits out the deadline
      continue;
    }
    result.latency_s += link_.transmit(msg);
    result.delivered = true;
    break;
  }
  return result;
}

}  // namespace ddnn::dist
