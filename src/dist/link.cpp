#include "dist/link.hpp"

#include "util/error.hpp"

namespace ddnn::dist {

Link::Link(std::string name, LinkConfig config)
    : name_(std::move(name)), config_(config) {
  DDNN_CHECK(config_.bandwidth_bytes_per_s > 0.0, "non-positive bandwidth");
  DDNN_CHECK(config_.base_latency_s >= 0.0, "negative base latency");
}

double Link::transmit(const Message& msg) {
  ++stats_.attempts;
  ++stats_.messages;
  stats_.bytes += msg.payload_bytes();
  return latency_for(msg.payload_bytes());
}

void Link::record_drop(const Message& msg) {
  ++stats_.attempts;
  ++stats_.dropped;
  stats_.bytes_dropped += msg.payload_bytes();
}

double Link::latency_for(std::int64_t bytes) const {
  return config_.base_latency_s +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
}

}  // namespace ddnn::dist
