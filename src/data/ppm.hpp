// Plain PPM (P6) export of dataset images, so users can inspect SynthMVMC
// views and verify the per-device viewpoint/degradation story visually:
//
//   ddnn::data::write_ppm(sample.views[5], "device6.ppm");
#pragma once

#include <string>

#include "data/mvmc.hpp"
#include "tensor/tensor.hpp"

namespace ddnn::data {

/// Write a [3, H, W] image with values in [0, 1] as binary PPM (P6).
/// Values outside [0, 1] are clipped. Throws ddnn::Error on I/O failure.
void write_ppm(const Tensor& image, const std::string& path);

/// Read back a P6 PPM into a [3, H, W] tensor in [0, 1] (test round trips
/// and simple external-image import). Only the plain binary P6 variant with
/// maxval 255 is supported.
Tensor read_ppm(const std::string& path);

/// Dump every device view of `sample` as `<prefix>_dev<k>.ppm`; returns the
/// number of files written.
int write_sample_views(const MvmcSample& sample, const std::string& prefix);

}  // namespace ddnn::data
