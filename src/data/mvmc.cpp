#include "data/mvmc.hpp"

#include "util/error.hpp"

namespace ddnn::data {

std::vector<DeviceProfile> default_profiles(int num_devices) {
  // Quality increases with device index: device 0 is the weakest camera
  // (rarely sees the object, oblique, noisy), the last device has a clear
  // frontal view — mirroring the paper's Figure 8, where individual
  // accuracies spread from under 40% to over 70%.
  const std::vector<DeviceProfile> six = {
      {.presence_prob = 0.38,
       .noise_sigma = 0.50,
       .occlusion_prob = 0.55,
       .brightness_jitter = 0.25,
       .viewpoint = {.x_stretch = 0.50f,
                     .mirrored = true,
                     .background = {0.30f, 0.33f, 0.31f}}},
      {.presence_prob = 0.48,
       .noise_sigma = 0.40,
       .occlusion_prob = 0.45,
       .brightness_jitter = 0.20,
       .viewpoint = {.x_stretch = 0.62f,
                     .mirrored = false,
                     .background = {0.38f, 0.36f, 0.33f}}},
      {.presence_prob = 0.56,
       .noise_sigma = 0.32,
       .occlusion_prob = 0.36,
       .brightness_jitter = 0.15,
       .viewpoint = {.x_stretch = 0.72f,
                     .mirrored = true,
                     .background = {0.33f, 0.38f, 0.36f}}},
      {.presence_prob = 0.64,
       .noise_sigma = 0.25,
       .occlusion_prob = 0.28,
       .brightness_jitter = 0.12,
       .viewpoint = {.x_stretch = 0.85f,
                     .mirrored = false,
                     .background = {0.36f, 0.35f, 0.38f}}},
      {.presence_prob = 0.74,
       .noise_sigma = 0.18,
       .occlusion_prob = 0.18,
       .brightness_jitter = 0.10,
       .viewpoint = {.x_stretch = 0.92f,
                     .mirrored = true,
                     .background = {0.34f, 0.37f, 0.34f}}},
      {.presence_prob = 0.85,
       .noise_sigma = 0.12,
       .occlusion_prob = 0.10,
       .brightness_jitter = 0.06,
       .viewpoint = {.x_stretch = 1.00f,
                     .mirrored = false,
                     .background = {0.35f, 0.38f, 0.35f}}},
  };
  DDNN_CHECK(num_devices >= 1, "need at least one device");
  std::vector<DeviceProfile> out;
  for (int i = 0; i < num_devices; ++i) {
    out.push_back(six[static_cast<std::size_t>(i) % six.size()]);
  }
  return out;
}

namespace {

int sample_class(const std::vector<double>& prior, Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t c = 0; c < prior.size(); ++c) {
    acc += prior[c];
    if (u < acc) return static_cast<int>(c);
  }
  return static_cast<int>(prior.size()) - 1;
}

MvmcSample make_sample(const MvmcConfig& config,
                       const std::vector<DeviceProfile>& profiles, Rng& rng) {
  MvmcSample sample;
  sample.label = sample_class(config.class_prior, rng);
  const auto cls = static_cast<ObjectClass>(sample.label);
  const auto n = static_cast<std::size_t>(config.num_devices);

  // Presence per device; re-draw until at least one device sees the object
  // (the dataset is built from annotated bounding boxes, so every sample is
  // visible somewhere).
  sample.present.assign(n, false);
  bool any = false;
  while (!any) {
    for (std::size_t d = 0; d < n; ++d) {
      sample.present[d] = rng.bernoulli(profiles[d].presence_prob);
      any = any || sample.present[d];
    }
  }

  // One shared object scale and paint colour: all devices look at the same
  // physical object. Colour is random per object, so class identity is
  // carried by geometry rather than hue.
  const auto scale = static_cast<float>(rng.uniform(0.8, 1.25));
  const Color body{static_cast<float>(rng.uniform(0.25, 0.95)),
                   static_cast<float>(rng.uniform(0.25, 0.95)),
                   static_cast<float>(rng.uniform(0.25, 0.95))};

  sample.views.reserve(n);
  for (std::size_t d = 0; d < n; ++d) {
    const DeviceProfile& p = profiles[d];
    if (!sample.present[d]) {
      sample.views.push_back(blank_frame(config.image_size));
      continue;
    }
    Canvas canvas(config.image_size);
    render_background(canvas, p.viewpoint, rng);
    render_object(canvas, cls, p.viewpoint, scale, body, rng);
    if (rng.bernoulli(p.occlusion_prob)) render_occlusion(canvas, rng);
    canvas.scale_brightness(static_cast<float>(
        rng.uniform(1.0 - p.brightness_jitter, 1.0 + p.brightness_jitter)));
    canvas.add_noise(rng, static_cast<float>(p.noise_sigma));
    canvas.clip();
    sample.views.push_back(canvas.to_tensor());
  }
  return sample;
}

}  // namespace

MvmcDataset MvmcDataset::generate(const MvmcConfig& config) {
  DDNN_CHECK(config.num_devices >= 1, "num_devices must be >= 1");
  DDNN_CHECK(config.num_classes == 3,
             "SynthMVMC renders exactly the paper's 3 classes");
  DDNN_CHECK(static_cast<int>(config.class_prior.size()) == config.num_classes,
             "class_prior size mismatch");

  MvmcDataset ds;
  ds.config_ = config;
  if (ds.config_.profiles.empty()) {
    ds.config_.profiles = default_profiles(config.num_devices);
  }
  DDNN_CHECK(static_cast<int>(ds.config_.profiles.size()) ==
                 config.num_devices,
             "profiles size mismatch");

  Rng root(config.seed);
  // Each sample gets a forked sub-stream: inserting/removing samples or
  // changing one sample's content never perturbs the others.
  ds.train_.reserve(static_cast<std::size_t>(config.train_samples));
  for (int i = 0; i < config.train_samples; ++i) {
    Rng sub = root.fork();
    ds.train_.push_back(make_sample(ds.config_, ds.config_.profiles, sub));
  }
  ds.test_.reserve(static_cast<std::size_t>(config.test_samples));
  for (int i = 0; i < config.test_samples; ++i) {
    Rng sub = root.fork();
    ds.test_.push_back(make_sample(ds.config_, ds.config_.profiles, sub));
  }
  return ds;
}

Table MvmcDataset::distribution_table() const {
  Table table({"Device", "Car", "Bus", "Person", "Not-present", "Total"});
  for (int d = 0; d < config_.num_devices; ++d) {
    std::vector<std::int64_t> counts(
        static_cast<std::size_t>(config_.num_classes), 0);
    std::int64_t absent = 0;
    for (const auto& s : train_) {
      if (s.present[static_cast<std::size_t>(d)]) {
        ++counts[static_cast<std::size_t>(s.label)];
      } else {
        ++absent;
      }
    }
    table.add_row({std::to_string(d + 1), std::to_string(counts[0]),
                   std::to_string(counts[1]), std::to_string(counts[2]),
                   std::to_string(absent),
                   std::to_string(static_cast<std::int64_t>(train_.size()))});
  }
  return table;
}

std::string class_name(int label) {
  switch (label) {
    case 0: return "car";
    case 1: return "bus";
    case 2: return "person";
    default: return "unknown";
  }
}

}  // namespace ddnn::data
