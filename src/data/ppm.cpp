#include "data/ppm.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"

namespace ddnn::data {

void write_ppm(const Tensor& image, const std::string& path) {
  DDNN_CHECK(image.defined() && image.ndim() == 3 && image.dim(0) == 3,
             "write_ppm expects a [3, H, W] image");
  const std::int64_t h = image.dim(1), w = image.dim(2);
  std::ofstream f(path, std::ios::binary);
  DDNN_CHECK(f.good(), "cannot open " << path << " for writing");
  f << "P6\n" << w << " " << h << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(3 * w));
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      for (std::int64_t c = 0; c < 3; ++c) {
        const float v = std::clamp(
            image[(c * h + y) * w + x], 0.0f, 1.0f);
        row[static_cast<std::size_t>(3 * x + c)] =
            static_cast<unsigned char>(v * 255.0f + 0.5f);
      }
    }
    f.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
  }
  DDNN_CHECK(f.good(), "failed writing " << path);
}

Tensor read_ppm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  DDNN_CHECK(f.good(), "cannot open " << path << " for reading");
  std::string magic;
  std::int64_t w = 0, h = 0, maxval = 0;
  f >> magic >> w >> h >> maxval;
  DDNN_CHECK(magic == "P6", path << " is not a binary PPM (P6)");
  DDNN_CHECK(w > 0 && h > 0 && maxval == 255,
             "unsupported PPM geometry in " << path);
  f.get();  // single whitespace after the header
  std::vector<unsigned char> raw(static_cast<std::size_t>(3 * w * h));
  f.read(reinterpret_cast<char*>(raw.data()),
         static_cast<std::streamsize>(raw.size()));
  DDNN_CHECK(f.good(), "truncated PPM " << path);
  Tensor image(Shape{3, h, w});
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      for (std::int64_t c = 0; c < 3; ++c) {
        image[(c * h + y) * w + x] =
            static_cast<float>(raw[static_cast<std::size_t>(3 * (y * w + x) + c)]) /
            255.0f;
      }
    }
  }
  return image;
}

int write_sample_views(const MvmcSample& sample, const std::string& prefix) {
  int written = 0;
  for (std::size_t d = 0; d < sample.views.size(); ++d) {
    write_ppm(sample.views[d],
              prefix + "_dev" + std::to_string(d + 1) + ".ppm");
    ++written;
  }
  return written;
}

}  // namespace ddnn::data
