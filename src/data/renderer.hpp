// Procedural renderer for the SynthMVMC dataset.
//
// Renders the three object classes of the paper's multi-view multi-camera
// dataset (car, bus, person) into 3x32x32 RGB images, as seen from a
// device-specific viewpoint. The class identity is carried by colour and
// coarse shape; the viewpoint is carried by horizontal anisotropy, mirroring
// and placement so that each device must learn its own filters (the paper's
// "geographically unique inputs").
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace ddnn::data {

/// RGB colour with components in [0, 1].
struct Color {
  float r = 0.0f, g = 0.0f, b = 0.0f;
};

/// A 3x32x32 RGB canvas stored as a CHW tensor with values clipped to [0, 1].
class Canvas {
 public:
  explicit Canvas(std::int64_t size = 32);

  std::int64_t size() const { return size_; }

  void set(std::int64_t x, std::int64_t y, const Color& c);
  /// Alpha-blend `c` over the existing pixel.
  void blend(std::int64_t x, std::int64_t y, const Color& c, float alpha);

  void fill(const Color& c);
  void fill_rect(std::int64_t x0, std::int64_t y0, std::int64_t x1,
                 std::int64_t y1, const Color& c);
  void fill_circle(float cx, float cy, float radius, const Color& c);
  void fill_ellipse(float cx, float cy, float rx, float ry, const Color& c);

  void add_noise(Rng& rng, float sigma);
  void scale_brightness(float factor);
  /// Clip all values to [0, 1].
  void clip();

  /// The finished image (shares no storage with the canvas).
  Tensor to_tensor() const;

 private:
  std::int64_t size_;
  Tensor pixels_;  // [3, size, size]
};

/// How a device sees the world.
struct Viewpoint {
  /// Horizontal anisotropy: widths are multiplied by this (0.5 = oblique
  /// view, 1 = frontal).
  float x_stretch = 1.0f;
  /// Mirror the scene horizontally.
  bool mirrored = false;
  /// Base background tint for this camera position.
  Color background{0.35f, 0.38f, 0.35f};
};

enum class ObjectClass : int { kCar = 0, kBus = 1, kPerson = 2 };

/// Render `cls` on `canvas` as seen from `view`, with randomized placement
/// jitter. `scale` in (0, 1.5] controls apparent object size. `body` is the
/// object's paint colour: it is randomized PER OBJECT (not per class) and
/// shared across all devices observing that object, so class identity is
/// carried by geometry (aspect ratio, wheels, window band, head/legs), not
/// by colour — which is what makes shallow device models genuinely weaker
/// than the deeper cloud section, as in the paper's real-image task.
void render_object(Canvas& canvas, ObjectClass cls, const Viewpoint& view,
                   float scale, const Color& body, Rng& rng);

/// Paint the device-specific background (tint + vertical gradient + clutter).
void render_background(Canvas& canvas, const Viewpoint& view, Rng& rng);

/// Cover a random rectangle of the canvas with flat grey (simulated
/// occlusion by scene objects).
void render_occlusion(Canvas& canvas, Rng& rng);

/// The all-grey "object not present in this frame" image.
Tensor blank_frame(std::int64_t size = 32);

}  // namespace ddnn::data
