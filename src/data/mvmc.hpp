// SynthMVMC: procedural stand-in for the paper's multi-view multi-camera
// dataset (Roig et al. [18]; processed version distributed as MVMC.npz).
//
// The real dataset is offline-unavailable; this generator reproduces the
// properties the DDNN evaluation depends on (see DESIGN.md §1):
//   * six devices observe the SAME object instance from different viewpoints,
//   * devices differ in visibility (presence probability) and quality (noise,
//     occlusion), producing the paper's wide spread of individual accuracies,
//   * absent objects are an all-grey frame, labelled "not present" (-1 in the
//     paper; a `present` flag here), excluded from individual-model training,
//   * 3 classes (car / bus / person) with an imbalanced distribution,
//   * 680 training and 171 test samples of 3x32x32 RGB per device.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/renderer.hpp"
#include "tensor/tensor.hpp"
#include "util/table.hpp"

namespace ddnn::data {

/// Per-device acquisition characteristics. Together these determine the
/// device's standalone ("individual") accuracy: low presence and high
/// noise/occlusion -> weak device.
struct DeviceProfile {
  /// P(object appears in this device's frame).
  double presence_prob = 0.7;
  /// Additive Gaussian pixel noise.
  double noise_sigma = 0.1;
  /// P(a grey occluder covers part of the frame).
  double occlusion_prob = 0.2;
  /// Brightness jitter half-range (multiplicative, around 1).
  double brightness_jitter = 0.1;
  Viewpoint viewpoint{};
};

struct MvmcConfig {
  int num_devices = 6;
  int num_classes = 3;
  std::int64_t image_size = 32;
  int train_samples = 680;  // split used by the paper (Section IV-B)
  int test_samples = 171;
  std::uint64_t seed = 42;
  /// Class prior over {car, bus, person}; the paper's dataset is imbalanced.
  std::vector<double> class_prior{0.30, 0.20, 0.50};
  /// One per device; when empty, default_profiles(num_devices) is used.
  std::vector<DeviceProfile> profiles{};
};

/// One synchronized multi-view sample: the same object seen by all devices.
struct MvmcSample {
  std::vector<Tensor> views;  // per device: [3, size, size]
  std::vector<bool> present;  // per device: object visible in that frame?
  int label = 0;              // 0 = car, 1 = bus, 2 = person
};

/// Default device profiles, ordered roughly worst to best so the paper's
/// Figure 8 ordering (devices sorted by individual accuracy) is natural.
std::vector<DeviceProfile> default_profiles(int num_devices);

class MvmcDataset {
 public:
  /// Deterministically generate the dataset for `config` (same config ->
  /// bit-identical samples).
  static MvmcDataset generate(const MvmcConfig& config);

  const MvmcConfig& config() const { return config_; }
  int num_devices() const { return config_.num_devices; }
  int num_classes() const { return config_.num_classes; }

  const std::vector<MvmcSample>& train() const { return train_; }
  const std::vector<MvmcSample>& test() const { return test_; }

  /// Per-device class distribution of the training split (paper Figure 6):
  /// columns Person / Bus / Car / Not-present.
  Table distribution_table() const;

 private:
  MvmcConfig config_;
  std::vector<MvmcSample> train_;
  std::vector<MvmcSample> test_;
};

/// Human-readable class name ("car" / "bus" / "person").
std::string class_name(int label);

}  // namespace ddnn::data
