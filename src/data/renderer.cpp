#include "data/renderer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ddnn::data {

Canvas::Canvas(std::int64_t size)
    : size_(size), pixels_(Shape{3, size, size}) {
  DDNN_CHECK(size > 0, "Canvas: non-positive size");
}

void Canvas::set(std::int64_t x, std::int64_t y, const Color& c) {
  if (x < 0 || x >= size_ || y < 0 || y >= size_) return;
  pixels_[(0 * size_ + y) * size_ + x] = c.r;
  pixels_[(1 * size_ + y) * size_ + x] = c.g;
  pixels_[(2 * size_ + y) * size_ + x] = c.b;
}

void Canvas::blend(std::int64_t x, std::int64_t y, const Color& c,
                   float alpha) {
  if (x < 0 || x >= size_ || y < 0 || y >= size_) return;
  const float a = std::clamp(alpha, 0.0f, 1.0f);
  float* base = pixels_.data();
  float* pr = base + (0 * size_ + y) * size_ + x;
  float* pg = base + (1 * size_ + y) * size_ + x;
  float* pb = base + (2 * size_ + y) * size_ + x;
  *pr = (1 - a) * *pr + a * c.r;
  *pg = (1 - a) * *pg + a * c.g;
  *pb = (1 - a) * *pb + a * c.b;
}

void Canvas::fill(const Color& c) {
  for (std::int64_t y = 0; y < size_; ++y) {
    for (std::int64_t x = 0; x < size_; ++x) set(x, y, c);
  }
}

void Canvas::fill_rect(std::int64_t x0, std::int64_t y0, std::int64_t x1,
                       std::int64_t y1, const Color& c) {
  for (std::int64_t y = std::max<std::int64_t>(y0, 0);
       y <= std::min(y1, size_ - 1); ++y) {
    for (std::int64_t x = std::max<std::int64_t>(x0, 0);
         x <= std::min(x1, size_ - 1); ++x) {
      set(x, y, c);
    }
  }
}

void Canvas::fill_circle(float cx, float cy, float radius, const Color& c) {
  fill_ellipse(cx, cy, radius, radius, c);
}

void Canvas::fill_ellipse(float cx, float cy, float rx, float ry,
                          const Color& c) {
  if (rx <= 0.0f || ry <= 0.0f) return;
  const auto y0 = static_cast<std::int64_t>(std::floor(cy - ry));
  const auto y1 = static_cast<std::int64_t>(std::ceil(cy + ry));
  const auto x0 = static_cast<std::int64_t>(std::floor(cx - rx));
  const auto x1 = static_cast<std::int64_t>(std::ceil(cx + rx));
  for (std::int64_t y = y0; y <= y1; ++y) {
    for (std::int64_t x = x0; x <= x1; ++x) {
      const float dx = (static_cast<float>(x) - cx) / rx;
      const float dy = (static_cast<float>(y) - cy) / ry;
      if (dx * dx + dy * dy <= 1.0f) set(x, y, c);
    }
  }
}

void Canvas::add_noise(Rng& rng, float sigma) {
  if (sigma <= 0.0f) return;
  float* p = pixels_.data();
  for (std::int64_t i = 0; i < pixels_.numel(); ++i) {
    p[i] += static_cast<float>(rng.normal(0.0, sigma));
  }
}

void Canvas::scale_brightness(float factor) {
  float* p = pixels_.data();
  for (std::int64_t i = 0; i < pixels_.numel(); ++i) p[i] *= factor;
}

void Canvas::clip() {
  float* p = pixels_.data();
  for (std::int64_t i = 0; i < pixels_.numel(); ++i) {
    p[i] = std::clamp(p[i], 0.0f, 1.0f);
  }
}

Tensor Canvas::to_tensor() const { return pixels_.clone(); }

namespace {

/// Map scene x to canvas x under the device viewpoint (stretch + mirror
/// around the image centre).
float view_x(const Viewpoint& view, float scene_x, float centre) {
  float x = centre + (scene_x - centre) * view.x_stretch;
  if (view.mirrored) x = 2.0f * centre - x;
  return x;
}

void render_car(Canvas& canvas, const Viewpoint& view, float cx, float cy,
                float scale, const Color& body, Rng& rng) {
  // Wide low body with a darker cabin and two dark wheels.
  const Color cabin{body.r * 0.6f, body.g * 0.6f, body.b * 0.6f};
  const Color wheel{0.05f, 0.05f, 0.08f};
  const float half_w = 9.0f * scale * view.x_stretch;
  const float half_h = 3.5f * scale;
  (void)rng;
  canvas.fill_ellipse(cx, cy, half_w, half_h, body);
  canvas.fill_ellipse(cx, cy - half_h * 0.9f, half_w * 0.55f, half_h * 0.8f,
                      cabin);
  const float wheel_r = 1.9f * scale;
  canvas.fill_circle(cx - half_w * 0.55f, cy + half_h, wheel_r, wheel);
  canvas.fill_circle(cx + half_w * 0.55f, cy + half_h, wheel_r, wheel);
}

void render_bus(Canvas& canvas, const Viewpoint& view, float cx, float cy,
                float scale, const Color& body, Rng& rng) {
  // Tall box with a row of light windows.
  const Color window{0.80f, 0.85f, 0.90f};
  const Color wheel{0.05f, 0.05f, 0.08f};
  (void)rng;
  const float half_w = 7.5f * scale * view.x_stretch;
  const float half_h = 8.5f * scale;
  canvas.fill_rect(static_cast<std::int64_t>(cx - half_w),
                   static_cast<std::int64_t>(cy - half_h),
                   static_cast<std::int64_t>(cx + half_w),
                   static_cast<std::int64_t>(cy + half_h), body);
  // Window band.
  const float wy = cy - half_h * 0.45f;
  for (int k = -1; k <= 1; ++k) {
    const float wx = cx + static_cast<float>(k) * half_w * 0.55f;
    canvas.fill_rect(static_cast<std::int64_t>(wx - 1.5f * scale),
                     static_cast<std::int64_t>(wy - 1.8f * scale),
                     static_cast<std::int64_t>(wx + 1.5f * scale),
                     static_cast<std::int64_t>(wy + 1.8f * scale), window);
  }
  canvas.fill_circle(cx - half_w * 0.6f, cy + half_h, 1.7f * scale, wheel);
  canvas.fill_circle(cx + half_w * 0.6f, cy + half_h, 1.7f * scale, wheel);
}

void render_person(Canvas& canvas, const Viewpoint& view, float cx, float cy,
                   float scale, const Color& body, Rng& rng) {
  // Thin vertical body with a skin-tone head and darker legs.
  const Color head{0.85f, 0.65f, 0.50f};
  const Color legs{body.r * 0.4f, body.g * 0.4f, body.b * 0.4f};
  (void)rng;
  const float half_w = 2.4f * scale * view.x_stretch;
  const float body_h = 6.0f * scale;
  canvas.fill_ellipse(cx, cy - 1.0f * scale, half_w, body_h, body);
  canvas.fill_circle(cx, cy - body_h - 2.2f * scale, 2.2f * scale, head);
  canvas.fill_rect(static_cast<std::int64_t>(cx - half_w * 0.8f),
                   static_cast<std::int64_t>(cy + body_h * 0.7f),
                   static_cast<std::int64_t>(cx + half_w * 0.8f),
                   static_cast<std::int64_t>(cy + body_h + 4.0f * scale), legs);
}

}  // namespace

void render_background(Canvas& canvas, const Viewpoint& view, Rng& rng) {
  const auto size = canvas.size();
  // Vertical gradient: sky-ish above, ground-ish below, tinted per device.
  for (std::int64_t y = 0; y < size; ++y) {
    const float t = static_cast<float>(y) / static_cast<float>(size - 1);
    Color c{view.background.r * (1.1f - 0.4f * t),
            view.background.g * (1.1f - 0.3f * t),
            view.background.b * (1.2f - 0.5f * t)};
    for (std::int64_t x = 0; x < size; ++x) canvas.set(x, y, c);
  }
  // A few random clutter blobs so the background is not trivially uniform.
  const int blobs = static_cast<int>(rng.uniform_int(2, 5));
  for (int i = 0; i < blobs; ++i) {
    const Color c{static_cast<float>(rng.uniform(0.2, 0.5)),
                  static_cast<float>(rng.uniform(0.2, 0.5)),
                  static_cast<float>(rng.uniform(0.2, 0.5))};
    canvas.fill_ellipse(static_cast<float>(rng.uniform(0.0, 32.0)),
                        static_cast<float>(rng.uniform(20.0, 32.0)),
                        static_cast<float>(rng.uniform(1.5, 4.0)),
                        static_cast<float>(rng.uniform(1.0, 2.5)), c);
  }
}

void render_object(Canvas& canvas, ObjectClass cls, const Viewpoint& view,
                   float scale, const Color& body, Rng& rng) {
  const float centre = static_cast<float>(canvas.size()) / 2.0f;
  const float jitter_x = static_cast<float>(rng.uniform(-3.0, 3.0));
  const float jitter_y = static_cast<float>(rng.uniform(-2.5, 2.5));
  const float cx = view_x(view, centre + jitter_x, centre);
  const float cy = centre + jitter_y;
  switch (cls) {
    case ObjectClass::kCar:
      render_car(canvas, view, cx, cy, scale, body, rng);
      break;
    case ObjectClass::kBus:
      render_bus(canvas, view, cx, cy, scale, body, rng);
      break;
    case ObjectClass::kPerson:
      render_person(canvas, view, cx, cy, scale, body, rng);
      break;
  }
}

void render_occlusion(Canvas& canvas, Rng& rng) {
  const Color grey{0.45f, 0.45f, 0.45f};
  const auto size = canvas.size();
  const auto w = rng.uniform_int(size / 4, size / 2);
  const auto h = rng.uniform_int(size / 3, (3 * size) / 4);
  const auto x0 = rng.uniform_int(0, size - w);
  const auto y0 = rng.uniform_int(0, size - h);
  canvas.fill_rect(x0, y0, x0 + w, y0 + h, grey);
}

Tensor blank_frame(std::int64_t size) {
  return Tensor::full(Shape{3, size, size}, 0.5f);
}

}  // namespace ddnn::data
