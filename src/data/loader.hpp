// Mini-batch assembly for multi-view samples.
//
// A Batch carries one stacked [B, 3, H, W] tensor per selected device plus
// the labels — the layout the DDNN forward pass consumes (one input branch
// per end device).
#pragma once

#include <cstdint>
#include <vector>

#include "data/mvmc.hpp"
#include "util/rng.hpp"

namespace ddnn::data {

struct Batch {
  /// One [B, 3, H, W] tensor per selected device, in `devices` order.
  std::vector<Tensor> views;
  std::vector<std::int64_t> labels;
  /// present[d][b]: was the object visible to device d in sample b?
  std::vector<std::vector<bool>> present;

  std::int64_t size() const {
    return static_cast<std::int64_t>(labels.size());
  }
};

/// Assemble a batch from `samples[indices]`, restricted to the listed device
/// ids (0-based). Device order in the batch follows `devices`.
Batch make_batch(const std::vector<MvmcSample>& samples,
                 const std::vector<std::size_t>& indices,
                 const std::vector<int>& devices);

/// All indices [0, n).
std::vector<std::size_t> all_indices(std::size_t n);

/// Indices of samples where `device` sees the object (for individual-model
/// training: the paper excludes not-present frames).
std::vector<std::size_t> present_indices(const std::vector<MvmcSample>& samples,
                                         int device);

/// Split `indices` (already shuffled by the caller if desired) into
/// consecutive chunks of at most `batch_size`.
std::vector<std::vector<std::size_t>> chunk_batches(
    std::vector<std::size_t> indices, std::size_t batch_size);

/// Shuffle + chunk: one epoch's batch schedule.
std::vector<std::vector<std::size_t>> epoch_batches(std::size_t n,
                                                    std::size_t batch_size,
                                                    Rng& rng);

}  // namespace ddnn::data
