#include "data/loader.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace ddnn::data {

Batch make_batch(const std::vector<MvmcSample>& samples,
                 const std::vector<std::size_t>& indices,
                 const std::vector<int>& devices) {
  DDNN_CHECK(!indices.empty(), "empty batch");
  DDNN_CHECK(!devices.empty(), "batch with no devices");
  const auto b = static_cast<std::int64_t>(indices.size());
  const Tensor& first_view = samples.at(indices[0]).views.at(0);
  const std::int64_t c = first_view.dim(0), h = first_view.dim(1),
                     w = first_view.dim(2);

  Batch batch;
  batch.labels.reserve(indices.size());
  batch.present.resize(devices.size());
  for (std::size_t d = 0; d < devices.size(); ++d) {
    batch.views.emplace_back(Shape{b, c, h, w});
    batch.present[d].reserve(indices.size());
  }

  for (std::size_t bi = 0; bi < indices.size(); ++bi) {
    const MvmcSample& s = samples.at(indices[bi]);
    batch.labels.push_back(s.label);
    for (std::size_t d = 0; d < devices.size(); ++d) {
      const auto dev = static_cast<std::size_t>(devices[d]);
      DDNN_CHECK(dev < s.views.size(), "device id " << devices[d]
                                                    << " out of range");
      const Tensor& view = s.views[dev];
      DDNN_CHECK(view.shape() == first_view.shape(),
                 "inconsistent view shapes in batch");
      std::memcpy(batch.views[d].data() +
                      static_cast<std::int64_t>(bi) * c * h * w,
                  view.data(),
                  static_cast<std::size_t>(c * h * w) * sizeof(float));
      batch.present[d].push_back(s.present[dev]);
    }
  }
  return batch;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

std::vector<std::size_t> present_indices(const std::vector<MvmcSample>& samples,
                                         int device) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].present.at(static_cast<std::size_t>(device))) {
      idx.push_back(i);
    }
  }
  return idx;
}

std::vector<std::vector<std::size_t>> chunk_batches(
    std::vector<std::size_t> indices, std::size_t batch_size) {
  DDNN_CHECK(batch_size > 0, "batch_size must be positive");
  std::vector<std::vector<std::size_t>> out;
  for (std::size_t start = 0; start < indices.size(); start += batch_size) {
    const std::size_t end = std::min(indices.size(), start + batch_size);
    out.emplace_back(indices.begin() + static_cast<std::ptrdiff_t>(start),
                     indices.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return out;
}

std::vector<std::vector<std::size_t>> epoch_batches(std::size_t n,
                                                    std::size_t batch_size,
                                                    Rng& rng) {
  auto idx = all_indices(n);
  rng.shuffle(idx);
  return chunk_batches(std::move(idx), batch_size);
}

}  // namespace ddnn::data
