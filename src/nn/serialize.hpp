// Binary (de)serialization of module state: parameters and buffers.
//
// File layout (little-endian):
//   magic "DDNNPAR1" | u64 entry_count |
//   per entry: u32 name_len | name | u32 ndim | i64 dims[ndim] | f32 data[]
//
// Used by the bench harness to cache trained models between binaries
// (DDNN_CACHE_DIR) and by tests to verify round-tripping.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace ddnn::nn {

/// Write all named parameters and buffers of `module` to `path`.
void save_state(Module& module, const std::string& path);

/// Load state saved by save_state into `module`. Every entry in the file
/// must match a parameter/buffer of the same name and shape, and every
/// parameter/buffer of the module must be present in the file.
void load_state(Module& module, const std::string& path);

/// True if `path` exists and starts with the DDNNPAR1 magic.
bool is_state_file(const std::string& path);

}  // namespace ddnn::nn
