// Standard and binarized neural-network layers.
//
// The binarized layers follow BinaryConnect / BNN (Courbariaux et al.) as
// used by the paper: float "latent" weights are binarized with sign() on
// every forward pass; the straight-through estimator carries gradients back
// to the latent weights, which the optimizer clamps to [-1, 1] after each
// step. BinaryActivation applies the same sign+STE to activations, which is
// what makes the device->cloud feature maps 1 bit per value on the wire.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/ops.hpp"
#include "nn/module.hpp"
#include "util/rng.hpp"

namespace ddnn::nn {

using autograd::Variable;

/// Fully connected layer: y = x W^T + b. Weights use Glorot-uniform init.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);
  Variable forward(const Variable& x);

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_, out_;
  Variable weight_, bias_;
};

/// Fully connected layer with binarized weights (latent floats, sign() on
/// forward, STE backward, clamped by the optimizer).
class BinaryLinear : public Module {
 public:
  BinaryLinear(std::int64_t in_features, std::int64_t out_features, Rng& rng);
  Variable forward(const Variable& x);

  /// Weight bits actually needed at inference time (1 bit per weight).
  std::int64_t weight_bits() const { return in_ * out_; }

 private:
  std::int64_t in_, out_;
  Variable weight_;
};

/// Standard 2-D convolution.
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng,
         bool bias = true);
  Variable forward(const Variable& x);

 private:
  std::int64_t stride_, pad_;
  Variable weight_, bias_;
};

/// 2-D convolution with binarized weights.
class BinaryConv2d : public Module {
 public:
  BinaryConv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng);
  Variable forward(const Variable& x);

  std::int64_t weight_bits() const { return weight_.numel(); }

 private:
  std::int64_t stride_, pad_;
  Variable weight_;
};

/// Spatial max pooling.
class MaxPool2d : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad);
  Variable forward(const Variable& x);

 private:
  std::int64_t kernel_, stride_, pad_;
};

/// Batch normalization over [N, F] features or [N, C, H, W] channels.
class BatchNorm : public Module {
 public:
  explicit BatchNorm(std::int64_t num_features, float momentum = 0.1f,
                     float eps = 1e-5f);
  Variable forward(const Variable& x);

  std::int64_t num_features() const { return features_; }

 private:
  std::int64_t features_;
  float momentum_, eps_;
  Variable gamma_, beta_;
  Tensor running_mean_, running_var_;
};

/// sign() activation with straight-through gradient.
class BinaryActivation : public Module {
 public:
  Variable forward(const Variable& x) { return autograd::binarize(x); }
};

/// [N, ...] -> [N, prod(...)]
class Flatten : public Module {
 public:
  Variable forward(const Variable& x) { return autograd::flatten2d(x); }
};

/// Heterogeneous layer pipeline. Owns its stages.
class Sequential : public Module {
 public:
  /// Append a stage constructed in place; returns a reference to it.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto stage = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *stage;
    add_stage_internal(std::move(stage),
                       [](Module& m, const Variable& x) {
                         return static_cast<T&>(m).forward(x);
                       });
    return ref;
  }

  Variable forward(const Variable& x);

  std::size_t size() const { return stages_.size(); }

 private:
  using ForwardFn = Variable (*)(Module&, const Variable&);
  void add_stage_internal(std::unique_ptr<Module> stage, ForwardFn fn);

  std::vector<std::unique_ptr<Module>> stages_;
  std::vector<ForwardFn> forwards_;
};

/// Glorot-uniform initialization bound for a weight tensor.
float glorot_bound(std::int64_t fan_in, std::int64_t fan_out);

}  // namespace ddnn::nn
