// Standard and binarized neural-network layers.
//
// The binarized layers follow BinaryConnect / BNN (Courbariaux et al.) as
// used by the paper: float "latent" weights are binarized with sign() on
// every forward pass; the straight-through estimator carries gradients back
// to the latent weights, which the optimizer clamps to [-1, 1] after each
// step. BinaryActivation applies the same sign+STE to activations, which is
// what makes the device->cloud feature maps 1 bit per value on the wire.
// Beside forward(Variable), every layer exposes infer(Tensor, Workspace&):
// the inference-engine path. It produces bit-identical values without
// touching autograd — activations come from a preallocated per-thread
// workspace, and the binarized layers run on cached bit-packed weights via
// the XNOR-popcount kernels (tensor/bitgemm.hpp). The packed cache is keyed
// on the weight Variable's version counter, which the optimizer and
// nn::load_state bump on every in-place update.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "autograd/ops.hpp"
#include "infer/workspace.hpp"
#include "nn/module.hpp"
#include "tensor/bitgemm.hpp"
#include "util/rng.hpp"

namespace ddnn::nn {

using autograd::Variable;

/// Elementwise sign into a workspace slot (same semantics as ops::sign:
/// sign(0) = +1).
Tensor sign_tensor(const Tensor& x, infer::Workspace& ws);

/// Elementwise ReLU into a workspace slot (same semantics as
/// ops::clamp(x, 0, +inf), the autograd relu forward).
Tensor relu_tensor(const Tensor& x, infer::Workspace& ws);

namespace detail {

/// Lazily (re)built packed form of a binarized layer's latent weights.
/// `stamp` is the weight version the pack is valid for, offset by one so 0
/// means "never packed". Double-checked: the hot path is one atomic load.
struct PackedWeightCache {
  std::atomic<std::uint64_t> stamp{0};
  std::mutex mu;
  bitgemm::PackedSigns packed;

  /// Current pack of `w`'s value viewed as [rows, cols], rebuilding if the
  /// weight's version moved since the last pack.
  const bitgemm::PackedSigns& get(const autograd::Variable& w,
                                  std::int64_t rows, std::int64_t cols);
};

}  // namespace detail

/// Fully connected layer: y = x W^T + b. Weights use Glorot-uniform init.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);
  Variable forward(const Variable& x);
  Tensor infer(const Tensor& x, infer::Workspace& ws);

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_, out_;
  Variable weight_, bias_;
};

/// Fully connected layer with binarized weights (latent floats, sign() on
/// forward, STE backward, clamped by the optimizer).
class BinaryLinear : public Module {
 public:
  BinaryLinear(std::int64_t in_features, std::int64_t out_features, Rng& rng);
  Variable forward(const Variable& x);
  /// XNOR-popcount over the cached pack for ±1 inputs, sign-accumulate for
  /// float inputs; both bit-identical to forward().
  Tensor infer(const Tensor& x, infer::Workspace& ws);

  /// Weight bits actually needed at inference time (1 bit per weight).
  std::int64_t weight_bits() const { return in_ * out_; }

 private:
  std::int64_t in_, out_;
  Variable weight_;
  detail::PackedWeightCache packed_;
};

/// Standard 2-D convolution.
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng,
         bool bias = true);
  Variable forward(const Variable& x);
  Tensor infer(const Tensor& x, infer::Workspace& ws);

 private:
  std::int64_t stride_, pad_;
  Variable weight_, bias_;
};

/// 2-D convolution with binarized weights.
class BinaryConv2d : public Module {
 public:
  BinaryConv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng);
  Variable forward(const Variable& x);
  /// Packed-im2col XNOR-popcount for ±1 inputs, direct sign-accumulate
  /// convolution for float inputs; both bit-identical to forward().
  Tensor infer(const Tensor& x, infer::Workspace& ws);

  std::int64_t weight_bits() const { return weight_.numel(); }

 private:
  std::int64_t stride_, pad_;
  Variable weight_;
  detail::PackedWeightCache packed_;
};

/// Spatial max pooling.
class MaxPool2d : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad);
  Variable forward(const Variable& x);
  Tensor infer(const Tensor& x, infer::Workspace& ws);

 private:
  std::int64_t kernel_, stride_, pad_;
};

/// Batch normalization over [N, F] features or [N, C, H, W] channels.
class BatchNorm : public Module {
 public:
  explicit BatchNorm(std::int64_t num_features, float momentum = 0.1f,
                     float eps = 1e-5f);
  Variable forward(const Variable& x);
  /// Eval-mode normalization from running statistics (requires eval mode).
  Tensor infer(const Tensor& x, infer::Workspace& ws);

  std::int64_t num_features() const { return features_; }

 private:
  std::int64_t features_;
  float momentum_, eps_;
  Variable gamma_, beta_;
  Tensor running_mean_, running_var_;
};

/// sign() activation with straight-through gradient.
class BinaryActivation : public Module {
 public:
  Variable forward(const Variable& x) { return autograd::binarize(x); }
  Tensor infer(const Tensor& x, infer::Workspace& ws) {
    return sign_tensor(x, ws);
  }
};

/// [N, ...] -> [N, prod(...)]
class Flatten : public Module {
 public:
  Variable forward(const Variable& x) { return autograd::flatten2d(x); }
  Tensor infer(const Tensor& x, infer::Workspace&) {
    const std::int64_t n = x.dim(0);
    return x.reshape(Shape{n, x.numel() / n});  // view, shares storage
  }
};

/// Heterogeneous layer pipeline. Owns its stages.
class Sequential : public Module {
 public:
  /// Append a stage constructed in place; returns a reference to it.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto stage = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *stage;
    add_stage_internal(std::move(stage),
                       [](Module& m, const Variable& x) {
                         return static_cast<T&>(m).forward(x);
                       },
                       [](Module& m, const Tensor& x, infer::Workspace& ws) {
                         return static_cast<T&>(m).infer(x, ws);
                       });
    return ref;
  }

  Variable forward(const Variable& x);
  Tensor infer(const Tensor& x, infer::Workspace& ws);

  std::size_t size() const { return stages_.size(); }

 private:
  using ForwardFn = Variable (*)(Module&, const Variable&);
  using InferFn = Tensor (*)(Module&, const Tensor&, infer::Workspace&);
  void add_stage_internal(std::unique_ptr<Module> stage, ForwardFn fn,
                          InferFn infer_fn);

  std::vector<std::unique_ptr<Module>> stages_;
  std::vector<ForwardFn> forwards_;
  std::vector<InferFn> infers_;
};

/// Glorot-uniform initialization bound for a weight tensor.
float glorot_bound(std::int64_t fan_in, std::int64_t fan_out);

}  // namespace ddnn::nn
