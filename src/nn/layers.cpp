#include "nn/layers.hpp"

#include <cmath>
#include <limits>

#include "tensor/im2col.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::nn {

namespace {

/// Reorder [N*OH*OW, F] -> [N, F, OH, OW] into `out` (same layout move the
/// autograd conv2d performs after its GEMM).
void rows_to_nchw_into(const Tensor& mat, std::int64_t n, std::int64_t f,
                       std::int64_t oh, std::int64_t ow, Tensor& out) {
  const float* pm = mat.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        const float* row = pm + ((b * oh + y) * ow + x) * f;
        for (std::int64_t c = 0; c < f; ++c) {
          po[((b * f + c) * oh + y) * ow + x] = row[c];
        }
      }
    }
  }
}

}  // namespace

float glorot_bound(std::int64_t fan_in, std::int64_t fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}

Tensor sign_tensor(const Tensor& x, infer::Workspace& ws) {
  Tensor out = ws.acquire(x.shape());
  ws.note_use(x);
  const float* px = x.data();
  float* po = out.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = px[i] < 0.0f ? -1.0f : 1.0f;
  return out;
}

Tensor relu_tensor(const Tensor& x, infer::Workspace& ws) {
  Tensor out = ws.acquire(x.shape());
  ws.note_use(x);
  const float* px = x.data();
  float* po = out.data();
  const std::int64_t n = x.numel();
  // Bit-identical to the autograd path's clamp(x, 0, +inf): min(+inf, y) is
  // the identity for every y max() can produce (max(0, NaN) is already 0
  // under (a<b)?b:a, and +inf survives both), so only the max remains.
  for (std::int64_t i = 0; i < n; ++i) {
    po[i] = std::max(0.0f, px[i]);
  }
  return out;
}

namespace detail {

const bitgemm::PackedSigns& PackedWeightCache::get(const autograd::Variable& w,
                                                   std::int64_t rows,
                                                   std::int64_t cols) {
  const std::uint64_t want = w.version() + 1;
  if (stamp.load(std::memory_order_acquire) != want) {
    std::lock_guard<std::mutex> lock(mu);
    if (stamp.load(std::memory_order_relaxed) != want) {
      packed = bitgemm::pack_signs_matrix(w.value().data(), rows, cols);
      stamp.store(want, std::memory_order_release);
    }
  }
  return packed;
}

}  // namespace detail

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features) {
  DDNN_CHECK(in_ > 0 && out_ > 0, "Linear: non-positive feature count");
  const float bound = glorot_bound(in_, out_);
  weight_ = add_parameter(
      "weight", Tensor::rand_uniform(Shape{out_, in_}, rng, -bound, bound));
  if (bias) bias_ = add_parameter("bias", Tensor::zeros(Shape{out_}));
}

Variable Linear::forward(const Variable& x) {
  return autograd::linear(x, weight_, bias_);
}

Tensor Linear::infer(const Tensor& x, infer::Workspace& ws) {
  // Full-precision path: call the exact kernels autograd::linear uses so
  // the rounding (and therefore the bits) cannot diverge.
  DDNN_CHECK(x.ndim() == 2 && x.dim(1) == in_,
             "Linear::infer: bad input shape " << x.shape().to_string());
  Tensor out = ws.acquire(Shape{x.dim(0), out_});
  ws.note_use(x);
  ops::matmul_nt_into(x, weight_.value(), out);
  if (bias_.defined()) ops::add_row_vector_inplace(out, bias_.value());
  return out;
}

BinaryLinear::BinaryLinear(std::int64_t in_features, std::int64_t out_features,
                           Rng& rng)
    : in_(in_features), out_(out_features) {
  DDNN_CHECK(in_ > 0 && out_ > 0, "BinaryLinear: non-positive feature count");
  const float bound = glorot_bound(in_, out_);
  weight_ = add_parameter(
      "weight", Tensor::rand_uniform(Shape{out_, in_}, rng, -bound, bound),
      /*clamp_to_unit=*/true);
}

Variable BinaryLinear::forward(const Variable& x) {
  return autograd::linear(x, autograd::binarize(weight_), Variable());
}

Tensor BinaryLinear::infer(const Tensor& x, infer::Workspace& ws) {
  DDNN_CHECK(x.ndim() == 2 && x.dim(1) == in_,
             "BinaryLinear::infer: bad input shape " << x.shape().to_string());
  const bitgemm::PackedSigns& w = packed_.get(weight_, out_, in_);
  Tensor out = ws.acquire(Shape{x.dim(0), out_});
  ws.note_use(x);
  if (bitgemm::all_pm1(x)) {
    bitgemm::xnor_linear(x, w.bits, out);
  } else {
    bitgemm::sign_linear(x, w, out);
  }
  return out;
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng, bool bias)
    : stride_(stride), pad_(pad) {
  DDNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
             "Conv2d: bad dimensions");
  const std::int64_t fan_in = in_channels * kernel * kernel;
  const std::int64_t fan_out = out_channels * kernel * kernel;
  const float bound = glorot_bound(fan_in, fan_out);
  weight_ = add_parameter(
      "weight",
      Tensor::rand_uniform(Shape{out_channels, in_channels, kernel, kernel},
                           rng, -bound, bound));
  if (bias) bias_ = add_parameter("bias", Tensor::zeros(Shape{out_channels}));
}

Variable Conv2d::forward(const Variable& x) {
  return autograd::conv2d(x, weight_, bias_, stride_, pad_);
}

Tensor Conv2d::infer(const Tensor& x, infer::Workspace& ws) {
  const Tensor& wt = weight_.value();  // [F, C, KH, KW]
  DDNN_CHECK(x.ndim() == 4 && x.dim(1) == wt.dim(1),
             "Conv2d::infer: bad input shape " << x.shape().to_string());
  Conv2dGeometry g{.in_channels = wt.dim(1),
                   .in_h = x.dim(2),
                   .in_w = x.dim(3),
                   .kernel_h = wt.dim(2),
                   .kernel_w = wt.dim(3),
                   .stride = stride_,
                   .pad = pad_};
  const std::int64_t n = x.dim(0), f = wt.dim(0);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  // Same lowering as autograd::conv2d: im2col, float GEMM, bias broadcast —
  // with the two GEMM scratch matrices drawn from the workspace so the
  // planner sees (and bounds) the conv's true working set.
  Tensor cols = ws.acquire(Shape{n * oh * ow, g.patch_size()});
  ws.note_use(x);
  im2col_into(x, g, cols);
  const Tensor wmat = wt.reshape(Shape{f, g.patch_size()});
  Tensor outmat = ws.acquire(Shape{n * oh * ow, f});
  ws.note_use(cols);
  ops::matmul_nt_into(cols, wmat, outmat);
  if (bias_.defined()) ops::add_row_vector_inplace(outmat, bias_.value());
  Tensor out = ws.acquire(Shape{n, f, oh, ow});
  ws.note_use(outmat);
  rows_to_nchw_into(outmat, n, f, oh, ow, out);
  return out;
}

BinaryConv2d::BinaryConv2d(std::int64_t in_channels, std::int64_t out_channels,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, Rng& rng)
    : stride_(stride), pad_(pad) {
  DDNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
             "BinaryConv2d: bad dimensions");
  const std::int64_t fan_in = in_channels * kernel * kernel;
  const std::int64_t fan_out = out_channels * kernel * kernel;
  const float bound = glorot_bound(fan_in, fan_out);
  weight_ = add_parameter(
      "weight",
      Tensor::rand_uniform(Shape{out_channels, in_channels, kernel, kernel},
                           rng, -bound, bound),
      /*clamp_to_unit=*/true);
}

Variable BinaryConv2d::forward(const Variable& x) {
  return autograd::conv2d(x, autograd::binarize(weight_), Variable(), stride_,
                          pad_);
}

Tensor BinaryConv2d::infer(const Tensor& x, infer::Workspace& ws) {
  const Tensor& wt = weight_.value();  // [F, C, KH, KW]
  DDNN_CHECK(x.ndim() == 4 && x.dim(1) == wt.dim(1),
             "BinaryConv2d::infer: bad input shape " << x.shape().to_string());
  Conv2dGeometry g{.in_channels = wt.dim(1),
                   .in_h = x.dim(2),
                   .in_w = x.dim(3),
                   .kernel_h = wt.dim(2),
                   .kernel_w = wt.dim(3),
                   .stride = stride_,
                   .pad = pad_};
  const bitgemm::PackedSigns& w =
      packed_.get(weight_, wt.dim(0), g.patch_size());
  Tensor out = ws.acquire(Shape{x.dim(0), wt.dim(0), g.out_h(), g.out_w()});
  ws.note_use(x);
  if (bitgemm::all_pm1(x)) {
    bitgemm::xnor_conv2d(x, g, w.bits, out);
  } else {
    bitgemm::sign_conv2d(x, g, w, out);
  }
  return out;
}

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad)
    : kernel_(kernel), stride_(stride), pad_(pad) {
  DDNN_CHECK(kernel_ > 0 && stride_ > 0 && pad_ >= 0, "MaxPool2d: bad config");
}

Variable MaxPool2d::forward(const Variable& x) {
  return autograd::max_pool2d(x, kernel_, stride_, pad_);
}

Tensor MaxPool2d::infer(const Tensor& x, infer::Workspace& ws) {
  DDNN_CHECK(x.ndim() == 4, "MaxPool2d::infer expects [N, C, H, W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const std::int64_t ow = (w + 2 * pad_ - kernel_) / stride_ + 1;
  DDNN_CHECK(oh > 0 && ow > 0, "MaxPool2d::infer: empty output");
  Tensor out = ws.acquire(Shape{n, c, oh, ow});
  ws.note_use(x);
  // Same window scan as autograd::max_pool2d, minus argmax bookkeeping;
  // comparisons are exact, so the selected values match bit-for-bit.
  const float* px = x.data();
  float* po = out.data();
  std::int64_t oidx = 0;
  if (pad_ == 0) {
    // Unpadded windows are always fully in bounds (oh/ow round down), so the
    // scan needs no per-element checks.
    for (std::int64_t p = 0; p < n * c; ++p) {
      const float* plane = px + p * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++oidx) {
          const float* win = plane + oy * stride_ * w + ox * stride_;
          // Same -inf seed as autograd::max_pool2d so even NaN inputs agree.
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const float* row = win + ky * w;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              if (row[kx] > best) best = row[kx];
            }
          }
          po[oidx] = best;
        }
      }
    }
    return out;
  }
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = px + (b * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = oy * stride_ - pad_ + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = ox * stride_ - pad_ + kx;
              if (ix < 0 || ix >= w) continue;
              const float v = plane[iy * w + ix];
              if (v > best) best = v;
            }
          }
          po[oidx] = best;
        }
      }
    }
  }
  return out;
}

BatchNorm::BatchNorm(std::int64_t num_features, float momentum, float eps)
    : features_(num_features), momentum_(momentum), eps_(eps) {
  DDNN_CHECK(features_ > 0, "BatchNorm: non-positive feature count");
  gamma_ = add_parameter("gamma", Tensor::ones(Shape{features_}));
  beta_ = add_parameter("beta", Tensor::zeros(Shape{features_}));
  running_mean_ = add_buffer("running_mean", Tensor::zeros(Shape{features_}));
  running_var_ = add_buffer("running_var", Tensor::ones(Shape{features_}));
}

Variable BatchNorm::forward(const Variable& x) {
  return autograd::batch_norm(x, gamma_, beta_, running_mean_, running_var_,
                              training(), momentum_, eps_);
}

Tensor BatchNorm::infer(const Tensor& x, infer::Workspace& ws) {
  DDNN_CHECK(!training(), "BatchNorm::infer requires eval mode");
  Tensor inv_std = ws.acquire(Shape{features_});
  Tensor x_hat = ws.acquire(x.shape());
  Tensor out = ws.acquire(x.shape());
  ws.note_use(x);
  // batch_norm_apply interleaves writes to x_hat/out with reads of x_hat
  // and inv_std, so all three must stay distinct for the whole kernel.
  ws.note_use(inv_std);
  ws.note_use(x_hat);
  ops::batch_norm_apply(x, gamma_.value(), beta_.value(), running_mean_,
                        running_var_, eps_, inv_std, x_hat, out);
  return out;
}

Variable Sequential::forward(const Variable& x) {
  Variable cur = x;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    cur = forwards_[i](*stages_[i], cur);
  }
  return cur;
}

Tensor Sequential::infer(const Tensor& x, infer::Workspace& ws) {
  Tensor cur = x;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    cur = infers_[i](*stages_[i], cur, ws);
  }
  return cur;
}

void Sequential::add_stage_internal(std::unique_ptr<Module> stage,
                                    ForwardFn fn, InferFn infer_fn) {
  add_child("stage" + std::to_string(stages_.size()), stage.get());
  stages_.push_back(std::move(stage));
  forwards_.push_back(fn);
  infers_.push_back(infer_fn);
}

}  // namespace ddnn::nn
