#include "nn/layers.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ddnn::nn {

float glorot_bound(std::int64_t fan_in, std::int64_t fan_out) {
  return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features) {
  DDNN_CHECK(in_ > 0 && out_ > 0, "Linear: non-positive feature count");
  const float bound = glorot_bound(in_, out_);
  weight_ = add_parameter(
      "weight", Tensor::rand_uniform(Shape{out_, in_}, rng, -bound, bound));
  if (bias) bias_ = add_parameter("bias", Tensor::zeros(Shape{out_}));
}

Variable Linear::forward(const Variable& x) {
  return autograd::linear(x, weight_, bias_);
}

BinaryLinear::BinaryLinear(std::int64_t in_features, std::int64_t out_features,
                           Rng& rng)
    : in_(in_features), out_(out_features) {
  DDNN_CHECK(in_ > 0 && out_ > 0, "BinaryLinear: non-positive feature count");
  const float bound = glorot_bound(in_, out_);
  weight_ = add_parameter(
      "weight", Tensor::rand_uniform(Shape{out_, in_}, rng, -bound, bound),
      /*clamp_to_unit=*/true);
}

Variable BinaryLinear::forward(const Variable& x) {
  return autograd::linear(x, autograd::binarize(weight_), Variable());
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng, bool bias)
    : stride_(stride), pad_(pad) {
  DDNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
             "Conv2d: bad dimensions");
  const std::int64_t fan_in = in_channels * kernel * kernel;
  const std::int64_t fan_out = out_channels * kernel * kernel;
  const float bound = glorot_bound(fan_in, fan_out);
  weight_ = add_parameter(
      "weight",
      Tensor::rand_uniform(Shape{out_channels, in_channels, kernel, kernel},
                           rng, -bound, bound));
  if (bias) bias_ = add_parameter("bias", Tensor::zeros(Shape{out_channels}));
}

Variable Conv2d::forward(const Variable& x) {
  return autograd::conv2d(x, weight_, bias_, stride_, pad_);
}

BinaryConv2d::BinaryConv2d(std::int64_t in_channels, std::int64_t out_channels,
                           std::int64_t kernel, std::int64_t stride,
                           std::int64_t pad, Rng& rng)
    : stride_(stride), pad_(pad) {
  DDNN_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
             "BinaryConv2d: bad dimensions");
  const std::int64_t fan_in = in_channels * kernel * kernel;
  const std::int64_t fan_out = out_channels * kernel * kernel;
  const float bound = glorot_bound(fan_in, fan_out);
  weight_ = add_parameter(
      "weight",
      Tensor::rand_uniform(Shape{out_channels, in_channels, kernel, kernel},
                           rng, -bound, bound),
      /*clamp_to_unit=*/true);
}

Variable BinaryConv2d::forward(const Variable& x) {
  return autograd::conv2d(x, autograd::binarize(weight_), Variable(), stride_,
                          pad_);
}

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride, std::int64_t pad)
    : kernel_(kernel), stride_(stride), pad_(pad) {
  DDNN_CHECK(kernel_ > 0 && stride_ > 0 && pad_ >= 0, "MaxPool2d: bad config");
}

Variable MaxPool2d::forward(const Variable& x) {
  return autograd::max_pool2d(x, kernel_, stride_, pad_);
}

BatchNorm::BatchNorm(std::int64_t num_features, float momentum, float eps)
    : features_(num_features), momentum_(momentum), eps_(eps) {
  DDNN_CHECK(features_ > 0, "BatchNorm: non-positive feature count");
  gamma_ = add_parameter("gamma", Tensor::ones(Shape{features_}));
  beta_ = add_parameter("beta", Tensor::zeros(Shape{features_}));
  running_mean_ = add_buffer("running_mean", Tensor::zeros(Shape{features_}));
  running_var_ = add_buffer("running_var", Tensor::ones(Shape{features_}));
}

Variable BatchNorm::forward(const Variable& x) {
  return autograd::batch_norm(x, gamma_, beta_, running_mean_, running_var_,
                              training(), momentum_, eps_);
}

Variable Sequential::forward(const Variable& x) {
  Variable cur = x;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    cur = forwards_[i](*stages_[i], cur);
  }
  return cur;
}

void Sequential::add_stage_internal(std::unique_ptr<Module> stage,
                                    ForwardFn fn) {
  add_child("stage" + std::to_string(stages_.size()), stage.get());
  stages_.push_back(std::move(stage));
  forwards_.push_back(fn);
}

}  // namespace ddnn::nn
