#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <map>

#include "util/error.hpp"

namespace ddnn::nn {

namespace {

constexpr char kMagic[8] = {'D', 'D', 'N', 'N', 'P', 'A', 'R', '1'};

template <typename T>
void write_pod(std::ofstream& f, T value) {
  f.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T value{};
  f.read(reinterpret_cast<char*>(&value), sizeof(T));
  DDNN_CHECK(f.good(), "truncated state file");
  return value;
}

void write_entry(std::ofstream& f, const std::string& name, const Tensor& t) {
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(name.size()));
  f.write(name.data(), static_cast<std::streamsize>(name.size()));
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(t.ndim()));
  for (auto d : t.shape().dims()) write_pod<std::int64_t>(f, d);
  f.write(reinterpret_cast<const char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

/// Collect name -> tensor for all parameters and buffers of a module.
std::map<std::string, Tensor> state_map(Module& module) {
  std::map<std::string, Tensor> state;
  for (auto& p : module.named_parameters()) {
    DDNN_CHECK(!state.contains(p.name), "duplicate state name " << p.name);
    state.emplace(p.name, p.var.value());
  }
  for (auto& [name, buf] : module.named_buffers()) {
    DDNN_CHECK(!state.contains(name), "duplicate state name " << name);
    state.emplace(name, buf);
  }
  return state;
}

}  // namespace

void save_state(Module& module, const std::string& path) {
  auto state = state_map(module);
  std::ofstream f(path, std::ios::binary);
  DDNN_CHECK(f.good(), "cannot open " << path << " for writing");
  f.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(f, state.size());
  for (const auto& [name, tensor] : state) write_entry(f, name, tensor);
  DDNN_CHECK(f.good(), "failed writing " << path);
}

void load_state(Module& module, const std::string& path) {
  auto state = state_map(module);
  std::ifstream f(path, std::ios::binary);
  DDNN_CHECK(f.good(), "cannot open " << path << " for reading");
  char magic[8];
  f.read(magic, sizeof(magic));
  DDNN_CHECK(f.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
             path << " is not a DDNN state file");
  const auto count = read_pod<std::uint64_t>(f);
  DDNN_CHECK(count == state.size(), "state file has " << count
                                                      << " entries, module has "
                                                      << state.size());
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(f);
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    DDNN_CHECK(f.good(), "truncated state file");
    auto it = state.find(name);
    DDNN_CHECK(it != state.end(), "unknown entry '" << name << "' in " << path);
    const auto ndim = read_pod<std::uint32_t>(f);
    std::vector<std::int64_t> dims(ndim);
    for (auto& d : dims) d = read_pod<std::int64_t>(f);
    DDNN_CHECK(Shape(dims) == it->second.shape(),
               "shape mismatch for '" << name << "': file "
                                      << Shape(dims).to_string() << ", module "
                                      << it->second.shape().to_string());
    f.read(reinterpret_cast<char*>(it->second.data()),
           static_cast<std::streamsize>(it->second.numel() * sizeof(float)));
    DDNN_CHECK(f.good(), "truncated state file");
  }
  // The state map shares parameter storage, so the loop above mutated the
  // parameters in place; bump versions to invalidate packed-weight caches.
  for (auto& p : module.named_parameters()) p.var.bump_version();
}

bool is_state_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return false;
  char magic[8];
  f.read(magic, sizeof(magic));
  return f.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace ddnn::nn
