#include "nn/module.hpp"

#include "util/error.hpp"

namespace ddnn::nn {

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

std::vector<Parameter> Module::parameters() { return named_parameters(); }

std::vector<Parameter> Module::named_parameters(const std::string& prefix) {
  std::vector<Parameter> out;
  for (const auto& p : params_) {
    out.push_back({prefix + p.name, p.var, p.clamp_to_unit});
  }
  for (auto& [name, child] : children_) {
    auto sub = child->named_parameters(prefix + name + ".");
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::named_buffers(
    const std::string& prefix) {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [name, buf] : buffers_) {
    out.emplace_back(prefix + name, buf);
  }
  for (auto& [name, child] : children_) {
    auto sub = child->named_buffers(prefix + name + ".");
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::int64_t Module::parameter_count() {
  std::int64_t n = 0;
  for (const auto& p : parameters()) n += p.var.numel();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.var.zero_grad();
}

autograd::Variable Module::add_parameter(const std::string& name, Tensor init,
                                         bool clamp_to_unit) {
  for (const auto& p : params_) {
    DDNN_CHECK(p.name != name, "duplicate parameter name '" << name << "'");
  }
  autograd::Variable v = autograd::Variable::parameter(std::move(init));
  params_.push_back({name, v, clamp_to_unit});
  return v;
}

Tensor Module::add_buffer(const std::string& name, Tensor init) {
  for (const auto& [n, b] : buffers_) {
    DDNN_CHECK(n != name, "duplicate buffer name '" << name << "'");
  }
  buffers_.emplace_back(name, init);
  return init;  // Tensor shares storage: caller and registry see one buffer
}

void Module::add_child(const std::string& name, Module* child) {
  DDNN_CHECK(child != nullptr, "null child module");
  for (const auto& [n, c] : children_) {
    DDNN_CHECK(n != name, "duplicate child name '" << name << "'");
  }
  children_.emplace_back(name, child);
}

}  // namespace ddnn::nn
