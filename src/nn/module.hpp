// Module: base class for neural-network components.
//
// A module owns named parameters (trainable Variables), named buffers
// (non-trainable tensors such as batch-norm running statistics) and child
// modules. parameters() / named_parameters() / named_buffers() walk the tree
// in registration order, which gives serialization and optimizers a stable,
// deterministic ordering.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.hpp"

namespace ddnn::nn {

/// A trainable tensor with metadata.
struct Parameter {
  std::string name;
  autograd::Variable var;
  /// True for the latent weights of binarized layers: the optimizer clamps
  /// them to [-1, 1] after every step (BinaryConnect recipe), keeping the
  /// straight-through gradient gate open.
  bool clamp_to_unit = false;
};

class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Switch between training behaviour (batch statistics, tape recording by
  /// callers) and inference behaviour. Recurses into children.
  void set_training(bool training);
  bool training() const { return training_; }

  /// All parameters of this module and its descendants, registration order.
  std::vector<Parameter> parameters();

  /// Parameters with dotted path names ("cloud.block0.conv.weight").
  std::vector<Parameter> named_parameters(const std::string& prefix = "");

  /// Buffers (running statistics) with dotted path names.
  std::vector<std::pair<std::string, Tensor>> named_buffers(
      const std::string& prefix = "");

  /// Sum over parameters of numel (for model-size reporting).
  std::int64_t parameter_count();

  void zero_grad();

 protected:
  /// Register a trainable parameter; returns a Variable sharing the node.
  autograd::Variable add_parameter(const std::string& name, Tensor init,
                                   bool clamp_to_unit = false);

  /// Register a buffer; returns a Tensor sharing storage.
  Tensor add_buffer(const std::string& name, Tensor init);

  /// Register a child (not owned; derived classes own their children).
  void add_child(const std::string& name, Module* child);

 private:
  bool training_ = true;
  std::vector<Parameter> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace ddnn::nn
