#include "nn/blocks.hpp"

namespace ddnn::nn {

namespace {

/// gamma + beta + running mean + running var, one float32 each per feature.
std::int64_t batch_norm_bytes(std::int64_t features) { return 4 * 4 * features; }

}  // namespace

FCBlock::FCBlock(std::int64_t in_features, std::int64_t out_features, Rng& rng,
                 bool binary_output)
    : out_(out_features),
      binary_output_(binary_output),
      linear_(std::make_unique<BinaryLinear>(in_features, out_features, rng)),
      bn_(std::make_unique<BatchNorm>(out_features)) {
  add_child("linear", linear_.get());
  add_child("bn", bn_.get());
}

Variable FCBlock::forward(const Variable& x) {
  Variable h = bn_->forward(linear_->forward(x));
  return binary_output_ ? autograd::binarize(h) : h;
}

Tensor FCBlock::infer(const Tensor& x, infer::Workspace& ws) {
  Tensor h = bn_->infer(linear_->infer(x, ws), ws);
  return binary_output_ ? sign_tensor(h, ws) : h;
}

std::int64_t FCBlock::inference_memory_bytes() const {
  return (linear_->weight_bits() + 7) / 8 + batch_norm_bytes(out_);
}

FloatConvPBlock::FloatConvPBlock(std::int64_t in_channels,
                                 std::int64_t filters, Rng& rng)
    : filters_(filters),
      conv_(std::make_unique<Conv2d>(in_channels, filters, /*kernel=*/3,
                                     /*stride=*/1, /*pad=*/1, rng,
                                     /*bias=*/false)),
      pool_(std::make_unique<MaxPool2d>(/*kernel=*/3, /*stride=*/2, /*pad=*/1)),
      bn_(std::make_unique<BatchNorm>(filters)) {
  add_child("conv", conv_.get());
  add_child("pool", pool_.get());
  add_child("bn", bn_.get());
}

Variable FloatConvPBlock::forward(const Variable& x) {
  return autograd::relu(bn_->forward(pool_->forward(conv_->forward(x))));
}

Tensor FloatConvPBlock::infer(const Tensor& x, infer::Workspace& ws) {
  return relu_tensor(
      bn_->infer(pool_->infer(conv_->infer(x, ws), ws), ws), ws);
}

FloatFCBlock::FloatFCBlock(std::int64_t in_features, std::int64_t out_features,
                           Rng& rng, bool relu_output)
    : relu_output_(relu_output),
      linear_(std::make_unique<Linear>(in_features, out_features, rng,
                                       /*bias=*/false)),
      bn_(std::make_unique<BatchNorm>(out_features)) {
  add_child("linear", linear_.get());
  add_child("bn", bn_.get());
}

Variable FloatFCBlock::forward(const Variable& x) {
  Variable h = bn_->forward(linear_->forward(x));
  return relu_output_ ? autograd::relu(h) : h;
}

Tensor FloatFCBlock::infer(const Tensor& x, infer::Workspace& ws) {
  Tensor h = bn_->infer(linear_->infer(x, ws), ws);
  return relu_output_ ? relu_tensor(h, ws) : h;
}

ConvPBlock::ConvPBlock(std::int64_t in_channels, std::int64_t filters,
                       Rng& rng)
    : filters_(filters),
      conv_(std::make_unique<BinaryConv2d>(in_channels, filters, /*kernel=*/3,
                                           /*stride=*/1, /*pad=*/1, rng)),
      pool_(std::make_unique<MaxPool2d>(/*kernel=*/3, /*stride=*/2, /*pad=*/1)),
      bn_(std::make_unique<BatchNorm>(filters)) {
  add_child("conv", conv_.get());
  add_child("pool", pool_.get());
  add_child("bn", bn_.get());
}

Variable ConvPBlock::forward(const Variable& x) {
  return autograd::binarize(bn_->forward(pool_->forward(conv_->forward(x))));
}

Tensor ConvPBlock::infer(const Tensor& x, infer::Workspace& ws) {
  return sign_tensor(
      bn_->infer(pool_->infer(conv_->infer(x, ws), ws), ws), ws);
}

std::int64_t ConvPBlock::inference_memory_bytes() const {
  return (conv_->weight_bits() + 7) / 8 + batch_norm_bytes(filters_);
}

}  // namespace ddnn::nn
