// Fused binary blocks from the paper's Figure 3 (after eBNN, McDanel et al.).
//
//   FC block:    fully-connected (binary weights) -> batch norm -> binary act
//   ConvP block: 3x3 s1 p1 conv (binary weights) -> 3x3 s2 p1 max pool
//                -> batch norm -> binary act
//
// The blocks also report their inference-time memory footprint: 1 bit per
// binarized weight plus 4 float32 per batch-norm feature (gamma, beta,
// running mean, running variance), which backs the paper's "under 2 KB per
// end device" observation (Section IV-F).
#pragma once

#include "nn/layers.hpp"

namespace ddnn::nn {

/// Fused binary fully-connected block. With `binary_output == false` the
/// final binary activation is omitted and the block emits float values —
/// used for exit heads, whose output feeds softmax/entropy (the paper's
/// "output from the final FC block" is a float vector of length |C|).
class FCBlock : public Module {
 public:
  FCBlock(std::int64_t in_features, std::int64_t out_features, Rng& rng,
          bool binary_output = true);
  Variable forward(const Variable& x);
  Tensor infer(const Tensor& x, infer::Workspace& ws);

  /// Inference memory in bytes (bit-packed weights + batch-norm floats).
  std::int64_t inference_memory_bytes() const;

  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t out_;
  bool binary_output_;
  std::unique_ptr<BinaryLinear> linear_;
  std::unique_ptr<BatchNorm> bn_;
};

/// Float convolution-pool block (conv -> pool -> BN -> ReLU): the
/// mixed-precision cloud variant from the paper's future work ("the end
/// devices use binary NN layers and the cloud uses ... floating-point NN
/// layers"). Same geometry as ConvPBlock, full-precision arithmetic.
class FloatConvPBlock : public Module {
 public:
  FloatConvPBlock(std::int64_t in_channels, std::int64_t filters, Rng& rng);
  Variable forward(const Variable& x);
  Tensor infer(const Tensor& x, infer::Workspace& ws);

  std::int64_t filters() const { return filters_; }

 private:
  std::int64_t filters_;
  std::unique_ptr<Conv2d> conv_;
  std::unique_ptr<MaxPool2d> pool_;
  std::unique_ptr<BatchNorm> bn_;
};

/// Float fully-connected block (linear -> BN -> ReLU), the mixed-precision
/// counterpart of FCBlock. With `relu_output == false` it emits raw float
/// scores (exit-head variant).
class FloatFCBlock : public Module {
 public:
  FloatFCBlock(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool relu_output = true);
  Variable forward(const Variable& x);
  Tensor infer(const Tensor& x, infer::Workspace& ws);

 private:
  bool relu_output_;
  std::unique_ptr<Linear> linear_;
  std::unique_ptr<BatchNorm> bn_;
};

/// Fused binary convolution-pool block (conv -> pool -> BN -> binary act).
class ConvPBlock : public Module {
 public:
  ConvPBlock(std::int64_t in_channels, std::int64_t filters, Rng& rng);
  Variable forward(const Variable& x);
  Tensor infer(const Tensor& x, infer::Workspace& ws);

  std::int64_t inference_memory_bytes() const;
  std::int64_t filters() const { return filters_; }

 private:
  std::int64_t filters_;
  std::unique_ptr<BinaryConv2d> conv_;
  std::unique_ptr<MaxPool2d> pool_;
  std::unique_ptr<BatchNorm> bn_;
};

}  // namespace ddnn::nn
