// im2col / col2im lowering for convolution and spatial pooling.
//
// Convolutions are computed as matrix products over the "col" matrix:
//   cols[N*OH*OW, C*KH*KW] built from the padded input, then
//   out = cols * W^T with W reshaped to [F, C*KH*KW].
// col2im is the exact adjoint (it accumulates overlapping patches) and is
// used for the gradient with respect to the input.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace ddnn {

/// Geometry of a sliding 2-D window.
struct Conv2dGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 3;
  std::int64_t kernel_w = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;

  std::int64_t out_h() const {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
  std::int64_t patch_size() const { return in_channels * kernel_h * kernel_w; }
};

/// x: [N, C, H, W] -> cols: [N * OH * OW, C * KH * KW]. Out-of-bounds (padded)
/// positions contribute 0.
Tensor im2col(const Tensor& x, const Conv2dGeometry& g);

/// im2col writing into a caller-provided cols tensor. Unlike im2col (which
/// relies on zero-initialized storage), every element is written — padded
/// positions get an explicit 0 — so it is safe on a dirty planner arena.
void im2col_into(const Tensor& x, const Conv2dGeometry& g, Tensor& cols);

/// Adjoint of im2col: scatters cols back into an [N, C, H, W] tensor,
/// accumulating overlapping contributions.
Tensor col2im(const Tensor& cols, const Conv2dGeometry& g, std::int64_t batch);

}  // namespace ddnn
