// Dense float32 tensor with shared, contiguous, row-major storage.
//
// Copying a Tensor is cheap and *shares* the underlying buffer (like a
// reference); use clone() for a deep copy. This matches the needs of the
// autograd tape, where many nodes view the same activation buffer.
//
// A tensor may also be an *offset view* into a larger buffer (view_into /
// narrow0): it stays contiguous and row-major, but data() starts `offset_`
// floats into the shared storage and all element accessors, fill(), span()
// and clone() honour the view's own numel() rather than the storage size.
// The inference memory planner uses offset views to lay every intermediate
// of a section into one packed arena.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ddnn {

class Tensor {
 public:
  /// An undefined tensor (no storage). defined() is false.
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor adopting `data` (must match shape.numel()).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float value);
  static Tensor from_vector(Shape shape, std::vector<float> data) {
    return Tensor(std::move(shape), std::move(data));
  }
  /// 0-D-like scalar stored as shape [1].
  static Tensor scalar(float value) { return full(Shape{1}, value); }

  /// i.i.d. N(mean, stddev^2) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// i.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);

  bool defined() const { return data_ != nullptr; }
  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  std::int64_t dim(std::int64_t i) const { return shape_.dim(i); }
  std::size_t ndim() const { return shape_.ndim(); }

  float* data() { return data_->data() + offset_; }
  const float* data() const { return data_->data() + offset_; }
  std::span<float> span() {
    return {data(), static_cast<std::size_t>(numel())};
  }
  std::span<const float> span() const {
    return {data(), static_cast<std::size_t>(numel())};
  }

  /// Flat element access with bounds checking.
  float& operator[](std::int64_t i);
  float operator[](std::int64_t i) const;

  /// Multi-dimensional access (ndim must match the overload used).
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  /// Deep copy.
  Tensor clone() const;

  /// View with a new shape of equal numel (shares storage and offset).
  Tensor reshape(Shape new_shape) const;

  /// View of `shape` starting `offset` floats into `storage`'s viewed range.
  /// Shares storage; offset + shape.numel() must fit inside storage.numel().
  static Tensor view_into(const Tensor& storage, std::int64_t offset,
                          Shape shape);

  /// Contiguous view of rows [start, start+len) along dim 0 (shares storage).
  Tensor narrow0(std::int64_t start, std::int64_t len) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// True when both tensors are defined, same shape, and elementwise within
  /// `tol` of each other.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
  std::int64_t offset_ = 0;  ///< start of this view, in floats, into *data_
};

}  // namespace ddnn
