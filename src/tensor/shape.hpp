// Tensor shape: a small ordered list of dimension extents.
//
// All tensors in this library are dense, contiguous, row-major (NCHW for
// 4-D activations), so Shape fully determines the memory layout.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ddnn {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::size_t ndim() const { return dims_.size(); }

  /// Extent of axis `i`; negative `i` counts from the back (Python-style).
  std::int64_t dim(std::int64_t i) const;

  std::int64_t operator[](std::size_t i) const { return dims_[i]; }

  /// Total number of elements (1 for a 0-D/empty shape).
  std::int64_t numel() const;

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 32, 32]"
  std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace ddnn
