#include "tensor/bitpack.hpp"

namespace ddnn {

std::int64_t packed_size_bytes(std::int64_t numel) {
  DDNN_CHECK(numel >= 0, "negative element count");
  return (numel + 7) / 8;
}

std::vector<std::uint8_t> pack_signs(const Tensor& t) {
  DDNN_CHECK(t.defined(), "pack_signs of undefined tensor");
  const std::int64_t n = t.numel();
  DDNN_CHECK(n > 0, "pack_signs of empty tensor (shape "
                        << t.shape().to_string() << ")");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(packed_size_bytes(n)),
                                  0);
  const float* p = t.data();
  for (std::int64_t i = 0; i < n; ++i) {
    if (p[i] >= 0.0f) {
      bytes[static_cast<std::size_t>(i / 8)] |=
          static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  return bytes;
}

Tensor unpack_signs(const std::vector<std::uint8_t>& bytes, Shape shape) {
  const std::int64_t n = shape.numel();
  DDNN_CHECK(n > 0, "unpack_signs to empty shape " << shape.to_string());
  DDNN_CHECK(static_cast<std::int64_t>(bytes.size()) == packed_size_bytes(n),
             "unpack_signs: byte count " << bytes.size()
                                         << " does not match shape "
                                         << shape.to_string());
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const bool bit =
        (bytes[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1u;
    p[i] = bit ? 1.0f : -1.0f;
  }
  return t;
}

}  // namespace ddnn
