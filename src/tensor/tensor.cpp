#include "tensor/tensor.hpp"

#include <cmath>

namespace ddnn {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(std::make_shared<std::vector<float>>(
          static_cast<std::size_t>(shape_.numel()), 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)),
      data_(std::make_shared<std::vector<float>>(std::move(data))) {
  DDNN_CHECK(static_cast<std::int64_t>(data_->size()) == shape_.numel(),
             "data size " << data_->size() << " does not match shape "
                          << shape_.to_string());
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : *t.data_) x = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& x : *t.data_) x = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

float& Tensor::operator[](std::int64_t i) {
  DDNN_ASSERT(defined() && i >= 0 && i < numel());
  return (*data_)[static_cast<std::size_t>(i)];
}

float Tensor::operator[](std::int64_t i) const {
  DDNN_ASSERT(defined() && i >= 0 && i < numel());
  return (*data_)[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  DDNN_ASSERT(ndim() == 2);
  return (*this)[i * shape_[1] + j];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  DDNN_ASSERT(ndim() == 2);
  return (*this)[i * shape_[1] + j];
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  DDNN_ASSERT(ndim() == 4);
  return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  DDNN_ASSERT(ndim() == 4);
  return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::clone() const {
  DDNN_CHECK(defined(), "clone() of undefined tensor");
  return Tensor(shape_, *data_);
}

Tensor Tensor::reshape(Shape new_shape) const {
  DDNN_CHECK(defined(), "reshape() of undefined tensor");
  DDNN_CHECK(new_shape.numel() == shape_.numel(),
             "reshape " << shape_.to_string() << " -> " << new_shape.to_string()
                        << " changes element count");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  DDNN_CHECK(defined(), "fill() of undefined tensor");
  for (auto& x : *data_) x = value;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (!defined() || !other.defined()) return false;
  if (shape_ != other.shape_) return false;
  for (std::int64_t i = 0; i < numel(); ++i) {
    if (std::fabs((*this)[i] - other[i]) > tol) return false;
  }
  return true;
}

}  // namespace ddnn
