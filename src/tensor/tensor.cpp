#include "tensor/tensor.hpp"

#include <cmath>

namespace ddnn {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(std::make_shared<std::vector<float>>(
          static_cast<std::size_t>(shape_.numel()), 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)),
      data_(std::make_shared<std::vector<float>>(std::move(data))) {
  DDNN_CHECK(static_cast<std::int64_t>(data_->size()) == shape_.numel(),
             "data size " << data_->size() << " does not match shape "
                          << shape_.to_string());
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : *t.data_) x = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& x : *t.data_) x = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

float& Tensor::operator[](std::int64_t i) {
  DDNN_ASSERT(defined() && i >= 0 && i < numel());
  return (*data_)[static_cast<std::size_t>(offset_ + i)];
}

float Tensor::operator[](std::int64_t i) const {
  DDNN_ASSERT(defined() && i >= 0 && i < numel());
  return (*data_)[static_cast<std::size_t>(offset_ + i)];
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  DDNN_ASSERT(ndim() == 2);
  return (*this)[i * shape_[1] + j];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  DDNN_ASSERT(ndim() == 2);
  return (*this)[i * shape_[1] + j];
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  DDNN_ASSERT(ndim() == 4);
  return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  DDNN_ASSERT(ndim() == 4);
  return (*this)[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::clone() const {
  DDNN_CHECK(defined(), "clone() of undefined tensor");
  return Tensor(shape_, std::vector<float>(data(), data() + numel()));
}

Tensor Tensor::reshape(Shape new_shape) const {
  DDNN_CHECK(defined(), "reshape() of undefined tensor");
  DDNN_CHECK(new_shape.numel() == shape_.numel(),
             "reshape " << shape_.to_string() << " -> " << new_shape.to_string()
                        << " changes element count");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  t.offset_ = offset_;
  return t;
}

Tensor Tensor::view_into(const Tensor& storage, std::int64_t offset,
                         Shape shape) {
  DDNN_CHECK(storage.defined(), "view_into() of undefined storage");
  DDNN_CHECK(offset >= 0 && offset + shape.numel() <= storage.numel(),
             "view [" << offset << ", " << offset + shape.numel()
                      << ") exceeds storage of " << storage.numel()
                      << " floats");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = storage.data_;
  t.offset_ = storage.offset_ + offset;
  return t;
}

Tensor Tensor::narrow0(std::int64_t start, std::int64_t len) const {
  DDNN_CHECK(defined() && ndim() >= 1, "narrow0() needs a defined tensor");
  DDNN_CHECK(start >= 0 && len >= 1 && start + len <= shape_[0],
             "narrow0 [" << start << ", " << start + len << ") out of dim0 "
                         << shape_[0]);
  const std::int64_t stride0 = shape_.numel() / shape_[0];
  std::vector<std::int64_t> dims = shape_.dims();
  dims[0] = len;
  Shape ns(std::move(dims));
  Tensor t;
  t.shape_ = std::move(ns);
  t.data_ = data_;
  t.offset_ = offset_ + start * stride0;
  return t;
}

void Tensor::fill(float value) {
  DDNN_CHECK(defined(), "fill() of undefined tensor");
  float* p = data();
  const std::int64_t n = numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = value;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (!defined() || !other.defined()) return false;
  if (shape_ != other.shape_) return false;
  for (std::int64_t i = 0; i < numel(); ++i) {
    if (std::fabs((*this)[i] - other[i]) > tol) return false;
  }
  return true;
}

}  // namespace ddnn
