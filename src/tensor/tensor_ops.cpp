#include "tensor/tensor_ops.hpp"

#include "obs/profile.hpp"
#include <algorithm>
#include <cmath>

#include "util/thread_pool.hpp"

namespace ddnn::ops {

namespace {

/// Elementwise ops only fan out to the pool above this element count; the
/// per-element work is tiny, so small tensors stay on the calling thread.
constexpr std::int64_t kElementwiseGrain = 1 << 15;

/// Row grain for GEMM-shaped kernels: target at least ~64k multiply-adds
/// per chunk so chunk dispatch never dominates.
std::int64_t row_grain(std::int64_t work_per_row) {
  return std::max<std::int64_t>(1, (1 << 16) / std::max<std::int64_t>(
                                                  1, work_per_row));
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  DDNN_CHECK(a.shape() == b.shape(), op << ": shape mismatch "
                                        << a.shape().to_string() << " vs "
                                        << b.shape().to_string());
}

template <typename F>
Tensor map2(const Tensor& a, const Tensor& b, const char* op, F f) {
  check_same_shape(a, b, op);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  parallel_for(0, a.numel(), kElementwiseGrain,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
               });
  return out;
}

template <typename F>
Tensor map1(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  parallel_for(0, a.numel(), kElementwiseGrain,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
               });
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return map2(a, b, "add", [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return map2(a, b, "sub", [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return map2(a, b, "mul", [](float x, float y) { return x * y; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return map2(a, b, "div", [](float x, float y) { return x / y; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return map1(a, [s](float x) { return x + s; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  return map1(a, [s](float x) { return x * s; });
}

Tensor neg(const Tensor& a) {
  return map1(a, [](float x) { return -x; });
}

Tensor exp(const Tensor& a) {
  return map1(a, [](float x) { return std::exp(x); });
}

Tensor log(const Tensor& a) {
  return map1(a, [](float x) { return std::log(x); });
}

Tensor sqrt(const Tensor& a) {
  return map1(a, [](float x) { return std::sqrt(x); });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  return map1(a, [lo, hi](float x) { return std::min(hi, std::max(lo, x)); });
}

Tensor sign(const Tensor& a) {
  return map1(a, [](float x) { return x < 0.0f ? -1.0f : 1.0f; });
}

void axpy_into(Tensor& y, float alpha, const Tensor& x) {
  check_same_shape(y, x, "axpy_into");
  float* py = y.data();
  const float* px = x.data();
  const std::int64_t n = y.numel();
  for (std::int64_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  DDNN_PROF_SCOPE("matmul");
  DDNN_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul needs 2-D operands");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DDNN_CHECK(b.dim(0) == k, "matmul: inner dims " << k << " vs " << b.dim(0));
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Row-blocked: each chunk owns a contiguous block of output rows, so
  // writes are disjoint and per-element accumulation order is unchanged.
  parallel_for(0, m, row_grain(k * n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = pb + kk * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  DDNN_PROF_SCOPE("matmul_tn");
  DDNN_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul_tn needs 2-D operands");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  DDNN_CHECK(b.dim(0) == k, "matmul_tn: inner dims " << k << " vs " << b.dim(0));
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Chunks own output-row blocks; the kk loop stays outermost within each
  // block so every c[i][j] accumulates in the same order as the serial
  // kernel (kk ascending) regardless of thread count.
  parallel_for(0, m, row_grain(k * n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* arow = pa + kk * m;
      const float* brow = pb + kk * n;
      for (std::int64_t i = i0; i < i1; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = pc + i * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c(Shape{a.dim(0), b.dim(0)});
  matmul_nt_into(a, b, c);
  return c;
}

void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c) {
  DDNN_PROF_SCOPE("matmul_nt");
  DDNN_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul_nt needs 2-D operands");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  DDNN_CHECK(b.dim(1) == k, "matmul_nt: inner dims " << k << " vs " << b.dim(1));
  DDNN_CHECK(c.ndim() == 2 && c.dim(0) == m && c.dim(1) == n,
             "matmul_nt_into: bad output shape " << c.shape().to_string());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  parallel_for(0, m, row_grain(k * n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
  });
}

Tensor transpose2d(const Tensor& a) {
  DDNN_CHECK(a.ndim() == 2, "transpose2d needs a 2-D tensor");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor t(Shape{n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

float sum_all(const Tensor& a) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float mean_all(const Tensor& a) {
  DDNN_CHECK(a.numel() > 0, "mean of empty tensor");
  return sum_all(a) / static_cast<float>(a.numel());
}

float max_all(const Tensor& a) {
  DDNN_CHECK(a.numel() > 0, "max of empty tensor");
  float m = a[0];
  for (std::int64_t i = 1; i < a.numel(); ++i) m = std::max(m, a[i]);
  return m;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  DDNN_CHECK(a.ndim() == 2, "argmax_rows needs a 2-D tensor");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  DDNN_CHECK(n > 0, "argmax_rows with zero columns");
  std::vector<std::int64_t> out(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < n; ++j) {
      if (a.at(i, j) > a.at(i, best)) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

Tensor softmax_rows(const Tensor& a) {
  DDNN_CHECK(a.ndim() == 2, "softmax_rows needs a 2-D tensor");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out(a.shape());
  parallel_for(0, m, row_grain(n * 8), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float mx = a.at(i, 0);
      for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, a.at(i, j));
      double denom = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        const float e = std::exp(a.at(i, j) - mx);
        out.at(i, j) = e;
        denom += e;
      }
      for (std::int64_t j = 0; j < n; ++j) {
        out.at(i, j) = static_cast<float>(out.at(i, j) / denom);
      }
    }
  });
  return out;
}

Tensor add_row_vector(const Tensor& x, const Tensor& b) {
  DDNN_CHECK(x.ndim() == 2 && b.ndim() == 1, "add_row_vector: [m,n] + [n]");
  DDNN_CHECK(x.dim(1) == b.dim(0), "add_row_vector: width mismatch");
  Tensor out(x.shape());
  const std::int64_t m = x.dim(0), n = x.dim(1);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at(i, j) = x.at(i, j) + b[j];
  }
  return out;
}

void add_row_vector_inplace(Tensor& x, const Tensor& b) {
  DDNN_CHECK(x.ndim() == 2 && b.ndim() == 1, "add_row_vector: [m,n] + [n]");
  DDNN_CHECK(x.dim(1) == b.dim(0), "add_row_vector: width mismatch");
  const std::int64_t m = x.dim(0), n = x.dim(1);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) x.at(i, j) = x.at(i, j) + b[j];
  }
}

Tensor sum_rows(const Tensor& x) {
  DDNN_CHECK(x.ndim() == 2, "sum_rows needs a 2-D tensor");
  const std::int64_t m = x.dim(0), n = x.dim(1);
  Tensor out(Shape{n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out[j] += x.at(i, j);
  }
  return out;
}

void batch_norm_apply(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                      const Tensor& mean, const Tensor& var, float eps,
                      Tensor& inv_std, Tensor& x_hat, Tensor& out) {
  std::int64_t batch, channels, spatial;
  if (x.ndim() == 2) {
    batch = x.dim(0);
    channels = x.dim(1);
    spatial = 1;
  } else {
    DDNN_CHECK(x.ndim() == 4, "batch_norm_apply: [N, F] or [N, C, H, W]");
    batch = x.dim(0);
    channels = x.dim(1);
    spatial = x.dim(2) * x.dim(3);
  }
  DDNN_CHECK(gamma.numel() == channels && beta.numel() == channels &&
                 mean.numel() == channels && var.numel() == channels &&
                 inv_std.numel() == channels,
             "batch_norm_apply: per-channel tensor size mismatch");
  DDNN_CHECK(x_hat.numel() == x.numel() && out.numel() == x.numel(),
             "batch_norm_apply: output size mismatch");

  for (std::int64_t c = 0; c < channels; ++c) {
    inv_std[c] = 1.0f / std::sqrt(var[c] + eps);
  }
  const float* px = x.data();
  float* ph = x_hat.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float m = mean[c], is = inv_std[c];
      const float ga = gamma[c], be = beta[c];
      const std::int64_t base = (b * channels + c) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        const float xh = (px[base + s] - m) * is;
        ph[base + s] = xh;
        po[base + s] = ga * xh + be;
      }
    }
  }
}

}  // namespace ddnn::ops
