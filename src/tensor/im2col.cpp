#include "tensor/im2col.hpp"

#include "obs/profile.hpp"
#include "util/thread_pool.hpp"

namespace ddnn {

namespace {

void check_geometry(const Tensor& x, const Conv2dGeometry& g) {
  DDNN_CHECK(x.ndim() == 4, "im2col expects [N, C, H, W], got "
                                << x.shape().to_string());
  DDNN_CHECK(x.dim(1) == g.in_channels && x.dim(2) == g.in_h &&
                 x.dim(3) == g.in_w,
             "im2col: tensor " << x.shape().to_string()
                               << " does not match geometry");
  DDNN_CHECK(g.stride > 0 && g.pad >= 0 && g.kernel_h > 0 && g.kernel_w > 0,
             "im2col: bad geometry");
  DDNN_CHECK(g.out_h() > 0 && g.out_w() > 0, "im2col: empty output");
}

}  // namespace

Tensor im2col(const Tensor& x, const Conv2dGeometry& g) {
  check_geometry(x, g);
  Tensor cols(Shape{x.dim(0) * g.out_h() * g.out_w(), g.patch_size()});
  im2col_into(x, g, cols);
  return cols;
}

void im2col_into(const Tensor& x, const Conv2dGeometry& g, Tensor& cols) {
  DDNN_PROF_SCOPE("im2col");
  check_geometry(x, g);
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t patch = g.patch_size();
  DDNN_CHECK(cols.ndim() == 2 && cols.dim(0) == n * oh * ow &&
                 cols.dim(1) == patch,
             "im2col_into: bad cols shape " << cols.shape().to_string());
  float* pc = cols.data();
  const float* px = x.data();
  const std::int64_t chw = g.in_channels * g.in_h * g.in_w;
  // Each image writes a disjoint block of `cols` rows, so the batch loop
  // parallelizes without any cross-thread accumulation. Every element is
  // written (padded positions get an explicit 0): the destination may be a
  // recycled planner arena.
  parallel_for(0, n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b) {
      const float* img = px + b * chw;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float* row = pc + ((b * oh + oy) * ow + ox) * patch;
          std::int64_t idx = 0;
          for (std::int64_t c = 0; c < g.in_channels; ++c) {
            const float* chan = img + c * g.in_h * g.in_w;
            for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
              const std::int64_t iy = oy * g.stride - g.pad + ky;
              for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
                const std::int64_t ix = ox * g.stride - g.pad + kx;
                row[idx] = (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                               ? chan[iy * g.in_w + ix]
                               : 0.0f;
              }
            }
          }
        }
      }
    }
  });
}

Tensor col2im(const Tensor& cols, const Conv2dGeometry& g, std::int64_t batch) {
  DDNN_PROF_SCOPE("col2im");
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t patch = g.patch_size();
  DDNN_CHECK(cols.ndim() == 2 && cols.dim(0) == batch * oh * ow &&
                 cols.dim(1) == patch,
             "col2im: cols " << cols.shape().to_string()
                             << " does not match geometry");
  Tensor x(Shape{batch, g.in_channels, g.in_h, g.in_w});
  float* px = x.data();
  const float* pc = cols.data();
  const std::int64_t chw = g.in_channels * g.in_h * g.in_w;
  // Scatter-adds stay within image b's slab, so chunking over the batch
  // keeps the per-pixel accumulation order identical to the serial loop.
  parallel_for(0, batch, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b) {
      float* img = px + b * chw;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float* row = pc + ((b * oh + oy) * ow + ox) * patch;
          std::int64_t idx = 0;
          for (std::int64_t c = 0; c < g.in_channels; ++c) {
            float* chan = img + c * g.in_h * g.in_w;
            for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
              const std::int64_t iy = oy * g.stride - g.pad + ky;
              for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
                const std::int64_t ix = ox * g.stride - g.pad + kx;
                if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
                  chan[iy * g.in_w + ix] += row[idx];
                }
              }
            }
          }
        }
      }
    }
  });
  return x;
}

}  // namespace ddnn
