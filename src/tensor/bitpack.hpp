// Bit-packing of binarized activations for the wire format.
//
// After a binary activation every value is exactly -1.0f or +1.0f, so a
// feature map of `n` activations travels as ceil(n / 8) bytes. This is the
// `f * o / 8` term of the paper's communication-cost model (Eq. 1) and is
// what the simulated device->cloud links carry.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ddnn {

/// Bytes needed to carry `numel` sign bits.
std::int64_t packed_size_bytes(std::int64_t numel);

/// Pack signs of `t` (bit = 1 for x >= 0). Trailing bits of the last byte
/// are zero.
std::vector<std::uint8_t> pack_signs(const Tensor& t);

/// Inverse of pack_signs: produces a tensor of the given shape with values
/// in {-1, +1}.
Tensor unpack_signs(const std::vector<std::uint8_t>& bytes, Shape shape);

}  // namespace ddnn
