#include "tensor/shape.hpp"

#include <sstream>

#include "util/error.hpp"

namespace ddnn {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (auto d : dims_) DDNN_CHECK(d >= 0, "negative dimension in " << to_string());
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) DDNN_CHECK(d >= 0, "negative dimension in " << to_string());
}

std::int64_t Shape::dim(std::int64_t i) const {
  const auto n = static_cast<std::int64_t>(dims_.size());
  if (i < 0) i += n;
  DDNN_CHECK(i >= 0 && i < n, "axis " << i << " out of range for " << to_string());
  return dims_[static_cast<std::size_t>(i)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace ddnn
