// Raw (non-differentiable) tensor kernels.
//
// These are the computational primitives the autograd layer builds on. All
// functions validate shapes with DDNN_CHECK and allocate their results; the
// *_into variants accumulate in place and are used on gradient buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ddnn::ops {

// ---------------------------------------------------------------- elementwise

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);
/// sign with sign(0) = +1, so binarized values are always in {-1, +1}.
Tensor sign(const Tensor& a);

/// y += alpha * x (shapes must match).
void axpy_into(Tensor& y, float alpha, const Tensor& x);

// ------------------------------------------------------------------- matmul

/// C[m,n] = A[m,k] * B[k,n]
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[m,n] = A[k,m]^T * B[k,n]
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C[m,n] = A[m,k] * B[n,k]^T
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// matmul_nt writing into a caller-provided [m,n] tensor (every element is
/// overwritten — safe on a dirty planner arena). Same kernel, same bits.
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c);

Tensor transpose2d(const Tensor& a);

// --------------------------------------------------------------- reductions

float sum_all(const Tensor& a);
float mean_all(const Tensor& a);
float max_all(const Tensor& a);

/// Row-wise argmax of a [m, n] matrix.
std::vector<std::int64_t> argmax_rows(const Tensor& a);

/// Row-wise numerically-stable softmax of a [m, n] matrix.
Tensor softmax_rows(const Tensor& a);

// -------------------------------------------------------------- broadcasting

/// X[m,n] + b[n] broadcast over rows.
Tensor add_row_vector(const Tensor& x, const Tensor& b);
/// In-place row broadcast: x[i,j] = x[i,j] + b[j]. Bit-identical to
/// add_row_vector (same expression, same order).
void add_row_vector_inplace(Tensor& x, const Tensor& b);

/// Column-wise sum of a [m, n] matrix -> [n]. (Gradient of the broadcast.)
Tensor sum_rows(const Tensor& x);

// ---------------------------------------------------------------- batch norm

/// Batch-norm normalization pass over [N, F] (spatial size 1) or
/// [N, C, H, W] (per-channel over N*H*W):
///   inv_std[c] = 1 / sqrt(var[c] + eps)
///   x_hat      = (x - mean[c]) * inv_std[c]
///   out        = gamma[c] * x_hat + beta[c]
/// inv_std must be [channels]; x_hat and out must match x's shape. Both the
/// autograd batch_norm and the inference engine call this one compiled
/// kernel, so the two paths round identically (bit-identity contract).
void batch_norm_apply(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                      const Tensor& mean, const Tensor& var, float eps,
                      Tensor& inv_std, Tensor& x_hat, Tensor& out);

}  // namespace ddnn::ops
