#include "tensor/bitgemm.hpp"

#include <algorithm>
#include <bit>

#include "obs/profile.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ddnn::bitgemm {

namespace {

/// Chunk size keeping per-task work around 64k scalar operations. Small
/// problems (under ~256k total operations) run as a single inline chunk —
/// pool dispatch costs more than it buys at batch-1 section sizes.
std::int64_t grain_for(std::int64_t work_per_index, std::int64_t total_indices) {
  const std::int64_t per = std::max<std::int64_t>(1, work_per_index);
  if (total_indices * per <= 262144) return std::max<std::int64_t>(1, total_indices);
  return std::max<std::int64_t>(1, 65536 / per);
}

/// Valid kx subrange [lo, hi) of an ox row: the output positions whose input
/// column ix = ox*stride - pad + kx is in bounds.
void ox_range(std::int64_t kx, std::int64_t stride, std::int64_t pad,
              std::int64_t in_w, std::int64_t ow, std::int64_t& lo,
              std::int64_t& hi) {
  const std::int64_t shift = pad - kx;  // ix = ox*stride - shift
  lo = shift <= 0 ? 0 : (shift + stride - 1) / stride;
  const std::int64_t last_num = in_w - 1 + shift;  // ox*stride <= last_num
  hi = last_num < 0 ? 0 : std::min(ow, last_num / stride + 1);
  lo = std::min(lo, hi);
}

/// Row loop of sign_conv2d. The output rows themselves are the accumulators,
/// filled saxpy-style over contiguous input spans so the loop vectorizes.
/// Each output's terms arrive in ascending patch-index order with
/// out-of-bounds positions skipped, exactly like ops::im2col + matmul_nt;
/// x * ±1.0f is exact, so fused multiply-adds cannot change the rounding.
/// KW_T > 0 bakes that kernel width (and stride 1) into the instantiation.
template <int KW_T>
void sign_conv_rows(const float* px, const float* st, float* po,
                    const Conv2dGeometry& g, std::int64_t f, std::int64_t oh,
                    std::int64_t ow, std::int64_t lo, std::int64_t hi) {
  const std::int64_t kw = KW_T > 0 ? KW_T : g.kernel_w;
  const std::int64_t stride = KW_T > 0 ? 1 : g.stride;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t b = r / oh, oy = r % oh;
    const float* img = px + b * g.in_channels * g.in_h * g.in_w;
    float* orow = po + (b * f * oh + oy) * ow;
    for (std::int64_t j = 0; j < f; ++j) {
      std::fill_n(orow + j * oh * ow, ow, 0.0f);
    }
    std::int64_t idx = 0;
    for (std::int64_t c = 0; c < g.in_channels; ++c) {
      const float* plane = img + c * g.in_h * g.in_w;
      for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
        const std::int64_t iy = oy * stride - g.pad + ky;
        if (iy < 0 || iy >= g.in_h) {
          idx += kw;
          continue;
        }
        const float* prow = plane + iy * g.in_w;
        for (std::int64_t kx = 0; kx < kw; ++kx, ++idx) {
          std::int64_t olo, ohi;
          ox_range(kx, stride, g.pad, g.in_w, ow, olo, ohi);
          const std::int64_t shift = kx - g.pad;
          for (std::int64_t j = 0; j < f; ++j) {
            const float sj = st[idx * f + j];
            float* __restrict aj = orow + j * oh * ow;
            if (stride == 1) {
              const float* __restrict xr = prow + shift;
              for (std::int64_t ox = olo; ox < ohi; ++ox) {
                aj[ox] += xr[ox] * sj;
              }
            } else {
              for (std::int64_t ox = olo; ox < ohi; ++ox) {
                aj[ox] += prow[ox * stride + shift] * sj;
              }
            }
          }
        }
      }
    }
  }
}

void pack_one_row(const float* src, std::int64_t cols, std::uint64_t* dst,
                  std::int64_t words) {
  for (std::int64_t w = 0; w < words; ++w) {
    const std::int64_t base = w * 64;
    const std::int64_t m = std::min<std::int64_t>(64, cols - base);
    std::uint64_t bits = 0;
    for (std::int64_t j = 0; j < m; ++j) {
      bits |= static_cast<std::uint64_t>(src[base + j] >= 0.0f) << j;
    }
    dst[w] = bits;
  }
}

}  // namespace

void pack_sign_rows(const float* data, std::int64_t rows, std::int64_t cols,
                    PackedBits& out) {
  DDNN_CHECK(rows > 0 && cols > 0, "pack_sign_rows: empty matrix");
  // Dot products are reconstructed through float, exact only below 2^24.
  DDNN_CHECK(cols < (std::int64_t{1} << 24), "pack_sign_rows: row too long");
  out.rows = rows;
  out.cols = cols;
  out.words_per_row = (cols + 63) / 64;
  out.bits.assign(static_cast<std::size_t>(rows * out.words_per_row), 0);
  for (std::int64_t r = 0; r < rows; ++r) {
    pack_one_row(data + r * cols, cols, out.bits.data() + r * out.words_per_row,
                 out.words_per_row);
  }
}

PackedSigns pack_signs_matrix(const float* data, std::int64_t rows,
                              std::int64_t cols) {
  PackedSigns out;
  pack_sign_rows(data, rows, cols, out.bits);
  out.signs_t.assign(static_cast<std::size_t>(rows * cols), 0.0f);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t k = 0; k < cols; ++k) {
      out.signs_t[static_cast<std::size_t>(k * rows + r)] =
          data[r * cols + k] >= 0.0f ? 1.0f : -1.0f;
    }
  }
  return out;
}

bool all_pm1(const Tensor& t) {
  const float* p = t.data();
  const std::int64_t n = t.numel();
  // Branchless blocks so the scan vectorizes; early exit once per block.
  std::int64_t i = 0;
  for (; i + 256 <= n; i += 256) {
    bool bad = false;
    for (std::int64_t j = 0; j < 256; ++j) {
      bad |= (p[i + j] != 1.0f) & (p[i + j] != -1.0f);
    }
    if (bad) return false;
  }
  for (; i < n; ++i) {
    if (p[i] != 1.0f && p[i] != -1.0f) return false;
  }
  return true;
}

void xnor_linear(const Tensor& x, const PackedBits& w, Tensor& out) {
  DDNN_PROF_SCOPE("xnor_linear");
  DDNN_CHECK(x.ndim() == 2 && x.dim(1) == w.cols,
             "xnor_linear: x shape " << x.shape().to_string() << " vs "
                                     << w.cols << " packed columns");
  DDNN_CHECK(out.ndim() == 2 && out.dim(0) == x.dim(0) && out.dim(1) == w.rows,
             "xnor_linear: bad output shape");
  const std::int64_t m = x.dim(0), k = w.cols, wpr = w.words_per_row;

  // Per-thread packed-input scratch, reused across calls. Bound to a local
  // reference so the chunk lambdas capture *this* thread's buffer — a lambda
  // never captures a thread_local, and pool workers must not resolve it to
  // their own (empty) instance.
  static thread_local std::vector<std::uint64_t> xbits_tls;
  std::vector<std::uint64_t>& xbits = xbits_tls;
  xbits.assign(static_cast<std::size_t>(m * wpr), 0);
  const float* px = x.data();
  parallel_for(0, m, grain_for(k, m), [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      pack_one_row(px + i * k, k, xbits.data() + i * wpr, wpr);
    }
  });

  // Weight the chunking by word operations, not bit operations — a popcount
  // covers 64 patch positions at once.
  float* po = out.data();
  parallel_for(0, m, grain_for(w.rows * wpr * 8, m),
               [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const std::uint64_t* xr = xbits.data() + i * wpr;
      float* orow = po + i * w.rows;
      for (std::int64_t j = 0; j < w.rows; ++j) {
        const std::uint64_t* wr = w.row(j);
        std::int64_t disagree = 0;
        for (std::int64_t t = 0; t < wpr; ++t) {
          disagree += std::popcount(xr[t] ^ wr[t]);
        }
        // Trailing bits are zero in both packs, so they never disagree.
        orow[j] = static_cast<float>(k - 2 * disagree);
      }
    }
  });
}

void sign_linear(const Tensor& x, const PackedSigns& w, Tensor& out) {
  DDNN_PROF_SCOPE("sign_linear");
  const std::int64_t rows = w.bits.rows, k = w.bits.cols;
  DDNN_CHECK(x.ndim() == 2 && x.dim(1) == k, "sign_linear: in-feature mismatch");
  DDNN_CHECK(out.ndim() == 2 && out.dim(0) == x.dim(0) && out.dim(1) == rows,
             "sign_linear: bad output shape");
  const std::int64_t m = x.dim(0);
  const float* px = x.data();
  const float* st = w.signs_t.data();
  float* po = out.data();
  parallel_for(0, m, grain_for(k * rows, m),
               [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> acc(static_cast<std::size_t>(rows));
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* xrow = px + i * k;
      for (std::int64_t j = 0; j < rows; ++j) acc[static_cast<std::size_t>(j)] = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float xv = xrow[kk];
        const float* s = st + kk * rows;
        // Independent accumulator per output feature; each feature's terms
        // arrive in kk order, matching ops::matmul_nt exactly (x * ±1.0f is
        // exact, so fused multiply-adds cannot change the rounding).
        for (std::int64_t j = 0; j < rows; ++j) {
          acc[static_cast<std::size_t>(j)] += xv * s[j];
        }
      }
      float* orow = po + i * rows;
      for (std::int64_t j = 0; j < rows; ++j) orow[j] = acc[static_cast<std::size_t>(j)];
    }
  });
}

void xnor_conv2d(const Tensor& x, const Conv2dGeometry& g, const PackedBits& w,
                 Tensor& out) {
  DDNN_PROF_SCOPE("xnor_conv2d");
  const std::int64_t n = x.dim(0), oh = g.out_h(), ow = g.out_w();
  const std::int64_t patch = g.patch_size(), f = w.rows;
  DDNN_CHECK(x.ndim() == 4 && x.dim(1) == g.in_channels && x.dim(2) == g.in_h &&
                 x.dim(3) == g.in_w,
             "xnor_conv2d: input/geometry mismatch");
  DDNN_CHECK(w.cols == patch, "xnor_conv2d: packed weight patch mismatch");
  DDNN_CHECK(out.ndim() == 4 && out.dim(0) == n && out.dim(1) == f &&
                 out.dim(2) == oh && out.dim(3) == ow,
             "xnor_conv2d: bad output shape");

  const std::int64_t wpr = w.words_per_row;
  const std::int64_t rows = n * oh * ow;

  // Packed im2col: per output pixel, the patch's sign bits plus a validity
  // mask (bit = 1 for in-bounds positions). The mask depends only on output
  // geometry — one row per pixel, shared across the batch. Per-thread
  // scratch, reused; bound to local references so the chunk lambdas capture
  // *this* thread's buffers (a lambda never captures a thread_local).
  static thread_local std::vector<std::uint64_t> patch_bits_tls;
  static thread_local std::vector<std::uint64_t> patch_mask_tls;
  static thread_local std::vector<std::int32_t> valid_count_tls;
  std::vector<std::uint64_t>& patch_bits = patch_bits_tls;
  std::vector<std::uint64_t>& patch_mask = patch_mask_tls;
  std::vector<std::int32_t>& valid_count = valid_count_tls;
  patch_bits.assign(static_cast<std::size_t>(rows * wpr), 0);
  patch_mask.assign(static_cast<std::size_t>(oh * ow * wpr), 0);
  valid_count.assign(static_cast<std::size_t>(oh * ow), 0);

  for (std::int64_t oy = 0; oy < oh; ++oy) {
    std::uint64_t* pm_row = patch_mask.data() + oy * ow * wpr;
    std::int64_t idx = 0;
    for (std::int64_t c = 0; c < g.in_channels; ++c) {
      for (std::int64_t ky = 0; ky < g.kernel_h; ++ky) {
        const std::int64_t iy = oy * g.stride - g.pad + ky;
        if (iy < 0 || iy >= g.in_h) {
          idx += g.kernel_w;
          continue;
        }
        for (std::int64_t kx = 0; kx < g.kernel_w; ++kx, ++idx) {
          std::int64_t olo, ohi;
          ox_range(kx, g.stride, g.pad, g.in_w, ow, olo, ohi);
          const std::uint64_t bit = std::uint64_t{1} << (idx & 63);
          const std::int64_t word = idx >> 6;
          for (std::int64_t ox = olo; ox < ohi; ++ox) {
            pm_row[ox * wpr + word] |= bit;
          }
        }
      }
    }
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      std::int64_t valid = 0;
      for (std::int64_t t = 0; t < wpr; ++t) {
        valid += std::popcount(pm_row[ox * wpr + t]);
      }
      valid_count[static_cast<std::size_t>(oy * ow + ox)] =
          static_cast<std::int32_t>(valid);
    }
  }

  // Narrow images (the common case here) pack each input row into one
  // bitmask first; a pixel's kernel_w-wide patch segment is then a shift of
  // that mask instead of kernel_w separate bit inserts. Bits at out-of-bounds
  // positions are arbitrary either way — the compute phase masks them out.
  const float* px = x.data();
  const bool narrow = g.in_w <= 64 && g.kernel_w <= 64 && g.pad < 64;
  static thread_local std::vector<std::uint64_t> row_bits_tls;
  std::vector<std::uint64_t>& row_bits = row_bits_tls;
  if (narrow) {
    row_bits.assign(static_cast<std::size_t>(n * g.in_channels * g.in_h), 0);
    parallel_for(0, n, grain_for(g.in_channels * g.in_h * g.in_w, n),
                 [&](std::int64_t blo, std::int64_t bhi) {
      for (std::int64_t b = blo; b < bhi; ++b) {
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          const float* plane =
              px + (b * g.in_channels + c) * g.in_h * g.in_w;
          for (std::int64_t iy = 0; iy < g.in_h; ++iy) {
            const float* prow = plane + iy * g.in_w;
            std::uint64_t bits = 0;
            for (std::int64_t j = 0; j < g.in_w; ++j) {
              bits |= static_cast<std::uint64_t>(prow[j] >= 0.0f) << j;
            }
            row_bits[static_cast<std::size_t>((b * g.in_channels + c) *
                                                  g.in_h +
                                              iy)] = bits;
          }
        }
      }
    });
  }

  parallel_for(0, n * oh, grain_for(ow * patch, n * oh),
               [&](std::int64_t rlo, std::int64_t rhi) {
    for (std::int64_t r = rlo; r < rhi; ++r) {
      const std::int64_t b = r / oh, oy = r % oh;
      const float* img = px + b * g.in_channels * g.in_h * g.in_w;
      std::uint64_t* pb_row = patch_bits.data() + r * ow * wpr;
      std::int64_t idx = 0;
      for (std::int64_t c = 0; c < g.in_channels; ++c) {
        const float* plane = img + c * g.in_h * g.in_w;
        for (std::int64_t ky = 0; ky < g.kernel_h; ++ky, idx += g.kernel_w) {
          const std::int64_t iy = oy * g.stride - g.pad + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          if (narrow) {
            const std::uint64_t rb =
                row_bits[static_cast<std::size_t>((b * g.in_channels + c) *
                                                      g.in_h +
                                                  iy)];
            const std::uint64_t kwmask =
                g.kernel_w == 64 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << g.kernel_w) - 1;
            const std::int64_t word = idx >> 6;
            const std::int64_t off = idx & 63;
            const bool cross = off + g.kernel_w > 64;
            // Past this ox every segment bit is already shifted out (and the
            // shift amount itself would be undefined behaviour).
            const std::int64_t ox_hi =
                std::min(ow, (63 + g.pad) / g.stride + 1);
            for (std::int64_t ox = 0; ox < ox_hi; ++ox) {
              const std::int64_t start = ox * g.stride - g.pad;
              const std::uint64_t seg =
                  (start >= 0 ? rb >> start : rb << -start) & kwmask;
              pb_row[ox * wpr + word] |= seg << off;
              if (cross) pb_row[ox * wpr + word + 1] |= seg >> (64 - off);
            }
          } else {
            const float* prow = plane + iy * g.in_w;
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const std::int64_t j = idx + kx;
              std::int64_t olo, ohi;
              ox_range(kx, g.stride, g.pad, g.in_w, ow, olo, ohi);
              const std::int64_t shift = kx - g.pad;
              const std::int64_t word = j >> 6;
              const std::int64_t amount = j & 63;
              for (std::int64_t ox = olo; ox < ohi; ++ox) {
                const std::uint64_t set = prow[ox * g.stride + shift] >= 0.0f;
                pb_row[ox * wpr + word] |= set << amount;
              }
            }
          }
        }
      }
    }
  });

  // Weight the chunking by word operations — a popcount covers 64 patch
  // positions at once. Feature planes are written contiguously, pixel-major.
  const std::int64_t pixels = oh * ow;
  float* po = out.data();
  parallel_for(0, n, grain_for(pixels * f * wpr * 8, n),
               [&](std::int64_t blo, std::int64_t bhi) {
    for (std::int64_t b = blo; b < bhi; ++b) {
      const std::uint64_t* pbb = patch_bits.data() + b * pixels * wpr;
      for (std::int64_t j = 0; j < f; ++j) {
        const std::uint64_t* wr = w.row(j);
        float* plane = po + (b * f + j) * pixels;
        if (wpr == 1) {
          const std::uint64_t w0 = wr[0];
          for (std::int64_t pix = 0; pix < pixels; ++pix) {
            const std::int64_t disagree =
                std::popcount((pbb[pix] ^ w0) & patch_mask[static_cast<std::size_t>(pix)]);
            plane[pix] = static_cast<float>(
                valid_count[static_cast<std::size_t>(pix)] - 2 * disagree);
          }
        } else {
          for (std::int64_t pix = 0; pix < pixels; ++pix) {
            const std::uint64_t* pb = pbb + pix * wpr;
            const std::uint64_t* pm = patch_mask.data() + pix * wpr;
            std::int64_t disagree = 0;
            for (std::int64_t t = 0; t < wpr; ++t) {
              disagree += std::popcount((pb[t] ^ wr[t]) & pm[t]);
            }
            plane[pix] = static_cast<float>(
                valid_count[static_cast<std::size_t>(pix)] - 2 * disagree);
          }
        }
      }
    }
  });
}

void sign_conv2d(const Tensor& x, const Conv2dGeometry& g,
                 const PackedSigns& w, Tensor& out) {
  DDNN_PROF_SCOPE("sign_conv2d");
  const std::int64_t n = x.dim(0), oh = g.out_h(), ow = g.out_w();
  const std::int64_t patch = g.patch_size(), f = w.bits.rows;
  DDNN_CHECK(x.ndim() == 4 && x.dim(1) == g.in_channels && x.dim(2) == g.in_h &&
                 x.dim(3) == g.in_w,
             "sign_conv2d: input/geometry mismatch");
  DDNN_CHECK(w.bits.cols == patch, "sign_conv2d: packed weight patch mismatch");
  DDNN_CHECK(out.ndim() == 4 && out.dim(0) == n && out.dim(1) == f &&
                 out.dim(2) == oh && out.dim(3) == ow,
             "sign_conv2d: bad output shape");

  const float* px = x.data();
  const float* st = w.signs_t.data();
  float* po = out.data();
  parallel_for(0, n * oh, grain_for(ow * patch * f, n * oh),
               [&](std::int64_t lo, std::int64_t hi) {
    // KW_T = 3 bakes the common 3-wide stride-1 kernel into its own
    // instantiation so the kx loop unrolls with constant shifts.
    if (g.stride == 1 && g.kernel_w == 3) {
      sign_conv_rows<3>(px, st, po, g, f, oh, ow, lo, hi);
    } else {
      sign_conv_rows<0>(px, st, po, g, f, oh, ow, lo, hi);
    }
  });
}

}  // namespace ddnn::bitgemm
