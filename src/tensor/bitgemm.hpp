// Bit-packed GEMM kernels for binarized inference.
//
// A binarized layer's weights are ±1, so a row of K weights packs into
// ceil(K/64) words of sign bits (bit = 1 for w >= 0, the same convention as
// bitpack.hpp and ops::sign). Two kernel families execute against the pack:
//
//   XNOR-popcount  — when the input is itself ±1, a K-term dot product is
//                    valid_count - 2*popcount((x ^ w) & mask): pure integer
//                    arithmetic, exact, then converted to float (lossless
//                    for K < 2^24).
//   sign-accumulate — when the input is full-precision float (raw images,
//                    CC-projected feature maps), terms x * (±1) are
//                    accumulated in exactly the order ops::matmul_nt uses
//                    (patch index ascending). Multiplying by ±1.0f is exact
//                    in IEEE-754, so the partial sums match the float path
//                    bit-for-bit.
//
// Both are therefore bit-identical to the autograd path (im2col + float
// GEMM over sign(w)); padded positions contribute 0 * (±1) = ±0 there,
// which never changes a partial sum, so the packed kernels may skip them.
// The convolution kernels consume the input directly (no materialized col
// matrix) and write NCHW output in place.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"

namespace ddnn::bitgemm {

/// Sign bits of a [rows, cols] matrix, one 64-bit-word-aligned row each
/// (LSB-first within a word; trailing bits of the last word are zero).
struct PackedBits {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t words_per_row = 0;
  std::vector<std::uint64_t> bits;

  const std::uint64_t* row(std::int64_t r) const {
    return bits.data() + r * words_per_row;
  }
};

/// A binarized weight matrix in both kernel forms: packed sign bits for the
/// XNOR path and a transposed ±1.0f matrix (signs_t[k * rows + r]) for the
/// sign-accumulate path, where consecutive output features are contiguous.
struct PackedSigns {
  PackedBits bits;
  std::vector<float> signs_t;
};

/// Pack the sign bits of `rows` x `cols` row-major floats into `out`
/// (bit = 1 for x >= 0). Reuses out's storage when already sized.
void pack_sign_rows(const float* data, std::int64_t rows, std::int64_t cols,
                    PackedBits& out);

/// Both kernel forms of a binarized [rows, cols] weight matrix.
PackedSigns pack_signs_matrix(const float* data, std::int64_t rows,
                              std::int64_t cols);

/// True when every element is exactly +1.0f or -1.0f (selects the XNOR
/// path; binary-activation outputs always qualify).
bool all_pm1(const Tensor& t);

/// y[m, out] = x · signs(w)^T for ±1 input x [m, k] (XNOR-popcount).
/// Bit-identical to ops::matmul_nt(x, sign(w)).
void xnor_linear(const Tensor& x, const PackedBits& w, Tensor& out);

/// y[m, out] = x · signs(w)^T for arbitrary float x (sign-accumulate).
void sign_linear(const Tensor& x, const PackedSigns& w, Tensor& out);

/// Binary convolution over a ±1 input: packed im2col (patch bits plus an
/// in-bounds validity mask) then XNOR-popcount, writing [N, F, OH, OW].
void xnor_conv2d(const Tensor& x, const Conv2dGeometry& g, const PackedBits& w,
                 Tensor& out);

/// Binary convolution over a float input: direct sign-accumulate in im2col
/// patch order (c, ky, kx), skipping padded positions.
void sign_conv2d(const Tensor& x, const Conv2dGeometry& g,
                 const PackedSigns& w, Tensor& out);

}  // namespace ddnn::bitgemm
