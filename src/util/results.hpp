// Shared results-directory helper.
//
// Every artifact-producing entry point (bench binaries, examples, the run
// ledger) resolves its output directory through results_dir(), so one
// environment variable controls them all:
//
//   DDNN_RESULTS_DIR  output directory (default "results"); "off" or the
//                     empty string disables every artifact writer.
#pragma once

#include <string>

#include "util/table.hpp"

namespace ddnn {

/// $DDNN_RESULTS_DIR (default "results"), or "" when artifacts are disabled
/// (DDNN_RESULTS_DIR=off or set but empty).
std::string results_dir();

/// Create `dir` (and parents) if needed; throws ddnn::Error on failure.
void ensure_dir(const std::string& dir);

/// Write `table` as <results_dir()>/<name>.csv, creating the directory on
/// first use, and log the path to stderr. Returns the written path, or ""
/// when results are disabled.
std::string write_results_csv(const Table& table, const std::string& name);

}  // namespace ddnn
