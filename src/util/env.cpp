#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace ddnn {

namespace {

const char* raw_env(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  return (v == nullptr || *v == '\0') ? nullptr : v;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* v = raw_env(name);
  return v == nullptr ? fallback : std::string(v);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* v = raw_env(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  DDNN_CHECK(end != v && *end == '\0',
             "env var " << name << " is not an integer: '" << v << "'");
  return parsed;
}

double env_double(const std::string& name, double fallback) {
  const char* v = raw_env(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  DDNN_CHECK(end != v && *end == '\0',
             "env var " << name << " is not a number: '" << v << "'");
  return parsed;
}

bool env_bool(const std::string& name, bool fallback) {
  const char* v = raw_env(name);
  if (v == nullptr) return fallback;
  const std::string s = to_lower(v);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  DDNN_CHECK(false, "env var " << name << " is not a boolean: '" << v << "'");
  return fallback;  // unreachable
}

}  // namespace ddnn
