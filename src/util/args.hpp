// Minimal command-line argument parser for the CLI tool and examples.
//
// Supports long options with values ("--epochs 40" or "--epochs=40"),
// boolean flags ("--verbose"), positional arguments, and --help. Unknown
// options and missing values throw ddnn::Error so the CLI fails loudly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ddnn {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Register a boolean flag ("--verbose").
  ArgParser& add_flag(const std::string& name, const std::string& help);

  /// Register a value option with a default ("--epochs", "40").
  ArgParser& add_option(const std::string& name, const std::string& help,
                        const std::string& default_value);

  /// Parse argv. Returns false when --help was requested (usage printed to
  /// stdout); throws ddnn::Error on malformed input.
  bool parse(int argc, const char* const* argv);

  bool has_flag(const std::string& name) const;
  const std::string& get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;

  // Range-validated getters: reject out-of-range values with an error that
  // names the flag, so "--fleet-devices -3" fails loudly instead of feeding
  // a nonsense count into the simulator.
  std::int64_t get_int_at_least(const std::string& name, std::int64_t lo) const;
  double get_double_at_least(const std::string& name, double lo) const;
  /// Exclusive lower bound (rates and budgets that must be strictly > lo).
  double get_double_greater_than(const std::string& name, double lo) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  std::string usage() const;

 private:
  struct Spec {
    std::string name;
    std::string help;
    bool is_flag = false;
    std::string value;  // default, then parsed
    bool seen = false;
  };

  Spec* find(const std::string& name);
  const Spec* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
  std::vector<std::string> positionals_;
};

/// Split "2,5,0" into integers (empty string -> empty vector).
std::vector<int> parse_int_list(const std::string& csv);

}  // namespace ddnn
