// Error-handling helpers for the DDNN library.
//
// All invariant violations throw ddnn::Error (derived from std::runtime_error)
// with a message that includes the failing expression and source location.
// We use exceptions rather than abort() so that library users can recover and
// tests can assert on failure modes.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ddnn {

/// Exception type thrown by every DDNN_CHECK / DDNN_ASSERT failure.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "DDNN check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace ddnn

/// Check a precondition/invariant; throws ddnn::Error with a streamed message.
/// Usage: DDNN_CHECK(a == b, "shape mismatch: " << a << " vs " << b);
#define DDNN_CHECK(expr, ...)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream ddnn_check_os_;                                   \
      ddnn_check_os_ << "" __VA_OPT__(<< __VA_ARGS__);                     \
      ::ddnn::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                          ddnn_check_os_.str());           \
    }                                                                      \
  } while (false)

/// Cheap internal-consistency assertion; active in all build types because
/// the kernels here are small and correctness matters more than the branch.
#define DDNN_ASSERT(expr) DDNN_CHECK(expr)
