#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace ddnn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DDNN_CHECK(!headers_.empty(), "a table needs at least one column");
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::add_row(std::vector<std::string> cells) {
  DDNN_CHECK(cells.size() == headers_.size(),
             "row has " << cells.size() << " cells, table has "
                        << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  DDNN_CHECK(f.good(), "cannot open " << path << " for writing");
  f << to_csv();
  DDNN_CHECK(f.good(), "failed writing " << path);
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_string();
}

}  // namespace ddnn
