#include "util/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ddnn {

std::int64_t nearest_rank(double q, std::int64_t n) {
  DDNN_CHECK(q > 0.0 && q <= 1.0, "percentile rank " << q << " not in (0, 1]");
  DDNN_CHECK(n >= 1, "nearest rank of " << n << " samples");
  auto rank = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;  // guard against q*n rounding to 0
  if (rank > n) rank = n;
  return rank;
}

double percentile_nearest_rank(const std::vector<double>& sorted_ascending,
                               double q) {
  DDNN_CHECK(!sorted_ascending.empty(), "percentile of an empty sample");
  const auto rank =
      nearest_rank(q, static_cast<std::int64_t>(sorted_ascending.size()));
  return sorted_ascending[static_cast<std::size_t>(rank - 1)];
}

}  // namespace ddnn
