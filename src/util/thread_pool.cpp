#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/env.hpp"
#include "util/error.hpp"

namespace ddnn {

namespace {

/// Set for the lifetime of every pool worker thread: parallel_for() calls
/// made from a worker run inline so nested parallelism cannot deadlock the
/// fixed-size pool.
thread_local bool t_in_pool_worker = false;

int default_pool_size() {
  const std::int64_t requested = env_int("DDNN_THREADS", 0);
  if (requested > 0) {
    return static_cast<int>(std::min<std::int64_t>(requested, 256));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_instance_mutex;
std::unique_ptr<ThreadPool> g_instance;

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::deque<std::function<void()>> queue;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
};

ThreadPool::ThreadPool(int threads) : size_(std::max(1, threads)) {
  impl_ = new Impl;
  // The calling thread is one of the `size_` compute threads, so only
  // size_-1 helpers are spawned; size 1 means fully inline execution.
  for (int i = 0; i < size_ - 1; ++i) {
    impl_->workers.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->cv.wait(lock,
                     [this] { return impl_->stop || !impl_->queue.empty(); });
      if (impl_->queue.empty()) {
        if (impl_->stop) return;
        continue;
      }
      task = std::move(impl_->queue.front());
      impl_->queue.pop_front();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(std::move(task));
  }
  impl_->cv.notify_one();
}

ThreadPool& ThreadPool::instance() {
  std::lock_guard<std::mutex> lock(g_instance_mutex);
  if (!g_instance) {
    g_instance.reset(new ThreadPool(default_pool_size()));
  }
  return *g_instance;
}

void ThreadPool::set_size(int threads) {
  std::lock_guard<std::mutex> lock(g_instance_mutex);
  g_instance.reset();  // join the old pool before replacing it
  g_instance.reset(
      new ThreadPool(threads > 0 ? threads : default_pool_size()));
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t range = end - begin;
  if (range <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  if (t_in_pool_worker || size_ <= 1 || range <= grain) {
    fn(begin, end);
    return;
  }

  // Chunk count is capped at a small multiple of the pool size for load
  // balance; chunks are contiguous and disjoint, so which thread runs which
  // chunk never affects results.
  const std::int64_t by_grain = (range + grain - 1) / grain;
  const std::int64_t nchunks =
      std::min<std::int64_t>(static_cast<std::int64_t>(size_) * 4, by_grain);
  const std::int64_t chunk = (range + nchunks - 1) / nchunks;

  struct CallState {
    std::atomic<std::int64_t> next{0};
    std::int64_t begin = 0, end = 0, chunk = 0, nchunks = 0;
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::mutex mutex;
    std::condition_variable done_cv;
    int helpers_left = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<CallState>();
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->nchunks = nchunks;
  state->fn = &fn;

  auto drain = [](CallState& s) {
    while (true) {
      const std::int64_t c = s.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s.nchunks) break;
      const std::int64_t lo = s.begin + c * s.chunk;
      const std::int64_t hi = std::min(s.end, lo + s.chunk);
      try {
        (*s.fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.error) s.error = std::current_exception();
      }
    }
  };

  const int helpers = static_cast<int>(
      std::min<std::int64_t>(size_ - 1, nchunks - 1));
  state->helpers_left = helpers;
  for (int h = 0; h < helpers; ++h) {
    enqueue([state, drain] {
      drain(*state);
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        --state->helpers_left;
      }
      state->done_cv.notify_one();
    });
  }

  drain(*state);  // the caller is a compute thread too

  // Wait for every helper to exit before returning: helpers hold a pointer
  // to `fn`, which lives on this frame.
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->helpers_left == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, fn);
}

}  // namespace ddnn
