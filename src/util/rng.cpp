#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ddnn {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // Take the top 53 bits for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * m;
  has_cached_normal_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  DDNN_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t x = 0;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DDNN_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace ddnn
