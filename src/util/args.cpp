#include "util/args.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace ddnn {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_flag(const std::string& name,
                               const std::string& help) {
  DDNN_CHECK(find(name) == nullptr, "duplicate option --" << name);
  specs_.push_back({name, help, /*is_flag=*/true, "false", false});
  return *this;
}

ArgParser& ArgParser::add_option(const std::string& name,
                                 const std::string& help,
                                 const std::string& default_value) {
  DDNN_CHECK(find(name) == nullptr, "duplicate option --" << name);
  specs_.push_back({name, help, /*is_flag=*/false, default_value, false});
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage().c_str());
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    Spec* spec = find(name);
    DDNN_CHECK(spec != nullptr, "unknown option --" << name << "\n" << usage());
    spec->seen = true;
    if (spec->is_flag) {
      DDNN_CHECK(!has_inline, "flag --" << name << " takes no value");
      spec->value = "true";
    } else if (has_inline) {
      spec->value = std::move(inline_value);
    } else {
      DDNN_CHECK(i + 1 < argc, "option --" << name << " needs a value");
      spec->value = argv[++i];
    }
  }
  return true;
}

bool ArgParser::has_flag(const std::string& name) const {
  const Spec* spec = find(name);
  DDNN_CHECK(spec != nullptr && spec->is_flag, "no such flag --" << name);
  return spec->value == "true";
}

const std::string& ArgParser::get(const std::string& name) const {
  const Spec* spec = find(name);
  DDNN_CHECK(spec != nullptr && !spec->is_flag, "no such option --" << name);
  return spec->value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  DDNN_CHECK(end != v.c_str() && *end == '\0',
             "--" << name << " expects an integer, got '" << v << "'");
  return parsed;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  DDNN_CHECK(end != v.c_str() && *end == '\0',
             "--" << name << " expects a number, got '" << v << "'");
  return parsed;
}

std::int64_t ArgParser::get_int_at_least(const std::string& name,
                                         std::int64_t lo) const {
  const std::int64_t v = get_int(name);
  DDNN_CHECK(v >= lo,
             "--" << name << " must be >= " << lo << ", got " << v);
  return v;
}

double ArgParser::get_double_at_least(const std::string& name,
                                      double lo) const {
  const double v = get_double(name);
  DDNN_CHECK(v >= lo, "--" << name << " must be >= " << lo << ", got " << v);
  return v;
}

double ArgParser::get_double_greater_than(const std::string& name,
                                          double lo) const {
  const double v = get_double(name);
  DDNN_CHECK(v > lo, "--" << name << " must be > " << lo << ", got " << v);
  return v;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nusage: " << program_ << " [options]\n\noptions:\n";
  for (const auto& spec : specs_) {
    os << "  --" << spec.name;
    if (!spec.is_flag) os << " <value>";
    os << "\n      " << spec.help;
    if (!spec.is_flag) os << " (default: " << spec.value << ")";
    os << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

ArgParser::Spec* ArgParser::find(const std::string& name) {
  for (auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const ArgParser::Spec* ArgParser::find(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> out;
  std::string token;
  std::istringstream is(csv);
  while (std::getline(is, token, ',')) {
    if (token.empty()) continue;
    char* end = nullptr;
    const long parsed = std::strtol(token.c_str(), &end, 10);
    DDNN_CHECK(end != token.c_str() && *end == '\0',
               "bad integer '" << token << "' in list '" << csv << "'");
    out.push_back(static_cast<int>(parsed));
  }
  return out;
}

}  // namespace ddnn
