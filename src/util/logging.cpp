#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "util/env.hpp"

namespace ddnn {

namespace {

LogLevel g_level = [] {
  const char* env = std::getenv("DDNN_LOG_LEVEL");
  return env == nullptr ? LogLevel::kInfo : parse_log_level(env);
}();

/// DDNN_LOG_TS=0 drops the timestamp/thread-id prefix (stable output for
/// golden-file comparisons).
const bool g_log_ts = [] { return env_bool("DDNN_LOG_TS", true); }();

/// Small dense id for the calling thread (first logger wins id 0).
int log_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  // Build the whole line first and emit it with a single stdio call: stdio
  // locks the stream per call, so concurrent loggers can never interleave
  // mid-line (the old multi-part fprintf could).
  std::string line;
  line.reserve(message.size() + 64);
  line += '[';
  if (g_log_ts) {
    const auto now = std::chrono::system_clock::now();
    const std::time_t t = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm_buf{};
    localtime_r(&t, &tm_buf);
    char ts[48];
    std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%S", &tm_buf);
    char frac[16];
    std::snprintf(frac, sizeof(frac), ".%03d T%d ", static_cast<int>(ms),
                  log_thread_id());
    line += ts;
    line += frac;
  }
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail
}  // namespace ddnn
