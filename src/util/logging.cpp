#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace ddnn {

namespace {

LogLevel g_level = [] {
  const char* env = std::getenv("DDNN_LOG_LEVEL");
  return env == nullptr ? LogLevel::kInfo : parse_log_level(env);
}();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "[%s %s] %s\n", ts, level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace ddnn
