// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (weight init, dataset
// synthesis, shuffling, failure injection) draws from ddnn::Rng, which wraps
// xoshiro256** seeded through splitmix64. Two Rng instances constructed with
// the same seed produce identical streams on every platform, which makes all
// tables and figures in EXPERIMENTS.md bit-reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ddnn {

/// splitmix64 step; used to expand a single 64-bit seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic PRNG (xoshiro256**) with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via the Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of v.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A fresh Rng whose stream is independent of (but derived from) this one.
  /// Used to give each dataset sample / experiment arm its own sub-stream so
  /// that changing one arm does not perturb the others.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  // Cached second output of the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ddnn
