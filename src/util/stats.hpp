// Shared order-statistics helpers.
//
// Nearest-rank percentiles appear in three places (dist::QueueingStats,
// obs::Histogram, obs::WindowedSeries); they must agree wherever their
// domains overlap (the agreement-grid test in tests/test_obs.cpp), so the
// rank arithmetic lives here exactly once.
#pragma once

#include <cstdint>
#include <vector>

namespace ddnn {

/// 1-based nearest rank for percentile q over n samples:
/// clamp(ceil(q * n), 1, n). q must be in (0, 1] and n >= 1.
std::int64_t nearest_rank(double q, std::int64_t n);

/// Nearest-rank percentile of an ascending-sorted sample: the value at
/// 1-based rank nearest_rank(q, n). Example: n=100, q=0.95 -> the 95th
/// smallest value (index 94), not the 96th.
double percentile_nearest_rank(const std::vector<double>& sorted_ascending,
                               double q);

}  // namespace ddnn
