#include "util/results.hpp"

#include <cstdio>
#include <filesystem>

#include "util/env.hpp"
#include "util/error.hpp"

namespace ddnn {

std::string results_dir() {
  const std::string dir = env_string("DDNN_RESULTS_DIR", "results");
  if (dir.empty() || dir == "off") return "";
  return dir;
}

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  DDNN_CHECK(!ec, "cannot create directory '" << dir << "': " << ec.message());
}

std::string write_results_csv(const Table& table, const std::string& name) {
  const std::string dir = results_dir();
  if (dir.empty()) return "";
  ensure_dir(dir);
  const std::string path = dir + "/" + name + ".csv";
  table.write_csv(path);
  std::fprintf(stderr, "[results] wrote %s\n", path.c_str());
  return path;
}

}  // namespace ddnn
