// Typed access to environment-variable configuration.
//
// Bench binaries and examples read their knobs (epoch count, seed, cache
// directory, ...) from DDNN_* environment variables so that the canonical
// `for b in build/bench/*; do $b; done` loop needs no arguments.
#pragma once

#include <cstdint>
#include <string>

namespace ddnn {

/// String env var, or `fallback` when unset/empty.
std::string env_string(const std::string& name, const std::string& fallback);

/// Integer env var; throws ddnn::Error on malformed values.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Floating-point env var; throws ddnn::Error on malformed values.
double env_double(const std::string& name, double fallback);

/// Boolean env var: "1"/"true"/"yes"/"on" are true, "0"/"false"/"no"/"off"
/// are false (case-insensitive); throws on anything else.
bool env_bool(const std::string& name, bool fallback);

}  // namespace ddnn
