// Console table and CSV writers used by the bench harness to print the
// paper's tables/figure series in a readable, diff-stable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ddnn {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision so repeated runs diff cleanly.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Number formatted with `precision` digits after the decimal point.
  static std::string num(double value, int precision = 2);

  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Render with a header rule and aligned columns.
  std::string to_string() const;

  /// Render as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, embedded quotes doubled).
  std::string to_csv() const;

  /// Write CSV to `path`; throws ddnn::Error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace ddnn
