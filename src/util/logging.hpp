// Minimal leveled logger.
//
// The log level is read once from the DDNN_LOG_LEVEL environment variable
// ("trace" | "debug" | "info" | "warn" | "error" | "off"; default "info").
// Output goes to stderr so that bench binaries can print clean tables on
// stdout. Each record is emitted as one atomic stdio write prefixed with an
// ISO-8601 timestamp and a dense thread id ("[2026-01-01T12:00:00.123 T0
// INFO] ..."); DDNN_LOG_TS=0 drops the prefix down to "[INFO] ..." for
// byte-stable output.
#pragma once

#include <sstream>
#include <string>

namespace ddnn {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Current global log level (initialized from DDNN_LOG_LEVEL).
LogLevel log_level();

/// Override the global log level (e.g., from tests).
void set_log_level(LogLevel level);

/// Parse a level name; unknown names map to kInfo.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace ddnn

#define DDNN_LOG(level, ...)                                         \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::ddnn::log_level())) { \
      std::ostringstream ddnn_log_os_;                               \
      ddnn_log_os_ << __VA_ARGS__;                                   \
      ::ddnn::detail::log_emit(level, ddnn_log_os_.str());           \
    }                                                                \
  } while (false)

#define DDNN_TRACE(...) DDNN_LOG(::ddnn::LogLevel::kTrace, __VA_ARGS__)
#define DDNN_DEBUG(...) DDNN_LOG(::ddnn::LogLevel::kDebug, __VA_ARGS__)
#define DDNN_INFO(...) DDNN_LOG(::ddnn::LogLevel::kInfo, __VA_ARGS__)
#define DDNN_WARN(...) DDNN_LOG(::ddnn::LogLevel::kWarn, __VA_ARGS__)
#define DDNN_ERROR(...) DDNN_LOG(::ddnn::LogLevel::kError, __VA_ARGS__)
