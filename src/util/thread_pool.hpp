// Fixed-size thread pool behind the parallel kernels.
//
// All data-parallel hot paths (GEMM, im2col, batch evaluation, threshold
// sweeps) run through parallel_for(), which splits an index range into
// contiguous chunks and executes them on a process-wide pool. The pool size
// is DDNN_THREADS when set (>= 1), otherwise std::thread::hardware_concurrency.
//
// Determinism contract:
//  - DDNN_THREADS=1 executes every chunk inline on the calling thread, in
//    order, and reproduces the serial results bit-for-bit.
//  - Chunks always cover disjoint index ranges, so kernels whose chunks
//    write disjoint outputs (all of ours) are bit-deterministic for *any*
//    thread count. Reductions must accumulate per-chunk into preallocated
//    slices and combine serially in chunk order — never via float atomics.
//  - parallel_for() called from inside a pool worker runs inline (no nested
//    parallelism, no deadlock).
#pragma once

#include <cstdint>
#include <functional>

namespace ddnn {

class ThreadPool {
 public:
  /// The process-wide pool, created on first use.
  static ThreadPool& instance();

  /// Replace the process-wide pool with one of `threads` compute threads
  /// (benchmarks and tests only; not safe while parallel work is in
  /// flight). `threads <= 0` restores the DDNN_THREADS / hardware default.
  static void set_size(int threads);

  /// Number of compute threads (the calling thread participates; with size
  /// N, N-1 helper threads are spawned). Always >= 1.
  int size() const { return size_; }

  /// Run fn(chunk_begin, chunk_end) over [begin, end) in contiguous chunks
  /// of at least `grain` indices. Runs inline when the range is within one
  /// grain, the pool has size 1, or the caller is itself a pool worker.
  /// Rethrows the first exception thrown by any chunk.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  explicit ThreadPool(int threads);

  void worker_loop();
  void enqueue(std::function<void()> task);

  int size_ = 1;
  struct Impl;
  Impl* impl_ = nullptr;
};

/// Convenience wrapper over ThreadPool::instance().parallel_for().
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace ddnn
