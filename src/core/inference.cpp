#include "core/inference.hpp"

#include <algorithm>
#include <cmath>

#include "autograd/grad_mode.hpp"
#include "core/entropy.hpp"
#include "data/loader.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ddnn::core {

ExitEval evaluate_exits(DdnnModel& model,
                        const std::vector<data::MvmcSample>& samples,
                        const std::vector<int>& devices,
                        const std::vector<bool>& active,
                        std::size_t batch_size) {
  DDNN_CHECK(!samples.empty(), "empty evaluation set");
  autograd::NoGradGuard no_grad;
  model.set_training(false);

  const auto n = static_cast<std::int64_t>(samples.size());
  const std::int64_t c = model.config().num_classes;
  const int num_exits = model.config().num_exits();

  ExitEval eval;
  eval.exit_names = model.exit_names();
  eval.labels.reserve(samples.size());
  for (int e = 0; e < num_exits; ++e) {
    eval.exit_probs.emplace_back(Shape{n, c});
  }

  const auto batches =
      data::chunk_batches(data::all_indices(samples.size()), batch_size);
  std::vector<std::int64_t> row_start(batches.size(), 0);
  std::int64_t row = 0;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    row_start[i] = row;
    row += static_cast<std::int64_t>(batches[i].size());
  }
  DDNN_ASSERT(row == n);
  eval.labels.assign(samples.size(), 0);

  // Batches write disjoint row blocks of each exit's probability matrix, so
  // they evaluate in parallel; eval-mode forward only reads model state.
  parallel_for(
      0, static_cast<std::int64_t>(batches.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        autograd::NoGradGuard worker_no_grad;  // grad mode is thread-local
        for (std::int64_t bi = lo; bi < hi; ++bi) {
          const auto& batch_idx = batches[static_cast<std::size_t>(bi)];
          const data::Batch batch =
              data::make_batch(samples, batch_idx, devices);
          std::vector<Variable> views;
          views.reserve(batch.views.size());
          for (const auto& v : batch.views) views.emplace_back(v);

          DdnnOutputs out = model.forward(views, active);
          const std::int64_t base = row_start[static_cast<std::size_t>(bi)];
          for (int e = 0; e < num_exits; ++e) {
            const Tensor probs = ops::softmax_rows(
                out.exit_logits[static_cast<std::size_t>(e)].value());
            // The batch's rows are contiguous in the [n, c] matrix; copy the
            // whole row block instead of bounds-checked element accesses.
            DDNN_ASSERT(probs.dim(0) == batch.size() && probs.dim(1) == c);
            std::copy_n(probs.data(), batch.size() * c,
                        eval.exit_probs[static_cast<std::size_t>(e)].data() +
                            base * c);
          }
          for (std::int64_t b = 0; b < batch.size(); ++b) {
            eval.labels[static_cast<std::size_t>(base + b)] =
                batch.labels[static_cast<std::size_t>(b)];
          }
        }
      });
  return eval;
}

ExitEval evaluate_exits(DdnnModel& model,
                        const std::vector<data::MvmcSample>& samples,
                        const std::vector<int>& devices,
                        std::size_t batch_size) {
  return evaluate_exits(model, samples, devices,
                        std::vector<bool>(devices.size(), true), batch_size);
}

double exit_accuracy(const ExitEval& eval, std::size_t exit_index) {
  DDNN_CHECK(exit_index < eval.num_exits(), "exit index out of range");
  const auto preds = ops::argmax_rows(eval.exit_probs[exit_index]);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == eval.labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(eval.sample_count());
}

PolicyResult apply_policy(const ExitEval& eval,
                          const std::vector<double>& thresholds,
                          ConfidenceCriterion criterion) {
  DDNN_CHECK(eval.num_exits() >= 1, "no exits");
  DDNN_CHECK(thresholds.size() + 1 == eval.num_exits(),
             "need one threshold per non-final exit: got "
                 << thresholds.size() << " for " << eval.num_exits()
                 << " exits");

  PolicyResult result;
  result.exit_fraction.assign(eval.num_exits(), 0.0);
  result.decisions.assign(static_cast<std::size_t>(eval.sample_count()),
                          SampleDecision{});

  // Per-sample decisions are independent; each chunk writes its own slice
  // of `decisions`. The counting reduction stays serial (exact integer
  // counts), so results are identical for every thread count.
  parallel_for(0, eval.sample_count(), 256,
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   SampleDecision d;
                   d.exit_taken = static_cast<int>(eval.num_exits()) - 1;
                   for (std::size_t e = 0; e < thresholds.size(); ++e) {
                     const double eta =
                         confidence_score_row(eval.exit_probs[e], i, criterion);
                     if (should_exit(eta, thresholds[e])) {
                       d.exit_taken = static_cast<int>(e);
                       d.entropy = eta;
                       break;
                     }
                   }
                   const Tensor& probs =
                       eval.exit_probs[static_cast<std::size_t>(d.exit_taken)];
                   if (d.exit_taken == static_cast<int>(eval.num_exits()) - 1) {
                     d.entropy = confidence_score_row(probs, i, criterion);
                   }
                   const std::int64_t c = probs.dim(1);
                   std::int64_t best = 0;
                   for (std::int64_t j = 1; j < c; ++j) {
                     if (probs.at(i, j) > probs.at(i, best)) best = j;
                   }
                   d.prediction = best;
                   result.decisions[static_cast<std::size_t>(i)] = d;
                 }
               });

  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < eval.sample_count(); ++i) {
    const SampleDecision& d = result.decisions[static_cast<std::size_t>(i)];
    if (d.prediction == eval.labels[static_cast<std::size_t>(i)]) ++correct;
    result.exit_fraction[static_cast<std::size_t>(d.exit_taken)] += 1.0;
  }
  for (auto& f : result.exit_fraction) {
    f /= static_cast<double>(eval.sample_count());
  }
  result.overall_accuracy =
      static_cast<double>(correct) / static_cast<double>(eval.sample_count());
  return result;
}

double search_threshold_best_overall(const ExitEval& eval, double step) {
  DDNN_CHECK(eval.num_exits() == 2,
             "threshold search implemented for 2-exit models");
  DDNN_CHECK(step > 0.0 && step <= 1.0, "bad grid step");
  double best_t = 0.0;
  double best_acc = -1.0;
  for (double t = 0.0; t <= 1.0 + 1e-9; t += step) {
    const auto r = apply_policy(eval, {t});
    // Ties prefer larger T: more samples exit locally for the same accuracy.
    if (r.overall_accuracy >= best_acc) {
      best_acc = r.overall_accuracy;
      best_t = t;
    }
  }
  return best_t;
}

namespace {

/// Tier preference of a policy result: mean exit depth (lower = earlier
/// exits = cheaper). Used to break accuracy ties in threshold search.
double mean_exit_depth(const PolicyResult& r) {
  double depth = 0.0;
  for (std::size_t e = 0; e < r.exit_fraction.size(); ++e) {
    depth += static_cast<double>(e) * r.exit_fraction[e];
  }
  return depth;
}

}  // namespace

std::vector<double> search_thresholds_best_overall(const ExitEval& eval,
                                                   double step) {
  DDNN_CHECK(step > 0.0 && step <= 1.0, "bad grid step");
  const std::size_t knobs = eval.num_exits() - 1;
  DDNN_CHECK(knobs >= 1, "nothing to search for a single-exit model");

  std::vector<double> grid;
  for (double t = 0.0; t <= 1.0 + 1e-9; t += step) grid.push_back(t);

  // Enumerate the odometer as flat combo indices (digit k of the base-|grid|
  // expansion is knob k, least significant first — the original iteration
  // order). Grid points are scored in parallel into preallocated slots, then
  // reduced serially in the original order so tie-breaking is unchanged.
  std::int64_t total = 1;
  for (std::size_t k = 0; k < knobs; ++k) {
    total *= static_cast<std::int64_t>(grid.size());
    DDNN_CHECK(total <= (std::int64_t{1} << 32),
               "threshold grid too large: " << grid.size() << "^" << knobs);
  }
  auto combo_thresholds = [&](std::int64_t combo) {
    std::vector<double> thresholds(knobs);
    for (std::size_t k = 0; k < knobs; ++k) {
      thresholds[k] =
          grid[static_cast<std::size_t>(combo) % grid.size()];
      combo /= static_cast<std::int64_t>(grid.size());
    }
    return thresholds;
  };

  std::vector<double> accs(static_cast<std::size_t>(total), 0.0);
  std::vector<double> depths(static_cast<std::size_t>(total), 0.0);
  parallel_for(0, total, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t combo = lo; combo < hi; ++combo) {
      const auto r = apply_policy(eval, combo_thresholds(combo));
      accs[static_cast<std::size_t>(combo)] = r.overall_accuracy;
      depths[static_cast<std::size_t>(combo)] = mean_exit_depth(r);
    }
  });

  std::int64_t best_combo = 0;
  double best_acc = -1.0;
  double best_depth = 1e18;
  for (std::int64_t combo = 0; combo < total; ++combo) {
    const double acc = accs[static_cast<std::size_t>(combo)];
    const double depth = depths[static_cast<std::size_t>(combo)];
    if (acc > best_acc + 1e-12 || (acc > best_acc - 1e-12 && depth < best_depth)) {
      best_acc = acc;
      best_depth = depth;
      best_combo = combo;
    }
  }
  return combo_thresholds(best_combo);
}

double search_threshold_for_local_fraction(const ExitEval& eval,
                                           double target_fraction,
                                           double step) {
  DDNN_CHECK(eval.num_exits() == 2,
             "threshold search implemented for 2-exit models");
  DDNN_CHECK(target_fraction >= 0.0 && target_fraction <= 1.0,
             "bad target fraction");
  for (double t = 0.0; t <= 1.0 + 1e-9; t += step) {
    const auto r = apply_policy(eval, {t});
    if (r.local_exit_fraction() >= target_fraction) return t;
  }
  return 1.0;
}

double individual_accuracy(IndividualModel& model,
                           const std::vector<data::MvmcSample>& samples,
                           int device, std::size_t batch_size) {
  DDNN_CHECK(!samples.empty(), "empty evaluation set");
  autograd::NoGradGuard no_grad;
  model.set_training(false);

  std::int64_t correct = 0;
  for (const auto& batch_idx :
       data::chunk_batches(data::all_indices(samples.size()), batch_size)) {
    const data::Batch batch = data::make_batch(samples, batch_idx, {device});
    const Variable logits = model.forward(Variable(batch.views[0]));
    const auto preds = ops::argmax_rows(logits.value());
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

}  // namespace ddnn::core
