#include "core/inference.hpp"

#include <cmath>

#include "autograd/grad_mode.hpp"
#include "core/entropy.hpp"
#include "data/loader.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::core {

ExitEval evaluate_exits(DdnnModel& model,
                        const std::vector<data::MvmcSample>& samples,
                        const std::vector<int>& devices,
                        const std::vector<bool>& active,
                        std::size_t batch_size) {
  DDNN_CHECK(!samples.empty(), "empty evaluation set");
  autograd::NoGradGuard no_grad;
  model.set_training(false);

  const auto n = static_cast<std::int64_t>(samples.size());
  const std::int64_t c = model.config().num_classes;
  const int num_exits = model.config().num_exits();

  ExitEval eval;
  eval.exit_names = model.exit_names();
  eval.labels.reserve(samples.size());
  for (int e = 0; e < num_exits; ++e) {
    eval.exit_probs.emplace_back(Shape{n, c});
  }

  std::int64_t row = 0;
  for (const auto& batch_idx :
       data::chunk_batches(data::all_indices(samples.size()), batch_size)) {
    const data::Batch batch = data::make_batch(samples, batch_idx, devices);
    std::vector<Variable> views;
    views.reserve(batch.views.size());
    for (const auto& v : batch.views) views.emplace_back(v);

    DdnnOutputs out = model.forward(views, active);
    for (int e = 0; e < num_exits; ++e) {
      const Tensor probs =
          ops::softmax_rows(out.exit_logits[static_cast<std::size_t>(e)].value());
      for (std::int64_t b = 0; b < batch.size(); ++b) {
        for (std::int64_t j = 0; j < c; ++j) {
          eval.exit_probs[static_cast<std::size_t>(e)].at(row + b, j) =
              probs.at(b, j);
        }
      }
    }
    for (const auto label : batch.labels) eval.labels.push_back(label);
    row += batch.size();
  }
  DDNN_ASSERT(row == n);
  return eval;
}

ExitEval evaluate_exits(DdnnModel& model,
                        const std::vector<data::MvmcSample>& samples,
                        const std::vector<int>& devices,
                        std::size_t batch_size) {
  return evaluate_exits(model, samples, devices,
                        std::vector<bool>(devices.size(), true), batch_size);
}

double exit_accuracy(const ExitEval& eval, std::size_t exit_index) {
  DDNN_CHECK(exit_index < eval.num_exits(), "exit index out of range");
  const auto preds = ops::argmax_rows(eval.exit_probs[exit_index]);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == eval.labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(eval.sample_count());
}

PolicyResult apply_policy(const ExitEval& eval,
                          const std::vector<double>& thresholds,
                          ConfidenceCriterion criterion) {
  DDNN_CHECK(eval.num_exits() >= 1, "no exits");
  DDNN_CHECK(thresholds.size() + 1 == eval.num_exits(),
             "need one threshold per non-final exit: got "
                 << thresholds.size() << " for " << eval.num_exits()
                 << " exits");

  PolicyResult result;
  result.exit_fraction.assign(eval.num_exits(), 0.0);
  result.decisions.reserve(static_cast<std::size_t>(eval.sample_count()));

  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < eval.sample_count(); ++i) {
    SampleDecision d;
    d.exit_taken = static_cast<int>(eval.num_exits()) - 1;
    for (std::size_t e = 0; e < thresholds.size(); ++e) {
      const double eta =
          confidence_score_row(eval.exit_probs[e], i, criterion);
      if (should_exit(eta, thresholds[e])) {
        d.exit_taken = static_cast<int>(e);
        d.entropy = eta;
        break;
      }
    }
    const Tensor& probs =
        eval.exit_probs[static_cast<std::size_t>(d.exit_taken)];
    if (d.exit_taken == static_cast<int>(eval.num_exits()) - 1) {
      d.entropy = confidence_score_row(probs, i, criterion);
    }
    const std::int64_t c = probs.dim(1);
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (probs.at(i, j) > probs.at(i, best)) best = j;
    }
    d.prediction = best;
    if (d.prediction == eval.labels[static_cast<std::size_t>(i)]) ++correct;
    result.exit_fraction[static_cast<std::size_t>(d.exit_taken)] += 1.0;
    result.decisions.push_back(d);
  }
  for (auto& f : result.exit_fraction) {
    f /= static_cast<double>(eval.sample_count());
  }
  result.overall_accuracy =
      static_cast<double>(correct) / static_cast<double>(eval.sample_count());
  return result;
}

double search_threshold_best_overall(const ExitEval& eval, double step) {
  DDNN_CHECK(eval.num_exits() == 2,
             "threshold search implemented for 2-exit models");
  DDNN_CHECK(step > 0.0 && step <= 1.0, "bad grid step");
  double best_t = 0.0;
  double best_acc = -1.0;
  for (double t = 0.0; t <= 1.0 + 1e-9; t += step) {
    const auto r = apply_policy(eval, {t});
    // Ties prefer larger T: more samples exit locally for the same accuracy.
    if (r.overall_accuracy >= best_acc) {
      best_acc = r.overall_accuracy;
      best_t = t;
    }
  }
  return best_t;
}

namespace {

/// Tier preference of a policy result: mean exit depth (lower = earlier
/// exits = cheaper). Used to break accuracy ties in threshold search.
double mean_exit_depth(const PolicyResult& r) {
  double depth = 0.0;
  for (std::size_t e = 0; e < r.exit_fraction.size(); ++e) {
    depth += static_cast<double>(e) * r.exit_fraction[e];
  }
  return depth;
}

}  // namespace

std::vector<double> search_thresholds_best_overall(const ExitEval& eval,
                                                   double step) {
  DDNN_CHECK(step > 0.0 && step <= 1.0, "bad grid step");
  const std::size_t knobs = eval.num_exits() - 1;
  DDNN_CHECK(knobs >= 1, "nothing to search for a single-exit model");

  std::vector<double> grid;
  for (double t = 0.0; t <= 1.0 + 1e-9; t += step) grid.push_back(t);

  std::vector<double> best(knobs, 0.0);
  double best_acc = -1.0;
  double best_depth = 1e18;
  std::vector<std::size_t> idx(knobs, 0);
  while (true) {
    std::vector<double> thresholds(knobs);
    for (std::size_t k = 0; k < knobs; ++k) thresholds[k] = grid[idx[k]];
    const auto r = apply_policy(eval, thresholds);
    const double depth = mean_exit_depth(r);
    if (r.overall_accuracy > best_acc + 1e-12 ||
        (r.overall_accuracy > best_acc - 1e-12 && depth < best_depth)) {
      best_acc = r.overall_accuracy;
      best_depth = depth;
      best = thresholds;
    }
    // Odometer increment over the grid.
    std::size_t k = 0;
    while (k < knobs && ++idx[k] == grid.size()) {
      idx[k] = 0;
      ++k;
    }
    if (k == knobs) break;
  }
  return best;
}

double search_threshold_for_local_fraction(const ExitEval& eval,
                                           double target_fraction,
                                           double step) {
  DDNN_CHECK(eval.num_exits() == 2,
             "threshold search implemented for 2-exit models");
  DDNN_CHECK(target_fraction >= 0.0 && target_fraction <= 1.0,
             "bad target fraction");
  for (double t = 0.0; t <= 1.0 + 1e-9; t += step) {
    const auto r = apply_policy(eval, {t});
    if (r.local_exit_fraction() >= target_fraction) return t;
  }
  return 1.0;
}

double individual_accuracy(IndividualModel& model,
                           const std::vector<data::MvmcSample>& samples,
                           int device, std::size_t batch_size) {
  DDNN_CHECK(!samples.empty(), "empty evaluation set");
  autograd::NoGradGuard no_grad;
  model.set_training(false);

  std::int64_t correct = 0;
  for (const auto& batch_idx :
       data::chunk_batches(data::all_indices(samples.size()), batch_size)) {
    const data::Batch batch = data::make_batch(samples, batch_idx, {device});
    const Variable logits = model.forward(Variable(batch.views[0]));
    const auto preds = ops::argmax_rows(logits.value());
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

}  // namespace ddnn::core
