#include "core/model.hpp"

#include "autograd/grad_mode.hpp"
#include "autograd/ops.hpp"
#include "infer/engine.hpp"
#include "obs/profile.hpp"
#include "infer/workspace.hpp"
#include "util/error.hpp"

namespace ddnn::core {

namespace {

/// True when a section should run on the inference engine: the plan engine
/// is selected, the module is in eval mode, and no caller expects a tape.
/// Training or NoGradGuard-less callers always get the autograd path, so
/// gradients can never silently vanish.
bool plan_engine_active(const nn::Module& m) {
  return infer::engine_kind() == infer::EngineKind::kPlan && !m.training() &&
         !autograd::grad_enabled();
}

/// [N, ...] -> [N, prod] view (engine counterpart of autograd::flatten2d).
Tensor flatten2d_view(const Tensor& t) {
  const std::int64_t n = t.dim(0);
  return t.reshape(Shape{n, t.numel() / n});
}

/// Activity mask as a plan signature ("1011"): masked sections get their
/// own cached memory plan per active subset.
std::string mask_sig(const std::vector<bool>& active) {
  std::string s;
  s.reserve(active.size());
  for (bool a : active) s += a ? '1' : '0';
  return s;
}

std::vector<Tensor> values_of(const std::vector<nn::Variable>& vars) {
  std::vector<Tensor> out;
  out.reserve(vars.size());
  for (const auto& v : vars) out.push_back(v.value());
  return out;
}

}  // namespace

DdnnModel::DdnnModel(DdnnConfig config) : config_(std::move(config)) {
  config_.validate();
  Rng rng(config_.init_seed);
  const int n_dev = config_.num_devices;

  // ---------------------------------------------------------- device tier
  std::int64_t dev_channels = config_.input_channels;
  for (int d = 0; d < n_dev; ++d) {
    auto trunk = std::make_unique<nn::Sequential>();
    std::int64_t ch = config_.input_channels;
    for (int b = 0; b < config_.device_conv_blocks; ++b) {
      if (config_.float_devices) {
        trunk->emplace<nn::FloatConvPBlock>(ch, config_.device_filters, rng);
      } else {
        trunk->emplace<nn::ConvPBlock>(ch, config_.device_filters, rng);
      }
      ch = config_.device_filters;
    }
    dev_channels = ch;
    add_child("device" + std::to_string(d), trunk.get());
    device_trunks_.push_back(std::move(trunk));
    device_trunk_ids_.push_back(infer::next_section_id());
  }

  if (config_.has_local_exit) {
    const std::int64_t s = config_.device_out_size();
    const std::int64_t head_in = config_.device_filters * s * s;
    for (int d = 0; d < n_dev; ++d) {
      auto head = std::make_unique<nn::Sequential>();
      if (config_.float_devices) {
        head->emplace<nn::FloatFCBlock>(head_in, config_.num_classes, rng,
                                        /*relu_output=*/false);
      } else {
        head->emplace<nn::FCBlock>(head_in, config_.num_classes, rng,
                                   /*binary_output=*/false);
      }
      add_child("device_head" + std::to_string(d), head.get());
      device_heads_.push_back(std::move(head));
      device_head_ids_.push_back(infer::next_section_id());
    }
    local_agg_ = std::make_unique<VectorAggregator>(
        config_.local_agg, n_dev, config_.num_classes, rng);
    add_child("local_agg", local_agg_.get());
    local_agg_id_ = infer::next_section_id();
  }

  // ------------------------------------------------------------ edge tier
  std::int64_t cloud_in_channels = dev_channels;
  std::int64_t cloud_in_size = config_.device_out_size();
  if (config_.has_edge()) {
    for (std::size_t g = 0; g < config_.edge_groups.size(); ++g) {
      const auto members = static_cast<int>(config_.edge_groups[g].size());
      auto in_agg = std::make_unique<FeatureMapAggregator>(
          config_.edge_agg, members, dev_channels, rng);
      add_child("edge_in_agg" + std::to_string(g), in_agg.get());
      edge_in_aggs_.push_back(std::move(in_agg));

      auto trunk = std::make_unique<nn::Sequential>();
      std::int64_t ch = dev_channels;
      for (int b = 0; b < config_.edge_conv_blocks; ++b) {
        trunk->emplace<nn::ConvPBlock>(ch, config_.edge_filters, rng);
        ch = config_.edge_filters;
      }
      add_child("edge" + std::to_string(g), trunk.get());
      edge_trunks_.push_back(std::move(trunk));

      const std::int64_t s = config_.edge_out_size();
      auto head = std::make_unique<nn::FCBlock>(
          config_.edge_filters * s * s, config_.num_classes, rng,
          /*binary_output=*/false);
      add_child("edge_head" + std::to_string(g), head.get());
      edge_heads_.push_back(std::move(head));
      edge_ids_.push_back(infer::next_section_id());
    }
    if (config_.edge_groups.size() > 1) {
      edge_exit_agg_ = std::make_unique<VectorAggregator>(
          config_.local_agg, static_cast<int>(config_.edge_groups.size()),
          config_.num_classes, rng);
      add_child("edge_exit_agg", edge_exit_agg_.get());
      edge_exit_id_ = infer::next_section_id();
    }
    cloud_in_channels = config_.edge_filters;
    cloud_in_size = config_.edge_out_size();
  }

  // ----------------------------------------------------------- cloud tier
  const int cloud_branches = config_.has_edge()
                                 ? static_cast<int>(config_.edge_groups.size())
                                 : n_dev;
  cloud_agg_ = std::make_unique<FeatureMapAggregator>(
      config_.cloud_agg, cloud_branches, cloud_in_channels, rng);
  add_child("cloud_agg", cloud_agg_.get());

  // The cloud section is one pipeline: ConvP chain -> flatten -> optional
  // hidden FC block -> exit head. All blocks are binary by default; with
  // config.float_cloud they are full-precision (the paper's mixed-precision
  // future-work variant) while the device/edge tiers stay binary.
  cloud_trunk_ = std::make_unique<nn::Sequential>();
  std::int64_t ch = cloud_in_channels;
  std::int64_t spatial = cloud_in_size;
  for (int f : config_.cloud_filters) {
    if (config_.float_cloud) {
      cloud_trunk_->emplace<nn::FloatConvPBlock>(ch, f, rng);
    } else {
      cloud_trunk_->emplace<nn::ConvPBlock>(ch, f, rng);
    }
    ch = f;
    spatial /= 2;
  }
  cloud_trunk_->emplace<nn::Flatten>();
  std::int64_t head_in = ch * spatial * spatial;
  if (config_.cloud_fc_nodes > 0) {
    if (config_.float_cloud) {
      cloud_trunk_->emplace<nn::FloatFCBlock>(head_in, config_.cloud_fc_nodes,
                                              rng, /*relu_output=*/true);
    } else {
      cloud_trunk_->emplace<nn::FCBlock>(head_in, config_.cloud_fc_nodes, rng,
                                         /*binary_output=*/true);
    }
    head_in = config_.cloud_fc_nodes;
  }
  if (config_.float_cloud) {
    cloud_trunk_->emplace<nn::FloatFCBlock>(head_in, config_.num_classes, rng,
                                            /*relu_output=*/false);
  } else {
    cloud_trunk_->emplace<nn::FCBlock>(head_in, config_.num_classes, rng,
                                       /*binary_output=*/false);
  }
  add_child("cloud", cloud_trunk_.get());
  cloud_id_ = infer::next_section_id();
}

DdnnOutputs DdnnModel::forward(const std::vector<Variable>& views) {
  return forward(views, std::vector<bool>(views.size(), true));
}

DdnnOutputs DdnnModel::forward(const std::vector<Variable>& views,
                               const std::vector<bool>& active) {
  const auto n_dev = static_cast<std::size_t>(config_.num_devices);
  DDNN_CHECK(views.size() == n_dev, "expected " << n_dev << " views, got "
                                                << views.size());
  DDNN_CHECK(active.size() == n_dev, "activity mask size mismatch");

  DdnnOutputs out;

  // Device sections run on every active device; an inactive (failed) device
  // contributes nothing anywhere.
  out.device_features.resize(n_dev);
  for (std::size_t d = 0; d < n_dev; ++d) {
    if (!active[d]) continue;
    out.device_features[d] =
        device_section_features(static_cast<int>(d), views[d]);
  }
  // Inactive devices still need placeholder tensors of the right shape for
  // the aggregators' zero-fill path; use the first active device's shape.
  Shape feature_shape;
  for (std::size_t d = 0; d < n_dev; ++d) {
    if (out.device_features[d].defined()) {
      feature_shape = out.device_features[d].shape();
      break;
    }
  }
  DDNN_CHECK(feature_shape.ndim() == 4, "all devices inactive");
  for (std::size_t d = 0; d < n_dev; ++d) {
    if (!out.device_features[d].defined()) {
      out.device_features[d] = Variable(Tensor::zeros(feature_shape));
    }
  }

  // Local exit: per-device class scores fused by the local aggregator.
  if (config_.has_local_exit) {
    out.device_logits.resize(n_dev);
    for (std::size_t d = 0; d < n_dev; ++d) {
      out.device_logits[d] =
          device_section_logits(static_cast<int>(d), out.device_features[d]);
    }
    out.exit_logits.push_back(local_aggregate(out.device_logits, active));
  }

  // Edge tier.
  std::vector<Variable> cloud_branches;
  std::vector<bool> cloud_active;
  if (config_.has_edge()) {
    std::vector<Variable> edge_logits;
    std::vector<bool> edge_active;
    for (std::size_t g = 0; g < config_.edge_groups.size(); ++g) {
      const auto& members = config_.edge_groups[g];
      std::vector<Variable> feats;
      std::vector<bool> mask;
      bool any = false;
      for (int d : members) {
        feats.push_back(out.device_features[static_cast<std::size_t>(d)]);
        mask.push_back(active[static_cast<std::size_t>(d)]);
        any = any || active[static_cast<std::size_t>(d)];
      }
      edge_active.push_back(any);
      if (!any) {
        // Whole group down: placeholder features/logits, masked out below.
        const std::int64_t s = config_.edge_out_size();
        edge_logits.push_back(Variable(Tensor::zeros(
            Shape{feature_shape[0], config_.num_classes})));
        out.edge_features.push_back(Variable(Tensor::zeros(
            Shape{feature_shape[0], config_.edge_filters, s, s})));
        continue;
      }
      const EdgeResult edge = edge_section(g, feats, mask);
      out.edge_features.push_back(edge.features);
      edge_logits.push_back(edge.logits);
    }
    out.exit_logits.push_back(edge_exit_aggregate(edge_logits, edge_active));
    cloud_branches = out.edge_features;
    cloud_active = edge_active;
  } else {
    cloud_branches = out.device_features;
    cloud_active = active;
  }

  // Cloud tier.
  out.exit_logits.push_back(cloud_section(cloud_branches, cloud_active));

  DDNN_CHECK(static_cast<int>(out.exit_logits.size()) == config_.num_exits(),
             "exit count mismatch");
  return out;
}

Variable DdnnModel::device_section_features(int device, const Variable& view) {
  DDNN_PROF_SCOPE("device_section");
  DDNN_CHECK(device >= 0 && device < config_.num_devices,
             "device index out of range");
  DDNN_CHECK(view.value().ndim() == 4 &&
                 view.dim(1) == config_.input_channels &&
                 view.dim(2) == config_.input_size &&
                 view.dim(3) == config_.input_size,
             "bad view shape for device " << device << ": "
                                          << view.shape().to_string());
  auto& trunk = *device_trunks_[static_cast<std::size_t>(device)];
  if (plan_engine_active(*this)) {
    auto outs = infer::run_section(
        {infer::SectionTier::kDevice,
         device_trunk_ids_[static_cast<std::size_t>(device)], "device_trunk"},
        {view.value()}, /*extra_sig=*/"",
        [&](const std::vector<Tensor>& in, infer::Workspace& ws) {
          return std::vector<Tensor>{trunk.infer(in[0], ws)};
        });
    return Variable(std::move(outs[0]));
  }
  return trunk.forward(view);
}

Variable DdnnModel::device_section_logits(int device,
                                          const Variable& features) {
  DDNN_PROF_SCOPE("local_exit_head");
  DDNN_CHECK(config_.has_local_exit, "model has no local exit");
  DDNN_CHECK(device >= 0 && device < config_.num_devices,
             "device index out of range");
  auto& head = *device_heads_[static_cast<std::size_t>(device)];
  if (plan_engine_active(*this)) {
    auto outs = infer::run_section(
        {infer::SectionTier::kDevice,
         device_head_ids_[static_cast<std::size_t>(device)], "device_head"},
        {features.value()}, /*extra_sig=*/"",
        [&](const std::vector<Tensor>& in, infer::Workspace& ws) {
          return std::vector<Tensor>{head.infer(flatten2d_view(in[0]), ws)};
        });
    return Variable(std::move(outs[0]));
  }
  return head.forward(autograd::flatten2d(features));
}

Variable DdnnModel::local_aggregate(const std::vector<Variable>& device_logits,
                                    const std::vector<bool>& active) {
  DDNN_CHECK(config_.has_local_exit, "model has no local exit");
  if (plan_engine_active(*this)) {
    auto outs = infer::run_section(
        {infer::SectionTier::kDevice, local_agg_id_, "local_agg"},
        values_of(device_logits), mask_sig(active),
        [&](const std::vector<Tensor>& in, infer::Workspace& ws) {
          return std::vector<Tensor>{local_agg_->infer(in, active, ws)};
        });
    return Variable(std::move(outs[0]));
  }
  return local_agg_->forward(device_logits, active);
}

DdnnModel::EdgeResult DdnnModel::edge_section(
    std::size_t group, const std::vector<Variable>& member_features,
    const std::vector<bool>& member_active) {
  DDNN_PROF_SCOPE("edge_section");
  DDNN_CHECK(group < config_.edge_groups.size(), "edge group out of range");
  if (plan_engine_active(*this)) {
    auto outs = infer::run_section(
        {infer::SectionTier::kEdge, edge_ids_[group], "edge_section"},
        values_of(member_features), mask_sig(member_active),
        [&](const std::vector<Tensor>& in, infer::Workspace& ws) {
          const Tensor fused =
              edge_in_aggs_[group]->infer(in, member_active, ws);
          const Tensor features = edge_trunks_[group]->infer(fused, ws);
          const Tensor logits =
              edge_heads_[group]->infer(flatten2d_view(features), ws);
          return std::vector<Tensor>{features, logits};
        });
    return {Variable(std::move(outs[0])), Variable(std::move(outs[1]))};
  }
  const Variable fused =
      edge_in_aggs_[group]->forward(member_features, member_active);
  const Variable features = edge_trunks_[group]->forward(fused);
  const Variable logits =
      edge_heads_[group]->forward(autograd::flatten2d(features));
  return {features, logits};
}

Variable DdnnModel::edge_exit_aggregate(
    const std::vector<Variable>& edge_logits,
    const std::vector<bool>& edge_active) {
  DDNN_CHECK(config_.has_edge(), "model has no edge tier");
  if (edge_exit_agg_) {
    if (plan_engine_active(*this)) {
      auto outs = infer::run_section(
          {infer::SectionTier::kEdge, edge_exit_id_, "edge_exit_agg"},
          values_of(edge_logits), mask_sig(edge_active),
          [&](const std::vector<Tensor>& in, infer::Workspace& ws) {
            return std::vector<Tensor>{
                edge_exit_agg_->infer(in, edge_active, ws)};
          });
      return Variable(std::move(outs[0]));
    }
    return edge_exit_agg_->forward(edge_logits, edge_active);
  }
  DDNN_CHECK(edge_logits.size() == 1 && edge_active[0],
             "single edge group entirely failed");
  return edge_logits[0];
}

Variable DdnnModel::cloud_section(const std::vector<Variable>& branches,
                                  const std::vector<bool>& active) {
  DDNN_PROF_SCOPE("cloud_section");
  if (plan_engine_active(*this)) {
    auto outs = infer::run_section(
        {infer::SectionTier::kCloud, cloud_id_, "cloud_section"},
        values_of(branches), mask_sig(active),
        [&](const std::vector<Tensor>& in, infer::Workspace& ws) {
          const Tensor fused = cloud_agg_->infer(in, active, ws);
          return std::vector<Tensor>{cloud_trunk_->infer(fused, ws)};
        });
    return Variable(std::move(outs[0]));
  }
  return cloud_trunk_->forward(cloud_agg_->forward(branches, active));
}

std::vector<std::string> DdnnModel::exit_names() const {
  std::vector<std::string> names;
  if (config_.has_local_exit) names.push_back("local");
  if (config_.has_edge()) names.push_back("edge");
  names.push_back("cloud");
  return names;
}

std::int64_t DdnnModel::device_memory_bytes() const {
  if (config_.device_conv_blocks == 0) return 0;
  std::int64_t bytes = 0;
  // All devices are structurally identical; report device 0.
  // ConvP blocks: binary conv weights + batch-norm floats.
  std::int64_t ch = config_.input_channels;
  for (int b = 0; b < config_.device_conv_blocks; ++b) {
    const std::int64_t weights = config_.device_filters * ch * 3 * 3;
    bytes += (weights + 7) / 8 + 4 * 4 * config_.device_filters;
    ch = config_.device_filters;
  }
  if (config_.has_local_exit) {
    const std::int64_t s = config_.device_out_size();
    const std::int64_t weights =
        config_.device_filters * s * s * config_.num_classes;
    bytes += (weights + 7) / 8 + 4 * 4 * config_.num_classes;
  }
  return bytes;
}

IndividualModel::IndividualModel(std::int64_t input_channels,
                                 std::int64_t input_size, int filters,
                                 int num_classes, std::uint64_t init_seed) {
  Rng rng(init_seed);
  conv_ = std::make_unique<nn::ConvPBlock>(input_channels, filters, rng);
  const std::int64_t s = input_size / 2;
  head_ = std::make_unique<nn::FCBlock>(filters * s * s, num_classes, rng,
                                        /*binary_output=*/false);
  add_child("conv", conv_.get());
  add_child("head", head_.get());
  section_id_ = infer::next_section_id();
}

Variable IndividualModel::forward(const Variable& views) {
  if (plan_engine_active(*this)) {
    auto outs = infer::run_section(
        {infer::SectionTier::kDevice, section_id_, "individual_model"},
        {views.value()}, /*extra_sig=*/"",
        [&](const std::vector<Tensor>& in, infer::Workspace& ws) {
          const Tensor features = conv_->infer(in[0], ws);
          return std::vector<Tensor>{head_->infer(flatten2d_view(features), ws)};
        });
    return Variable(std::move(outs[0]));
  }
  return head_->forward(autograd::flatten2d(conv_->forward(views)));
}

std::int64_t IndividualModel::memory_bytes() const {
  return conv_->inference_memory_bytes() + head_->inference_memory_bytes();
}

}  // namespace ddnn::core
