#include "core/trainer.hpp"

#include "autograd/ops.hpp"
#include "core/inference.hpp"
#include "obs/profile.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace ddnn::core {

namespace {

std::vector<float> resolve_exit_weights(const std::vector<float>& weights,
                                        int num_exits) {
  if (weights.empty()) return std::vector<float>(num_exits, 1.0f);
  DDNN_CHECK(static_cast<int>(weights.size()) == num_exits,
             "got " << weights.size() << " exit weights for " << num_exits
                    << " exits");
  return weights;
}

}  // namespace

TrainHistory train_ddnn(DdnnModel& model,
                        const std::vector<data::MvmcSample>& train_data,
                        const std::vector<int>& devices,
                        const TrainConfig& config) {
  DDNN_CHECK(!train_data.empty(), "empty training set");
  DDNN_CHECK(static_cast<int>(devices.size()) == model.config().num_devices,
             "device list size " << devices.size() << " vs model branches "
                                 << model.config().num_devices);
  const auto weights =
      resolve_exit_weights(config.exit_weights, model.config().num_exits());

  model.set_training(true);
  opt::Adam optimizer(model.parameters(), config.adam);
  optimizer.set_gradient_clip(config.grad_clip_norm);
  Rng shuffle_rng(config.shuffle_seed);
  Stopwatch total;

  // Per-epoch series columns, registered up front so the export order is
  // stable regardless of how training goes.
  struct SeriesCols {
    int loss = -1;
    int overall_acc = -1;
    std::vector<int> exit_acc;
    std::vector<int> exit_frac;
  } scols;
  const auto exit_names = model.exit_names();
  if (config.series) {
    scols.loss = config.series->add_gauge("train.loss");
    for (const auto& name : exit_names) {
      scols.exit_acc.push_back(
          config.series->add_gauge("train.exit_acc." + name));
    }
    for (const auto& name : exit_names) {
      scols.exit_frac.push_back(
          config.series->add_gauge("train.exit_frac." + name));
    }
    scols.overall_acc = config.series->add_gauge("train.overall_acc");
  }

  TrainHistory history;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.lr_schedule) {
      optimizer.set_learning_rate(config.lr_schedule(epoch));
    }
    double epoch_loss = 0.0;
    std::int64_t seen = 0;
    for (const auto& batch_idx :
         data::epoch_batches(train_data.size(), config.batch_size,
                             shuffle_rng)) {
      // Batch norm needs >1 element per channel in training mode.
      if (batch_idx.size() == 1) continue;
      const data::Batch batch =
          data::make_batch(train_data, batch_idx, devices);
      std::vector<Variable> views;
      views.reserve(batch.views.size());
      for (const auto& v : batch.views) views.emplace_back(v);

      Variable loss;
      {
        DDNN_PROF_SCOPE("train_forward");
        DdnnOutputs out = model.forward(views);
        for (std::size_t e = 0; e < out.exit_logits.size(); ++e) {
          Variable term = autograd::mul_scalar(
              autograd::softmax_cross_entropy(out.exit_logits[e],
                                              batch.labels),
              weights[e]);
          loss = loss.defined() ? autograd::add(loss, term) : term;
        }
      }

      optimizer.zero_grad();
      {
        DDNN_PROF_SCOPE("train_backward");
        loss.backward();
      }
      {
        DDNN_PROF_SCOPE("train_step");
        optimizer.step();
      }

      epoch_loss += static_cast<double>(loss.value()[0]) *
                    static_cast<double>(batch.size());
      seen += batch.size();
      if (config.metrics) {
        config.metrics->counter("train.batches").add(1);
        config.metrics->counter("train.samples")
            .add(static_cast<std::int64_t>(batch.size()));
      }
    }
    if (seen == 0) {
      // Every batch was skipped by the single-element batch-norm guard
      // (tiny dataset and/or batch_size 1): record 0, not 0/0 = NaN.
      static bool warned = false;
      if (!warned) {
        DDNN_WARN("train_ddnn: every batch in an epoch was skipped by the "
                  "batch-norm size guard; recording 0 loss (use batch_size "
                  ">= 2 or more samples)");
        warned = true;
      }
      history.epoch_loss.push_back(0.0f);
    } else {
      history.epoch_loss.push_back(
          static_cast<float>(epoch_loss / static_cast<double>(seen)));
    }
    if (config.verbose) {
      DDNN_INFO("epoch " << (epoch + 1) << "/" << config.epochs << " loss "
                         << history.epoch_loss.back());
    }
    if (config.metrics) {
      config.metrics->counter("train.epochs").add(1);
      config.metrics->gauge("train.epoch_loss")
          .set(static_cast<double>(history.epoch_loss.back()));
    }
    if (config.series) {
      // Extra eval pass in eval mode under NoGrad: batch-norm running stats
      // are frozen and no tape is built, so recording the series leaves the
      // training trajectory bit-identical to a run without it.
      const auto& eval_data =
          config.series_eval ? *config.series_eval : train_data;
      const ExitEval ev = evaluate_exits(model, eval_data, devices);
      model.set_training(true);  // evaluate_exits leaves eval mode on
      const std::vector<double> thresholds(
          static_cast<std::size_t>(model.config().num_exits() - 1),
          config.series_exit_threshold);
      const PolicyResult policy = apply_policy(ev, thresholds);
      const auto t = static_cast<double>(epoch);
      config.series->record(scols.loss, t,
                            static_cast<double>(history.epoch_loss.back()));
      for (std::size_t e = 0; e < scols.exit_acc.size(); ++e) {
        config.series->record(scols.exit_acc[e], t, exit_accuracy(ev, e));
        config.series->record(scols.exit_frac[e], t,
                              policy.exit_fraction[e]);
      }
      config.series->record(scols.overall_acc, t, policy.overall_accuracy);
    }
    if (config.epoch_callback) {
      config.epoch_callback(epoch, history.epoch_loss.back());
    }
  }
  history.total_seconds = total.seconds();
  model.set_training(false);
  return history;
}

TrainHistory train_individual(IndividualModel& model,
                              const std::vector<data::MvmcSample>& train_data,
                              int device, const TrainConfig& config) {
  const auto usable = data::present_indices(train_data, device);
  DDNN_CHECK(!usable.empty(), "device " << device
                                        << " never sees the object");

  model.set_training(true);
  opt::Adam optimizer(model.parameters(), config.adam);
  optimizer.set_gradient_clip(config.grad_clip_norm);
  Rng shuffle_rng(config.shuffle_seed);
  Stopwatch total;

  TrainHistory history;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.lr_schedule) {
      optimizer.set_learning_rate(config.lr_schedule(epoch));
    }
    auto indices = usable;
    shuffle_rng.shuffle(indices);
    double epoch_loss = 0.0;
    std::int64_t seen = 0;
    for (const auto& batch_idx :
         data::chunk_batches(indices, config.batch_size)) {
      if (batch_idx.size() == 1) continue;  // batch norm needs >1 element
      const data::Batch batch = data::make_batch(train_data, batch_idx,
                                                 {device});
      Variable loss;
      {
        DDNN_PROF_SCOPE("train_forward");
        Variable logits = model.forward(Variable(batch.views[0]));
        loss = autograd::softmax_cross_entropy(logits, batch.labels);
      }

      optimizer.zero_grad();
      {
        DDNN_PROF_SCOPE("train_backward");
        loss.backward();
      }
      {
        DDNN_PROF_SCOPE("train_step");
        optimizer.step();
      }

      epoch_loss += static_cast<double>(loss.value()[0]) *
                    static_cast<double>(batch.size());
      seen += batch.size();
    }
    if (seen == 0) {
      static bool warned = false;
      if (!warned) {
        DDNN_WARN("train_individual: every batch in an epoch was skipped by "
                  "the batch-norm size guard; recording 0 loss (use "
                  "batch_size >= 2 or more samples)");
        warned = true;
      }
      history.epoch_loss.push_back(0.0f);
    } else {
      history.epoch_loss.push_back(
          static_cast<float>(epoch_loss / static_cast<double>(seen)));
    }
    if (config.verbose) {
      DDNN_INFO("individual device " << device << " epoch " << (epoch + 1)
                                     << "/" << config.epochs << " loss "
                                     << history.epoch_loss.back());
    }
    if (config.epoch_callback) {
      config.epoch_callback(epoch, history.epoch_loss.back());
    }
  }
  history.total_seconds = total.seconds();
  model.set_training(false);
  return history;
}

}  // namespace ddnn::core
