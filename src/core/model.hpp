// The DDNN model: one DNN with per-device sections, optional per-edge
// sections, a cloud section, aggregators at each physical boundary, and an
// exit point per tier (paper Figures 2 and 4).
//
// Device section  (per device):  ConvP blocks (binary)  -> feature map
// Local exit      (per device):  flatten -> FC block    -> class scores,
//                                fused by the local aggregator
// Edge section    (per edge):    aggregate member device features ->
//                                ConvP blocks -> edge exit head + features
// Cloud section:                 aggregate device/edge features ->
//                                ConvP chain -> FC block(s) -> cloud exit
//
// The same module is used for training (joint multi-exit loss) and for
// centralized inference; src/dist runs the identical partitions on simulated
// nodes and must produce bit-identical results (tested).
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "nn/blocks.hpp"

namespace ddnn::core {

using nn::Variable;

/// Everything a forward pass produces, exposed for inference, the
/// distributed runtime and tests.
struct DdnnOutputs {
  /// Per-device class scores feeding the local aggregator ([B, C] each);
  /// empty when the config has no local exit.
  std::vector<Variable> device_logits;
  /// Per-device output feature maps ([B, f, s, s]); raw input views when the
  /// device runs no NN blocks (configuration (a)).
  std::vector<Variable> device_features;
  /// Per-edge output feature maps (empty without an edge tier).
  std::vector<Variable> edge_features;
  /// Logits at each exit point, ordered local -> edge -> cloud. The last
  /// entry is always the cloud exit.
  std::vector<Variable> exit_logits;
};

class DdnnModel : public nn::Module {
 public:
  explicit DdnnModel(DdnnConfig config);

  /// Forward with all devices healthy.
  DdnnOutputs forward(const std::vector<Variable>& views);

  /// Forward with an activity mask (failed devices are dropped at every
  /// aggregation point; at least one device must be active).
  DdnnOutputs forward(const std::vector<Variable>& views,
                      const std::vector<bool>& active);

  const DdnnConfig& config() const { return config_; }

  /// Names of the exit points in exit_logits order ("local", "edge",
  /// "cloud").
  std::vector<std::string> exit_names() const;

  // ---------------------------------------------------------------------
  // Partition-execution API. The distributed runtime (src/dist) executes
  // each hierarchy tier on its own simulated node by calling these section
  // methods; forward() is implemented in terms of them, so centralized and
  // distributed inference run identical code paths.
  // ---------------------------------------------------------------------

  /// Device d's trunk: view [B, C_in, S, S] -> feature map (identity when
  /// the device runs no NN blocks, configuration (a)).
  Variable device_section_features(int device, const Variable& view);

  /// Device d's local-exit head: feature map -> class scores [B, C].
  /// Requires has_local_exit.
  Variable device_section_logits(int device, const Variable& features);

  /// Local aggregator over per-device class scores.
  Variable local_aggregate(const std::vector<Variable>& device_logits,
                           const std::vector<bool>& active);

  struct EdgeResult {
    Variable features;  // forwarded to the cloud
    Variable logits;    // this edge's exit scores
  };

  /// Edge group g: aggregate member-device features, run the edge trunk and
  /// exit head. `member_features` / `member_active` are in edge_groups[g]
  /// order.
  EdgeResult edge_section(std::size_t group,
                          const std::vector<Variable>& member_features,
                          const std::vector<bool>& member_active);

  /// Fuse per-edge exit scores into the edge-exit decision (identity for a
  /// single edge group).
  Variable edge_exit_aggregate(const std::vector<Variable>& edge_logits,
                               const std::vector<bool>& edge_active);

  /// Cloud: aggregate incoming branches (device features, or edge features
  /// when an edge tier exists), run the cloud trunk and exit head.
  Variable cloud_section(const std::vector<Variable>& branches,
                         const std::vector<bool>& active);

  /// Inference-time memory footprint of one device's NN section in bytes
  /// (bit-packed binary weights + batch-norm floats). The paper reports
  /// "under 2 KB" for all evaluated filter counts (Section IV-F).
  std::int64_t device_memory_bytes() const;

 private:
  DdnnConfig config_;

  // Per-device trunk + local exit head.
  std::vector<std::unique_ptr<nn::Sequential>> device_trunks_;
  // Heads are single-stage Sequentials so binary (FCBlock) and float
  // (FloatFCBlock) exit heads share one type.
  std::vector<std::unique_ptr<nn::Sequential>> device_heads_;
  std::unique_ptr<VectorAggregator> local_agg_;

  // Per-edge-group sections.
  std::vector<std::unique_ptr<FeatureMapAggregator>> edge_in_aggs_;
  std::vector<std::unique_ptr<nn::Sequential>> edge_trunks_;
  std::vector<std::unique_ptr<nn::FCBlock>> edge_heads_;
  std::unique_ptr<VectorAggregator> edge_exit_agg_;  // >1 edge groups only

  // Cloud section: ConvP chain -> flatten -> optional FC block -> exit head
  // (binary by default, float with config.float_cloud).
  std::unique_ptr<FeatureMapAggregator> cloud_agg_;
  std::unique_ptr<nn::Sequential> cloud_trunk_;

  // Process-unique plan-engine section ids (infer::next_section_id); each
  // keys that section's memory-plan cache in the per-thread workspaces.
  std::vector<int> device_trunk_ids_;
  std::vector<int> device_head_ids_;
  int local_agg_id_ = -1;
  std::vector<int> edge_ids_;
  int edge_exit_id_ = -1;
  int cloud_id_ = -1;
};

/// Standalone single-device model for the paper's "Individual Accuracy"
/// baseline (Section III-F): one ConvP block followed by an FC block,
/// trained separately from the DDNN on that device's visible samples only.
class IndividualModel : public nn::Module {
 public:
  IndividualModel(std::int64_t input_channels, std::int64_t input_size,
                  int filters, int num_classes, std::uint64_t init_seed);

  /// Class scores [B, C] for views [B, C_in, S, S].
  Variable forward(const Variable& views);

  std::int64_t memory_bytes() const;

 private:
  std::unique_ptr<nn::ConvPBlock> conv_;
  std::unique_ptr<nn::FCBlock> head_;
  int section_id_ = -1;
};

}  // namespace ddnn::core
