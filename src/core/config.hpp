// DDNN hierarchy configuration (paper Figure 2, configurations (a)-(f)).
//
// A DdnnConfig describes how a single jointly-trained DNN is partitioned
// over the distributed computing hierarchy: how much network runs on each
// end device, whether an edge tier exists (and which devices each edge
// serves), what runs in the cloud, which aggregation schemes fuse the
// branches at each physical boundary, and where the exit points are.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregator.hpp"
#include "core/comm_cost.hpp"

namespace ddnn::core {

/// The six hierarchy shapes of the paper's Figure 2.
enum class HierarchyPreset {
  kCloudOnly,          // (a) raw input offloaded; all inference in the cloud
  kDeviceCloud,        // (b) one device with a local exit + cloud
  kDevicesCloud,       // (c) multiple devices, local exit + cloud (evaluated)
  kDeviceEdgeCloud,    // (d) one device, edge tier, three exits
  kDevicesEdgeCloud,   // (e) multiple devices, one edge, three exits
  kDevicesEdgesCloud,  // (f) multiple devices AND multiple edges
};

std::string to_string(HierarchyPreset preset);

struct DdnnConfig {
  int num_classes = 3;
  int num_devices = 6;
  std::int64_t input_channels = 3;
  std::int64_t input_size = 32;

  /// ConvP blocks per end device (each halves the spatial size). 0 means the
  /// devices send raw sensor input (configuration (a)); then
  /// `has_local_exit` must be false.
  int device_conv_blocks = 1;
  /// Filters f in each device ConvP block (the paper sweeps 2..12, Fig. 9).
  int device_filters = 4;
  bool has_local_exit = true;

  /// Device indices served by each edge; empty means no edge tier.
  /// E.g. {{0,1,2},{3,4,5}} is configuration (f) with two edges.
  std::vector<std::vector<int>> edge_groups{};
  int edge_conv_blocks = 1;
  int edge_filters = 16;

  /// Filters of the cloud ConvP chain (each halves the spatial size).
  std::vector<int> cloud_filters{24, 48};
  /// Hidden FC block width before the cloud exit head (0 = none).
  int cloud_fc_nodes = 96;
  /// Mixed precision (paper future work, Section VI): keep the device (and
  /// edge) sections binary but run the cloud section in float32
  /// (conv->pool->BN->ReLU blocks). The wire format is unchanged — devices
  /// still transmit bit-packed binary features.
  bool float_cloud = false;
  /// Upper-bound ablation: run the DEVICE sections in float32 as well. This
  /// breaks the paper's device memory budget and its 1-bit wire format
  /// (float features cost 32x the bytes), so it is for centralized accuracy
  /// comparison only — the distributed runtime rejects such models.
  bool float_devices = false;

  /// Aggregation schemes (paper Table I notation: local-cloud, e.g. MP-CC).
  AggKind local_agg = AggKind::kMaxPool;
  AggKind edge_agg = AggKind::kConcat;  // device features -> edge
  AggKind cloud_agg = AggKind::kConcat;

  std::uint64_t init_seed = 1;

  // ------------------------------------------------------------- derived

  bool has_edge() const { return !edge_groups.empty(); }

  /// Number of exit points: optional local + optional edge + cloud.
  int num_exits() const {
    return (has_local_exit ? 1 : 0) + (has_edge() ? 1 : 0) + 1;
  }

  /// Spatial side length of a device's output feature map.
  std::int64_t device_out_size() const {
    return input_size >> device_conv_blocks;
  }

  /// Spatial side length of an edge's output feature map.
  std::int64_t edge_out_size() const {
    return device_out_size() >> edge_conv_blocks;
  }

  /// o in Eq. 1: bits per device filter sent to the next tier.
  std::int64_t filter_output_bits() const {
    return device_out_size() * device_out_size();
  }

  /// Parameters for the analytic communication model (Eq. 1).
  CommParams comm_params() const {
    return {.num_classes = num_classes,
            .filters = device_filters,
            .filter_output_bits = filter_output_bits()};
  }

  /// Throws ddnn::Error if the configuration is inconsistent.
  void validate() const;

  /// Stable string key identifying the architecture + init seed; used by
  /// the trained-model cache.
  std::string cache_key() const;

  /// Construct one of the paper's Figure 2 shapes.
  static DdnnConfig preset(HierarchyPreset preset, int num_devices = 6,
                           int device_filters = 4);
};

}  // namespace ddnn::core
