// Trained-model cache.
//
// Several bench binaries evaluate the same trained DDNN (the 6-device,
// 4-filter MP-CC model backs Table II, Figures 7 and 10, and the
// communication study). The cache keys a trained model's weights by its
// architecture + training fingerprint so the first binary trains and the
// rest load. Controlled by DDNN_CACHE_DIR (default ".ddnn_cache"; set to
// "off" to disable).
#pragma once

#include <functional>
#include <string>

#include "nn/module.hpp"

namespace ddnn::core {

/// Resolved cache directory ("" when caching is disabled).
std::string cache_dir();

/// Filesystem path for a cache key: sanitized stem plus an FNV-1a hash of
/// the raw key, so keys differing only in sanitized characters never
/// collide. Throws when caching is disabled (cache_dir() empty).
std::string cache_path(const std::string& key);

/// If a cached state exists for `key`, load it into `model` and return true.
/// Otherwise run `train_fn` (which should train `model`), save the state,
/// and return false. With caching disabled, always trains and returns false.
bool train_or_load(nn::Module& model, const std::string& key,
                   const std::function<void()>& train_fn);

}  // namespace ddnn::core
