// Analytic communication-cost model (paper Section III-E, Eq. 1).
//
//   c = 4 * |C| + (1 - l) * f * o / 8        [bytes per sample, per device]
//
// The first term is the float32 class-score vector every device always sends
// to the local aggregator; the second is the bit-packed binary feature map
// sent to the cloud for the (1 - l) fraction of samples that do not exit
// locally. The simulated runtime (src/dist) measures the same quantity on
// its links; tests assert the two agree.
#pragma once

#include <cstdint>

namespace ddnn::core {

struct CommParams {
  /// |C|: number of classes (3 in the paper's evaluation).
  std::int64_t num_classes = 3;
  /// f: filters in the final device ConvP block.
  std::int64_t filters = 4;
  /// o: per-filter output size in BITS (16x16 = 256 for one ConvP on 32x32).
  std::int64_t filter_output_bits = 256;
};

/// Eq. 1: average bytes per sample for one end device, given the fraction
/// `local_exit_fraction` of samples exited locally.
double ddnn_comm_bytes(double local_exit_fraction, const CommParams& params);

/// Baseline: offloading the raw sensor input to the cloud (3 KB for a
/// 32x32 RGB image in the paper, Section IV-H).
std::int64_t raw_offload_bytes(std::int64_t channels, std::int64_t height,
                               std::int64_t width);

}  // namespace ddnn::core
