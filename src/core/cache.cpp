#include "core/cache.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>

#include "nn/serialize.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace ddnn::core {

namespace {

/// 64-bit FNV-1a of the raw key. Sanitizing alone maps distinct keys like
/// "mp/3dev" and "mp:3dev" onto the same stem; the hash suffix keeps their
/// cache files distinct.
std::string fnv1a_hex(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace

std::string cache_dir() {
  const std::string dir = env_string("DDNN_CACHE_DIR", ".ddnn_cache");
  return dir == "off" ? "" : dir;
}

std::string cache_path(const std::string& key) {
  const std::string dir = cache_dir();
  DDNN_CHECK(!dir.empty(),
             "cache_path: caching is disabled (DDNN_CACHE_DIR=off); check "
             "cache_dir() before asking for a path");
  std::string safe;
  safe.reserve(key.size());
  for (const char ch : key) {
    const auto c = static_cast<unsigned char>(ch);
    safe += (std::isalnum(c) || ch == '.' || ch == '-' || ch == '_') ? ch : '_';
  }
  return dir + "/" + safe + "-" + fnv1a_hex(key) + ".ddnn";
}

bool train_or_load(nn::Module& model, const std::string& key,
                   const std::function<void()>& train_fn) {
  const std::string dir = cache_dir();
  if (dir.empty()) {
    train_fn();
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  const std::string path = cache_path(key);
  if (nn::is_state_file(path)) {
    DDNN_INFO("loading cached model: " << path);
    nn::load_state(model, path);
    return true;
  }
  train_fn();
  nn::save_state(model, path);
  DDNN_INFO("cached trained model: " << path);
  return false;
}

}  // namespace ddnn::core
