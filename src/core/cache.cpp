#include "core/cache.hpp"

#include <cctype>
#include <filesystem>

#include "nn/serialize.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace ddnn::core {

std::string cache_dir() {
  const std::string dir = env_string("DDNN_CACHE_DIR", ".ddnn_cache");
  return dir == "off" ? "" : dir;
}

std::string cache_path(const std::string& key) {
  std::string safe;
  safe.reserve(key.size());
  for (const char ch : key) {
    const auto c = static_cast<unsigned char>(ch);
    safe += (std::isalnum(c) || ch == '.' || ch == '-' || ch == '_') ? ch : '_';
  }
  return cache_dir() + "/" + safe + ".ddnn";
}

bool train_or_load(nn::Module& model, const std::string& key,
                   const std::function<void()>& train_fn) {
  const std::string dir = cache_dir();
  if (dir.empty()) {
    train_fn();
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  const std::string path = cache_path(key);
  if (nn::is_state_file(path)) {
    DDNN_INFO("loading cached model: " << path);
    nn::load_state(model, path);
    return true;
  }
  train_fn();
  nn::save_state(model, path);
  DDNN_INFO("cached trained model: " << path);
  return false;
}

}  // namespace ddnn::core
