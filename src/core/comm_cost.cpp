#include "core/comm_cost.hpp"

#include "util/error.hpp"

namespace ddnn::core {

double ddnn_comm_bytes(double local_exit_fraction, const CommParams& params) {
  DDNN_CHECK(local_exit_fraction >= 0.0 && local_exit_fraction <= 1.0,
             "local exit fraction " << local_exit_fraction
                                    << " outside [0, 1]");
  DDNN_CHECK(params.num_classes >= 2 && params.filters >= 1 &&
                 params.filter_output_bits >= 1,
             "bad communication parameters");
  const double always = 4.0 * static_cast<double>(params.num_classes);
  const double offload =
      static_cast<double>(params.filters * params.filter_output_bits) / 8.0;
  return always + (1.0 - local_exit_fraction) * offload;
}

std::int64_t raw_offload_bytes(std::int64_t channels, std::int64_t height,
                               std::int64_t width) {
  DDNN_CHECK(channels > 0 && height > 0 && width > 0, "bad image dims");
  return channels * height * width;  // one byte per pixel per channel
}

}  // namespace ddnn::core
