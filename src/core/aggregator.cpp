#include "core/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "autograd/ops.hpp"
#include "obs/profile.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::core {

using nn::Variable;

std::string to_string(AggKind kind) {
  switch (kind) {
    case AggKind::kMaxPool: return "MP";
    case AggKind::kAvgPool: return "AP";
    case AggKind::kConcat: return "CC";
    case AggKind::kGatedAvg: return "GA";
  }
  return "?";
}

AggKind parse_agg_kind(const std::string& name) {
  if (name == "MP") return AggKind::kMaxPool;
  if (name == "AP") return AggKind::kAvgPool;
  if (name == "CC") return AggKind::kConcat;
  if (name == "GA") return AggKind::kGatedAvg;
  DDNN_CHECK(false, "unknown aggregation scheme '" << name << "'");
  return AggKind::kMaxPool;  // unreachable
}

namespace {

/// Branches that survive the activity mask (for MP / AP).
std::vector<Variable> active_branches(const std::vector<Variable>& branches,
                                      const std::vector<bool>& active) {
  DDNN_CHECK(branches.size() == active.size(),
             "mask size " << active.size() << " vs " << branches.size()
                          << " branches");
  std::vector<Variable> out;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (active[i]) out.push_back(branches[i]);
  }
  DDNN_CHECK(!out.empty(), "aggregation with every branch inactive");
  return out;
}

/// All branches, but inactive slots replaced by zeros (for CC, whose learned
/// projection has one slot per branch).
std::vector<Variable> zero_filled_branches(
    const std::vector<Variable>& branches, const std::vector<bool>& active) {
  DDNN_CHECK(branches.size() == active.size(),
             "mask size " << active.size() << " vs " << branches.size()
                          << " branches");
  bool any = false;
  std::vector<Variable> out;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (active[i]) {
      out.push_back(branches[i]);
      any = true;
    } else {
      out.push_back(Variable(Tensor::zeros(branches[i].shape())));
    }
  }
  DDNN_CHECK(any, "aggregation with every branch inactive");
  return out;
}

std::vector<bool> all_active(std::size_t n) {
  return std::vector<bool>(n, true);
}

// ---- Inference-engine counterparts -----------------------------------------
// Each replicates the corresponding autograd forward bit-for-bit: same
// accumulation order over the active subset, same single-precision
// arithmetic, with outputs placed in workspace slots instead of fresh
// Variables.

int count_active(const std::vector<Tensor>& branches,
                 const std::vector<bool>& active) {
  DDNN_CHECK(branches.size() == active.size(),
             "mask size " << active.size() << " vs " << branches.size()
                          << " branches");
  int n = 0;
  for (bool a : active) n += a ? 1 : 0;
  DDNN_CHECK(n > 0, "aggregation with every branch inactive");
  return n;
}

/// autograd::stack_max over the active subset. Acquire-first discipline:
/// the output slot is taken (and the inputs noted) before any element is
/// read, so the planner keeps it clear of every operand.
Tensor infer_stack_max(const std::vector<Tensor>& branches,
                       const std::vector<bool>& active, infer::Workspace& ws) {
  count_active(branches, active);
  std::size_t first = 0;
  while (!active[first]) ++first;
  Tensor out = ws.acquire(branches[first].shape());
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (active[i]) ws.note_use(branches[i]);
  }
  std::copy_n(branches[first].data(), branches[first].numel(), out.data());
  for (std::size_t i = first + 1; i < branches.size(); ++i) {
    if (!active[i]) continue;
    const float* px = branches[i].data();
    float* po = out.data();
    const std::int64_t n = out.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      if (px[j] > po[j]) po[j] = px[j];
    }
  }
  return out;
}

/// autograd::stack_mean over the active subset (1/k scaling per term, summed
/// in active order, exactly like the compacted-branch autograd path).
Tensor infer_stack_mean(const std::vector<Tensor>& branches,
                        const std::vector<bool>& active,
                        infer::Workspace& ws) {
  const int k = count_active(branches, active);
  const float inv = 1.0f / static_cast<float>(k);
  std::size_t first = 0;
  while (!active[first]) ++first;
  Tensor out = ws.acquire_zero(branches[first].shape());
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (active[i]) ws.note_use(branches[i]);
  }
  for (std::size_t i = first; i < branches.size(); ++i) {
    if (active[i]) ops::axpy_into(out, inv, branches[i]);
  }
  return out;
}

/// autograd::concat(zero_filled_branches(...), 1): inactive slots become
/// zero blocks, so the learned projection sees one slot per branch.
Tensor infer_concat_axis1(const std::vector<Tensor>& branches,
                          const std::vector<bool>& active,
                          infer::Workspace& ws) {
  count_active(branches, active);
  const Shape& s0 = branches[0].shape();
  DDNN_CHECK(s0.ndim() >= 2, "concat aggregation needs rank >= 2");
  const std::int64_t outer = s0[0];
  std::int64_t inner = 1;
  for (std::size_t d = 2; d < s0.ndim(); ++d) inner *= s0[d];
  const std::int64_t ext = s0[1];
  const std::int64_t total =
      ext * static_cast<std::int64_t>(branches.size());
  std::vector<std::int64_t> out_dims = s0.dims();
  out_dims[1] = total;
  Tensor out = ws.acquire(Shape(out_dims));
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (active[i]) ws.note_use(branches[i]);
  }
  float* po = out.data();
  std::int64_t offset = 0;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    DDNN_CHECK(branches[i].shape() == s0, "concat aggregation shape mismatch");
    for (std::int64_t o = 0; o < outer; ++o) {
      float* dst = po + (o * total + offset) * inner;
      if (active[i]) {
        std::copy_n(branches[i].data() + o * ext * inner, ext * inner, dst);
      } else {
        std::fill_n(dst, ext * inner, 0.0f);
      }
    }
    offset += ext;
  }
  return out;
}

/// autograd::stack_gated_sum forward: softmax over the active gates only
/// (float exp, double denominator, float weights), then weighted axpy in
/// branch order over the active subset.
Tensor infer_gated_sum(const std::vector<Tensor>& branches,
                       const Tensor& gates, const std::vector<bool>& active,
                       infer::Workspace& ws) {
  count_active(branches, active);
  const auto n = branches.size();
  std::vector<float> weights(n, 0.0f);
  float max_gate = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) {
      max_gate = std::max(max_gate, gates[static_cast<std::int64_t>(i)]);
    }
  }
  double denom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    weights[i] =
        std::exp(gates[static_cast<std::int64_t>(i)] - max_gate);
    denom += weights[i];
  }
  for (auto& w : weights) w = static_cast<float>(w / denom);

  Tensor out = ws.acquire_zero(branches[0].shape());
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) ws.note_use(branches[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) ops::axpy_into(out, weights[i], branches[i]);
  }
  return out;
}

/// Shared MP/AP/CC/GA dispatch for both aggregator flavours; `Projection`
/// is nn::Linear (vectors) or nn::Conv2d (feature maps).
template <typename Projection>
Tensor aggregate_infer(AggKind kind, int num_branches,
                       const std::vector<Tensor>& branches,
                       const std::vector<bool>& active, infer::Workspace& ws,
                       Projection* projection, const nn::Variable& gates) {
  DDNN_CHECK(static_cast<int>(branches.size()) == num_branches,
             "expected " << num_branches << " branches, got "
                         << branches.size());
  DDNN_CHECK(branches.size() == active.size(),
             "mask size " << active.size() << " vs " << branches.size()
                          << " branches");
  if (num_branches == 1) {
    DDNN_CHECK(active[0], "single branch marked inactive");
    return branches[0];
  }
  switch (kind) {
    case AggKind::kMaxPool:
      return infer_stack_max(branches, active, ws);
    case AggKind::kAvgPool:
      return infer_stack_mean(branches, active, ws);
    case AggKind::kConcat:
      return projection->infer(infer_concat_axis1(branches, active, ws), ws);
    case AggKind::kGatedAvg:
      return infer_gated_sum(branches, gates.value(), active, ws);
  }
  DDNN_CHECK(false, "unreachable");
  return {};
}

}  // namespace

VectorAggregator::VectorAggregator(AggKind kind, int num_branches,
                                   std::int64_t dims, Rng& rng)
    : kind_(kind), num_branches_(num_branches), dims_(dims) {
  DDNN_CHECK(num_branches_ >= 1, "aggregator needs at least one branch");
  if (kind_ == AggKind::kConcat) {
    projection_ =
        std::make_unique<nn::Linear>(num_branches_ * dims_, dims_, rng);
    add_child("projection", projection_.get());
  } else if (kind_ == AggKind::kGatedAvg) {
    gates_ = add_parameter("gates", Tensor::zeros(Shape{num_branches_}));
  }
}

Variable VectorAggregator::forward(const std::vector<Variable>& branches,
                                   const std::vector<bool>& active) {
  DDNN_PROF_SCOPE("agg_fuse_scores");
  DDNN_CHECK(static_cast<int>(branches.size()) == num_branches_,
             "expected " << num_branches_ << " branches, got "
                         << branches.size());
  if (num_branches_ == 1) {
    DDNN_CHECK(active[0], "single branch marked inactive");
    return branches[0];
  }
  switch (kind_) {
    case AggKind::kMaxPool:
      return autograd::stack_max(active_branches(branches, active));
    case AggKind::kAvgPool:
      return autograd::stack_mean(active_branches(branches, active));
    case AggKind::kConcat:
      return projection_->forward(
          autograd::concat(zero_filled_branches(branches, active), 1));
    case AggKind::kGatedAvg:
      return autograd::stack_gated_sum(branches, gates_, active);
  }
  DDNN_CHECK(false, "unreachable");
  return {};
}

Variable VectorAggregator::forward(const std::vector<Variable>& branches) {
  return forward(branches, all_active(branches.size()));
}

Tensor VectorAggregator::infer(const std::vector<Tensor>& branches,
                               const std::vector<bool>& active,
                               infer::Workspace& ws) {
  DDNN_PROF_SCOPE("agg_fuse_scores");
  return aggregate_infer(kind_, num_branches_, branches, active, ws,
                         projection_.get(), gates_);
}

FeatureMapAggregator::FeatureMapAggregator(AggKind kind, int num_branches,
                                           std::int64_t channels, Rng& rng)
    : kind_(kind), num_branches_(num_branches), channels_(channels) {
  DDNN_CHECK(num_branches_ >= 1, "aggregator needs at least one branch");
  if (kind_ == AggKind::kConcat) {
    projection_ = std::make_unique<nn::Conv2d>(
        num_branches_ * channels_, channels_, /*kernel=*/1, /*stride=*/1,
        /*pad=*/0, rng);
    add_child("projection", projection_.get());
  } else if (kind_ == AggKind::kGatedAvg) {
    gates_ = add_parameter("gates", Tensor::zeros(Shape{num_branches_}));
  }
}

Variable FeatureMapAggregator::forward(const std::vector<Variable>& branches,
                                       const std::vector<bool>& active) {
  DDNN_PROF_SCOPE("agg_fuse_features");
  DDNN_CHECK(static_cast<int>(branches.size()) == num_branches_,
             "expected " << num_branches_ << " branches, got "
                         << branches.size());
  if (num_branches_ == 1) {
    DDNN_CHECK(active[0], "single branch marked inactive");
    return branches[0];
  }
  switch (kind_) {
    case AggKind::kMaxPool:
      return autograd::stack_max(active_branches(branches, active));
    case AggKind::kAvgPool:
      return autograd::stack_mean(active_branches(branches, active));
    case AggKind::kConcat:
      return projection_->forward(
          autograd::concat(zero_filled_branches(branches, active), 1));
    case AggKind::kGatedAvg:
      return autograd::stack_gated_sum(branches, gates_, active);
  }
  DDNN_CHECK(false, "unreachable");
  return {};
}

Variable FeatureMapAggregator::forward(const std::vector<Variable>& branches) {
  return forward(branches, all_active(branches.size()));
}

Tensor FeatureMapAggregator::infer(const std::vector<Tensor>& branches,
                                   const std::vector<bool>& active,
                                   infer::Workspace& ws) {
  DDNN_PROF_SCOPE("agg_fuse_features");
  return aggregate_infer(kind_, num_branches_, branches, active, ws,
                         projection_.get(), gates_);
}

}  // namespace ddnn::core
