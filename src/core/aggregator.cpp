#include "core/aggregator.hpp"

#include "autograd/ops.hpp"
#include "util/error.hpp"

namespace ddnn::core {

using nn::Variable;

std::string to_string(AggKind kind) {
  switch (kind) {
    case AggKind::kMaxPool: return "MP";
    case AggKind::kAvgPool: return "AP";
    case AggKind::kConcat: return "CC";
    case AggKind::kGatedAvg: return "GA";
  }
  return "?";
}

AggKind parse_agg_kind(const std::string& name) {
  if (name == "MP") return AggKind::kMaxPool;
  if (name == "AP") return AggKind::kAvgPool;
  if (name == "CC") return AggKind::kConcat;
  if (name == "GA") return AggKind::kGatedAvg;
  DDNN_CHECK(false, "unknown aggregation scheme '" << name << "'");
  return AggKind::kMaxPool;  // unreachable
}

namespace {

/// Branches that survive the activity mask (for MP / AP).
std::vector<Variable> active_branches(const std::vector<Variable>& branches,
                                      const std::vector<bool>& active) {
  DDNN_CHECK(branches.size() == active.size(),
             "mask size " << active.size() << " vs " << branches.size()
                          << " branches");
  std::vector<Variable> out;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (active[i]) out.push_back(branches[i]);
  }
  DDNN_CHECK(!out.empty(), "aggregation with every branch inactive");
  return out;
}

/// All branches, but inactive slots replaced by zeros (for CC, whose learned
/// projection has one slot per branch).
std::vector<Variable> zero_filled_branches(
    const std::vector<Variable>& branches, const std::vector<bool>& active) {
  DDNN_CHECK(branches.size() == active.size(),
             "mask size " << active.size() << " vs " << branches.size()
                          << " branches");
  bool any = false;
  std::vector<Variable> out;
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (active[i]) {
      out.push_back(branches[i]);
      any = true;
    } else {
      out.push_back(Variable(Tensor::zeros(branches[i].shape())));
    }
  }
  DDNN_CHECK(any, "aggregation with every branch inactive");
  return out;
}

std::vector<bool> all_active(std::size_t n) {
  return std::vector<bool>(n, true);
}

}  // namespace

VectorAggregator::VectorAggregator(AggKind kind, int num_branches,
                                   std::int64_t dims, Rng& rng)
    : kind_(kind), num_branches_(num_branches), dims_(dims) {
  DDNN_CHECK(num_branches_ >= 1, "aggregator needs at least one branch");
  if (kind_ == AggKind::kConcat) {
    projection_ =
        std::make_unique<nn::Linear>(num_branches_ * dims_, dims_, rng);
    add_child("projection", projection_.get());
  } else if (kind_ == AggKind::kGatedAvg) {
    gates_ = add_parameter("gates", Tensor::zeros(Shape{num_branches_}));
  }
}

Variable VectorAggregator::forward(const std::vector<Variable>& branches,
                                   const std::vector<bool>& active) {
  DDNN_CHECK(static_cast<int>(branches.size()) == num_branches_,
             "expected " << num_branches_ << " branches, got "
                         << branches.size());
  if (num_branches_ == 1) {
    DDNN_CHECK(active[0], "single branch marked inactive");
    return branches[0];
  }
  switch (kind_) {
    case AggKind::kMaxPool:
      return autograd::stack_max(active_branches(branches, active));
    case AggKind::kAvgPool:
      return autograd::stack_mean(active_branches(branches, active));
    case AggKind::kConcat:
      return projection_->forward(
          autograd::concat(zero_filled_branches(branches, active), 1));
    case AggKind::kGatedAvg:
      return autograd::stack_gated_sum(branches, gates_, active);
  }
  DDNN_CHECK(false, "unreachable");
  return {};
}

Variable VectorAggregator::forward(const std::vector<Variable>& branches) {
  return forward(branches, all_active(branches.size()));
}

FeatureMapAggregator::FeatureMapAggregator(AggKind kind, int num_branches,
                                           std::int64_t channels, Rng& rng)
    : kind_(kind), num_branches_(num_branches), channels_(channels) {
  DDNN_CHECK(num_branches_ >= 1, "aggregator needs at least one branch");
  if (kind_ == AggKind::kConcat) {
    projection_ = std::make_unique<nn::Conv2d>(
        num_branches_ * channels_, channels_, /*kernel=*/1, /*stride=*/1,
        /*pad=*/0, rng);
    add_child("projection", projection_.get());
  } else if (kind_ == AggKind::kGatedAvg) {
    gates_ = add_parameter("gates", Tensor::zeros(Shape{num_branches_}));
  }
}

Variable FeatureMapAggregator::forward(const std::vector<Variable>& branches,
                                       const std::vector<bool>& active) {
  DDNN_CHECK(static_cast<int>(branches.size()) == num_branches_,
             "expected " << num_branches_ << " branches, got "
                         << branches.size());
  if (num_branches_ == 1) {
    DDNN_CHECK(active[0], "single branch marked inactive");
    return branches[0];
  }
  switch (kind_) {
    case AggKind::kMaxPool:
      return autograd::stack_max(active_branches(branches, active));
    case AggKind::kAvgPool:
      return autograd::stack_mean(active_branches(branches, active));
    case AggKind::kConcat:
      return projection_->forward(
          autograd::concat(zero_filled_branches(branches, active), 1));
    case AggKind::kGatedAvg:
      return autograd::stack_gated_sum(branches, gates_, active);
  }
  DDNN_CHECK(false, "unreachable");
  return {};
}

Variable FeatureMapAggregator::forward(const std::vector<Variable>& branches) {
  return forward(branches, all_active(branches.size()));
}

}  // namespace ddnn::core
