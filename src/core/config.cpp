#include "core/config.hpp"

#include <set>
#include <sstream>

#include "util/error.hpp"

namespace ddnn::core {

std::string to_string(HierarchyPreset preset) {
  switch (preset) {
    case HierarchyPreset::kCloudOnly: return "(a) cloud-only";
    case HierarchyPreset::kDeviceCloud: return "(b) device-cloud";
    case HierarchyPreset::kDevicesCloud: return "(c) devices-cloud";
    case HierarchyPreset::kDeviceEdgeCloud: return "(d) device-edge-cloud";
    case HierarchyPreset::kDevicesEdgeCloud: return "(e) devices-edge-cloud";
    case HierarchyPreset::kDevicesEdgesCloud: return "(f) devices-edges-cloud";
  }
  return "?";
}

void DdnnConfig::validate() const {
  DDNN_CHECK(num_classes >= 2, "need at least two classes");
  DDNN_CHECK(num_devices >= 1, "need at least one device");
  DDNN_CHECK(input_channels >= 1 && input_size >= 4, "bad input geometry");
  DDNN_CHECK(device_conv_blocks >= 0 && device_conv_blocks <= 4,
             "device_conv_blocks out of range");
  if (device_conv_blocks == 0) {
    DDNN_CHECK(!has_local_exit,
               "a local exit needs at least one device ConvP block");
  } else {
    DDNN_CHECK(device_filters >= 1, "device_filters must be positive");
    DDNN_CHECK(device_out_size() >= 1, "device trunk shrinks input to zero");
  }
  if (has_edge()) {
    DDNN_CHECK(edge_conv_blocks >= 1 && edge_filters >= 1, "bad edge config");
    DDNN_CHECK(edge_out_size() >= 1, "edge trunk shrinks features to zero");
    std::set<int> seen;
    for (const auto& group : edge_groups) {
      DDNN_CHECK(!group.empty(), "empty edge group");
      for (int d : group) {
        DDNN_CHECK(d >= 0 && d < num_devices, "edge group device " << d
                                                                   << " out of range");
        DDNN_CHECK(seen.insert(d).second,
                   "device " << d << " appears in two edge groups");
      }
    }
    DDNN_CHECK(static_cast<int>(seen.size()) == num_devices,
               "edge groups must cover every device");
  }
  std::int64_t spatial = has_edge() ? edge_out_size() : device_out_size();
  for (int f : cloud_filters) {
    DDNN_CHECK(f >= 1, "cloud filter count must be positive");
    spatial /= 2;
    DDNN_CHECK(spatial >= 1, "cloud trunk shrinks features to zero");
  }
  DDNN_CHECK(cloud_fc_nodes >= 0, "cloud_fc_nodes must be non-negative");
}

std::string DdnnConfig::cache_key() const {
  std::ostringstream os;
  os << "ddnn-v1_C" << num_classes << "_D" << num_devices << "_in"
     << input_channels << "x" << input_size << "_devb" << device_conv_blocks
     << "f" << device_filters << (has_local_exit ? "_lex" : "_nolex");
  if (has_edge()) {
    os << "_edge" << edge_conv_blocks << "f" << edge_filters << "g";
    for (const auto& group : edge_groups) {
      os << "[";
      for (std::size_t i = 0; i < group.size(); ++i) {
        os << (i ? "," : "") << group[i];
      }
      os << "]";
    }
  }
  os << "_cloud";
  for (int f : cloud_filters) os << "-" << f;
  os << "_fc" << cloud_fc_nodes << (float_cloud ? "_fp32" : "")
     << (float_devices ? "_fp32dev" : "") << "_" << to_string(local_agg)
     << "-" << to_string(edge_agg) << "-" << to_string(cloud_agg) << "_seed"
     << init_seed;
  return os.str();
}

DdnnConfig DdnnConfig::preset(HierarchyPreset preset, int num_devices,
                              int device_filters) {
  DdnnConfig cfg;
  cfg.device_filters = device_filters;
  switch (preset) {
    case HierarchyPreset::kCloudOnly:
      // Devices forward raw sensor input; the whole DNN runs in the cloud.
      cfg.num_devices = num_devices;
      cfg.device_conv_blocks = 0;
      cfg.has_local_exit = false;
      cfg.cloud_filters = {device_filters, 24, 48};
      break;
    case HierarchyPreset::kDeviceCloud:
      cfg.num_devices = 1;
      break;
    case HierarchyPreset::kDevicesCloud:
      cfg.num_devices = num_devices;
      break;
    case HierarchyPreset::kDeviceEdgeCloud:
      cfg.num_devices = 1;
      cfg.edge_groups = {{0}};
      cfg.cloud_filters = {48};
      break;
    case HierarchyPreset::kDevicesEdgeCloud: {
      cfg.num_devices = num_devices;
      std::vector<int> all;
      for (int d = 0; d < num_devices; ++d) all.push_back(d);
      cfg.edge_groups = {all};
      cfg.cloud_filters = {48};
      break;
    }
    case HierarchyPreset::kDevicesEdgesCloud: {
      DDNN_CHECK(num_devices >= 2, "config (f) needs at least two devices");
      cfg.num_devices = num_devices;
      std::vector<int> first, second;
      for (int d = 0; d < num_devices; ++d) {
        (d < (num_devices + 1) / 2 ? first : second).push_back(d);
      }
      cfg.edge_groups = {first, second};
      cfg.cloud_filters = {48};
      break;
    }
  }
  cfg.validate();
  return cfg;
}

}  // namespace ddnn::core
