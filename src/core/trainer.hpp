// Joint training of DDNNs (paper Section III-C) and training of the
// standalone per-device baseline models.
//
// The joint objective is a weighted sum of per-exit softmax cross-entropy
// losses; gradients from every exit flow into the shared lower sections, so
// the device filters learn features that serve both the local classifier
// and the cloud. The paper uses equal weights and Adam with (alpha 1e-3,
// beta1 0.9, beta2 0.999, eps 1e-8) for 100 epochs.
#pragma once

#include <functional>
#include <vector>

#include "core/model.hpp"
#include "data/loader.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "opt/optimizer.hpp"

namespace ddnn::core {

struct TrainConfig {
  int epochs = 50;
  std::size_t batch_size = 32;
  opt::AdamConfig adam{};
  /// Per-exit loss weights; empty means equal weights (the paper's choice).
  std::vector<float> exit_weights{};
  std::uint64_t shuffle_seed = 7;
  /// Log per-epoch loss via DDNN_INFO.
  bool verbose = false;
  /// Invoked after every epoch with (0-based epoch index, mean joint loss);
  /// lets callers report progress or run periodic evaluation.
  std::function<void(int, float)> epoch_callback{};
  /// Global gradient-norm clip applied before every optimizer step
  /// (0 disables; the paper's recipe does not clip).
  float grad_clip_norm = 0.0f;
  /// Learning-rate schedule: called at the start of each epoch with the
  /// 0-based epoch index; its return value becomes the LR for that epoch.
  /// Empty keeps the optimizer's configured LR throughout.
  std::function<float(int)> lr_schedule{};
  /// Optional metrics sink (not owned): the epoch loop records
  /// train.epochs / train.batches / train.samples counters and the
  /// train.epoch_loss gauge into it. Null disables.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional windowed series sink (not owned): one window per epoch (make
  /// it with width 1 and axis "epoch"). After every epoch the trainer
  /// evaluates the model on `series_eval` (the training set when null) and
  /// records train.loss, per-exit train.exit_acc.<name> /
  /// train.exit_frac.<name>, and train.overall_acc gauges at t = epoch.
  /// Exit fractions come from the paper's entropy cascade with
  /// series_exit_threshold at every non-final exit. The eval pass runs in
  /// eval mode under NoGrad, so it does not perturb training. Null disables
  /// (and skips the extra eval pass). train_ddnn only.
  obs::WindowedSeries* series = nullptr;
  const std::vector<data::MvmcSample>* series_eval = nullptr;
  double series_exit_threshold = 0.8;
};

struct TrainHistory {
  std::vector<float> epoch_loss;  // mean joint loss per epoch
  double total_seconds = 0.0;

  float final_loss() const {
    return epoch_loss.empty() ? 0.0f : epoch_loss.back();
  }
};

/// Jointly train `model` on the multi-view training samples. `devices` maps
/// the model's input branches to dataset device ids (e.g. {0,1,2} trains a
/// 3-device model on the first three cameras).
TrainHistory train_ddnn(DdnnModel& model,
                        const std::vector<data::MvmcSample>& train_data,
                        const std::vector<int>& devices,
                        const TrainConfig& config);

/// Train the standalone single-device baseline on the samples where
/// `device` sees the object (the paper excludes not-present frames from
/// individual-model training).
TrainHistory train_individual(IndividualModel& model,
                              const std::vector<data::MvmcSample>& train_data,
                              int device, const TrainConfig& config);

}  // namespace ddnn::core
