// Staged DDNN inference and the paper's accuracy measures (Sections III-D,
// III-F).
//
// evaluate_exits() runs the model once over a sample set and caches the
// softmax probabilities of every exit point. Threshold policies (Table II /
// Figure 7 sweeps) are then applied to the cached probabilities without
// re-running the network, which makes fine threshold grids cheap.
#pragma once

#include <vector>

#include "core/comm_cost.hpp"
#include "core/entropy.hpp"
#include "core/model.hpp"
#include "data/mvmc.hpp"

namespace ddnn::core {

/// Cached per-exit softmax probabilities for a sample set.
struct ExitEval {
  std::vector<Tensor> exit_probs;  // per exit: [N, C]
  std::vector<std::int64_t> labels;
  std::vector<std::string> exit_names;

  std::int64_t sample_count() const {
    return static_cast<std::int64_t>(labels.size());
  }
  std::size_t num_exits() const { return exit_probs.size(); }
};

/// Run `model` (eval mode, no tape) over `samples` restricted to `devices`,
/// with the given device-activity mask.
ExitEval evaluate_exits(DdnnModel& model,
                        const std::vector<data::MvmcSample>& samples,
                        const std::vector<int>& devices,
                        const std::vector<bool>& active,
                        std::size_t batch_size = 64);

/// All devices healthy.
ExitEval evaluate_exits(DdnnModel& model,
                        const std::vector<data::MvmcSample>& samples,
                        const std::vector<int>& devices,
                        std::size_t batch_size = 64);

/// Accuracy when 100% of samples exit at `exit_index` (the paper's Local /
/// Edge / Cloud Accuracy measures).
double exit_accuracy(const ExitEval& eval, std::size_t exit_index);

/// Per-sample decision of a threshold policy.
struct SampleDecision {
  int exit_taken = 0;             // index into exit_probs
  std::int64_t prediction = 0;    // argmax at that exit
  double entropy = 0.0;           // normalized entropy at the taken exit
};

/// The paper's Overall Accuracy: each sample exits at the first exit whose
/// normalized entropy is <= that exit's threshold; the last exit always
/// classifies. `thresholds` has one entry per non-final exit.
struct PolicyResult {
  double overall_accuracy = 0.0;
  std::vector<double> exit_fraction;  // per exit, sums to 1
  std::vector<SampleDecision> decisions;

  /// Fraction exited at the first (local) exit.
  double local_exit_fraction() const {
    return exit_fraction.empty() ? 0.0 : exit_fraction.front();
  }
};

/// `criterion` selects the confidence measure (the paper uses normalized
/// entropy; the others back the entropy-criterion ablation).
PolicyResult apply_policy(const ExitEval& eval,
                          const std::vector<double>& thresholds,
                          ConfidenceCriterion criterion =
                              ConfidenceCriterion::kNormalizedEntropy);

/// Grid-search the local-exit threshold (2-exit models) for the best
/// overall accuracy; ties prefer the larger threshold (more local exits,
/// less communication). Returns the chosen threshold.
double search_threshold_best_overall(const ExitEval& eval, double step = 0.05);

/// Smallest grid threshold whose local-exit fraction reaches
/// `target_fraction` (used by the paper's Figure 9 setup, ~75% local).
double search_threshold_for_local_fraction(const ExitEval& eval,
                                           double target_fraction,
                                           double step = 0.01);

/// Joint grid search over all non-final exit thresholds (any number of
/// exits; the 3-exit device–edge–cloud configurations need a (T_local,
/// T_edge) pair). Maximizes overall accuracy; among equally accurate grids,
/// prefers the one exiting more samples at lower tiers (less communication
/// and latency). Grid size is step^-(num_exits-1) policy evaluations on the
/// cached probabilities.
std::vector<double> search_thresholds_best_overall(const ExitEval& eval,
                                                   double step = 0.1);

/// Individual Accuracy (paper Section III-F): classify ALL samples
/// (including frames where the object is absent) with the standalone
/// per-device model.
double individual_accuracy(IndividualModel& model,
                           const std::vector<data::MvmcSample>& samples,
                           int device, std::size_t batch_size = 64);

}  // namespace ddnn::core
