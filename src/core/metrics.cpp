#include "core/metrics.hpp"

#include "util/error.hpp"

namespace ddnn::core {

ReliabilityCounters& ReliabilityCounters::operator+=(
    const ReliabilityCounters& other) {
  drops += other.drops;
  retries += other.retries;
  timeouts += other.timeouts;
  degraded_exits += other.degraded_exits;
  dead_samples += other.dead_samples;
  return *this;
}

Table ReliabilityCounters::to_table() const {
  Table table({"Drops", "Retries", "Timeouts", "Degraded", "Dead"});
  table.add_row({std::to_string(drops), std::to_string(retries),
                 std::to_string(timeouts), std::to_string(degraded_exits),
                 std::to_string(dead_samples)});
  return table;
}

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes * num_classes), 0) {
  DDNN_CHECK(num_classes >= 2, "need at least two classes");
}

void ConfusionMatrix::add(std::int64_t truth, std::int64_t prediction) {
  DDNN_CHECK(truth >= 0 && truth < num_classes_,
             "truth label " << truth << " out of range [0, " << num_classes_
                            << ")");
  DDNN_CHECK(prediction >= 0 && prediction < num_classes_,
             "prediction " << prediction << " out of range [0, "
                           << num_classes_ << ")");
  ++counts_[static_cast<std::size_t>(truth * num_classes_ + prediction)];
  ++total_;
}

void ConfusionMatrix::add_all(const std::vector<std::int64_t>& truths,
                              const std::vector<std::int64_t>& predictions) {
  DDNN_CHECK(truths.size() == predictions.size(),
             "truth/prediction size mismatch");
  for (std::size_t i = 0; i < truths.size(); ++i) {
    add(truths[i], predictions[i]);
  }
}

std::int64_t ConfusionMatrix::count(std::int64_t truth,
                                    std::int64_t prediction) const {
  DDNN_CHECK(truth >= 0 && truth < num_classes_ && prediction >= 0 &&
                 prediction < num_classes_,
             "index (" << truth << ", " << prediction
                       << ") out of range [0, " << num_classes_ << ")");
  return counts_[static_cast<std::size_t>(truth * num_classes_ + prediction)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::int64_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::int64_t cls) const {
  std::int64_t predicted = 0;
  for (int t = 0; t < num_classes_; ++t) predicted += count(t, cls);
  return predicted == 0 ? 0.0
                        : static_cast<double>(count(cls, cls)) /
                              static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::int64_t cls) const {
  std::int64_t actual = 0;
  for (int p = 0; p < num_classes_; ++p) actual += count(cls, p);
  return actual == 0 ? 0.0
                     : static_cast<double>(count(cls, cls)) /
                           static_cast<double>(actual);
}

double ConfusionMatrix::macro_recall() const {
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) sum += recall(c);
  return sum / static_cast<double>(num_classes_);
}

Table ConfusionMatrix::to_table(
    const std::vector<std::string>& class_names) const {
  auto name = [&](int c) {
    return c < static_cast<int>(class_names.size())
               ? class_names[static_cast<std::size_t>(c)]
               : std::to_string(c);
  };
  std::vector<std::string> headers{"truth \\ pred"};
  for (int c = 0; c < num_classes_; ++c) headers.push_back(name(c));
  headers.push_back("recall");
  Table table(std::move(headers));
  for (int t = 0; t < num_classes_; ++t) {
    std::vector<std::string> row{name(t)};
    for (int p = 0; p < num_classes_; ++p) {
      row.push_back(std::to_string(count(t, p)));
    }
    row.push_back(Table::num(100.0 * recall(t), 1) + "%");
    table.add_row(std::move(row));
  }
  std::vector<std::string> prec{"precision"};
  for (int p = 0; p < num_classes_; ++p) {
    prec.push_back(Table::num(100.0 * precision(p), 1) + "%");
  }
  prec.push_back(Table::num(100.0 * accuracy(), 1) + "% acc");
  table.add_row(std::move(prec));
  return table;
}

}  // namespace ddnn::core
