// Classification metrics beyond plain accuracy: confusion matrix with
// per-class precision/recall. Used by the benches and examples to show how
// the dataset's class imbalance (paper Figure 6) is handled by each exit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace ddnn::core {

/// Counters for the reliability layer (fault injection, retries, graceful
/// degradation). Aggregated per run by dist::HierarchyRuntime and printable
/// wherever a run summary is shown.
struct ReliabilityCounters {
  std::int64_t drops = 0;      ///< transmission attempts lost in flight
  std::int64_t retries = 0;    ///< re-transmissions after a timed-out attempt
  std::int64_t timeouts = 0;   ///< sends abandoned after exhausting retries
  std::int64_t degraded_exits = 0;  ///< samples classified via a fallback route
  std::int64_t dead_samples = 0;    ///< samples no tier could classify

  bool any() const {
    return drops != 0 || retries != 0 || timeouts != 0 ||
           degraded_exits != 0 || dead_samples != 0;
  }

  ReliabilityCounters& operator+=(const ReliabilityCounters& other);

  /// One-row table: Drops | Retries | Timeouts | Degraded | Dead.
  Table to_table() const;
};

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(std::int64_t truth, std::int64_t prediction);

  /// Add a whole batch of decisions.
  void add_all(const std::vector<std::int64_t>& truths,
               const std::vector<std::int64_t>& predictions);

  std::int64_t count(std::int64_t truth, std::int64_t prediction) const;
  std::int64_t total() const { return total_; }

  double accuracy() const;
  /// TP / (TP + FP); 0 when the class is never predicted.
  double precision(std::int64_t cls) const;
  /// TP / (TP + FN); 0 when the class never occurs.
  double recall(std::int64_t cls) const;
  /// Unweighted mean of per-class recall (robust to class imbalance).
  double macro_recall() const;

  /// Render with per-class rows; `class_names[i]` labels class i (falls back
  /// to indices when empty).
  Table to_table(const std::vector<std::string>& class_names = {}) const;

 private:
  int num_classes_;
  std::vector<std::int64_t> counts_;  // row = truth, col = prediction
  std::int64_t total_ = 0;
};

}  // namespace ddnn::core
