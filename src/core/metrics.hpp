// Classification metrics beyond plain accuracy: confusion matrix with
// per-class precision/recall. Used by the benches and examples to show how
// the dataset's class imbalance (paper Figure 6) is handled by each exit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace ddnn::core {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(std::int64_t truth, std::int64_t prediction);

  /// Add a whole batch of decisions.
  void add_all(const std::vector<std::int64_t>& truths,
               const std::vector<std::int64_t>& predictions);

  std::int64_t count(std::int64_t truth, std::int64_t prediction) const;
  std::int64_t total() const { return total_; }

  double accuracy() const;
  /// TP / (TP + FP); 0 when the class is never predicted.
  double precision(std::int64_t cls) const;
  /// TP / (TP + FN); 0 when the class never occurs.
  double recall(std::int64_t cls) const;
  /// Unweighted mean of per-class recall (robust to class imbalance).
  double macro_recall() const;

  /// Render with per-class rows; `class_names[i]` labels class i (falls back
  /// to indices when empty).
  Table to_table(const std::vector<std::string>& class_names = {}) const;

 private:
  int num_classes_;
  std::vector<std::int64_t> counts_;  // row = truth, col = prediction
  std::int64_t total_ = 0;
};

}  // namespace ddnn::core
