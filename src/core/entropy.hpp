// Normalized-entropy confidence criterion (paper Section III-D).
//
//   eta(x) = -sum_i x_i log x_i / log |C|
//
// eta is 0 for a one-hot (fully confident) distribution and 1 for the
// uniform distribution, which makes the exit threshold T directly
// interpretable. A sample exits at an exit point iff eta <= T; otherwise it
// falls back to the next exit up the hierarchy (the last exit always
// classifies).
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace ddnn::core {

/// Normalized entropy of a probability vector (values >= 0, summing to ~1).
/// Terms with x_i == 0 contribute 0. Result is clamped to [0, 1] to absorb
/// floating-point wobble.
double normalized_entropy(std::span<const float> probs);

/// Normalized entropy of row `row` of a [N, C] probability matrix.
double normalized_entropy_row(const Tensor& probs, std::int64_t row);

/// Raw (BranchyNet-style) entropy in nats, computed directly and clamped
/// only to its own range [0, log C] — not derived from normalized_entropy,
/// whose [0, 1] clamp and divide/multiply round-trip distort values near
/// the boundaries.
double unnormalized_entropy(std::span<const float> probs);

/// Exit decision: confident enough to classify here?
inline bool should_exit(double eta, double threshold) {
  return eta <= threshold;
}

/// Confidence criteria for the exit decision. The paper uses normalized
/// entropy (its Section III-D argues it is easier to interpret and to search
/// over than BranchyNet's unnormalized entropy); the other two are provided
/// for the ablation in bench_ablation_entropy.
enum class ConfidenceCriterion {
  kNormalizedEntropy,    // the paper's eta(x), in [0, 1]
  kUnnormalizedEntropy,  // BranchyNet's H(x), in [0, log |C|]
  kMaxProbability,       // 1 - max_i x_i, in [0, 1 - 1/|C|]
};

std::string to_string(ConfidenceCriterion criterion);

/// Confidence score under `criterion`; smaller always means more confident,
/// so the exit rule is uniformly `score <= T`.
double confidence_score(std::span<const float> probs,
                        ConfidenceCriterion criterion);

/// Score of row `row` of a [N, C] probability matrix.
double confidence_score_row(const Tensor& probs, std::int64_t row,
                            ConfidenceCriterion criterion);

/// Largest possible score under `criterion` for `num_classes` classes (the
/// upper end of the threshold search range).
double max_confidence_score(std::int64_t num_classes,
                            ConfidenceCriterion criterion);

}  // namespace ddnn::core
