#include "core/entropy.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ddnn::core {

namespace {

/// Shannon entropy in nats, unclamped.
double entropy_nats(std::span<const float> probs) {
  DDNN_CHECK(probs.size() >= 2, "entropy needs at least two classes");
  double h = 0.0;
  for (const float p : probs) {
    DDNN_CHECK(p >= -1e-6f, "negative probability " << p);
    if (p > 0.0f) h -= static_cast<double>(p) * std::log(static_cast<double>(p));
  }
  return h;
}

}  // namespace

double normalized_entropy(std::span<const float> probs) {
  const double h = entropy_nats(probs);
  const double norm = std::log(static_cast<double>(probs.size()));
  return std::clamp(h / norm, 0.0, 1.0);
}

double unnormalized_entropy(std::span<const float> probs) {
  // Raw entropy, clamped only to its own range [0, log C]. Deriving it as
  // normalized_entropy * log C would round-trip through a divide/multiply
  // and clamp in normalized units, distorting values near the boundaries.
  const double h = entropy_nats(probs);
  return std::clamp(h, 0.0, std::log(static_cast<double>(probs.size())));
}

double normalized_entropy_row(const Tensor& probs, std::int64_t row) {
  DDNN_CHECK(probs.ndim() == 2, "expected [N, C] probabilities");
  const std::int64_t c = probs.dim(1);
  return normalized_entropy(
      std::span<const float>(probs.data() + row * c, static_cast<std::size_t>(c)));
}

std::string to_string(ConfidenceCriterion criterion) {
  switch (criterion) {
    case ConfidenceCriterion::kNormalizedEntropy: return "normalized-entropy";
    case ConfidenceCriterion::kUnnormalizedEntropy:
      return "unnormalized-entropy";
    case ConfidenceCriterion::kMaxProbability: return "max-probability";
  }
  return "?";
}

double confidence_score(std::span<const float> probs,
                        ConfidenceCriterion criterion) {
  switch (criterion) {
    case ConfidenceCriterion::kNormalizedEntropy:
      return normalized_entropy(probs);
    case ConfidenceCriterion::kUnnormalizedEntropy:
      return unnormalized_entropy(probs);
    case ConfidenceCriterion::kMaxProbability: {
      DDNN_CHECK(!probs.empty(), "empty probability vector");
      float mx = probs[0];
      for (const float p : probs) mx = std::max(mx, p);
      return 1.0 - static_cast<double>(mx);
    }
  }
  DDNN_CHECK(false, "unreachable");
  return 0.0;
}

double confidence_score_row(const Tensor& probs, std::int64_t row,
                            ConfidenceCriterion criterion) {
  DDNN_CHECK(probs.ndim() == 2, "expected [N, C] probabilities");
  const std::int64_t c = probs.dim(1);
  return confidence_score(
      std::span<const float>(probs.data() + row * c,
                             static_cast<std::size_t>(c)),
      criterion);
}

double max_confidence_score(std::int64_t num_classes,
                            ConfidenceCriterion criterion) {
  DDNN_CHECK(num_classes >= 2, "need at least two classes");
  switch (criterion) {
    case ConfidenceCriterion::kNormalizedEntropy: return 1.0;
    case ConfidenceCriterion::kUnnormalizedEntropy:
      return std::log(static_cast<double>(num_classes));
    case ConfidenceCriterion::kMaxProbability:
      return 1.0 - 1.0 / static_cast<double>(num_classes);
  }
  DDNN_CHECK(false, "unreachable");
  return 0.0;
}

}  // namespace ddnn::core
