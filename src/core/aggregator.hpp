// Aggregation schemes for fusing multi-device (and multi-edge) branches
// (paper Section III-B).
//
//   MP  max pooling      — componentwise max over branches
//   AP  average pooling  — componentwise mean over branches
//   CC  concatenation    — concatenate, then a learned linear map back to
//                          the input dimensionality ("additional linear
//                          layer" in the paper; a 1x1 convolution for
//                          feature maps)
//
// Two aggregator flavours exist because the two fusion points see different
// data: the local aggregator fuses |C|-dim class-score vectors (so MP's
// per-class max across devices is meaningful), while the cloud aggregator
// fuses binary feature maps (where CC preserves the most information for
// further NN processing). Both accept an activity mask so failed devices
// (paper Section IV-G) degrade gracefully: MP/AP aggregate the surviving
// branches; CC zero-fills the missing slots.
#pragma once

#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace ddnn::core {

/// MP / AP / CC are the paper's schemes; GA (gated average) is this
/// repository's future-work extension: a learned softmax gate per branch,
/// renormalized over the surviving branches under failures.
enum class AggKind { kMaxPool, kAvgPool, kConcat, kGatedAvg };

/// "MP" / "AP" / "CC" / "GA".
std::string to_string(AggKind kind);

/// Parse "MP" / "AP" / "CC" / "GA"; throws ddnn::Error otherwise.
AggKind parse_agg_kind(const std::string& name);

/// Fuses per-branch class-score vectors [B, C] into one [B, C].
class VectorAggregator : public nn::Module {
 public:
  VectorAggregator(AggKind kind, int num_branches, std::int64_t dims, Rng& rng);

  /// `active[i]` false drops branch i. At least one branch must be active.
  nn::Variable forward(const std::vector<nn::Variable>& branches,
                       const std::vector<bool>& active);

  /// Convenience: all branches active.
  nn::Variable forward(const std::vector<nn::Variable>& branches);

  /// Inference-engine path; bit-identical to forward().
  Tensor infer(const std::vector<Tensor>& branches,
               const std::vector<bool>& active, infer::Workspace& ws);

  AggKind kind() const { return kind_; }

 private:
  AggKind kind_;
  int num_branches_;
  std::int64_t dims_;
  std::unique_ptr<nn::Linear> projection_;  // CC only
  nn::Variable gates_;                      // GA only
};

/// Fuses per-branch feature maps [B, F, H, W] into one [B, F, H, W].
class FeatureMapAggregator : public nn::Module {
 public:
  FeatureMapAggregator(AggKind kind, int num_branches, std::int64_t channels,
                       Rng& rng);

  nn::Variable forward(const std::vector<nn::Variable>& branches,
                       const std::vector<bool>& active);
  nn::Variable forward(const std::vector<nn::Variable>& branches);

  /// Inference-engine path; bit-identical to forward().
  Tensor infer(const std::vector<Tensor>& branches,
               const std::vector<bool>& active, infer::Workspace& ws);

  AggKind kind() const { return kind_; }

 private:
  AggKind kind_;
  int num_branches_;
  std::int64_t channels_;
  std::unique_ptr<nn::Conv2d> projection_;  // CC only: 1x1 conv
  nn::Variable gates_;                      // GA only
};

}  // namespace ddnn::core
