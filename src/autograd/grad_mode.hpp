// Global autograd on/off switch.
//
// Inference paths (threshold search, distributed runtime, accuracy
// measurement) run under NoGradGuard so that no tape is recorded and
// activation buffers are freed as soon as the forward pass moves on.
#pragma once

namespace ddnn::autograd {

/// True when operations should record the backward tape.
bool grad_enabled();

/// RAII guard disabling tape recording within a scope. Nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace ddnn::autograd
