// Reverse-mode automatic differentiation.
//
// A Variable is a cheap handle to a tape Node holding a value tensor, an
// optional gradient buffer, the parent Variables it was computed from, and a
// backward function that distributes the node's gradient to its parents.
// Variable::backward() performs a topological traversal of the reachable
// graph. Gradients ACCUMULATE across consumers, which is what makes the
// multi-exit DDNN losses (device features feeding both the local exit and
// the cloud branch) "just work".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ddnn::autograd {

class Variable;

struct Node {
  Tensor value;
  Tensor grad;  // lazily allocated on first accumulation
  bool requires_grad = false;
  std::vector<Variable> parents;
  /// Reads `grad` of this node and accumulates into the parents' grads.
  std::function<void(Node&)> backward_fn;
  std::string op = "leaf";
  /// Mutation counter for `value`, bumped on every in-place parameter
  /// update (optimizer step, state load). Derived caches — e.g. the
  /// bit-packed weights of binarized layers — compare against it to decide
  /// whether they are stale. Any other code that mutates a parameter's
  /// storage in place must call Variable::bump_version() itself.
  std::uint64_t version = 0;
};

class Variable {
 public:
  /// Undefined handle.
  Variable() = default;

  /// Leaf variable wrapping `value`.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// Trainable leaf (requires_grad = true).
  static Variable parameter(Tensor value);

  /// Non-leaf node produced by an op (used by ops.cpp).
  static Variable op_result(Tensor value, std::string op,
                            std::vector<Variable> parents,
                            std::function<void(Node&)> backward_fn);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& value();
  const Shape& shape() const { return value().shape(); }
  std::int64_t dim(std::int64_t i) const { return value().dim(i); }
  std::int64_t numel() const { return value().numel(); }

  bool requires_grad() const;

  /// Gradient buffer; allocated zero-filled on first access.
  Tensor& grad();
  bool has_grad() const;
  void zero_grad();

  /// Accumulate `g` into this node's gradient.
  void accumulate_grad(const Tensor& g);

  /// Mutation counter of the underlying value (see Node::version).
  std::uint64_t version() const;
  /// Record an in-place mutation of the value, invalidating derived caches.
  void bump_version();

  /// Run reverse-mode differentiation from this node. The node must be a
  /// scalar (numel == 1); its gradient is seeded with 1.
  void backward();

  /// Same value, but detached from the tape (leaf, requires_grad = false).
  Variable detach() const;

  Node* node() const { return node_.get(); }

  /// Identity of the underlying node (for graph tests).
  bool same_node(const Variable& other) const { return node_ == other.node_; }

 private:
  std::shared_ptr<Node> node_;
};

}  // namespace ddnn::autograd
