#include "autograd/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "autograd/grad_mode.hpp"

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::autograd {

namespace {

/// Accumulate `g` into parent `i` of node `n` if that parent wants grads.
void accumulate_to(Node& n, std::size_t i, const Tensor& g) {
  Variable& p = n.parents[i];
  if (p.requires_grad()) p.accumulate_grad(g);
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  Tensor out = ops::add(a.value(), b.value());
  return Variable::op_result(std::move(out), "add", {a, b}, [](Node& n) {
    accumulate_to(n, 0, n.grad);
    accumulate_to(n, 1, n.grad);
  });
}

Variable sub(const Variable& a, const Variable& b) {
  Tensor out = ops::sub(a.value(), b.value());
  return Variable::op_result(std::move(out), "sub", {a, b}, [](Node& n) {
    accumulate_to(n, 0, n.grad);
    if (n.parents[1].requires_grad()) {
      n.parents[1].accumulate_grad(ops::neg(n.grad));
    }
  });
}

Variable mul(const Variable& a, const Variable& b) {
  Tensor out = ops::mul(a.value(), b.value());
  return Variable::op_result(std::move(out), "mul", {a, b}, [](Node& n) {
    if (n.parents[0].requires_grad()) {
      n.parents[0].accumulate_grad(ops::mul(n.grad, n.parents[1].value()));
    }
    if (n.parents[1].requires_grad()) {
      n.parents[1].accumulate_grad(ops::mul(n.grad, n.parents[0].value()));
    }
  });
}

Variable mul_scalar(const Variable& a, float s) {
  Tensor out = ops::mul_scalar(a.value(), s);
  return Variable::op_result(std::move(out), "mul_scalar", {a}, [s](Node& n) {
    if (n.parents[0].requires_grad()) {
      n.parents[0].accumulate_grad(ops::mul_scalar(n.grad, s));
    }
  });
}

Variable linear(const Variable& x, const Variable& w, const Variable& b) {
  DDNN_CHECK(x.value().ndim() == 2 && w.value().ndim() == 2,
             "linear expects 2-D x and w");
  DDNN_CHECK(x.dim(1) == w.dim(1), "linear: in features " << x.dim(1)
                                                          << " vs " << w.dim(1));
  Tensor out = ops::matmul_nt(x.value(), w.value());
  std::vector<Variable> parents{x, w};
  if (b.defined()) {
    DDNN_CHECK(b.value().ndim() == 1 && b.dim(0) == w.dim(0),
               "linear: bias shape mismatch");
    out = ops::add_row_vector(out, b.value());
    parents.push_back(b);
  }
  return Variable::op_result(std::move(out), "linear", std::move(parents),
                             [](Node& n) {
    const Tensor& g = n.grad;
    if (n.parents[0].requires_grad()) {
      n.parents[0].accumulate_grad(ops::matmul(g, n.parents[1].value()));
    }
    if (n.parents[1].requires_grad()) {
      n.parents[1].accumulate_grad(ops::matmul_tn(g, n.parents[0].value()));
    }
    if (n.parents.size() == 3 && n.parents[2].requires_grad()) {
      n.parents[2].accumulate_grad(ops::sum_rows(g));
    }
  });
}

Variable matmul(const Variable& a, const Variable& b) {
  Tensor out = ops::matmul(a.value(), b.value());
  return Variable::op_result(std::move(out), "matmul", {a, b}, [](Node& n) {
    const Tensor& g = n.grad;
    if (n.parents[0].requires_grad()) {
      n.parents[0].accumulate_grad(ops::matmul_nt(g, n.parents[1].value()));
    }
    if (n.parents[1].requires_grad()) {
      n.parents[1].accumulate_grad(ops::matmul_tn(n.parents[0].value(), g));
    }
  });
}

namespace {

/// Reorder [N*OH*OW, F] -> [N, F, OH, OW].
Tensor rows_to_nchw(const Tensor& mat, std::int64_t n, std::int64_t f,
                    std::int64_t oh, std::int64_t ow) {
  Tensor out(Shape{n, f, oh, ow});
  const float* pm = mat.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        const float* row = pm + ((b * oh + y) * ow + x) * f;
        for (std::int64_t c = 0; c < f; ++c) {
          po[((b * f + c) * oh + y) * ow + x] = row[c];
        }
      }
    }
  }
  return out;
}

/// Reorder [N, F, OH, OW] -> [N*OH*OW, F].
Tensor nchw_to_rows(const Tensor& t) {
  const std::int64_t n = t.dim(0), f = t.dim(1), oh = t.dim(2), ow = t.dim(3);
  Tensor out(Shape{n * oh * ow, f});
  const float* pt = t.data();
  float* po = out.data();
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < f; ++c) {
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t x = 0; x < ow; ++x) {
          po[((b * oh + y) * ow + x) * f + c] =
              pt[((b * f + c) * oh + y) * ow + x];
        }
      }
    }
  }
  return out;
}

}  // namespace

Variable conv2d(const Variable& x, const Variable& w, const Variable& b,
                std::int64_t stride, std::int64_t pad) {
  DDNN_CHECK(x.value().ndim() == 4 && w.value().ndim() == 4,
             "conv2d expects 4-D x and w");
  DDNN_CHECK(x.dim(1) == w.dim(1), "conv2d: channels " << x.dim(1) << " vs "
                                                       << w.dim(1));
  Conv2dGeometry g{.in_channels = x.dim(1),
                   .in_h = x.dim(2),
                   .in_w = x.dim(3),
                   .kernel_h = w.dim(2),
                   .kernel_w = w.dim(3),
                   .stride = stride,
                   .pad = pad};
  const std::int64_t n = x.dim(0), f = w.dim(0);
  const std::int64_t oh = g.out_h(), ow = g.out_w();

  auto cols = std::make_shared<Tensor>(im2col(x.value(), g));
  const Tensor wmat = w.value().reshape(Shape{f, g.patch_size()});
  Tensor outmat = ops::matmul_nt(*cols, wmat);  // [N*OH*OW, F]
  if (b.defined()) {
    DDNN_CHECK(b.value().ndim() == 1 && b.dim(0) == f,
               "conv2d: bias shape mismatch");
    outmat = ops::add_row_vector(outmat, b.value());
  }
  Tensor out = rows_to_nchw(outmat, n, f, oh, ow);

  std::vector<Variable> parents{x, w};
  if (b.defined()) parents.push_back(b);
  return Variable::op_result(
      std::move(out), "conv2d", std::move(parents),
      [g, n, f, cols](Node& node) {
        const Tensor gmat = nchw_to_rows(node.grad);  // [N*OH*OW, F]
        const Tensor wmat =
            node.parents[1].value().reshape(Shape{f, g.patch_size()});
        if (node.parents[0].requires_grad()) {
          const Tensor gcols = ops::matmul(gmat, wmat);
          node.parents[0].accumulate_grad(col2im(gcols, g, n));
        }
        if (node.parents[1].requires_grad()) {
          const Tensor gw = ops::matmul_tn(gmat, *cols);  // [F, CK]
          node.parents[1].accumulate_grad(
              gw.reshape(node.parents[1].value().shape()));
        }
        if (node.parents.size() == 3 && node.parents[2].requires_grad()) {
          node.parents[2].accumulate_grad(ops::sum_rows(gmat));
        }
      });
}

Variable max_pool2d(const Variable& x, std::int64_t kernel, std::int64_t stride,
                    std::int64_t pad) {
  DDNN_CHECK(x.value().ndim() == 4, "max_pool2d expects [N, C, H, W]");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + 2 * pad - kernel) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kernel) / stride + 1;
  DDNN_CHECK(oh > 0 && ow > 0, "max_pool2d: empty output");

  Tensor out(Shape{n, c, oh, ow});
  // Flat index (within [N, C, H, W]) of each window's winner, for backward.
  auto argmax = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(n * c * oh * ow));
  const float* px = x.value().data();
  float* po = out.data();
  std::int64_t oidx = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = px + (b * c + ch) * h * w;
      const std::int64_t plane_off = (b * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = -1;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            const std::int64_t iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= w) continue;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_off + iy * w + ix;
              }
            }
          }
          DDNN_ASSERT(best_idx >= 0);  // window always overlaps the image
          po[oidx] = best;
          (*argmax)[static_cast<std::size_t>(oidx)] = best_idx;
        }
      }
    }
  }
  return Variable::op_result(std::move(out), "max_pool2d", {x},
                             [argmax](Node& node) {
    if (!node.parents[0].requires_grad()) return;
    Tensor& gx = node.parents[0].grad();
    const float* g = node.grad.data();
    for (std::size_t i = 0; i < argmax->size(); ++i) {
      gx[(*argmax)[i]] += g[static_cast<std::int64_t>(i)];
    }
  });
}

namespace {

/// View [N, F] as N rows of F features with spatial size 1, and
/// [N, C, H, W] as per-channel statistics over N*H*W.
struct BnLayout {
  std::int64_t batch;
  std::int64_t channels;
  std::int64_t spatial;
};

BnLayout bn_layout(const Tensor& x) {
  if (x.ndim() == 2) return {x.dim(0), x.dim(1), 1};
  DDNN_CHECK(x.ndim() == 4, "batch_norm expects [N, F] or [N, C, H, W]");
  return {x.dim(0), x.dim(1), x.dim(2) * x.dim(3)};
}

inline float& bn_at(Tensor& t, const BnLayout& l, std::int64_t b,
                    std::int64_t c, std::int64_t s) {
  return t[(b * l.channels + c) * l.spatial + s];
}

inline float bn_at(const Tensor& t, const BnLayout& l, std::int64_t b,
                   std::int64_t c, std::int64_t s) {
  return t[(b * l.channels + c) * l.spatial + s];
}

}  // namespace

Variable batch_norm(const Variable& x, const Variable& gamma,
                    const Variable& beta, Tensor running_mean,
                    Tensor running_var, bool training, float momentum,
                    float eps) {
  const BnLayout l = bn_layout(x.value());
  DDNN_CHECK(gamma.value().ndim() == 1 && gamma.dim(0) == l.channels,
             "batch_norm: gamma shape mismatch");
  DDNN_CHECK(beta.value().ndim() == 1 && beta.dim(0) == l.channels,
             "batch_norm: beta shape mismatch");
  DDNN_CHECK(running_mean.numel() == l.channels &&
                 running_var.numel() == l.channels,
             "batch_norm: running stats shape mismatch");

  const std::int64_t count = l.batch * l.spatial;
  DDNN_CHECK(count > 0, "batch_norm on empty batch");

  Tensor mean(Shape{l.channels});
  Tensor var(Shape{l.channels});
  if (training) {
    DDNN_CHECK(count > 1 || !grad_enabled(),
               "batch_norm training with a single element per channel");
    for (std::int64_t c = 0; c < l.channels; ++c) {
      double m = 0.0;
      for (std::int64_t b = 0; b < l.batch; ++b) {
        for (std::int64_t s = 0; s < l.spatial; ++s) {
          m += bn_at(x.value(), l, b, c, s);
        }
      }
      m /= static_cast<double>(count);
      double v = 0.0;
      for (std::int64_t b = 0; b < l.batch; ++b) {
        for (std::int64_t s = 0; s < l.spatial; ++s) {
          const double d = bn_at(x.value(), l, b, c, s) - m;
          v += d * d;
        }
      }
      v /= static_cast<double>(count);  // biased variance, like torch BN
      mean[c] = static_cast<float>(m);
      var[c] = static_cast<float>(v);
      running_mean[c] = (1.0f - momentum) * running_mean[c] +
                        momentum * static_cast<float>(m);
      running_var[c] =
          (1.0f - momentum) * running_var[c] + momentum * static_cast<float>(v);
    }
  } else {
    mean = running_mean.clone();
    var = running_var.clone();
  }

  // Cache x_hat: it appears in both the output and the backward pass. The
  // normalization itself runs through the shared ops::batch_norm_apply
  // kernel — the same compiled code the inference engine calls.
  auto x_hat = std::make_shared<Tensor>(Shape(x.value().shape()));
  Tensor inv_std(Shape{l.channels});
  Tensor out(x.value().shape());
  ops::batch_norm_apply(x.value(), gamma.value(), beta.value(), mean, var, eps,
                        inv_std, *x_hat, out);

  return Variable::op_result(
      std::move(out), "batch_norm", {x, gamma, beta},
      [l, x_hat, inv_std, training, count](Node& node) {
        const Tensor& g = node.grad;
        // Per-channel reductions shared by all three gradients.
        Tensor sum_g(Shape{l.channels});
        Tensor sum_gx(Shape{l.channels});
        for (std::int64_t b = 0; b < l.batch; ++b) {
          for (std::int64_t c = 0; c < l.channels; ++c) {
            for (std::int64_t s = 0; s < l.spatial; ++s) {
              const float gv = bn_at(g, l, b, c, s);
              sum_g[c] += gv;
              sum_gx[c] += gv * bn_at(*x_hat, l, b, c, s);
            }
          }
        }
        if (node.parents[1].requires_grad()) {
          node.parents[1].accumulate_grad(sum_gx);
        }
        if (node.parents[2].requires_grad()) {
          node.parents[2].accumulate_grad(sum_g);
        }
        if (node.parents[0].requires_grad()) {
          Tensor gx(node.parents[0].value().shape());
          const Tensor& gamma_v = node.parents[1].value();
          const float inv_count = 1.0f / static_cast<float>(count);
          for (std::int64_t b = 0; b < l.batch; ++b) {
            for (std::int64_t c = 0; c < l.channels; ++c) {
              const float k = gamma_v[c] * inv_std[c];
              for (std::int64_t s = 0; s < l.spatial; ++s) {
                const float gv = bn_at(g, l, b, c, s);
                if (training) {
                  const float xh = bn_at(*x_hat, l, b, c, s);
                  bn_at(gx, l, b, c, s) =
                      k * (gv - inv_count * sum_g[c] -
                           xh * inv_count * sum_gx[c]);
                } else {
                  bn_at(gx, l, b, c, s) = k * gv;
                }
              }
            }
          }
          node.parents[0].accumulate_grad(gx);
        }
      });
}

Variable binarize(const Variable& x) {
  Tensor out = ops::sign(x.value());
  return Variable::op_result(std::move(out), "binarize", {x}, [](Node& node) {
    if (!node.parents[0].requires_grad()) return;
    const Tensor& xv = node.parents[0].value();
    Tensor gx(xv.shape());
    for (std::int64_t i = 0; i < xv.numel(); ++i) {
      gx[i] = std::fabs(xv[i]) <= 1.0f ? node.grad[i] : 0.0f;
    }
    node.parents[0].accumulate_grad(gx);
  });
}

Variable relu(const Variable& x) {
  Tensor out = ops::clamp(x.value(), 0.0f,
                          std::numeric_limits<float>::infinity());
  return Variable::op_result(std::move(out), "relu", {x}, [](Node& node) {
    if (!node.parents[0].requires_grad()) return;
    const Tensor& xv = node.parents[0].value();
    Tensor gx(xv.shape());
    for (std::int64_t i = 0; i < xv.numel(); ++i) {
      gx[i] = xv[i] > 0.0f ? node.grad[i] : 0.0f;
    }
    node.parents[0].accumulate_grad(gx);
  });
}

Variable reshape(const Variable& x, Shape shape) {
  Tensor out = x.value().reshape(std::move(shape));
  return Variable::op_result(std::move(out), "reshape", {x}, [](Node& node) {
    if (!node.parents[0].requires_grad()) return;
    node.parents[0].accumulate_grad(
        node.grad.reshape(node.parents[0].value().shape()));
  });
}

Variable flatten2d(const Variable& x) {
  DDNN_CHECK(x.value().ndim() >= 2, "flatten2d needs at least 2 dims");
  const std::int64_t n = x.dim(0);
  return reshape(x, Shape{n, x.numel() / n});
}

namespace {

struct ConcatLayout {
  std::int64_t outer;
  std::int64_t inner;
  std::vector<std::int64_t> extents;  // per-input extent along the axis
};

ConcatLayout concat_layout(const std::vector<Variable>& xs, std::int64_t axis) {
  DDNN_CHECK(!xs.empty(), "concat of zero tensors");
  const Shape& s0 = xs[0].shape();
  DDNN_CHECK(axis >= 0 && axis < static_cast<std::int64_t>(s0.ndim()),
             "concat: bad axis " << axis);
  ConcatLayout l{1, 1, {}};
  for (std::int64_t d = 0; d < axis; ++d) l.outer *= s0[static_cast<std::size_t>(d)];
  for (std::size_t d = static_cast<std::size_t>(axis) + 1; d < s0.ndim(); ++d) {
    l.inner *= s0[d];
  }
  for (const auto& x : xs) {
    const Shape& s = x.shape();
    DDNN_CHECK(s.ndim() == s0.ndim(), "concat: rank mismatch");
    for (std::size_t d = 0; d < s.ndim(); ++d) {
      if (static_cast<std::int64_t>(d) == axis) continue;
      DDNN_CHECK(s[d] == s0[d], "concat: dim " << d << " mismatch");
    }
    l.extents.push_back(s[static_cast<std::size_t>(axis)]);
  }
  return l;
}

}  // namespace

Variable concat(const std::vector<Variable>& xs, std::int64_t axis) {
  const ConcatLayout l = concat_layout(xs, axis);
  std::int64_t total = 0;
  for (auto e : l.extents) total += e;
  std::vector<std::int64_t> out_dims = xs[0].shape().dims();
  out_dims[static_cast<std::size_t>(axis)] = total;
  Tensor out{Shape(out_dims)};

  float* po = out.data();
  std::int64_t offset = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const float* px = xs[i].value().data();
    const std::int64_t ext = l.extents[i];
    for (std::int64_t o = 0; o < l.outer; ++o) {
      std::copy_n(px + o * ext * l.inner, ext * l.inner,
                  po + (o * total + offset) * l.inner);
    }
    offset += ext;
  }

  return Variable::op_result(
      std::move(out), "concat", xs, [l, total](Node& node) {
        const float* g = node.grad.data();
        std::int64_t offset = 0;
        for (std::size_t i = 0; i < node.parents.size(); ++i) {
          const std::int64_t ext = l.extents[i];
          if (node.parents[i].requires_grad()) {
            Tensor gi(node.parents[i].value().shape());
            float* pg = gi.data();
            for (std::int64_t o = 0; o < l.outer; ++o) {
              std::copy_n(g + (o * total + offset) * l.inner, ext * l.inner,
                          pg + o * ext * l.inner);
            }
            node.parents[i].accumulate_grad(gi);
          }
          offset += ext;
        }
      });
}

namespace {

void check_same_shapes(const std::vector<Variable>& xs, const char* op) {
  DDNN_CHECK(!xs.empty(), op << " of zero tensors");
  for (const auto& x : xs) {
    DDNN_CHECK(x.shape() == xs[0].shape(), op << ": shape mismatch");
  }
}

}  // namespace

Variable stack_max(const std::vector<Variable>& xs) {
  check_same_shapes(xs, "stack_max");
  const std::int64_t n = xs[0].numel();
  Tensor out = xs[0].value().clone();
  auto winner = std::make_shared<std::vector<std::uint16_t>>(
      static_cast<std::size_t>(n), 0);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const float* px = xs[i].value().data();
    float* po = out.data();
    for (std::int64_t j = 0; j < n; ++j) {
      if (px[j] > po[j]) {
        po[j] = px[j];
        (*winner)[static_cast<std::size_t>(j)] =
            static_cast<std::uint16_t>(i);
      }
    }
  }
  return Variable::op_result(std::move(out), "stack_max", xs,
                             [winner, n](Node& node) {
    for (std::int64_t j = 0; j < n; ++j) {
      Variable& p = node.parents[(*winner)[static_cast<std::size_t>(j)]];
      if (p.requires_grad()) p.grad()[j] += node.grad[j];
    }
  });
}

Variable stack_mean(const std::vector<Variable>& xs) {
  check_same_shapes(xs, "stack_mean");
  const float inv = 1.0f / static_cast<float>(xs.size());
  Tensor out(xs[0].shape());
  for (const auto& x : xs) ops::axpy_into(out, inv, x.value());
  return Variable::op_result(std::move(out), "stack_mean", xs,
                             [inv](Node& node) {
    for (auto& p : node.parents) {
      if (p.requires_grad()) ops::axpy_into(p.grad(), inv, node.grad);
    }
  });
}

Variable stack_gated_sum(const std::vector<Variable>& xs,
                         const Variable& gates,
                         const std::vector<bool>& active) {
  check_same_shapes(xs, "stack_gated_sum");
  DDNN_CHECK(gates.value().ndim() == 1 &&
                 gates.numel() == static_cast<std::int64_t>(xs.size()),
             "stack_gated_sum: need one gate per branch");
  DDNN_CHECK(active.size() == xs.size(), "stack_gated_sum: mask size");

  // Softmax over the ACTIVE gates only (numerically stabilized).
  const auto n = xs.size();
  std::vector<float> weights(n, 0.0f);
  float max_gate = -std::numeric_limits<float>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) {
      max_gate = std::max(max_gate, gates.value()[static_cast<std::int64_t>(i)]);
      any = true;
    }
  }
  DDNN_CHECK(any, "stack_gated_sum with every branch inactive");
  double denom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    weights[i] = std::exp(gates.value()[static_cast<std::int64_t>(i)] -
                          max_gate);
    denom += weights[i];
  }
  for (auto& w : weights) w = static_cast<float>(w / denom);

  Tensor out(xs[0].shape());
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) ops::axpy_into(out, weights[i], xs[i].value());
  }

  std::vector<Variable> parents = xs;
  parents.push_back(gates);
  auto active_copy = std::make_shared<std::vector<bool>>(active);
  auto weights_copy = std::make_shared<std::vector<float>>(weights);
  return Variable::op_result(
      std::move(out), "stack_gated_sum", std::move(parents),
      [active_copy, weights_copy, n](Node& node) {
        const Tensor& gout = node.grad;
        const auto& act = *active_copy;
        const auto& w = *weights_copy;
        // Branch gradients: dL/dx_i = w_i * gout.
        for (std::size_t i = 0; i < n; ++i) {
          if (act[i] && node.parents[i].requires_grad()) {
            ops::axpy_into(node.parents[i].grad(), w[i], gout);
          }
        }
        // Gate gradients through the masked softmax:
        //   s_i = <gout, x_i>;  dL/dg_i = w_i * (s_i - sum_j w_j s_j).
        Variable& gates_var = node.parents[n];
        if (!gates_var.requires_grad()) return;
        std::vector<float> s(n, 0.0f);
        double weighted_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (!act[i]) continue;
          const Tensor& xi = node.parents[i].value();
          double dot = 0.0;
          for (std::int64_t j = 0; j < xi.numel(); ++j) {
            dot += static_cast<double>(gout[j]) * xi[j];
          }
          s[i] = static_cast<float>(dot);
          weighted_sum += w[i] * dot;
        }
        Tensor ggate(Shape{static_cast<std::int64_t>(n)});
        for (std::size_t i = 0; i < n; ++i) {
          if (act[i]) {
            ggate[static_cast<std::int64_t>(i)] =
                w[i] * (s[i] - static_cast<float>(weighted_sum));
          }
        }
        gates_var.accumulate_grad(ggate);
      });
}

Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<std::int64_t>& labels) {
  DDNN_CHECK(logits.value().ndim() == 2, "softmax_cross_entropy: 2-D logits");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  DDNN_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "softmax_cross_entropy: " << labels.size() << " labels for " << n
                                       << " rows");
  auto probs = std::make_shared<Tensor>(ops::softmax_rows(logits.value()));
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    DDNN_CHECK(y >= 0 && y < c, "label " << y << " out of range [0, " << c
                                         << ")");
    loss -= std::log(std::max(probs->at(i, y), 1e-12f));
  }
  loss /= static_cast<double>(n);

  auto labels_copy = std::make_shared<std::vector<std::int64_t>>(labels);
  return Variable::op_result(
      Tensor::scalar(static_cast<float>(loss)), "softmax_cross_entropy",
      {logits}, [probs, labels_copy, n, c](Node& node) {
        if (!node.parents[0].requires_grad()) return;
        const float gscale = node.grad[0] / static_cast<float>(n);
        Tensor gx = probs->clone();
        for (std::int64_t i = 0; i < n; ++i) {
          gx.at(i, (*labels_copy)[static_cast<std::size_t>(i)]) -= 1.0f;
        }
        node.parents[0].accumulate_grad(ops::mul_scalar(gx, gscale));
      });
}

}  // namespace ddnn::autograd
