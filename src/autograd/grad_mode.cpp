#include "autograd/grad_mode.hpp"

namespace ddnn::autograd {

namespace {
thread_local bool g_grad_enabled = true;
}

bool grad_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

}  // namespace ddnn::autograd
