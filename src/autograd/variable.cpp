#include "autograd/variable.hpp"

#include <algorithm>
#include <unordered_set>

#include "autograd/grad_mode.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace ddnn::autograd {

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  DDNN_CHECK(value.defined(), "Variable from undefined tensor");
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Variable Variable::parameter(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/true);
}

Variable Variable::op_result(Tensor value, std::string op,
                             std::vector<Variable> parents,
                             std::function<void(Node&)> backward_fn) {
  Variable v(std::move(value), /*requires_grad=*/false);
  Node& n = *v.node_;
  n.op = std::move(op);
  if (!grad_enabled()) return v;  // inference: no tape
  bool any = false;
  for (const auto& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any = true;
      break;
    }
  }
  if (!any) return v;  // constant subgraph: no tape
  n.requires_grad = true;
  n.parents = std::move(parents);
  n.backward_fn = std::move(backward_fn);
  return v;
}

const Tensor& Variable::value() const {
  DDNN_CHECK(defined(), "value() of undefined Variable");
  return node_->value;
}

Tensor& Variable::value() {
  DDNN_CHECK(defined(), "value() of undefined Variable");
  return node_->value;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

Tensor& Variable::grad() {
  DDNN_CHECK(defined(), "grad() of undefined Variable");
  if (!node_->grad.defined()) node_->grad = Tensor::zeros(node_->value.shape());
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

void Variable::zero_grad() {
  if (has_grad()) node_->grad.zero();
}

std::uint64_t Variable::version() const {
  DDNN_CHECK(defined(), "version() of undefined Variable");
  return node_->version;
}

void Variable::bump_version() {
  DDNN_CHECK(defined(), "bump_version() of undefined Variable");
  ++node_->version;
}

void Variable::accumulate_grad(const Tensor& g) {
  DDNN_CHECK(g.shape() == value().shape(),
             "gradient shape " << g.shape().to_string()
                               << " does not match value shape "
                               << value().shape().to_string());
  ops::axpy_into(grad(), 1.0f, g);
}

void Variable::backward() {
  DDNN_CHECK(defined(), "backward() of undefined Variable");
  DDNN_CHECK(numel() == 1, "backward() requires a scalar root, got shape "
                               << shape().to_string());
  DDNN_CHECK(requires_grad(), "backward() on a node that requires no grad");

  // Topological order by iterative post-order DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].node();
      if (p != nullptr && p->requires_grad && !visited.contains(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  grad().fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad.defined()) n->backward_fn(*n);
  }
}

Variable Variable::detach() const {
  DDNN_CHECK(defined(), "detach() of undefined Variable");
  return Variable(node_->value, /*requires_grad=*/false);
}

}  // namespace ddnn::autograd
