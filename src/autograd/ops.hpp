// Differentiable operations on Variables.
//
// Every function computes the forward value eagerly and, when grad mode is
// on and some input requires grad, records a backward closure on the tape.
// The op set is exactly what the DDNN models need: dense/conv linear algebra,
// pooling, batch norm, binarization with a straight-through estimator, the
// aggregation primitives (concat / elementwise max / elementwise mean across
// device branches) and the softmax cross-entropy loss.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.hpp"
#include "tensor/im2col.hpp"

namespace ddnn::autograd {

// --------------------------------------------------------------- arithmetic

Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable mul_scalar(const Variable& a, float s);

// ------------------------------------------------------------ linear algebra

/// y = x * w^T + b with x: [N, in], w: [out, in], b: [out] (pass an undefined
/// Variable to skip the bias).
Variable linear(const Variable& x, const Variable& w, const Variable& b);

/// Plain matrix product (mostly for tests): [m,k] x [k,n].
Variable matmul(const Variable& a, const Variable& b);

// -------------------------------------------------------------- convolution

/// 2-D convolution. x: [N, C, H, W], w: [F, C, KH, KW], b: [F] or undefined.
Variable conv2d(const Variable& x, const Variable& w, const Variable& b,
                std::int64_t stride, std::int64_t pad);

/// Max pooling over spatial windows (per channel). Ties break to the first
/// (row-major) element, and its gradient routes only to the winner.
Variable max_pool2d(const Variable& x, std::int64_t kernel, std::int64_t stride,
                    std::int64_t pad);

// ---------------------------------------------------------------- batch norm

/// Batch normalization for [N, F] (per feature) or [N, C, H, W] (per
/// channel). `running_mean` / `running_var` share storage with the layer and
/// are updated in training mode; eval mode normalizes with them instead of
/// batch statistics.
Variable batch_norm(const Variable& x, const Variable& gamma,
                    const Variable& beta, Tensor running_mean,
                    Tensor running_var, bool training, float momentum,
                    float eps);

// ------------------------------------------------------------- nonlinearity

/// sign(x) in {-1, +1} with the straight-through estimator: the gradient
/// passes where |x| <= 1 and is zero elsewhere (hard-tanh gate).
Variable binarize(const Variable& x);

Variable relu(const Variable& x);

// ------------------------------------------------------------ shape plumbing

Variable reshape(const Variable& x, Shape shape);

/// [N, ...] -> [N, prod(...)]
Variable flatten2d(const Variable& x);

// ----------------------------------------------------- aggregation primitives

/// Concatenate along `axis` (all other dims must match).
Variable concat(const std::vector<Variable>& xs, std::int64_t axis);

/// Elementwise maximum across same-shaped inputs (paper's MP aggregation).
Variable stack_max(const std::vector<Variable>& xs);

/// Elementwise mean across same-shaped inputs (paper's AP aggregation).
Variable stack_mean(const std::vector<Variable>& xs);

/// Learned soft gating across same-shaped inputs (the "other aggregation
/// schemes" extension of the paper's future work):
///
///   out = sum_i w_i * x_i,   w = softmax(gates restricted to active)
///
/// `gates` is a [n] parameter vector (one scalar per branch). Inactive
/// branches are excluded from the softmax, so the surviving weights always
/// sum to 1 — the gated counterpart of masked average pooling.
Variable stack_gated_sum(const std::vector<Variable>& xs,
                         const Variable& gates,
                         const std::vector<bool>& active);

// --------------------------------------------------------------------- loss

/// Mean softmax cross-entropy over the batch. logits: [N, C]; labels in
/// [0, C). Returns a scalar.
Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<std::int64_t>& labels);

}  // namespace ddnn::autograd
