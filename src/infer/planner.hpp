// Static memory planner for the inference engine.
//
// A section's kernel chain is recorded once per (section, input-signature):
// every workspace acquire() defines an interval, every note_use() extends
// its lifetime, and pack_plan() assigns byte offsets so that intervals with
// overlapping lifetimes never share storage. The packed arena size is the
// section's activation peak — the number the paper's tier placement cares
// about — and replaying the plan executes the whole section inside one
// preallocated buffer with zero heap allocations.
//
// A hard memory budget (set_mem_budget, CLI --mem-budget) bounds that peak:
// sections whose packed plan exceeds the budget are sliced along the batch
// dimension (see run_section in workspace.hpp) into chunks whose plans fit.
//
// Poison mode (set_poison / DDNN_POISON=1) fills the arena with signaling
// NaNs before every replay, so any stale view that escaped a previous
// section invocation reads NaNs instead of silently-recycled data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ddnn::infer {

/// Which hierarchy tier a section executes on; selects the
/// runtime.mem_peak.* stat the planner attributes its peak to.
enum class SectionTier { kDevice, kEdge, kCloud };

/// "device" / "edge" / "cloud".
std::string to_string(SectionTier tier);

/// Lifetime of one intermediate tensor, in acquire ticks. `def` is the tick
/// of its acquire; `last_use` the tick of the most recent acquire at the
/// time it was last noted as a kernel input (inclusive). Two intervals may
/// share arena bytes iff [def, last_use] ranges are disjoint.
struct PlanInterval {
  std::int64_t numel = 0;
  int def = 0;
  int last_use = 0;
  std::int64_t offset = 0;  ///< assigned by pack_plan, in floats
};

/// A packed section plan: offset-assigned intervals plus the three sizes
/// the tests relate (packed <= naive, packed >= live peak).
struct MemoryPlan {
  std::vector<PlanInterval> intervals;
  std::int64_t arena_floats = 0;      ///< packed peak (arena size)
  std::int64_t naive_floats = 0;      ///< sum of all interval sizes
  std::int64_t live_peak_floats = 0;  ///< max over ticks of live floats
};

/// Greedy best-fit decreasing offset assignment: intervals sorted by size
/// (ties by def), each placed at the lowest offset that collides with no
/// already-placed lifetime-overlapping interval. Always <= the naive
/// sum-of-sizes layout and >= the live-peak lower bound; exhaustively
/// optimal on the small fixtures checked in tests.
MemoryPlan pack_plan(std::vector<PlanInterval> intervals);

/// True when the two lifetimes intersect (inclusive ranges).
bool intervals_overlap(const PlanInterval& a, const PlanInterval& b);

/// Process-unique id for one model-section instance; keys the per-thread
/// plan caches so sections of distinct model instances never collide.
int next_section_id();

// ----------------------------------------------------------------- budget

/// Hard cap on a section's planned activation arena, in bytes; 0 means
/// unlimited. Sections over the cap are batch-sliced (CLI --mem-budget).
void set_mem_budget(std::int64_t bytes);
std::int64_t mem_budget();

/// Bumped on every set_mem_budget(); cached slicing decisions revalidate
/// against it.
std::uint64_t mem_budget_epoch();

// ----------------------------------------------------------------- poison

/// Fill arenas with signaling NaNs before each replay (also DDNN_POISON=1),
/// so stale views escaping a section are caught instead of reading recycled
/// data.
void set_poison(bool on);
/// Drop the set_poison override and fall back to the DDNN_POISON env value
/// (lets test guards restore the environment's choice).
void clear_poison_override();
bool poison_enabled();

// ------------------------------------------------------------- peak stats

/// Largest executed per-section arena, per tier, since the last reset.
/// Maxima are order-independent, so the numbers are identical across
/// DDNN_THREADS and reruns.
struct PlanStats {
  std::int64_t device_peak_bytes = 0;
  std::int64_t edge_peak_bytes = 0;
  std::int64_t cloud_peak_bytes = 0;

  std::int64_t peak(SectionTier tier) const;
};

void note_plan_peak(SectionTier tier, std::int64_t bytes);
PlanStats plan_stats();
void reset_plan_stats();

}  // namespace ddnn::infer
