#include "infer/engine.hpp"

#include <atomic>

#include "util/env.hpp"
#include "util/error.hpp"

namespace ddnn::infer {

namespace {

// -1 = no override, else static_cast<int>(EngineKind).
std::atomic<int> g_override{-1};

EngineKind env_engine_kind() {
  static const EngineKind kind =
      parse_engine_kind(env_string("DDNN_ENGINE", "plan"));
  return kind;
}

}  // namespace

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAutograd: return "autograd";
    case EngineKind::kPlan: return "plan";
  }
  return "?";
}

EngineKind parse_engine_kind(const std::string& name) {
  if (name == "autograd") return EngineKind::kAutograd;
  if (name == "plan") return EngineKind::kPlan;
  DDNN_CHECK(false, "unknown inference engine '" << name
                                                 << "' (want autograd|plan)");
  return EngineKind::kPlan;  // unreachable
}

EngineKind engine_kind() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<EngineKind>(o);
  return env_engine_kind();
}

void set_engine_kind(EngineKind kind) {
  g_override.store(static_cast<int>(kind), std::memory_order_relaxed);
}

void clear_engine_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

}  // namespace ddnn::infer
