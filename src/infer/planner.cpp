#include "infer/planner.hpp"

#include <algorithm>
#include <atomic>

#include "util/env.hpp"
#include "util/error.hpp"

namespace ddnn::infer {

namespace {

std::atomic<int> g_next_section_id{0};
std::atomic<std::int64_t> g_mem_budget{0};
std::atomic<std::uint64_t> g_mem_budget_epoch{0};
std::atomic<int> g_poison_override{-1};  // -1 = env, else 0/1

std::atomic<std::int64_t> g_peak_device{0};
std::atomic<std::int64_t> g_peak_edge{0};
std::atomic<std::int64_t> g_peak_cloud{0};

std::atomic<std::int64_t>& peak_slot(SectionTier tier) {
  switch (tier) {
    case SectionTier::kDevice: return g_peak_device;
    case SectionTier::kEdge: return g_peak_edge;
    case SectionTier::kCloud: return g_peak_cloud;
  }
  return g_peak_cloud;  // unreachable
}

bool env_poison() {
  static const bool on = env_bool("DDNN_POISON", false);
  return on;
}

}  // namespace

std::string to_string(SectionTier tier) {
  switch (tier) {
    case SectionTier::kDevice: return "device";
    case SectionTier::kEdge: return "edge";
    case SectionTier::kCloud: return "cloud";
  }
  return "?";
}

bool intervals_overlap(const PlanInterval& a, const PlanInterval& b) {
  return a.def <= b.last_use && b.def <= a.last_use;
}

MemoryPlan pack_plan(std::vector<PlanInterval> intervals) {
  MemoryPlan plan;
  plan.intervals = std::move(intervals);

  // Live-peak lower bound: sweep acquire ticks, +numel at def, -numel after
  // last_use.
  int max_tick = 0;
  for (const auto& iv : plan.intervals) {
    DDNN_CHECK(iv.numel > 0 && iv.def >= 0 && iv.last_use >= iv.def,
               "pack_plan: malformed interval");
    max_tick = std::max(max_tick, iv.last_use);
    plan.naive_floats += iv.numel;
  }
  std::vector<std::int64_t> delta(static_cast<std::size_t>(max_tick) + 2, 0);
  for (const auto& iv : plan.intervals) {
    delta[static_cast<std::size_t>(iv.def)] += iv.numel;
    delta[static_cast<std::size_t>(iv.last_use) + 1] -= iv.numel;
  }
  std::int64_t live = 0;
  for (std::int64_t d : delta) {
    live += d;
    plan.live_peak_floats = std::max(plan.live_peak_floats, live);
  }

  // Greedy best-fit decreasing: place big intervals first, each at the
  // lowest offset free of every already-placed lifetime-overlapping one.
  std::vector<std::size_t> order(plan.intervals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ia = plan.intervals[a];
    const auto& ib = plan.intervals[b];
    if (ia.numel != ib.numel) return ia.numel > ib.numel;
    return ia.def < ib.def;
  });
  std::vector<std::size_t> placed;
  placed.reserve(order.size());
  for (std::size_t idx : order) {
    auto& iv = plan.intervals[idx];
    std::vector<const PlanInterval*> conflicts;
    for (std::size_t p : placed) {
      if (intervals_overlap(iv, plan.intervals[p])) {
        conflicts.push_back(&plan.intervals[p]);
      }
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const PlanInterval* a, const PlanInterval* b) {
                return a->offset < b->offset;
              });
    std::int64_t off = 0;
    for (const PlanInterval* c : conflicts) {
      if (off + iv.numel <= c->offset) break;  // fits in the gap before c
      off = std::max(off, c->offset + c->numel);
    }
    iv.offset = off;
    plan.arena_floats = std::max(plan.arena_floats, off + iv.numel);
    placed.push_back(idx);
  }
  return plan;
}

int next_section_id() {
  return g_next_section_id.fetch_add(1, std::memory_order_relaxed);
}

void set_mem_budget(std::int64_t bytes) {
  DDNN_CHECK(bytes >= 0, "mem budget must be >= 0, got " << bytes);
  g_mem_budget.store(bytes, std::memory_order_relaxed);
  g_mem_budget_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t mem_budget() {
  return g_mem_budget.load(std::memory_order_relaxed);
}

std::uint64_t mem_budget_epoch() {
  return g_mem_budget_epoch.load(std::memory_order_relaxed);
}

void set_poison(bool on) {
  g_poison_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void clear_poison_override() {
  g_poison_override.store(-1, std::memory_order_relaxed);
}

bool poison_enabled() {
  const int o = g_poison_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return env_poison();
}

std::int64_t PlanStats::peak(SectionTier tier) const {
  switch (tier) {
    case SectionTier::kDevice: return device_peak_bytes;
    case SectionTier::kEdge: return edge_peak_bytes;
    case SectionTier::kCloud: return cloud_peak_bytes;
  }
  return 0;  // unreachable
}

void note_plan_peak(SectionTier tier, std::int64_t bytes) {
  auto& slot = peak_slot(tier);
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < bytes &&
         !slot.compare_exchange_weak(cur, bytes, std::memory_order_relaxed)) {
  }
}

PlanStats plan_stats() {
  PlanStats s;
  s.device_peak_bytes = g_peak_device.load(std::memory_order_relaxed);
  s.edge_peak_bytes = g_peak_edge.load(std::memory_order_relaxed);
  s.cloud_peak_bytes = g_peak_cloud.load(std::memory_order_relaxed);
  return s;
}

void reset_plan_stats() {
  g_peak_device.store(0, std::memory_order_relaxed);
  g_peak_edge.store(0, std::memory_order_relaxed);
  g_peak_cloud.store(0, std::memory_order_relaxed);
}

}  // namespace ddnn::infer
