#include "infer/workspace.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace ddnn::infer {

namespace {

using SectionBody =
    std::function<std::vector<Tensor>(const std::vector<Tensor>&, Workspace&)>;

/// Plan-cache signature: input shapes plus the caller's extra parameters.
std::string section_sig(const std::vector<Tensor>& inputs,
                        const std::string& extra) {
  std::string sig;
  for (const auto& t : inputs) {
    sig += t.shape().to_string();
    sig += ';';
  }
  sig += '|';
  sig += extra;
  return sig;
}

std::vector<Tensor> narrow_inputs(const std::vector<Tensor>& inputs,
                                  std::int64_t start, std::int64_t len) {
  std::vector<Tensor> out;
  out.reserve(inputs.size());
  for (const auto& t : inputs) out.push_back(t.narrow0(start, len));
  return out;
}

}  // namespace

Tensor Workspace::acquire(const Shape& shape) {
  DDNN_CHECK(shape.numel() > 0,
             "workspace acquire of empty shape " << shape.to_string());
  switch (mode_) {
    case Mode::kIdle: {
      ++alloc_count_;
      return Tensor(shape);
    }
    case Mode::kRecord: {
      ++alloc_count_;
      Tensor t{shape};
      PlanInterval iv;
      iv.numel = shape.numel();
      iv.def = rec_tick_++;
      iv.last_use = iv.def;
      rec_index_[t.data()] = rec_intervals_.size();
      rec_intervals_.push_back(iv);
      rec_tensors_.push_back(t);
      return t;
    }
    case Mode::kReplay: {
      DDNN_CHECK(replay_cursor_ < replay_plan_->intervals.size(),
                 "memory plan divergence in section '"
                     << replay_name_ << "': more acquires than planned");
      const PlanInterval& iv = replay_plan_->intervals[replay_cursor_];
      DDNN_CHECK(iv.numel == shape.numel(),
                 "memory plan divergence in section '"
                     << replay_name_ << "': acquire " << replay_cursor_
                     << " wants " << shape.numel() << " floats, plan has "
                     << iv.numel);
      ++replay_cursor_;
      return Tensor::view_into(replay_arena_, iv.offset, shape);
    }
  }
  return Tensor();  // unreachable
}

Tensor Workspace::acquire_zero(const Shape& shape) {
  Tensor t = acquire(shape);
  t.zero();
  return t;
}

void Workspace::note_use(const Tensor& t) {
  if (mode_ != Mode::kRecord || !t.defined()) return;
  const auto it = rec_index_.find(t.data());
  if (it == rec_index_.end()) return;  // section input or parameter
  PlanInterval& iv = rec_intervals_[it->second];
  iv.last_use = std::max(iv.last_use, rec_tick_ - 1);
}

void Workspace::clear_plans() {
  plans_.clear();
  slices_.clear();
}

Workspace::PlanEntry& Workspace::plan_for(const SectionDesc& desc,
                                          const std::string& sig,
                                          const std::vector<Tensor>& inputs,
                                          const SectionBody& body,
                                          std::vector<Tensor>* outs) {
  const PlanKey key{desc.id, sig};
  const auto it = plans_.find(key);
  if (it != plans_.end()) return it->second;

  // Record: run the body once with fresh heap tensors, logging an interval
  // per acquire. Outputs get a final note_use so nothing the caller will
  // copy out can be packed under a later buffer.
  rec_intervals_.clear();
  rec_index_.clear();
  rec_tensors_.clear();
  rec_tick_ = 0;
  mode_ = Mode::kRecord;
  std::vector<Tensor> result;
  try {
    result = body(inputs, *this);
    for (const auto& o : result) note_use(o);
  } catch (...) {
    mode_ = Mode::kIdle;
    rec_intervals_.clear();
    rec_index_.clear();
    rec_tensors_.clear();
    throw;
  }
  mode_ = Mode::kIdle;
  rec_index_.clear();
  rec_tensors_.clear();

  PlanEntry entry;
  entry.plan = pack_plan(std::move(rec_intervals_));
  rec_intervals_.clear();
  entry.arena =
      Tensor(Shape{std::max<std::int64_t>(entry.plan.arena_floats, 1)});
  ++alloc_count_;  // the arena itself; replays then allocate nothing
  *outs = std::move(result);
  return plans_.emplace(key, std::move(entry)).first->second;
}

std::vector<Tensor> Workspace::replay(const SectionDesc& desc, PlanEntry& entry,
                                      const std::vector<Tensor>& inputs,
                                      const SectionBody& body) {
  if (poison_enabled()) {
    entry.arena.fill(std::numeric_limits<float>::signaling_NaN());
  }
  mode_ = Mode::kReplay;
  replay_plan_ = &entry.plan;
  replay_arena_ = entry.arena;
  replay_name_ = desc.name;
  replay_cursor_ = 0;
  std::vector<Tensor> result;
  try {
    result = body(inputs, *this);
  } catch (...) {
    mode_ = Mode::kIdle;
    replay_plan_ = nullptr;
    replay_arena_ = Tensor();
    throw;
  }
  DDNN_CHECK(replay_cursor_ == entry.plan.intervals.size(),
             "memory plan divergence in section '"
                 << desc.name << "': " << replay_cursor_
                 << " acquires vs planned " << entry.plan.intervals.size());
  mode_ = Mode::kIdle;
  replay_plan_ = nullptr;
  replay_arena_ = Tensor();
  return result;
}

std::vector<Tensor> run_section(Workspace& ws, const SectionDesc& desc,
                                const std::vector<Tensor>& inputs,
                                const std::string& extra_sig,
                                const SectionBody& body) {
  DDNN_CHECK(ws.mode_ == Workspace::Mode::kIdle,
             "nested run_section in section '" << desc.name << "'");
  const std::string sig = section_sig(inputs, extra_sig);
  const std::int64_t budget = mem_budget();
  const std::int64_t n = inputs.empty() ? 0 : inputs[0].dim(0);

  // Decide the slice row count: shrink until the chunk's packed plan fits
  // the budget (planning itself runs on the host and is not budgeted).
  std::int64_t rows = n;
  if (budget > 0 && n >= 1) {
    for (const auto& t : inputs) {
      DDNN_CHECK(t.ndim() >= 1 && t.dim(0) == n,
                 "section '" << desc.name
                             << "': inputs disagree on the batch dimension, "
                                "cannot slice under --mem-budget");
    }
    const Workspace::PlanKey skey{desc.id, sig};
    const std::uint64_t epoch = mem_budget_epoch();
    const auto sit = ws.slices_.find(skey);
    if (sit != ws.slices_.end() && sit->second.epoch == epoch) {
      rows = sit->second.rows;
    } else {
      while (true) {
        const auto chunk = rows == n ? inputs : narrow_inputs(inputs, 0, rows);
        std::vector<Tensor> scratch;
        const auto& entry = ws.plan_for(desc, section_sig(chunk, extra_sig),
                                        chunk, body, &scratch);
        const std::int64_t bytes =
            entry.plan.arena_floats * static_cast<std::int64_t>(sizeof(float));
        if (bytes <= budget) break;
        DDNN_CHECK(rows > 1, "section '"
                                 << desc.name << "' needs " << bytes
                                 << " B of planned activation memory even at "
                                    "slice rows=1, over --mem-budget "
                                 << budget << " B");
        const std::int64_t next = rows * budget / bytes;
        rows = std::clamp<std::int64_t>(next, 1, rows - 1);
      }
      ws.slices_[skey] = {rows, epoch};
    }
  }

  if (rows == n) {
    // Full-batch execution against the section's own plan.
    std::vector<Tensor> outs;
    Workspace::PlanEntry& entry = ws.plan_for(desc, sig, inputs, body, &outs);
    if (outs.empty()) outs = ws.replay(desc, entry, inputs, body);
    note_plan_peak(desc.tier, entry.plan.arena_floats *
                                  static_cast<std::int64_t>(sizeof(float)));
    DDNN_CHECK(!outs.empty(), "section '" << desc.name << "' has no outputs");
    // Deep-copy out of the arena: returned tensors outlive the section.
    for (auto& o : outs) o = o.clone();
    if (poison_enabled()) {
      // Any view that escaped the section now reads signaling NaNs.
      entry.arena.fill(std::numeric_limits<float>::signaling_NaN());
    }
    return outs;
  }

  // Sliced execution: run `rows`-row chunks (each with its own plan, all
  // under the budget) and stitch full-batch outputs. Every kernel in the
  // engine is row-independent, so the stitched bits match the full pass.
  std::vector<Tensor> full;
  std::vector<std::int64_t> row_strides;
  for (std::int64_t start = 0; start < n; start += rows) {
    const std::int64_t len = std::min(rows, n - start);
    const auto chunk = narrow_inputs(inputs, start, len);
    std::vector<Tensor> outs;
    Workspace::PlanEntry& entry =
        ws.plan_for(desc, section_sig(chunk, extra_sig), chunk, body, &outs);
    if (outs.empty()) outs = ws.replay(desc, entry, chunk, body);
    note_plan_peak(desc.tier, entry.plan.arena_floats *
                                  static_cast<std::int64_t>(sizeof(float)));
    DDNN_CHECK(!outs.empty(), "section '" << desc.name << "' has no outputs");
    if (start == 0) {
      for (const auto& o : outs) {
        DDNN_CHECK(o.defined() && o.ndim() >= 1 && o.dim(0) == len,
                   "section '" << desc.name
                               << "' output is not batch-sliceable");
        std::vector<std::int64_t> dims = o.shape().dims();
        dims[0] = n;
        full.emplace_back(Shape(std::move(dims)));
        row_strides.push_back(o.numel() / len);
      }
    }
    DDNN_CHECK(outs.size() == full.size(),
               "section '" << desc.name << "' output count changed per chunk");
    for (std::size_t i = 0; i < outs.size(); ++i) {
      DDNN_CHECK(outs[i].dim(0) == len &&
                     outs[i].numel() == len * row_strides[i],
                 "section '" << desc.name << "' output shape changed per chunk");
      std::copy_n(outs[i].data(), outs[i].numel(),
                  full[i].data() + start * row_strides[i]);
    }
    if (poison_enabled()) {
      entry.arena.fill(std::numeric_limits<float>::signaling_NaN());
    }
  }
  return full;
}

std::vector<Tensor> run_section(const SectionDesc& desc,
                                const std::vector<Tensor>& inputs,
                                const std::string& extra_sig,
                                const SectionBody& body) {
  return run_section(tls_workspace(), desc, inputs, extra_sig, body);
}

std::int64_t Workspace::arena_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& [key, entry] : plans_) {
    bytes += entry.plan.arena_floats * static_cast<std::int64_t>(sizeof(float));
  }
  return bytes;
}

Workspace& tls_workspace() {
  static thread_local Workspace ws;
  return ws;
}

std::int64_t thread_arena_bytes() { return tls_workspace().arena_bytes(); }

}  // namespace ddnn::infer
