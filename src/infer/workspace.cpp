#include "infer/workspace.hpp"

#include "util/error.hpp"

namespace ddnn::infer {

Tensor Workspace::acquire(const Shape& shape) {
  DDNN_CHECK(shape.numel() > 0, "workspace acquire of empty shape "
                                    << shape.to_string());
  if (cursor_ == slots_.size()) slots_.emplace_back(shape);
  Tensor& slot = slots_[cursor_++];
  if (slot.numel() != shape.numel()) slot = Tensor(shape);
  return slot.reshape(shape);  // shares the slot's storage
}

Tensor Workspace::acquire_zero(const Shape& shape) {
  Tensor t = acquire(shape);
  t.zero();
  return t;
}

Workspace& tls_workspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace ddnn::infer
