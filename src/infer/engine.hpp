// Inference-engine selection.
//
// Two execution paths produce a model's eval-mode outputs:
//   kAutograd — the original path: every forward goes through autograd ops
//               and Variable graph nodes (NoGradGuard suppresses the tape
//               but not the per-op allocations).
//   kPlan     — the dedicated engine: each block lowers to a kernel plan
//               over plain Tensors with a per-thread Workspace; binary
//               conv/FC layers run on cached bit-packed weights via
//               XNOR-popcount kernels (src/tensor/bitgemm.hpp).
//
// The two are bit-identical: XNOR-popcount over ±1 operands is exact
// integer arithmetic, and every float kernel in the plan path either calls
// the same compiled function as the autograd path or accumulates the same
// terms in the same order. DDNN_ENGINE=autograd|plan (default plan) selects
// the path; set_engine_kind() overrides the environment (CLI --engine,
// tests, benchmarks).
#pragma once

#include <string>

namespace ddnn::infer {

enum class EngineKind { kAutograd, kPlan };

/// "autograd" / "plan".
std::string to_string(EngineKind kind);

/// Parse "autograd" / "plan"; throws ddnn::Error otherwise.
EngineKind parse_engine_kind(const std::string& name);

/// Active engine: the explicit override when set, else DDNN_ENGINE (default
/// "plan"). Note the caller still gates on eval mode — the plan engine never
/// runs while training or while the tape is recording.
EngineKind engine_kind();

/// Override the environment selection (CLI / tests / benchmarks).
void set_engine_kind(EngineKind kind);

/// Drop the override and fall back to DDNN_ENGINE.
void clear_engine_override();

}  // namespace ddnn::infer
