// Preallocated activation arena for the inference engine.
//
// The plan engine executes a model section as a chain of kernels over plain
// Tensors; every intermediate activation is drawn from a Workspace instead
// of being freshly allocated. A Workspace is a flat list of reusable slots
// with a cursor: acquire() hands out the next slot (reusing its storage when
// the element count matches, reallocating otherwise) and reset() rewinds the
// cursor without freeing anything. After the first forward of a given batch
// size the arena is warm and a section runs with zero heap allocations.
//
// Lifetime contract:
//  - reset() is called once at section entry; every tensor handed out since
//    the previous reset() is invalidated (its storage will be reused).
//  - Anything that must outlive the section (exit logits, cached device
//    features) must be clone()d out before the next reset().
//  - Workspaces are per-thread (tls_workspace()); kernels inside a section
//    may still fan out over the pool because they write disjoint ranges of
//    tensors acquired by the *calling* thread.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace ddnn::infer {

class Workspace {
 public:
  /// Next slot reshaped to `shape`; contents are unspecified (reused).
  Tensor acquire(const Shape& shape);

  /// Next slot reshaped to `shape` and zero-filled (for accumulators).
  Tensor acquire_zero(const Shape& shape);

  /// Rewind the cursor; storage is kept for reuse.
  void reset() { cursor_ = 0; }

  /// Number of distinct slots ever handed out (tests/diagnostics).
  std::size_t slots() const { return slots_.size(); }

 private:
  std::vector<Tensor> slots_;
  std::size_t cursor_ = 0;
};

/// The calling thread's workspace (one arena per thread, so batch-parallel
/// evaluation workers never share slots).
Workspace& tls_workspace();

}  // namespace ddnn::infer
