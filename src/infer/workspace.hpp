// Memory-planned activation arena for the inference engine.
//
// The plan engine executes a model section as a chain of kernels over plain
// Tensors; every intermediate activation is drawn from a Workspace. Sections
// run through run_section(), which drives the workspace through one of two
// paths per (section, input-signature):
//
//  - record: the first invocation runs the body with fresh heap tensors
//    while logging a lifetime interval per acquire() (note_use() extends a
//    tensor's interval to the current tick). The intervals are packed
//    (infer/planner.hpp) into a minimal-peak arena that is cached.
//  - replay: every later invocation hands out offset views into the cached
//    arena — zero heap allocations, bounded peak, bit-identical results
//    (same kernels, same operands, different addresses).
//
// Plans are keyed by input shapes (plus a caller-provided extra signature,
// e.g. aggregator activity masks), so alternating batch sizes each get
// their own warm plan instead of thrashing reallocations.
//
// Kernel discipline: acquire the output FIRST, then note_use() every input
// that may live in the workspace, then run the kernel. The planner only
// keeps two intervals apart while their lifetimes overlap; noting an input
// before acquiring the output would let the packer alias them.
//
// Lifetime contract: tensors returned by run_section() are deep copies and
// safe to keep. Tensors handed out by acquire() are views into a recycled
// arena and die with the section invocation; poison mode (DDNN_POISON=1 or
// infer::set_poison) fills the arena with signaling NaNs before each replay
// so an escaped view is caught instead of silently reading recycled data.
//
// When a memory budget is set (infer::set_mem_budget, CLI --mem-budget),
// run_section() slices the batch dimension: it shrinks the per-chunk row
// count until the chunk's packed plan fits the budget, runs the section
// chunk by chunk, and stitches full-batch outputs — extra passes traded for
// bounded residency. Only a section whose single-row plan still exceeds the
// budget fails, with a diagnostic naming the section and both sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "infer/planner.hpp"
#include "tensor/tensor.hpp"

namespace ddnn::infer {

/// Identity of one executing section: tier (for peak stats), process-unique
/// instance id (from next_section_id(), keys the plan cache) and a stable
/// name for diagnostics.
struct SectionDesc {
  SectionTier tier = SectionTier::kDevice;
  int id = 0;
  const char* name = "section";
};

class Workspace {
 public:
  /// A tensor of `shape` with unspecified contents. Recording: a fresh heap
  /// tensor whose lifetime starts now. Replay: a view into the planned
  /// arena at this acquire's offset. Outside a section: a fresh heap tensor
  /// (lets layer kernels run standalone in tests).
  Tensor acquire(const Shape& shape);

  /// acquire() + zero fill (for accumulators).
  Tensor acquire_zero(const Shape& shape);

  /// Record that the kernel about to run reads `t`. Extends `t`'s lifetime
  /// interval to the current tick while recording; no-op for tensors not
  /// drawn from this workspace and during replay. Call AFTER acquiring the
  /// kernel's output (see the discipline note above).
  void note_use(const Tensor& t);

  /// Heap allocations ever performed by acquire() (record/idle paths only;
  /// replays allocate nothing). Pinned by the warm-reuse regression test.
  std::size_t alloc_count() const { return alloc_count_; }

  /// Cached plans (tests/diagnostics).
  std::size_t plans() const { return plans_.size(); }

  /// Total bytes of all cached plan arenas — this workspace's resident
  /// planned-activation footprint.
  std::int64_t arena_bytes() const;

  /// Drop all cached plans and arenas (tests).
  void clear_plans();

 private:
  friend std::vector<Tensor> run_section(
      Workspace& ws, const SectionDesc& desc, const std::vector<Tensor>& inputs,
      const std::string& extra_sig,
      const std::function<std::vector<Tensor>(const std::vector<Tensor>&,
                                              Workspace&)>& body);

  enum class Mode { kIdle, kRecord, kReplay };

  struct PlanEntry {
    MemoryPlan plan;
    Tensor arena;  // Shape{max(arena_floats, 1)}
  };
  struct SliceDecision {
    std::int64_t rows = 0;
    std::uint64_t epoch = 0;
  };
  using PlanKey = std::pair<int, std::string>;  // (section id, signature)

  PlanEntry& plan_for(const SectionDesc& desc, const std::string& sig,
                      const std::vector<Tensor>& inputs,
                      const std::function<std::vector<Tensor>(
                          const std::vector<Tensor>&, Workspace&)>& body,
                      std::vector<Tensor>* outs);
  std::vector<Tensor> replay(const SectionDesc& desc, PlanEntry& entry,
                             const std::vector<Tensor>& inputs,
                             const std::function<std::vector<Tensor>(
                                 const std::vector<Tensor>&, Workspace&)>& body);

  Mode mode_ = Mode::kIdle;
  std::size_t alloc_count_ = 0;

  // Recording state.
  std::vector<PlanInterval> rec_intervals_;
  std::vector<Tensor> rec_tensors_;  // keepalive: keeps data() keys unique
  std::unordered_map<const float*, std::size_t> rec_index_;
  int rec_tick_ = 0;

  // Replay state.
  const MemoryPlan* replay_plan_ = nullptr;
  const char* replay_name_ = "";
  Tensor replay_arena_;
  std::size_t replay_cursor_ = 0;

  std::map<PlanKey, PlanEntry> plans_;
  std::map<PlanKey, SliceDecision> slices_;
};

/// Execute one model section under the memory planner: record or replay the
/// plan for `inputs`' signature, slice the batch dimension when a memory
/// budget demands it, attribute the executed arena peak to `desc.tier`, and
/// return deep copies of the body's outputs. `extra_sig` folds any
/// non-shape execution parameters (e.g. aggregator activity masks) into the
/// plan key. The body must draw every intermediate from the given
/// workspace and must not invoke run_section itself.
std::vector<Tensor> run_section(
    Workspace& ws, const SectionDesc& desc, const std::vector<Tensor>& inputs,
    const std::string& extra_sig,
    const std::function<std::vector<Tensor>(const std::vector<Tensor>&,
                                            Workspace&)>& body);

/// run_section() on the calling thread's workspace.
std::vector<Tensor> run_section(
    const SectionDesc& desc, const std::vector<Tensor>& inputs,
    const std::string& extra_sig,
    const std::function<std::vector<Tensor>(const std::vector<Tensor>&,
                                            Workspace&)>& body);

/// The calling thread's workspace (one arena set per thread, so
/// batch-parallel evaluation workers never share plans or storage).
Workspace& tls_workspace();

/// arena_bytes() of the calling thread's workspace — what a server that
/// pins each connection to one thread reports as its per-connection
/// activation footprint (`ddnn serve`).
std::int64_t thread_arena_bytes();

}  // namespace ddnn::infer
