#!/usr/bin/env bash
# Fleet queueing determinism gate: run examples/fleet_sim twice — once with
# DDNN_THREADS=1 and once with DDNN_THREADS=4 — and require the windowed
# series CSV and the run ledger to be byte-identical (the ledger is compared
# after normalizing the results-dir path embedded in its "series" info
# entry). The discrete-event simulator is single-threaded on a simulated
# clock and the classify() trace pool obeys the repo-wide determinism
# contract, so any divergence is a regression. Finally the first run's
# ledger is gated against the committed bench/baselines/fleet_sim.json
# bands via scripts/check_bench.py.
#
# Usage: check_fleet_determinism.sh <fleet_sim-binary> <source-dir> <scratch-dir>
set -euo pipefail

bin="${1:?usage: check_fleet_determinism.sh <fleet_sim-binary> <source-dir> <scratch-dir>}"
src="${2:?missing source dir}"
scratch="${3:?missing scratch dir}"

rm -rf "${scratch}"
mkdir -p "${scratch}/cache"

# Short training run (the queueing network only consumes the traces); the
# weight cache is shared so both runs replay the identical trace pool.
export DDNN_EPOCHS=2
export DDNN_CACHE_DIR="${scratch}/cache"

for threads in 1 4; do
  echo "== DDNN_THREADS=${threads} ${bin}"
  DDNN_THREADS="${threads}" DDNN_RESULTS_DIR="${scratch}/r${threads}" \
    "${bin}" > "${scratch}/stdout_r${threads}.txt"
done

for f in example_fleet_sim_series.csv example_fleet_sim_policies.csv \
         example_fleet_sim_metrics.json; do
  cmp "${scratch}/r1/${f}" "${scratch}/r4/${f}"
  echo "byte-identical: ${f}"
done

# The ledgers differ only in the results-dir prefix baked into the series
# path; normalize it away before demanding byte identity.
for threads in 1 4; do
  sed "s|${scratch}/r${threads}/|RESULTS/|g" \
    "${scratch}/r${threads}/ledger.jsonl" > "${scratch}/ledger_r${threads}.norm"
done
cmp "${scratch}/ledger_r1.norm" "${scratch}/ledger_r4.norm"
echo "byte-identical: ledger.jsonl (path-normalized)"

python3 "${src}/scripts/check_bench.py" \
  --ledger "${scratch}/r1/ledger.jsonl" \
  --baselines "${src}/bench/baselines" fleet_sim
echo "fleet determinism sweep passed for DDNN_THREADS=1 and 4"
