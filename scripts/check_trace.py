#!/usr/bin/env python3
"""Validate a ddnn trace file against the Chrome trace_event schema and
cross-check its span sums against a metrics JSON export.

Usage:
    check_trace.py trace.json [metrics.json] [--series series.csv]

Schema checks (always):
  * top level is {"displayTimeUnit": ..., "traceEvents": [...]}
  * every event is "M" (thread_name metadata) or "X" (complete span) with
    integer pid/tid and, for "X", string name/cat plus numeric ts/dur >= 0
  * every "X" event's tid has a thread_name metadata entry
  * per-sample: child spans nest inside their root "sample" span's window,
    and the delivered bytes summed over its send:* spans equal the root's
    "bytes" arg exactly

Metrics cross-checks (with metrics.json, produced by --metrics-out):
  * span count == runtime.samples
  * sum of sample "bytes" args == runtime.bytes_total (exact int)
  * sum of sample "latency_s" args == runtime.total_latency_s (exact float:
    both sides accumulate the same doubles in the same order)
  * per-exit span counts == runtime.exit.* counters

Series cross-checks (with --series, produced by --series-out): every
windowed-series column whose name exactly matches a counter in the metrics
export must sum over all windows to that counter's final value — exact
integer equality, no tolerance. The series is recorded at each sample's
simulated start time by the same single-threaded loop that bumps the
counters, so the window deltas must partition the totals.
"""
import csv
import json
import sys

EPS_US = 0.01  # ts/dur are microseconds rounded to 3 decimals


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_schema(trace):
    if not isinstance(trace, dict):
        fail("top level must be an object")
    if "traceEvents" not in trace or not isinstance(trace["traceEvents"], list):
        fail("missing traceEvents array")
    named_tracks = set()
    spans = []
    for i, ev in enumerate(trace["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in ("M", "X"):
            fail(f"{where}: unexpected ph {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"{where}: {key} must be an integer")
        if ph == "M":
            if ev.get("name") != "thread_name":
                fail(f"{where}: metadata event must be thread_name")
            name = ev.get("args", {}).get("name")
            if not isinstance(name, str) or not name:
                fail(f"{where}: thread_name needs args.name")
            named_tracks.add(ev["tid"])
            continue
        for key in ("name", "cat"):
            if not isinstance(ev.get(key), str) or not ev[key]:
                fail(f"{where}: {key} must be a non-empty string")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{where}: {key} must be a non-negative number")
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"{where}: args must be an object")
        spans.append(ev)
    for s in spans:
        if s["tid"] not in named_tracks:
            fail(f"span {s['name']!r} on unnamed track {s['tid']}")
    return spans


def check_samples(spans):
    samples = [s for s in spans if s["name"] == "sample"]
    if not samples:
        fail("no sample spans")
    required = ("sample_index", "exit", "prediction", "label", "entropy",
                "latency_s", "bytes", "retries", "degraded", "dead")
    for s in samples:
        args = s.get("args", {})
        for key in required:
            if key not in args:
                fail(f"sample span missing args.{key}")
    children = [s for s in spans if s["name"] != "sample"]
    for root in samples:
        lo, hi = root["ts"], root["ts"] + root["dur"]
        inside = [c for c in children
                  if c["ts"] >= lo - EPS_US and
                  c["ts"] + c["dur"] <= hi + EPS_US]
        # The timeline is sequential, so a child belongs to exactly the
        # sample whose window contains it.
        send_bytes = sum(c["args"]["bytes"] for c in inside
                         if c["name"].startswith("send:"))
        if send_bytes != root["args"]["bytes"]:
            fail(f"sample {root['args']['sample_index']}: send spans sum to "
                 f"{send_bytes} B but the root says "
                 f"{root['args']['bytes']} B")
        if root["args"]["dead"] == 0 and not inside:
            fail(f"sample {root['args']['sample_index']}: classified but "
                 "has no child spans")
    return samples


def check_metrics(samples, metrics):
    by_name = {m["name"]: m for m in metrics.get("metrics", [])}

    def metric(name):
        if name not in by_name:
            fail(f"metrics export missing {name}")
        return by_name[name]["value"]

    if len(samples) != metric("runtime.samples"):
        fail(f"{len(samples)} sample spans vs runtime.samples = "
             f"{metric('runtime.samples')}")
    total_bytes = 0
    total_latency = 0.0
    for s in samples:  # same accumulation order as the runtime
        total_bytes += s["args"]["bytes"]
        total_latency += s["args"]["latency_s"]
    if total_bytes != metric("runtime.bytes_total"):
        fail(f"span bytes {total_bytes} != runtime.bytes_total "
             f"{metric('runtime.bytes_total')}")
    if total_latency != metric("runtime.total_latency_s"):
        fail(f"span latency {total_latency!r} != runtime.total_latency_s "
             f"{metric('runtime.total_latency_s')!r}")
    for name, m in by_name.items():
        if not name.startswith("runtime.exit."):
            continue
        exit_name = name[len("runtime.exit."):]
        order = {"local": 0, "edge": 1, "cloud": 2}
        # Exit indices are positional; map via the canonical name order
        # restricted to the exits this run actually registered.
        present = sorted((n[len("runtime.exit."):] for n in by_name
                          if n.startswith("runtime.exit.")),
                         key=lambda n: order[n])
        idx = present.index(exit_name)
        count = sum(1 for s in samples if s["args"]["exit"] == idx)
        if count != m["value"]:
            fail(f"{count} spans took exit {exit_name} but {name} = "
                 f"{m['value']}")


def check_series(series_path, metrics):
    counters = {m["name"]: m["value"] for m in metrics.get("metrics", [])
                if m.get("type") == "counter"}
    try:
        with open(series_path, "r", encoding="utf-8", newline="") as f:
            rows = list(csv.reader(f))
    except OSError as e:
        fail(f"cannot load {series_path}: {e}")
    if len(rows) < 2:
        fail(f"{series_path}: no data windows")
    header = rows[0]
    checked = 0
    for col, name in enumerate(header):
        if name not in counters:
            continue
        total = 0
        for r, row in enumerate(rows[1:], start=2):
            try:
                total += int(row[col])
            except (IndexError, ValueError):
                fail(f"{series_path}:{r}: column {name!r} is not an integer")
        if total != counters[name]:
            fail(f"series column {name!r} sums to {total} across "
                 f"{len(rows) - 1} windows but the metrics export says "
                 f"{counters[name]}")
        checked += 1
    # A vacuous pass (no shared columns) means someone renamed the columns;
    # that is a bug in its own right.
    for required in ("runtime.samples", "runtime.bytes_total"):
        if required not in header:
            fail(f"{series_path}: missing required column {required!r}")
    return checked


def main():
    argv = sys.argv[1:]
    series_path = None
    if "--series" in argv:
        i = argv.index("--series")
        if i + 1 >= len(argv):
            print(__doc__)
            sys.exit(2)
        series_path = argv[i + 1]
        del argv[i:i + 2]
    if len(argv) not in (1, 2) or (series_path and len(argv) != 2):
        print(__doc__)
        sys.exit(2)
    trace = load(argv[0])
    spans = check_schema(trace)
    samples = check_samples(spans)
    if len(argv) == 2:
        metrics = load(argv[1])
        check_metrics(samples, metrics)
        extra = ""
        if series_path:
            n = check_series(series_path, metrics)
            extra = f", {n} series columns reconciled"
        print(f"check_trace: OK ({len(samples)} samples, "
              f"{len(spans)} spans, metrics cross-check passed{extra})")
    else:
        print(f"check_trace: OK ({len(samples)} samples, {len(spans)} spans)")


if __name__ == "__main__":
    main()
