#!/usr/bin/env python3
"""Validate a ddnn trace file against the Chrome trace_event schema and
cross-check its span sums against a metrics JSON export.

Usage:
    check_trace.py trace.json [metrics.json] [--series series.csv]
                   [--served] [--oracle sim_trace.json]

Schema checks (always):
  * top level is {"displayTimeUnit": ..., "traceEvents": [...]}
  * every event is "M" (thread_name/process_name metadata) or "X" (complete
    span) with integer pid/tid and, for "X", string name/cat plus numeric
    ts/dur >= 0
  * every "X" event's (pid, tid) has a thread_name metadata entry
  * per-sample: the delivered bytes summed over a sample's send:* spans
    equal the root "sample" span's "bytes" arg exactly

Simulator traces are one sequential timeline, so a child belongs to the
sample whose [ts, ts+dur] window contains it. Merged served traces
(`ddnn trace-merge`) interleave spans from several wall-clock processes;
pass --served to group children by their "sample_index" arg instead (every
hop of a served sample is stamped with its distributed trace identity).

--oracle compares a served trace's per-sample span tree against a simulator
trace of the same model/dataset: for every sample index, the exit taken,
the degraded/dead flags and the multiset of child span names must match
exactly. This is the serve-vs-simulate parity check at span granularity.

Metrics cross-checks (with metrics.json, produced by --metrics-out):
  * span count == runtime.samples
  * sum of sample "bytes" args == runtime.bytes_total (exact int)
  * sum of sample "latency_s" args == runtime.total_latency_s (exact float:
    both sides accumulate the same doubles in the same order)
  * per-exit span counts == runtime.exit.* counters

Series cross-checks (with --series, produced by --series-out): every
windowed-series column whose name exactly matches a counter in the metrics
export must sum over all windows to that counter's final value — exact
integer equality, no tolerance. The series is recorded at each sample's
simulated start time by the same single-threaded loop that bumps the
counters, so the window deltas must partition the totals.

Tail reconciliation (same flag): every histogram/hdr series column family
(<name>.n / <name>.max) whose base name resolves to a histogram or hdr
metric in the export must agree with it exactly — the .n cells sum to the
metric's total count, and the largest .max cell over the non-empty windows
equals the metric's exact max (the extrema keep raw values, so a fixed-bin
histogram can no longer silently under-report its tail through clamped
edge bins). Base names resolve directly or through SERIES_ALIASES (the
runtime series column "runtime.latency_ms" exports the registry histogram
"runtime.sample_latency_ms").
"""
import csv
import json
import sys

EPS_US = 0.01  # ts/dur are microseconds rounded to 3 decimals


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_schema(trace):
    if not isinstance(trace, dict):
        fail("top level must be an object")
    if "traceEvents" not in trace or not isinstance(trace["traceEvents"], list):
        fail("missing traceEvents array")
    named_tracks = set()
    spans = []
    for i, ev in enumerate(trace["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in ("M", "X"):
            fail(f"{where}: unexpected ph {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"{where}: {key} must be an integer")
        if ph == "M":
            if ev.get("name") not in ("thread_name", "process_name"):
                fail(f"{where}: metadata event must be thread_name or "
                     "process_name")
            name = ev.get("args", {}).get("name")
            if not isinstance(name, str) or not name:
                fail(f"{where}: {ev['name']} needs args.name")
            if ev["name"] == "thread_name":
                named_tracks.add((ev["pid"], ev["tid"]))
            continue
        for key in ("name", "cat"):
            if not isinstance(ev.get(key), str) or not ev[key]:
                fail(f"{where}: {key} must be a non-empty string")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{where}: {key} must be a non-negative number")
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"{where}: args must be an object")
        spans.append(ev)
    for s in spans:
        if (s["pid"], s["tid"]) not in named_tracks:
            fail(f"span {s['name']!r} on unnamed track "
                 f"{s['pid']}/{s['tid']}")
    return spans


def group_children(spans, served):
    """Map root sample span -> its child spans.

    Simulator timelines are sequential simulated time, so containment in the
    root's [ts, ts+dur] window identifies a child. Merged served traces
    interleave wall clocks across processes; there every child carries the
    sample_index it served, so grouping is by identity, not geometry.
    """
    samples = [s for s in spans if s["name"] == "sample"]
    children = [s for s in spans if s["name"] != "sample"]
    by_root = {}
    if served:
        by_index = {}
        for c in children:
            idx = c.get("args", {}).get("sample_index")
            if not isinstance(idx, int):
                fail(f"served child span {c['name']!r} lacks an integer "
                     "args.sample_index")
            by_index.setdefault(idx, []).append(c)
        for root in samples:
            by_root[id(root)] = by_index.get(
                root["args"]["sample_index"], [])
    else:
        # Samples run back-to-back, so a zero-duration child emitted at the
        # very end of its sample (e.g. a local exit's gateway_fuse) also sits
        # at the start of the next window. Assign each child to the earliest
        # containing window, exactly once.
        ordered = sorted(samples, key=lambda s: s["ts"])
        for root in ordered:
            by_root[id(root)] = []
        for c in children:
            for root in ordered:
                lo, hi = root["ts"], root["ts"] + root["dur"]
                if c["ts"] >= lo - EPS_US and c["ts"] + c["dur"] <= hi + EPS_US:
                    by_root[id(root)].append(c)
                    break
    return samples, by_root


def check_samples(spans, served=False):
    samples, by_root = group_children(spans, served)
    if not samples:
        fail("no sample spans")
    required = ("sample_index", "exit", "prediction", "label", "entropy",
                "latency_s", "bytes", "retries", "degraded", "dead")
    for s in samples:
        args = s.get("args", {})
        for key in required:
            if key not in args:
                fail(f"sample span missing args.{key}")
    for root in samples:
        inside = by_root[id(root)]
        send_bytes = sum(c["args"]["bytes"] for c in inside
                         if c["name"].startswith("send:"))
        if send_bytes != root["args"]["bytes"]:
            fail(f"sample {root['args']['sample_index']}: send spans sum to "
                 f"{send_bytes} B but the root says "
                 f"{root['args']['bytes']} B")
        if root["args"]["dead"] == 0 and not inside:
            fail(f"sample {root['args']['sample_index']}: classified but "
                 "has no child spans")
    return samples, by_root


def sample_shapes(samples, by_root):
    """sample_index -> (exit, degraded, dead, sorted child span names)."""
    shapes = {}
    for root in samples:
        a = root["args"]
        idx = a["sample_index"]
        if idx in shapes:
            fail(f"duplicate sample span for index {idx}")
        names = sorted(c["name"] for c in by_root[id(root)])
        shapes[idx] = (a["exit"], a["degraded"], a["dead"], names)
    return shapes


def check_oracle(served_shapes, oracle_path):
    """Served span tree == simulator span tree, per sample."""
    oracle_spans = check_schema(load(oracle_path))
    oracle_samples, oracle_children = group_children(oracle_spans,
                                                     served=False)
    oracle_shapes = sample_shapes(oracle_samples, oracle_children)
    if set(served_shapes) != set(oracle_shapes):
        only_served = sorted(set(served_shapes) - set(oracle_shapes))
        only_oracle = sorted(set(oracle_shapes) - set(served_shapes))
        fail(f"sample index mismatch vs oracle: served-only {only_served}, "
             f"oracle-only {only_oracle}")
    for idx in sorted(served_shapes):
        s_exit, s_deg, s_dead, s_names = served_shapes[idx]
        o_exit, o_deg, o_dead, o_names = oracle_shapes[idx]
        if (s_exit, s_deg, s_dead) != (o_exit, o_deg, o_dead):
            fail(f"sample {idx}: served (exit={s_exit}, degraded={s_deg}, "
                 f"dead={s_dead}) vs oracle (exit={o_exit}, "
                 f"degraded={o_deg}, dead={o_dead})")
        if s_names != o_names:
            fail(f"sample {idx}: served span tree {s_names} vs oracle "
                 f"{o_names}")
    return len(served_shapes)


def check_metrics(samples, metrics):
    by_name = {m["name"]: m for m in metrics.get("metrics", [])}

    def metric(name):
        if name not in by_name:
            fail(f"metrics export missing {name}")
        return by_name[name]["value"]

    if len(samples) != metric("runtime.samples"):
        fail(f"{len(samples)} sample spans vs runtime.samples = "
             f"{metric('runtime.samples')}")
    total_bytes = 0
    total_latency = 0.0
    for s in samples:  # same accumulation order as the runtime
        total_bytes += s["args"]["bytes"]
        total_latency += s["args"]["latency_s"]
    if total_bytes != metric("runtime.bytes_total"):
        fail(f"span bytes {total_bytes} != runtime.bytes_total "
             f"{metric('runtime.bytes_total')}")
    if total_latency != metric("runtime.total_latency_s"):
        fail(f"span latency {total_latency!r} != runtime.total_latency_s "
             f"{metric('runtime.total_latency_s')!r}")
    for name, m in by_name.items():
        if not name.startswith("runtime.exit."):
            continue
        exit_name = name[len("runtime.exit."):]
        order = {"local": 0, "edge": 1, "cloud": 2}
        # Exit indices are positional; map via the canonical name order
        # restricted to the exits this run actually registered.
        present = sorted((n[len("runtime.exit."):] for n in by_name
                          if n.startswith("runtime.exit.")),
                         key=lambda n: order[n])
        idx = present.index(exit_name)
        count = sum(1 for s in samples if s["args"]["exit"] == idx)
        if count != m["value"]:
            fail(f"{count} spans took exit {exit_name} but {name} = "
                 f"{m['value']}")


# Series column families whose registry metric is registered under a
# different name. The runtime series predates the registry histogram and
# kept its shorter column name for dashboard stability.
SERIES_ALIASES = {"runtime.latency_ms": "runtime.sample_latency_ms"}


def check_series(series_path, metrics):
    counters = {m["name"]: m["value"] for m in metrics.get("metrics", [])
                if m.get("type") == "counter"}
    tails = {m["name"]: m for m in metrics.get("metrics", [])
             if m.get("type") in ("histogram", "hdr")}
    try:
        with open(series_path, "r", encoding="utf-8", newline="") as f:
            rows = list(csv.reader(f))
    except OSError as e:
        fail(f"cannot load {series_path}: {e}")
    if len(rows) < 2:
        fail(f"{series_path}: no data windows")
    header = rows[0]
    checked = 0
    for col, name in enumerate(header):
        if name not in counters:
            continue
        total = 0
        for r, row in enumerate(rows[1:], start=2):
            try:
                total += int(row[col])
            except (IndexError, ValueError):
                fail(f"{series_path}:{r}: column {name!r} is not an integer")
        if total != counters[name]:
            fail(f"series column {name!r} sums to {total} across "
                 f"{len(rows) - 1} windows but the metrics export says "
                 f"{counters[name]}")
        checked += 1
    # Tail reconciliation: a histogram/hdr column family (<base>.n,
    # <base>.max) must partition its registry metric — window counts sum to
    # the total and the window maxima peak at the exact recorded max.
    for col, name in enumerate(header):
        if not name.endswith(".n"):
            continue
        base = name[:-len(".n")]
        metric = tails.get(SERIES_ALIASES.get(base, base))
        if metric is None or f"{base}.max" not in header:
            continue
        max_col = header.index(f"{base}.max")
        total_n = 0
        window_max = None
        for r, row in enumerate(rows[1:], start=2):
            try:
                n = int(row[col])
                mx = float(row[max_col])
            except (IndexError, ValueError):
                fail(f"{series_path}:{r}: column family {base!r} is not "
                     "numeric")
            total_n += n
            if n > 0 and (window_max is None or mx > window_max):
                window_max = mx
        if total_n != metric["count"]:
            fail(f"series column {name!r} sums to {total_n} windows-worth "
                 f"of samples but metric {metric['name']!r} counted "
                 f"{metric['count']}")
        if total_n > 0 and window_max != metric["max"]:
            fail(f"series column {base + '.max'!r} peaks at {window_max!r} "
                 f"but metric {metric['name']!r} reports exact max "
                 f"{metric['max']!r}")
        checked += 1
    # A vacuous pass (no shared columns) means someone renamed the columns;
    # that is a bug in its own right.
    for required in ("runtime.samples", "runtime.bytes_total"):
        if required not in header:
            fail(f"{series_path}: missing required column {required!r}")
    return checked


def take_option(argv, flag):
    if flag not in argv:
        return None
    i = argv.index(flag)
    if i + 1 >= len(argv):
        print(__doc__)
        sys.exit(2)
    value = argv[i + 1]
    del argv[i:i + 2]
    return value


def main():
    argv = sys.argv[1:]
    series_path = take_option(argv, "--series")
    oracle_path = take_option(argv, "--oracle")
    served = "--served" in argv
    if served:
        argv.remove("--served")
    if len(argv) not in (1, 2) or (series_path and len(argv) != 2):
        print(__doc__)
        sys.exit(2)
    if oracle_path and not served:
        fail("--oracle requires --served (the oracle is the simulator "
             "timeline; the subject must be a served trace)")
    trace = load(argv[0])
    spans = check_schema(trace)
    samples, by_root = check_samples(spans, served=served)
    notes = []
    if oracle_path:
        n = check_oracle(sample_shapes(samples, by_root), oracle_path)
        notes.append(f"{n} samples match the simulator oracle")
    if len(argv) == 2:
        metrics = load(argv[1])
        check_metrics(samples, metrics)
        notes.append("metrics cross-check passed")
        if series_path:
            n = check_series(series_path, metrics)
            notes.append(f"{n} series columns reconciled")
    extra = (", " + ", ".join(notes)) if notes else ""
    print(f"check_trace: OK ({len(samples)} samples, "
          f"{len(spans)} spans{extra})")


if __name__ == "__main__":
    main()
