#!/usr/bin/env bash
# Sanitizer smoke: configure an ASan+UBSan build (-DDDNN_SANITIZE=ON) in a
# nested build directory, build the distributed-runtime test binaries and run
# them with halt-on-error semantics. Catches memory errors and UB that the
# optimized tier-1 build would silently tolerate — especially in the
# fault-injection paths, which exercise drop/retry/degraded routes the happy
# path never takes.
#
# Usage: check_sanitizers.sh <source-dir> [build-dir]
set -euo pipefail

src="${1:?usage: check_sanitizers.sh <source-dir> [build-dir]}"
build="${2:-${src}/build-asan}"

cmake -S "${src}" -B "${build}" -DDDNN_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${build}" -j --target test_fault test_dist test_transport \
  test_engine test_obs test_planner >/dev/null

# Leak checking needs ptrace, which containers often deny; the point here is
# heap/stack corruption and UB, so keep leaks off and halt on everything else.
export ASAN_OPTIONS="detect_leaks=0:abort_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

for bin in test_fault test_dist test_transport test_engine test_obs \
    test_planner; do
  echo "== sanitizers: ${bin}"
  "${build}/tests/${bin}" --gtest_brief=1
done

# Poisoned arenas under the sanitizers: every replayed section runs against
# signaling-NaN-filled storage, so reads of unwritten or recycled workspace
# bytes break bit-parity instead of passing silently.
echo "== sanitizers: DDNN_POISON=1 test_planner"
DDNN_POISON=1 "${build}/tests/test_planner" --gtest_brief=1
echo "== sanitizers: DDNN_POISON=1 test_engine (parity grid)"
DDNN_POISON=1 "${build}/tests/test_engine" --gtest_brief=1 \
  --gtest_filter='*EngineParity*'
echo "sanitizer smoke passed (ASan+UBSan clean)"
