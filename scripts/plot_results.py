#!/usr/bin/env python3
"""Plot DDNN bench CSVs as SVG line charts using only the Python stdlib.

The bench harness writes its tables as CSV when DDNN_RESULTS_DIR is set:

    DDNN_RESULTS_DIR=results ./build/bench/bench_fig7_threshold_sweep
    scripts/plot_results.py results/fig7_threshold_sweep.csv \
        --x "T" --y "Overall Acc. (%)" --y "Local Exit (%)" \
        --out fig7.svg

With no --x/--y, the first numeric column is the x axis and every other
numeric column becomes a series.

--all renders every *.csv in a results directory in one go (the positional
argument becomes the directory; default $DDNN_RESULTS_DIR or "results"),
writing <name>.svg next to each CSV and skipping files with nothing
plottable. `ddnn report` renders the same directory as a single HTML
dashboard; this script is the per-figure SVG counterpart.
"""

import argparse
import csv
import os
import sys


def is_number(text):
    try:
        float(text)
        return True
    except ValueError:
        return False


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if len(rows) < 2:
        sys.exit(f"{path}: need a header and at least one data row")
    return rows[0], rows[1:]


def numeric_columns(header, rows):
    """Columns where every cell parses as a number."""
    out = []
    for i, name in enumerate(header):
        if all(i < len(r) and is_number(r[i]) for r in rows):
            out.append((i, name))
    return out


PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"]


def svg_chart(title, x_name, series, width=720, height=440):
    """series: list of (name, [(x, y), ...])."""
    margin_l, margin_r, margin_t, margin_b = 64, 16, 40, 48
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    xs = [p[0] for _, pts in series for p in pts]
    ys = [p[1] for _, pts in series for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    # A little headroom.
    pad = 0.05 * (y_hi - y_lo)
    y_lo, y_hi = y_lo - pad, y_hi + pad

    def sx(x):
        return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y):
        return margin_t + (1 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="15">{title}</text>',
    ]
    # Axes + gridlines with 5 ticks each.
    for k in range(6):
        gx = x_lo + k * (x_hi - x_lo) / 5
        gy = y_lo + k * (y_hi - y_lo) / 5
        parts.append(
            f'<line x1="{sx(gx):.1f}" y1="{margin_t}" x2="{sx(gx):.1f}" '
            f'y2="{margin_t + plot_h}" stroke="#ddd"/>')
        parts.append(
            f'<line x1="{margin_l}" y1="{sy(gy):.1f}" '
            f'x2="{margin_l + plot_w}" y2="{sy(gy):.1f}" stroke="#ddd"/>')
        parts.append(
            f'<text x="{sx(gx):.1f}" y="{margin_t + plot_h + 16}" '
            f'text-anchor="middle">{gx:g}</text>')
        parts.append(
            f'<text x="{margin_l - 6}" y="{sy(gy) + 4:.1f}" '
            f'text-anchor="end">{gy:.3g}</text>')
    parts.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>')
    parts.append(
        f'<text x="{margin_l + plot_w / 2}" y="{height - 10}" '
        f'text-anchor="middle">{x_name}</text>')

    for idx, (name, pts) in enumerate(series):
        color = PALETTE[idx % len(PALETTE)]
        path = " ".join(
            f"{'M' if i == 0 else 'L'} {sx(x):.1f} {sy(y):.1f}"
            for i, (x, y) in enumerate(sorted(pts)))
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>')
        for x, y in pts:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                f'fill="{color}"/>')
        ly = margin_t + 14 + 16 * idx
        parts.append(
            f'<line x1="{margin_l + 8}" y1="{ly - 4}" x2="{margin_l + 28}" '
            f'y2="{ly - 4}" stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{margin_l + 34}" y="{ly}">{name}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def plot_file(path, x=None, wanted_names=None, out=None, title=None,
              strict=True):
    """Render one CSV to SVG. Returns True if something was plotted;
    with strict=False, unplottable files are skipped with a note."""
    header, rows = read_csv(path)
    numeric = numeric_columns(header, rows)
    by_name = {name: i for i, name in numeric}

    if x:
        if x not in by_name:
            sys.exit(f"column '{x}' is not numeric; choices: "
                     f"{sorted(by_name)}")
        x_idx, x_name = by_name[x], x
    elif numeric:
        x_idx, x_name = numeric[0]
    else:
        x_idx, x_name = None, None

    wanted = wanted_names or [n for i, n in numeric if i != x_idx]
    series = []
    for name in wanted:
        if name not in by_name:
            sys.exit(f"column '{name}' is not numeric; choices: "
                     f"{sorted(by_name)}")
        i = by_name[name]
        series.append(
            (name, [(float(r[x_idx]), float(r[i])) for r in rows]))
    if not series:
        if strict:
            sys.exit(f"{path}: no fully numeric columns to plot")
        print(f"skip {path} (no plottable numeric columns)")
        return False

    out = out or path.rsplit(".", 1)[0] + ".svg"
    title = title or path.split("/")[-1]
    with open(out, "w") as f:
        f.write(svg_chart(title, x_name, series))
    print(f"wrote {out}")
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv", nargs="?",
                    help="CSV written by a bench, or with --all the results "
                         "directory (default: $DDNN_RESULTS_DIR or results)")
    ap.add_argument("--all", action="store_true",
                    help="render every *.csv in the results directory")
    ap.add_argument("--x", help="x-axis column (default: first numeric)")
    ap.add_argument("--y", action="append",
                    help="series column (repeatable; default: all numeric)")
    ap.add_argument("--out", help="output SVG (default: <csv>.svg)")
    ap.add_argument("--title", help="chart title (default: CSV name)")
    args = ap.parse_args()

    if args.all:
        directory = args.csv or os.environ.get("DDNN_RESULTS_DIR", "results")
        if directory in ("", "off") or not os.path.isdir(directory):
            sys.exit(f"--all: results directory {directory!r} does not exist")
        files = sorted(f for f in os.listdir(directory)
                       if f.endswith(".csv"))
        if not files:
            sys.exit(f"--all: no *.csv files in {directory!r}")
        plotted = sum(
            plot_file(os.path.join(directory, f), strict=False)
            for f in files)
        print(f"plotted {plotted} of {len(files)} CSVs in {directory}")
        return

    if not args.csv:
        ap.error("csv path required (or use --all)")
    plot_file(args.csv, x=args.x, wanted_names=args.y, out=args.out,
              title=args.title)


if __name__ == "__main__":
    main()
