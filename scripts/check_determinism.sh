#!/usr/bin/env bash
# Determinism check: run a gtest binary under DDNN_THREADS=1 and
# DDNN_THREADS=4 and require both to pass. The kernels' determinism
# contract (see docs/ARCHITECTURE.md) says results must be bit-identical
# for any thread count, so the same suite must be green under both.
#
# Usage: check_determinism.sh <gtest-binary> [gtest-filter]
set -euo pipefail

bin="${1:?usage: check_determinism.sh <gtest-binary> [gtest-filter]}"
filter="${2:-*}"

for threads in 1 4; do
  echo "== DDNN_THREADS=${threads} ${bin} --gtest_filter=${filter}"
  DDNN_THREADS="${threads}" "${bin}" --gtest_filter="${filter}" \
    --gtest_brief=1
done
echo "determinism check passed for DDNN_THREADS=1 and 4"
