#!/usr/bin/env python3
"""Regression gate: compare the newest ledger records against committed
baselines with per-metric tolerance bands.

Usage:
    check_bench.py [--ledger results/ledger.jsonl] [--baselines bench/baselines]
                   [--update] [command ...]

Every *.json file under the baselines directory names one ledger command
(e.g. "simulate", "bench.fig7_threshold_sweep") and the metric bands it is
gated on:

    {
      "command": "simulate",
      "metrics": {
        "runtime.samples":  {"value": 171},
        "runtime.accuracy": {"value": 0.8070, "abs_tol": 0.08}
      }
    }

A metric passes when |observed - value| <= abs_tol + rel_tol * |value|
(both tolerances default to 0, i.e. exact). For each baseline the NEWEST
ledger record with that command is checked; a baselined metric missing from
the record is a failure. Baselines whose command never appears in the
ledger are skipped with a note — the gate only judges what actually ran.
Positional command arguments restrict the run to those baselines (and then
a missing record IS a failure: you asked for it, it must be there).

--update rewrites each matched baseline's values from the newest record,
keeping the tolerance bands, and PRUNES baselined metrics the record no
longer emits (a renamed or deleted metric would otherwise fail every
future run against a value nothing produces). Pass --keep-stale to keep
such entries untouched — e.g. when updating from a run that legitimately
skipped an optional subsystem. Exit status: 0 = all checked metrics in
band, 1 = at least one regression (named metric, expected, observed,
delta), 2 = usage / IO error.

Ledger lines are written by obs::append_record (one atomic append per run,
no wall-clock fields), so "newest" is simply the last line per command.
"""
import json
import os
import sys


def die(msg, code=2):
    print(f"check_bench: {msg}", file=sys.stderr)
    sys.exit(code)


def load_ledger(path):
    records = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as e:
                    die(f"{path}:{lineno}: bad ledger line: {e}")
    except OSError as e:
        die(f"cannot read ledger {path}: {e}")
    return records


def newest_by_command(records):
    latest = {}
    for rec in records:  # append-only file: later lines are newer
        cmd = rec.get("command")
        if isinstance(cmd, str) and cmd:
            latest[cmd] = rec
    return latest


def load_baselines(directory):
    if not os.path.isdir(directory):
        die(f"baselines directory {directory!r} does not exist")
    baselines = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as f:
                base = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            die(f"cannot load baseline {path}: {e}")
        if not isinstance(base.get("command"), str) or \
                not isinstance(base.get("metrics"), dict):
            die(f"{path}: baseline needs a 'command' string and "
                "a 'metrics' object")
        baselines.append((path, base))
    if not baselines:
        die(f"no *.json baselines in {directory!r}")
    return baselines


def check_one(path, base, record):
    """Returns a list of failure strings for one baseline/record pair."""
    failures = []
    observed = record.get("metrics", {})
    for name, band in sorted(base["metrics"].items()):
        expected = band["value"]
        abs_tol = band.get("abs_tol", 0)
        rel_tol = band.get("rel_tol", 0)
        if name not in observed:
            failures.append(f"{base['command']}: metric {name!r} is "
                            f"baselined in {path} but absent from the "
                            "newest ledger record")
            continue
        got = observed[name]
        allowed = abs_tol + rel_tol * abs(expected)
        delta = got - expected
        if abs(delta) > allowed:
            failures.append(
                f"{base['command']}: {name} = {got:g} vs baseline "
                f"{expected:g} (delta {delta:+g}, allowed ±{allowed:g})")
    return failures


def main():
    argv = sys.argv[1:]
    ledger_path = "results/ledger.jsonl"
    baselines_dir = "bench/baselines"
    update = False
    keep_stale = False
    only = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--ledger":
            i += 1
            ledger_path = argv[i] if i < len(argv) else die("--ledger needs a path")
        elif arg == "--baselines":
            i += 1
            baselines_dir = argv[i] if i < len(argv) else die("--baselines needs a path")
        elif arg == "--update":
            update = True
        elif arg == "--keep-stale":
            keep_stale = True
        elif arg.startswith("-"):
            print(__doc__)
            sys.exit(2)
        else:
            only.append(arg)
        i += 1

    latest = newest_by_command(load_ledger(ledger_path))
    baselines = load_baselines(baselines_dir)
    if only:
        baselines = [(p, b) for p, b in baselines if b["command"] in only]
        known = {b["command"] for _, b in baselines}
        for cmd in only:
            if cmd not in known:
                die(f"no baseline for command {cmd!r} in {baselines_dir}")

    failures = []
    checked = skipped = 0
    for path, base in baselines:
        record = latest.get(base["command"])
        if record is None:
            if only:
                failures.append(f"{base['command']}: requested but no ledger "
                                f"record in {ledger_path}")
            else:
                print(f"check_bench: skip {base['command']} "
                      "(no ledger record)")
                skipped += 1
            continue
        if update:
            recorded = record.get("metrics", {})
            stale = [n for n in base["metrics"] if n not in recorded]
            if stale and not keep_stale:
                for name in stale:
                    del base["metrics"][name]
                    print(f"check_bench: pruned stale metric {name!r} "
                          f"from {path}")
            for name, band in base["metrics"].items():
                if name in recorded:
                    band["value"] = recorded[name]
            with open(path, "w", encoding="utf-8") as f:
                json.dump(base, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"check_bench: updated {path}")
        checked += 1
        failures.extend(check_one(path, base, record))

    if failures:
        for f in failures:
            print(f"check_bench: FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench: OK ({checked} baselines checked, {skipped} skipped)")


if __name__ == "__main__":
    main()
