#!/usr/bin/env bash
# Loopback end-to-end check for `ddnn serve`: the simulator is the oracle.
#
# Trains a tiny preset-e model, records the simulator's per-sample decisions
# (`ddnn simulate --decisions-out`), then runs the same model as three real
# processes — cloud, edge, device driver — over TCP loopback and compares
# the driver's decisions CSV byte-for-byte: same exits, predictions,
# entropies and delivered bytes (only latency may differ, and it is not in
# the CSV). Two rounds:
#
#   1. healthy     — every sample takes the simulator's exact route;
#   2. blackholed  — the edge accepts frames and never answers, forcing the
#                    driver's timeout + degradation ladder; the oracle is a
#                    simulator run with a whole-run edge outage.
#
# Ports are OS-assigned ephemerals written to port files, so parallel ctest
# jobs never collide. All children are killed on exit, pass or fail.
#
# Usage: check_serve_e2e.sh <ddnn-binary> [workdir]
set -euo pipefail

ddnn="${1:?usage: check_serve_e2e.sh <ddnn-binary> [workdir]}"
work="${2:-serve_e2e_tmp}"

model_flags=(--preset e --filters 2)
export DDNN_RESULTS_DIR=off DDNN_CACHE_DIR=off

rm -rf "${work}"
mkdir -p "${work}"

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "${work}"
}
trap cleanup EXIT

wait_port_file() {
  local file="$1"
  for _ in $(seq 1 100); do
    [ -s "${file}" ] && return 0
    sleep 0.1
  done
  echo "error: ${file} never appeared — server failed to start" >&2
  return 1
}

echo "== serve e2e: train + simulate oracle"
"${ddnn}" train "${model_flags[@]}" --epochs 1 \
  --out "${work}/model.ddnn" >/dev/null
"${ddnn}" simulate "${model_flags[@]}" --model "${work}/model.ddnn" \
  --decisions-out "${work}/sim.csv" >/dev/null
"${ddnn}" simulate "${model_flags[@]}" --model "${work}/model.ddnn" \
  --outage 0:1000000 --decisions-out "${work}/sim_outage.csv" >/dev/null

echo "== serve e2e: round 1 — healthy 3-process hierarchy"
"${ddnn}" serve --role cloud "${model_flags[@]}" --model "${work}/model.ddnn" \
  --listen 0 --port-file "${work}/cloud.port" --idle-timeout 120 \
  >"${work}/cloud.log" 2>&1 &
pids+=($!)
wait_port_file "${work}/cloud.port"
"${ddnn}" serve --role edge "${model_flags[@]}" --model "${work}/model.ddnn" \
  --listen 0 --port-file "${work}/edge.port" \
  --cloud "127.0.0.1:$(cat "${work}/cloud.port")" --idle-timeout 120 \
  >"${work}/edge.log" 2>&1 &
pids+=($!)
wait_port_file "${work}/edge.port"
"${ddnn}" serve --role device "${model_flags[@]}" \
  --model "${work}/model.ddnn" \
  --edge "127.0.0.1:$(cat "${work}/edge.port")" \
  --cloud "127.0.0.1:$(cat "${work}/cloud.port")" \
  --decisions-out "${work}/serve.csv" >"${work}/driver.log" 2>&1
cmp "${work}/sim.csv" "${work}/serve.csv" || {
  echo "error: healthy serve run diverged from the simulator" >&2
  diff "${work}/sim.csv" "${work}/serve.csv" | head -10 >&2
  exit 1
}
echo "   healthy round: decisions byte-identical to the simulator"

echo "== serve e2e: round 2 — blackholed edge forces the timeout ladder"
"${ddnn}" serve --role cloud "${model_flags[@]}" --model "${work}/model.ddnn" \
  --listen 0 --port-file "${work}/cloud2.port" --idle-timeout 120 \
  >"${work}/cloud2.log" 2>&1 &
pids+=($!)
wait_port_file "${work}/cloud2.port"
"${ddnn}" serve --role edge "${model_flags[@]}" --model "${work}/model.ddnn" \
  --listen 0 --port-file "${work}/edge2.port" --blackhole \
  --idle-timeout 120 >"${work}/edge2.log" 2>&1 &
pids+=($!)
wait_port_file "${work}/edge2.port"
"${ddnn}" serve --role device "${model_flags[@]}" \
  --model "${work}/model.ddnn" \
  --edge "127.0.0.1:$(cat "${work}/edge2.port")" \
  --cloud "127.0.0.1:$(cat "${work}/cloud2.port")" \
  --decision-timeout 2 \
  --decisions-out "${work}/serve_outage.csv" >"${work}/driver2.log" 2>&1
cmp "${work}/sim_outage.csv" "${work}/serve_outage.csv" || {
  echo "error: degraded serve run diverged from the outage simulation" >&2
  diff "${work}/sim_outage.csv" "${work}/serve_outage.csv" | head -10 >&2
  exit 1
}
# The round only proves something if the degradation route actually fired.
degraded=$(awk -F, 'NR > 1 && $6 == 1' "${work}/serve_outage.csv" | wc -l)
if [ "${degraded}" -eq 0 ]; then
  echo "error: blackholed round produced no degraded samples" >&2
  exit 1
fi
echo "   blackholed round: ${degraded} degraded samples, byte-identical to" \
  "the outage simulation"
echo "serve e2e passed"
