#!/usr/bin/env bash
# Loopback end-to-end check for `ddnn serve`: the simulator is the oracle.
#
# Trains a tiny preset-e model, records the simulator's per-sample decisions
# (`ddnn simulate --decisions-out`), then runs the same model as three real
# processes — cloud, edge, device driver — over TCP loopback and compares
# the driver's decisions CSV byte-for-byte: same exits, predictions,
# entropies and delivered bytes (only latency may differ, and it is not in
# the CSV). Two rounds:
#
#   1. healthy     — every sample takes the simulator's exact route;
#   2. blackholed  — the edge accepts frames and never answers, forcing the
#                    driver's timeout + degradation ladder; the oracle is a
#                    simulator run with a whole-run edge outage.
#
# With a third argument "trace", both rounds also exercise the distributed
# tracing + live telemetry path:
#   * every role writes --trace-out/--metrics-out; `ddnn trace-merge`
#     stitches the per-role files into one timeline (byte-identical across
#     re-merges) whose per-sample span tree must match the simulator
#     oracle's (check_trace.py --served --oracle), healthy AND degraded;
#   * `ddnn top` polls the cloud's Stats channel throughout the healthy
#     round; its final snapshot must be byte-identical to the registry the
#     cloud writes at exit (the poll is side-effect-free by contract);
#   * the healthy driver appends a ledger record gated by check_bench.py
#     against bench/baselines/serve.json.
#
# Ports are OS-assigned ephemerals written to port files, so parallel ctest
# jobs never collide. All children are killed on exit, pass or fail.
#
# Usage: check_serve_e2e.sh <ddnn-binary> [workdir] [trace]
set -euo pipefail

ddnn="${1:?usage: check_serve_e2e.sh <ddnn-binary> [workdir] [trace]}"
work="${2:-serve_e2e_tmp}"
trace_mode=0
[ "${3:-}" = "trace" ] && trace_mode=1

script_dir="$(cd "$(dirname "$0")" && pwd)"
repo_root="$(dirname "${script_dir}")"

model_flags=(--preset e --filters 2)
export DDNN_RESULTS_DIR=off DDNN_CACHE_DIR=off

rm -rf "${work}"
mkdir -p "${work}"

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "${work}"
}
trap cleanup EXIT

wait_port_file() {
  local file="$1"
  for _ in $(seq 1 100); do
    [ -s "${file}" ] && return 0
    sleep 0.1
  done
  echo "error: ${file} never appeared — server failed to start" >&2
  return 1
}

# Per-role trace/metrics flags, only in trace mode ("" expands to nothing).
obs_flags() {
  if [ "${trace_mode}" = 1 ]; then
    echo "--trace-out ${work}/$1_trace.json --metrics-out ${work}/$1_metrics.json"
  fi
}

sim_trace_flags=()
sim_outage_trace_flags=()
if [ "${trace_mode}" = 1 ]; then
  sim_trace_flags=(--trace-out "${work}/sim_trace.json")
  sim_outage_trace_flags=(--trace-out "${work}/sim_outage_trace.json")
fi

echo "== serve e2e: train + simulate oracle"
"${ddnn}" train "${model_flags[@]}" --epochs 1 \
  --out "${work}/model.ddnn" >/dev/null
"${ddnn}" simulate "${model_flags[@]}" --model "${work}/model.ddnn" \
  --decisions-out "${work}/sim.csv" "${sim_trace_flags[@]}" >/dev/null
"${ddnn}" simulate "${model_flags[@]}" --model "${work}/model.ddnn" \
  --outage 0:1000000 --decisions-out "${work}/sim_outage.csv" \
  "${sim_outage_trace_flags[@]}" >/dev/null

echo "== serve e2e: round 1 — healthy 3-process hierarchy"
"${ddnn}" serve --role cloud "${model_flags[@]}" --model "${work}/model.ddnn" \
  --listen 0 --port-file "${work}/cloud.port" --idle-timeout 120 \
  $(obs_flags cloud) >"${work}/cloud.log" 2>&1 &
cloud_pid=$!
pids+=("${cloud_pid}")
wait_port_file "${work}/cloud.port"

top_pid=""
if [ "${trace_mode}" = 1 ]; then
  # Live telemetry poller: watches the cloud for the whole round, takes one
  # last snapshot when the stop file appears. Its connection must not
  # perturb the hierarchy (the decisions CSV still has to match the
  # simulator byte-for-byte).
  "${ddnn}" top --target "127.0.0.1:$(cat "${work}/cloud.port")" \
    --interval-ms 500 --stop-file "${work}/top.stop" \
    --json-out "${work}/top.json" >"${work}/top.log" 2>&1 &
  top_pid=$!
  pids+=("${top_pid}")
fi

"${ddnn}" serve --role edge "${model_flags[@]}" --model "${work}/model.ddnn" \
  --listen 0 --port-file "${work}/edge.port" \
  --cloud "127.0.0.1:$(cat "${work}/cloud.port")" --idle-timeout 120 \
  $(obs_flags edge) >"${work}/edge.log" 2>&1 &
edge_pid=$!
pids+=("${edge_pid}")
wait_port_file "${work}/edge.port"

driver_env=()
if [ "${trace_mode}" = 1 ]; then
  mkdir -p "${work}/results"
  driver_env=(DDNN_RESULTS_DIR="${work}/results")
fi
env "${driver_env[@]}" \
  "${ddnn}" serve --role device "${model_flags[@]}" \
  --model "${work}/model.ddnn" \
  --edge "127.0.0.1:$(cat "${work}/edge.port")" \
  --cloud "127.0.0.1:$(cat "${work}/cloud.port")" \
  --decisions-out "${work}/serve.csv" \
  $(obs_flags driver) >"${work}/driver.log" 2>&1
cmp "${work}/sim.csv" "${work}/serve.csv" || {
  echo "error: healthy serve run diverged from the simulator" >&2
  diff "${work}/sim.csv" "${work}/serve.csv" | head -10 >&2
  exit 1
}
echo "   healthy round: decisions byte-identical to the simulator"

if [ "${trace_mode}" = 1 ]; then
  # The servers write their trace/metrics files at exit: the edge leaves
  # once the driver hangs up; the cloud stays up for the poller, so its
  # registry is frozen well before `top` takes the final snapshot.
  wait "${edge_pid}"
  sleep 2  # let the cloud consume the edge's Bye before the last poll
  touch "${work}/top.stop"
  wait "${top_pid}"
  wait "${cloud_pid}"

  echo "== serve e2e: distributed trace + telemetry checks (healthy)"
  # Note: only the MERGED timeline satisfies the per-sample byte invariant —
  # the edge->cloud send spans live in the edge's trace, not the driver's.
  "${ddnn}" trace-merge "${work}/driver_trace.json" \
    "${work}/edge_trace.json" "${work}/cloud_trace.json" \
    --out "${work}/merged.json" >/dev/null
  "${ddnn}" trace-merge "${work}/driver_trace.json" \
    "${work}/edge_trace.json" "${work}/cloud_trace.json" \
    --out "${work}/merged_again.json" >/dev/null
  cmp "${work}/merged.json" "${work}/merged_again.json" || {
    echo "error: trace-merge is not deterministic" >&2
    exit 1
  }
  python3 "${script_dir}/check_trace.py" "${work}/merged.json" \
    "${work}/driver_metrics.json" --served \
    --oracle "${work}/sim_trace.json"
  cmp "${work}/top.json" "${work}/cloud_metrics.json" || {
    echo "error: final ddnn top snapshot diverged from the cloud's own" \
      "--metrics-out export" >&2
    diff "${work}/top.json" "${work}/cloud_metrics.json" | head -10 >&2
    exit 1
  }
  python3 "${script_dir}/check_bench.py" \
    --ledger "${work}/results/ledger.jsonl" \
    --baselines "${repo_root}/bench/baselines" serve
  echo "   healthy round: merged trace matches the simulator oracle," \
    "telemetry reconciled"
fi

echo "== serve e2e: round 2 — blackholed edge forces the timeout ladder"
"${ddnn}" serve --role cloud "${model_flags[@]}" --model "${work}/model.ddnn" \
  --listen 0 --port-file "${work}/cloud2.port" --idle-timeout 120 \
  $(obs_flags cloud2) >"${work}/cloud2.log" 2>&1 &
cloud2_pid=$!
pids+=("${cloud2_pid}")
wait_port_file "${work}/cloud2.port"
"${ddnn}" serve --role edge "${model_flags[@]}" --model "${work}/model.ddnn" \
  --listen 0 --port-file "${work}/edge2.port" --blackhole \
  --idle-timeout 120 >"${work}/edge2.log" 2>&1 &
pids+=($!)
wait_port_file "${work}/edge2.port"
"${ddnn}" serve --role device "${model_flags[@]}" \
  --model "${work}/model.ddnn" \
  --edge "127.0.0.1:$(cat "${work}/edge2.port")" \
  --cloud "127.0.0.1:$(cat "${work}/cloud2.port")" \
  --decision-timeout 2 \
  --decisions-out "${work}/serve_outage.csv" \
  $(obs_flags driver2) >"${work}/driver2.log" 2>&1
cmp "${work}/sim_outage.csv" "${work}/serve_outage.csv" || {
  echo "error: degraded serve run diverged from the outage simulation" >&2
  diff "${work}/sim_outage.csv" "${work}/serve_outage.csv" | head -10 >&2
  exit 1
}
# The round only proves something if the degradation route actually fired.
degraded=$(awk -F, 'NR > 1 && $6 == 1' "${work}/serve_outage.csv" | wc -l)
if [ "${degraded}" -eq 0 ]; then
  echo "error: blackholed round produced no degraded samples" >&2
  exit 1
fi
echo "   blackholed round: ${degraded} degraded samples, byte-identical to" \
  "the outage simulation"

if [ "${trace_mode}" = 1 ]; then
  # The blackholed edge never answers and only dies at its idle timeout, so
  # its trace cannot be harvested; the degraded span tree lives entirely in
  # the driver + cloud processes — exactly what the outage oracle records
  # (a dark edge emits no spans in the simulator either).
  wait "${cloud2_pid}"
  echo "== serve e2e: distributed trace checks (degraded)"
  "${ddnn}" trace-merge "${work}/driver2_trace.json" \
    "${work}/cloud2_trace.json" --out "${work}/merged_outage.json" >/dev/null
  python3 "${script_dir}/check_trace.py" "${work}/merged_outage.json" \
    "${work}/driver2_metrics.json" --served \
    --oracle "${work}/sim_outage_trace.json"
  echo "   degraded round: merged trace matches the outage oracle"
fi

echo "serve e2e passed"
