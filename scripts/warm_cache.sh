#!/usr/bin/env bash
# Warm the trained-model cache by running every experiment bench once with
# the default settings (DDNN_EPOCHS=40, DDNN_SEED=42). Later runs of the
# bench suite then load models from .ddnn_cache and only re-evaluate.
set -u
cd "$(dirname "$0")/.."
export DDNN_LOG_LEVEL=warn
for b in bench_table2_threshold bench_table1_aggregation bench_fig8_scaling \
         bench_fig9_offloading bench_fig2_configs bench_ablation_precision \
         bench_ablation_exit_weights bench_ablation_aggregator \
         bench_fig7_threshold_sweep bench_fig10_fault_tolerance \
         bench_comm_reduction bench_ablation_entropy bench_latency_study \
         bench_fig6_distribution; do
  start=$(date +%s)
  if ./build/bench/"$b" > /tmp/warm_"$b".out 2>/tmp/warm_"$b".err; then
    echo "OK   $b ($(( $(date +%s) - start ))s)"
  else
    echo "FAIL $b ($(( $(date +%s) - start ))s)"
    tail -3 /tmp/warm_"$b".err
  fi
done
echo "WARM_CACHE_DONE"
