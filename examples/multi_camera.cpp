// Multi-camera surveillance over the simulated distributed hierarchy.
//
// The scenario the paper's evaluation is built around: six cameras, each
// attached to a memory-constrained end device, watch the same area over a
// bandwidth-constrained wireless network. This example trains the DDNN,
// deploys it onto the simulated hierarchy (real wire messages, byte and
// latency accounting), streams the test samples through it, then knocks out
// cameras one by one to show graceful degradation.
//
//   $ ./build/examples/multi_camera
//
// Environment knobs: DDNN_EPOCHS (default 30), DDNN_SEED (default 42).
#include <cstdio>

#include "core/cache.hpp"
#include "core/inference.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "data/loader.hpp"
#include "dist/runtime.hpp"
#include "util/env.hpp"
#include "util/results.hpp"

using namespace ddnn;

int main() {
  const int epochs = static_cast<int>(env_int("DDNN_EPOCHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("DDNN_SEED", 42));
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  data::MvmcConfig data_cfg;
  data_cfg.seed = seed;
  const auto dataset = data::MvmcDataset::generate(data_cfg);
  std::printf("camera visibility (training split):\n%s\n",
              dataset.distribution_table().to_string().c_str());

  // Train the 6-camera DDNN (cached across runs).
  auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  core::DdnnModel model(cfg);
  core::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  core::train_or_load(model, "example_multi_camera_ep" + std::to_string(epochs),
                      [&] {
                        std::printf("training %d epochs...\n", epochs);
                        core::train_ddnn(model, dataset.train(), devices,
                                         train_cfg);
                      });
  model.set_training(false);

  // Deploy onto the simulated hierarchy and stream the test samples. All
  // wire traffic crosses the Transport seam: SimTransport here is the
  // deterministic simulator path, and the identical node graph runs over
  // real TCP via `ddnn serve` (dist/serve.hpp).
  dist::HierarchyRuntime runtime(model, {0.8}, devices);
  dist::SimTransport transport;
  runtime.set_transport(&transport);
  std::printf("streaming %zu samples through the hierarchy (T = 0.8)...\n\n",
              dataset.test().size());
  core::ConfusionMatrix confusion(3);
  for (std::size_t i = 0; i < dataset.test().size(); ++i) {
    const auto trace = runtime.classify(dataset.test()[i]);
    confusion.add(dataset.test()[i].label, trace.prediction);
    if (i < 5) {
      std::printf(
          "  sample %zu: truth=%-6s predicted=%-6s exit=%-5s eta=%.3f "
          "bytes=%lld latency=%.1f ms\n",
          i, data::class_name(dataset.test()[i].label).c_str(),
          data::class_name(static_cast<int>(trace.prediction)).c_str(),
          model.exit_names()[static_cast<std::size_t>(trace.exit_taken)]
              .c_str(),
          trace.entropy, static_cast<long long>(trace.bytes_sent),
          1e3 * trace.latency_s);
    }
  }
  const auto& m = runtime.metrics();
  std::printf("\nhealthy fleet: accuracy %.1f%%, %.1f%% exited locally, "
              "%.1f B/sample/camera, mean latency %.1f ms\n",
              100.0 * m.accuracy(),
              100.0 * static_cast<double>(m.exit_counts[0]) /
                  static_cast<double>(m.samples),
              m.device_bytes_per_sample(0), 1e3 * m.mean_latency_s());
  std::printf("raw-offload baseline would cost %lld B/sample/camera\n\n",
              static_cast<long long>(core::raw_offload_bytes(3, 32, 32)));
  std::printf("per-class results (macro recall %.1f%%):\n%s\n",
              100.0 * confusion.macro_recall(),
              confusion.to_table({"car", "bus", "person"}).to_string().c_str());
  std::printf("per-link traffic:\n%s\n",
              runtime.link_report().to_string().c_str());
  write_results_csv(runtime.link_report(), "example_multi_camera_links");

  // Knock out cameras one at a time (cumulative, worst camera first).
  std::printf("progressive camera failures:\n");
  for (int failed = 0; failed < 3; ++failed) {
    runtime.set_device_failed(failed, true);
    runtime.reset_metrics();
    runtime.run(dataset.test());
    std::printf("  cameras 1..%d down: accuracy %.1f%% (%.1f%% local exits)\n",
                failed + 1, 100.0 * runtime.metrics().accuracy(),
                100.0 *
                    static_cast<double>(runtime.metrics().exit_counts[0]) /
                    static_cast<double>(runtime.metrics().samples));
  }
  return 0;
}
