// Failure sweep: the paper's Section IV-G fault-tolerance claim, extended
// with the fault-injection layer — lossy links, flapping devices and
// permanent device failures, all seeded and reproducible.
//
// Two sweeps over the trained 6-device configuration (c):
//   1. link drop probability x permanently failed devices: accuracy under
//      an increasingly hostile network, with drop/retry/timeout accounting;
//   2. progressive permanent failures at a fixed 10% drop rate — the
//      "accuracy degrades gracefully" curve, down to every device dead
//      (dead samples are counted, not crashed on).
//
//   $ ./build/examples/fault_sweep
#include <cstdio>

#include "core/cache.hpp"
#include "core/trainer.hpp"
#include "dist/runtime.hpp"
#include "util/env.hpp"
#include "util/results.hpp"
#include "util/table.hpp"

using namespace ddnn;

namespace {

dist::FaultPlan make_plan(std::uint64_t seed, double drop, int failed) {
  dist::FaultPlan plan;
  plan.seed = seed;
  plan.link_drop_prob = drop;
  for (int d = 0; d < failed; ++d) {
    plan.devices.push_back({.permanent_fail_at = 0});
  }
  return plan;
}

}  // namespace

int main() {
  const int epochs = static_cast<int>(env_int("DDNN_EPOCHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("DDNN_SEED", 42));
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  data::MvmcConfig data_cfg;
  data_cfg.seed = seed;
  const auto dataset = data::MvmcDataset::generate(data_cfg);

  const auto cfg =
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  core::DdnnModel model(cfg);
  core::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  core::train_or_load(model, "example_fault_sweep_ep" + std::to_string(epochs),
                      [&] {
                        std::printf("training %d epochs...\n", epochs);
                        core::train_ddnn(model, dataset.train(), devices,
                                         train_cfg);
                      });
  model.set_training(false);

  Table grid({"Drop p", "#Failed", "Overall (%)", "Local exit (%)", "Drops",
              "Retries", "Timeouts", "Degraded", "Mean latency (ms)"});
  for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    for (const int failed : {0, 1, 2}) {
      dist::HierarchyRuntime runtime(model, {0.8}, devices);
      runtime.set_fault_plan(make_plan(1234, drop, failed));
      const auto m = runtime.run(dataset.test());
      const auto& r = m.reliability;
      grid.add_row(
          {Table::num(drop, 2), std::to_string(failed),
           Table::num(100.0 * m.accuracy(), 1),
           Table::num(100.0 * static_cast<double>(m.exit_counts[0]) /
                          static_cast<double>(m.samples),
                      1),
           std::to_string(r.drops), std::to_string(r.retries),
           std::to_string(r.timeouts), std::to_string(r.degraded_exits),
           Table::num(1e3 * m.mean_latency_s(), 1)});
    }
  }
  std::printf("\n%s", grid.to_string().c_str());
  write_results_csv(grid, "example_fault_sweep_grid");

  Table progressive({"#Failed", "Overall (%)", "Dead samples"});
  for (int failed = 0; failed <= 6; ++failed) {
    dist::HierarchyRuntime runtime(model, {0.8}, devices);
    runtime.set_fault_plan(make_plan(1234, 0.1, failed));
    const auto m = runtime.run(dataset.test());
    progressive.add_row({std::to_string(failed),
                         Table::num(100.0 * m.accuracy(), 1),
                         std::to_string(m.reliability.dead_samples)});
  }
  std::printf("\nprogressive failures at 10%% link drop:\n%s",
              progressive.to_string().c_str());
  write_results_csv(progressive, "example_fault_sweep_progressive");
  std::printf(
      "\nAccuracy falls gradually as links get lossier and devices die; "
      "even with\nevery device permanently dead the run completes (dead "
      "samples are flagged\nand counted). Same seed => identical numbers, "
      "any DDNN_THREADS.\n");
  return 0;
}
