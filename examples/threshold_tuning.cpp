// Threshold tuning workflow (paper Section III-D: "search over the ranges
// of T on a validation set and pick the one with the best accuracy").
//
// Splits the training set into train/validation, trains the DDNN on the
// reduced split, searches the local exit threshold on the validation split,
// and only then reports test metrics at the chosen threshold — the honest
// protocol a deployment would use.
//
//   $ ./build/examples/threshold_tuning
#include <cstdio>

#include "core/cache.hpp"
#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "util/env.hpp"
#include "util/results.hpp"
#include "util/table.hpp"

using namespace ddnn;

int main() {
  const int epochs = static_cast<int>(env_int("DDNN_EPOCHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("DDNN_SEED", 42));
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  data::MvmcConfig data_cfg;
  data_cfg.seed = seed;
  const auto dataset = data::MvmcDataset::generate(data_cfg);

  // Hold out the last 20% of the training split for validation.
  const std::size_t val_size = dataset.train().size() / 5;
  const std::vector<data::MvmcSample> train_split(
      dataset.train().begin(), dataset.train().end() - static_cast<long>(val_size));
  const std::vector<data::MvmcSample> val_split(
      dataset.train().end() - static_cast<long>(val_size),
      dataset.train().end());
  std::printf("train %zu / validation %zu / test %zu samples\n",
              train_split.size(), val_split.size(), dataset.test().size());

  core::DdnnModel model(
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
  core::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  core::train_or_load(model,
                      "example_threshold_tuning_ep" + std::to_string(epochs),
                      [&] {
                        std::printf("training %d epochs...\n", epochs);
                        core::train_ddnn(model, train_split, devices,
                                         train_cfg);
                      });
  model.set_training(false);

  // Search T on validation data only.
  const auto val_eval = core::evaluate_exits(model, val_split, devices);
  const double best_t = core::search_threshold_best_overall(val_eval, 0.05);
  const auto val_best = core::apply_policy(val_eval, {best_t});
  std::printf("\nvalidation sweep:\n");
  Table sweep({"T", "Overall (%)", "Local exit (%)"});
  for (double t = 0.0; t <= 1.0001; t += 0.2) {
    const auto r = core::apply_policy(val_eval, {t});
    std::printf("  T=%.1f  overall %.1f%%  local exits %.1f%%\n", t,
                100.0 * r.overall_accuracy, 100.0 * r.local_exit_fraction());
    sweep.add_row({Table::num(t, 1), Table::num(100.0 * r.overall_accuracy, 1),
                   Table::num(100.0 * r.local_exit_fraction(), 1)});
  }
  write_results_csv(sweep, "example_threshold_tuning");
  std::printf("chosen T* = %.2f (validation overall %.1f%%)\n\n", best_t,
              100.0 * val_best.overall_accuracy);

  // Final report on untouched test data.
  const auto test_eval = core::evaluate_exits(model, dataset.test(), devices);
  const auto test_result = core::apply_policy(test_eval, {best_t});
  std::printf("test @ T*: overall %.1f%%, %.1f%% exited locally, "
              "%.1f B/sample/device (Eq. 1)\n",
              100.0 * test_result.overall_accuracy,
              100.0 * test_result.local_exit_fraction(),
              core::ddnn_comm_bytes(test_result.local_exit_fraction(),
                                    model.config().comm_params()));
  return 0;
}
