// Quickstart: train a small DDNN on the synthetic multi-view dataset and
// run staged inference with a local exit.
//
//   $ ./build/examples/quickstart
//
// Environment knobs: DDNN_EPOCHS (default 30), DDNN_SEED (default 42).
#include <cstdio>

#include "core/cache.hpp"
#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

using namespace ddnn;

int main() {
  const int epochs = static_cast<int>(env_int("DDNN_EPOCHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("DDNN_SEED", 42));

  // 1. Synthesize the multi-view multi-camera dataset (6 cameras, 3 classes).
  data::MvmcConfig data_cfg;
  data_cfg.seed = seed;
  std::printf("generating SynthMVMC (%d train / %d test samples)...\n",
              data_cfg.train_samples, data_cfg.test_samples);
  const auto dataset = data::MvmcDataset::generate(data_cfg);

  // 2. Build the paper's evaluated configuration (c): six end devices with a
  //    shared local exit, plus a cloud section, fused MP locally and CC in
  //    the cloud.
  auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  core::DdnnModel model(cfg);
  std::printf("model: %d devices, f=%d, device section = %lld bytes\n",
              cfg.num_devices, cfg.device_filters,
              static_cast<long long>(model.device_memory_bytes()));

  // 3. Jointly train all exits (equal weights, Adam, paper Section IV-A).
  core::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.verbose = true;
  const std::vector<int> devices = {0, 1, 2, 3, 4, 5};
  Stopwatch sw;
  const auto history =
      core::train_ddnn(model, dataset.train(), devices, train_cfg);
  std::printf("trained %d epochs in %.1f s (final loss %.4f)\n", epochs,
              sw.seconds(), history.final_loss());

  // 4. Evaluate each exit and the overall staged policy at T = 0.8.
  const auto eval = core::evaluate_exits(model, dataset.test(), devices);
  std::printf("local accuracy (all samples exit locally):  %.1f%%\n",
              100.0 * core::exit_accuracy(eval, 0));
  std::printf("cloud accuracy (all samples exit in cloud): %.1f%%\n",
              100.0 * core::exit_accuracy(eval, 1));
  const auto policy = core::apply_policy(eval, {0.8});
  std::printf("overall accuracy @ T=0.8: %.1f%% (%.1f%% exited locally)\n",
              100.0 * policy.overall_accuracy,
              100.0 * policy.local_exit_fraction());
  std::printf("comm cost (Eq. 1): %.1f B/sample/device vs %lld B raw offload\n",
              core::ddnn_comm_bytes(policy.local_exit_fraction(),
                                    cfg.comm_params()),
              static_cast<long long>(core::raw_offload_bytes(3, 32, 32)));
  return 0;
}
