// Three-tier deployment: devices -> edge -> cloud (paper Figure 2(e)).
//
// Builds the configuration with an edge server between the six end devices
// and the cloud, trains all three exits jointly, and shows how samples
// spread over the exits as the two thresholds vary — the vertical-scaling
// story of the paper.
//
//   $ ./build/examples/edge_hierarchy
#include <cstdio>

#include "core/cache.hpp"
#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "dist/runtime.hpp"
#include "util/env.hpp"
#include "util/results.hpp"
#include "util/table.hpp"

using namespace ddnn;

int main() {
  const int epochs = static_cast<int>(env_int("DDNN_EPOCHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("DDNN_SEED", 42));
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  data::MvmcConfig data_cfg;
  data_cfg.seed = seed;
  const auto dataset = data::MvmcDataset::generate(data_cfg);

  const auto cfg =
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgeCloud);
  core::DdnnModel model(cfg);
  std::printf("exits: local -> edge -> cloud (%d in total)\n",
              cfg.num_exits());

  core::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  core::train_or_load(model,
                      "example_edge_hierarchy_ep" + std::to_string(epochs),
                      [&] {
                        std::printf("training %d epochs...\n", epochs);
                        core::train_ddnn(model, dataset.train(), devices,
                                         train_cfg);
                      });
  model.set_training(false);

  const auto eval = core::evaluate_exits(model, dataset.test(), devices);
  std::printf("\nper-exit accuracy when exiting 100%% of samples there:\n");
  for (std::size_t e = 0; e < eval.num_exits(); ++e) {
    std::printf("  %-5s %.1f%%\n", eval.exit_names[e].c_str(),
                100.0 * core::exit_accuracy(eval, e));
  }

  Table table({"T_local", "T_edge", "local/edge/cloud exit (%)",
               "Overall (%)", "Mean latency (ms)"});
  for (const auto& [tl, te] : std::vector<std::pair<double, double>>{
           {0.0, 0.0}, {0.5, 0.8}, {0.8, 0.8}, {0.8, 1.0}, {1.0, 1.0}}) {
    const auto policy = core::apply_policy(eval, {tl, te});
    dist::HierarchyRuntime runtime(model, {tl, te}, devices);
    // Every message crosses the Transport seam. SimTransport is the
    // byte-identical simulator path; swap in a SocketTransport (or run
    // `ddnn serve`) to deploy the same hierarchy over real TCP.
    dist::SimTransport transport;
    runtime.set_transport(&transport);
    runtime.run(dataset.test());
    table.add_row(
        {Table::num(tl, 1), Table::num(te, 1),
         Table::num(100.0 * policy.exit_fraction[0], 0) + "/" +
             Table::num(100.0 * policy.exit_fraction[1], 0) + "/" +
             Table::num(100.0 * policy.exit_fraction[2], 0),
         Table::num(100.0 * policy.overall_accuracy, 1),
         Table::num(1e3 * runtime.metrics().mean_latency_s(), 1)});
  }
  std::printf("\n%s", table.to_string().c_str());
  write_results_csv(table, "example_edge_hierarchy");
  std::printf(
      "\nHigher thresholds keep samples low in the hierarchy (less latency, "
      "fewer bytes);\nlower thresholds escalate more samples toward the "
      "cloud.\n");
  return 0;
}
