// Fleet-scale queueing: one million classify() outcomes replayed through a
// deterministic multi-server queueing network — 120 end devices fanned out
// over 4 edge pools feeding a shared cloud pool (the horizontal-scaling
// story of paper Section IV, pushed to serving-system scale).
//
// The trained three-exit hierarchy (devices -> edge -> cloud) classifies
// the test set once; the resulting traces (exit taken, device-side latency,
// dead flags from the fault layer) seed an open-loop Poisson arrival
// process. Escalated samples queue at their edge (batched dispatch), final
// exits continue over the edge->cloud hop into the cloud pool. The sweep
// compares the edge-selection policies; the nearest-policy run also emits a
// windowed time series (throughput, latency percentiles, queue depth) and
// a "fleet_sim" ledger record gated by bench/baselines/fleet_sim.json.
//
// Everything is event-driven on a simulated clock: reruns are byte
// identical, under any DDNN_THREADS.
//
//   $ ./build/examples/fleet_sim
#include <cstdio>
#include <string>
#include <vector>

#include "core/cache.hpp"
#include "core/trainer.hpp"
#include "dist/queueing.hpp"
#include "dist/runtime.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "util/env.hpp"
#include "util/results.hpp"
#include "util/table.hpp"

using namespace ddnn;

int main() {
  const int epochs = static_cast<int>(env_int("DDNN_EPOCHS", 30));
  const auto seed = static_cast<std::uint64_t>(env_int("DDNN_SEED", 42));
  const auto stream = env_int("DDNN_FLEET_STREAM", 1'000'000);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  data::MvmcConfig data_cfg;
  data_cfg.seed = seed;
  const auto dataset = data::MvmcDataset::generate(data_cfg);

  const auto cfg =
      core::DdnnConfig::preset(core::HierarchyPreset::kDevicesEdgeCloud);
  core::DdnnModel model(cfg);
  core::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  core::train_or_load(model, "example_fleet_sim_ep" + std::to_string(epochs),
                      [&] {
                        std::printf("training %d epochs...\n", epochs);
                        core::train_ddnn(model, dataset.train(), devices,
                                         train_cfg);
                      });
  model.set_training(false);

  // Classify the test set once under a mildly hostile network (lossy links
  // plus one permanently dead device) so the trace pool carries every
  // outcome the fleet has to route: local exits, edge exits, cloud exits,
  // degraded paths and dead samples.
  dist::HierarchyRuntime runtime(model, {0.5, 0.8}, devices);
  dist::FaultPlan plan;
  plan.seed = 1234;
  plan.link_drop_prob = 0.1;
  plan.devices.push_back({.permanent_fail_at = 0});
  runtime.set_fault_plan(plan);
  std::vector<dist::InferenceTrace> traces;
  traces.reserve(dataset.test().size());
  for (const auto& sample : dataset.test()) {
    traces.push_back(runtime.classify(sample));
  }

  dist::FleetConfig fleet;
  fleet.num_devices = 120;
  fleet.num_edges = 4;
  fleet.edge_servers = 1;
  // Sized for the worst case (an unconfident model escalating everything):
  // 10 cloud servers at 4 ms serve 2500 Hz, above the 2000 Hz offered load,
  // so the network stays stable even when every sample rides to the top.
  fleet.cloud_servers = 10;
  fleet.arrival_rate_hz = 2000.0;
  fleet.first_cloud_exit = cfg.num_exits() - 1;
  fleet.seed = seed;

  std::printf(
      "\nreplaying %lld arrivals over %d devices x %d edge pools "
      "(Poisson %.0f Hz)\n",
      static_cast<long long>(stream), fleet.num_devices, fleet.num_edges,
      fleet.arrival_rate_hz);

  Table table({"Policy", "Completed", "Shed", "Dead", "Thrpt (Hz)",
               "p50 (ms)", "p95 (ms)", "Edge util (%)", "Cloud util (%)"});
  dist::FleetStats nearest_stats;
  obs::WindowedSeries series(5.0, "t");
  obs::MetricsRegistry registry;
  obs::SloEngine slo;
  for (const auto policy :
       {dist::EdgePolicy::kNearest, dist::EdgePolicy::kLeastLoaded,
        dist::EdgePolicy::kRoundRobin}) {
    dist::FleetConfig run_cfg = fleet;
    run_cfg.policy = policy;
    const bool keep = policy == dist::EdgePolicy::kNearest;
    const auto stats =
        dist::simulate_fleet(traces, run_cfg, stream, keep ? &series : nullptr,
                             keep ? &registry : nullptr, keep ? &slo : nullptr);
    if (keep) nearest_stats = stats;
    table.add_row({to_string(policy), std::to_string(stats.completed),
                   std::to_string(stats.shed), std::to_string(stats.dead),
                   Table::num(stats.throughput_hz, 1),
                   Table::num(1e3 * stats.p50_latency_s, 2),
                   Table::num(1e3 * stats.p95_latency_s, 2),
                   Table::num(100.0 * stats.mean_edge_utilization(), 1),
                   Table::num(100.0 * stats.cloud.utilization, 1)});
  }
  std::printf("\n%s", table.to_string().c_str());
  write_results_csv(table, "example_fleet_sim_policies");

  std::printf("\nper-station load (nearest policy):\n%s",
              nearest_stats.station_table().to_string().c_str());

  // Latency tail from the HDR histogram: percentiles carry a <=1/128
  // (~0.78%) relative bucket error bound, the max is exact, and every line
  // names the trace exemplar (arrival index + distributed trace id) that
  // landed in the reported bucket.
  const auto exemplar_str = [](const obs::HdrExemplar& ex) {
    if (!ex.valid()) return std::string("-");
    return "#" + std::to_string(ex.sample) + " trace " +
           std::to_string(ex.trace_id);
  };
  std::printf(
      "\nlatency tail (nearest policy, HDR buckets, rel. err <= %.2f%%):\n",
      100.0 * obs::HdrHistogram::relative_error_bound());
  Table tail({"Quantile", "Latency (ms)", "Exemplar"});
  tail.add_row({"p99", Table::num(1e3 * nearest_stats.p99_latency_s, 3),
                exemplar_str(nearest_stats.p99_exemplar)});
  tail.add_row({"p99.9", Table::num(1e3 * nearest_stats.p999_latency_s, 3),
                exemplar_str(nearest_stats.p999_exemplar)});
  tail.add_row({"max (exact)", Table::num(1e3 * nearest_stats.max_latency_s, 3),
                exemplar_str(nearest_stats.max_exemplar)});
  std::printf("%s", tail.to_string().c_str());

  std::printf("\nSLO health (nearest policy):\n%s",
              slo.to_table().to_string().c_str());

  const std::string dir = results_dir();
  if (!dir.empty()) {
    const std::string series_path = dir + "/example_fleet_sim_series.csv";
    series.write_csv(series_path);
    std::printf("\nwindowed series (%zu windows of %.0f s) -> %s\n",
                series.window_count(), series.width(), series_path.c_str());

    obs::LedgerRecord record;
    record.command = "fleet_sim";
    record.add_info("policy", to_string(dist::EdgePolicy::kNearest));
    record.add_info("devices", std::to_string(fleet.num_devices));
    record.add_info("edges", std::to_string(fleet.num_edges));
    record.add_info("series", series_path);
    record.add_metric("fleet.arrivals",
                      static_cast<double>(nearest_stats.arrivals));
    record.add_metric("fleet.completed",
                      static_cast<double>(nearest_stats.completed));
    record.add_metric("fleet.local", static_cast<double>(nearest_stats.local));
    record.add_metric("fleet.escalated",
                      static_cast<double>(nearest_stats.escalated));
    record.add_metric("fleet.shed", static_cast<double>(nearest_stats.shed));
    record.add_metric("fleet.dead", static_cast<double>(nearest_stats.dead));
    record.add_metric("fleet.throughput_hz", nearest_stats.throughput_hz);
    record.add_metric("fleet.mean_latency_ms",
                      1e3 * nearest_stats.mean_latency_s);
    record.add_metric("fleet.p50_latency_ms",
                      1e3 * nearest_stats.p50_latency_s);
    record.add_metric("fleet.p95_latency_ms",
                      1e3 * nearest_stats.p95_latency_s);
    record.add_metric("fleet.max_latency_ms",
                      1e3 * nearest_stats.max_latency_s);
    record.add_metric("fleet.p99_latency_ms",
                      1e3 * nearest_stats.p99_latency_s);
    record.add_metric("fleet.p999_latency_ms",
                      1e3 * nearest_stats.p999_latency_s);
    // Exemplar sample indices: deterministic, so the baseline pins them —
    // a drifting exemplar means the tail itself moved.
    record.add_metric("fleet.p99_sample",
                      static_cast<double>(nearest_stats.p99_exemplar.sample));
    record.add_metric("fleet.p999_sample",
                      static_cast<double>(nearest_stats.p999_exemplar.sample));
    record.add_metric("fleet.edge_util_mean",
                      nearest_stats.mean_edge_utilization());
    record.add_metric("fleet.cloud_util", nearest_stats.cloud.utilization);
    for (const auto& status : slo.evaluate()) {
      // fleet.latency -> fleet.slo.latency.*
      const std::string base = "fleet.slo." + status.name.substr(6);
      record.add_metric(base + ".ratio", status.ratio);
      record.add_metric(base + ".fast_burn", status.fast_burn);
      record.add_metric(base + ".slow_burn", status.slow_burn);
      record.add_metric(base + ".state",
                        static_cast<double>(static_cast<int>(status.state)));
    }
    for (std::size_t g = 0; g < nearest_stats.edges.size(); ++g) {
      const std::string base = "fleet.station.edge" + std::to_string(g);
      record.add_metric(base + ".served",
                        static_cast<double>(nearest_stats.edges[g].served));
      record.add_metric(base + ".utilization",
                        nearest_stats.edges[g].utilization);
    }
    record.add_metric("fleet.station.cloud.served",
                      static_cast<double>(nearest_stats.cloud.served));
    record.add_metric("fleet.station.cloud.utilization",
                      nearest_stats.cloud.utilization);
    obs::append_record(record);

    // Full registry snapshot (HDR buckets, exemplar trace ids, per-station
    // counters) for offline drill-down next to the series CSV.
    registry.write_json(dir + "/example_fleet_sim_metrics.json");
  }

  std::printf(
      "\nDead traces are counted, never queued; overload sheds instead of "
      "crashing.\nSame seed => byte-identical series and ledger, any "
      "DDNN_THREADS.\n");
  return 0;
}
