// Ablation: what does end-to-end binarization cost, and what does it buy?
//
// The paper adopts BNN/eBNN blocks because end devices have tiny memory and
// the binary feature maps make the uplink payload 1 bit per activation.
// This ablation trains the accuracy upper bound — the same architecture
// with float32 devices AND cloud — and compares accuracy, device memory and
// the wire bytes a non-binarized deployment would have to pay (float32
// features are 32x the payload of the bit-packed ones, Eq. 1's f*o/8 term
// becoming f*o*4).
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Ablation — end-to-end binarization cost/benefit",
               "Teerapittayanon et al., ICDCS'17, Sections II-B and IV-A");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  struct Arm {
    const char* name;
    bool float_devices;
    bool float_cloud;
  };
  const std::vector<Arm> arms = {
      {"binary everywhere (paper)", false, false},
      {"float32 everywhere (upper bound)", true, true},
  };

  Table table({"Precision", "Local (%)", "Cloud (%)", "Overall (%)",
               "Device mem (B)", "Offload payload (B)"});
  for (const auto& arm : arms) {
    auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
    cfg.float_devices = arm.float_devices;
    cfg.float_cloud = arm.float_cloud;
    const auto model = trained_ddnn(cfg, devices, dataset, env);
    const auto eval = core::evaluate_exits(*model, dataset.test(), devices);
    const auto policy = core::apply_policy(eval, {0.8});
    // Feature payload per escalated sample: 1 bit/activation when binary,
    // 4 B/activation when float.
    const std::int64_t activations =
        cfg.device_filters * cfg.filter_output_bits();
    const std::int64_t payload =
        arm.float_devices ? activations * 4 : activations / 8;
    // Float weights cost 32x the bits; batch-norm bytes are unchanged.
    const std::int64_t conv_weights = cfg.device_filters * 3 * 3 * 3;
    const std::int64_t head_weights =
        cfg.device_filters * 256 * cfg.num_classes;
    const std::int64_t mem =
        arm.float_devices
            ? 4 * (conv_weights + head_weights) +
                  16 * (cfg.device_filters + cfg.num_classes)
            : model->device_memory_bytes();
    table.add_row({arm.name,
                   Table::num(100.0 * core::exit_accuracy(eval, 0), 1),
                   Table::num(100.0 * core::exit_accuracy(eval, 1), 1),
                   Table::num(100.0 * policy.overall_accuracy, 1),
                   std::to_string(mem), std::to_string(payload)});
  }
  maybe_write_csv(table, "ablation_binarization");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: binarization costs little or no accuracy at this "
      "scale (matching the\nBNN results the paper cites), while float32 "
      "would explode device memory (32x weight\nbytes, far over the 2 KB "
      "budget) and the per-sample offload payload (128 B -> 4096 B,\nworse "
      "than shipping the raw 3072 B image).\n");
  return 0;
}
