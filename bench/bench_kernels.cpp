// Microbenchmarks of the substrate kernels (google-benchmark).
//
// These time the operations the training loop and the simulated devices are
// made of: im2col-based convolution, pooling, batch norm, binarization, the
// bit-packed wire format and the aggregation primitives. Includes the
// ablation from DESIGN.md §5: bit-packed vs float32 feature transport.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "autograd/grad_mode.hpp"
#include "autograd/ops.hpp"
#include "core/entropy.hpp"
#include "core/model.hpp"
#include "dist/message.hpp"
#include "infer/engine.hpp"
#include "infer/workspace.hpp"
#include "nn/blocks.hpp"
#include "tensor/bitpack.hpp"
#include "tensor/im2col.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ddnn;
using autograd::Variable;

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulThreads(benchmark::State& state) {
  // Threaded-vs-serial GEMM: Arg is the pool size. On an N-core runner
  // the 256^3 case should show ~min(N, 4)x throughput at Arg(4) vs Arg(1)
  // with bit-identical outputs (see test_thread_pool).
  ThreadPool::set_size(static_cast<int>(state.range(0)));
  const std::int64_t n = 256;
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::set_size(0);  // restore the DDNN_THREADS / hardware default
}
BENCHMARK(BM_MatmulThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_Im2col(benchmark::State& state) {
  Rng rng(2);
  const Tensor x = Tensor::randn(Shape{32, 3, 32, 32}, rng);
  const Conv2dGeometry g{.in_channels = 3, .in_h = 32, .in_w = 32};
  for (auto _ : state) {
    benchmark::DoNotOptimize(im2col(x, g));
  }
}
BENCHMARK(BM_Im2col);

void BM_Conv2dForward(benchmark::State& state) {
  const auto filters = state.range(0);
  Rng rng(3);
  autograd::NoGradGuard no_grad;
  const Variable x(Tensor::randn(Shape{32, 3, 32, 32}, rng));
  const Variable w(Tensor::randn(Shape{filters, 3, 3, 3}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(autograd::conv2d(x, w, Variable(), 1, 1));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(4)->Arg(8)->Arg(32);

void BM_Conv2dForwardThreads(benchmark::State& state) {
  // Threaded-vs-serial conv forward (im2col + GEMM): Arg is the pool size.
  ThreadPool::set_size(static_cast<int>(state.range(0)));
  Rng rng(3);
  autograd::NoGradGuard no_grad;
  const Variable x(Tensor::randn(Shape{32, 3, 32, 32}, rng));
  const Variable w(Tensor::randn(Shape{32, 3, 3, 3}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(autograd::conv2d(x, w, Variable(), 1, 1));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  ThreadPool::set_size(0);
}
BENCHMARK(BM_Conv2dForwardThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dTrainStep(benchmark::State& state) {
  // Forward + backward through one ConvP-sized convolution.
  Rng rng(4);
  Variable x = Variable::parameter(Tensor::randn(Shape{32, 3, 32, 32}, rng));
  Variable w = Variable::parameter(Tensor::randn(Shape{4, 3, 3, 3}, rng));
  const Variable ones(Tensor::ones(Shape{32 * 4 * 32 * 32, 1}));
  for (auto _ : state) {
    Variable y = autograd::conv2d(x, w, Variable(), 1, 1);
    Variable loss = autograd::matmul(
        autograd::reshape(y, Shape{1, y.numel()}), ones);
    x.zero_grad();
    w.zero_grad();
    loss.backward();
    benchmark::DoNotOptimize(w.grad());
  }
}
BENCHMARK(BM_Conv2dTrainStep);

void BM_MaxPool(benchmark::State& state) {
  Rng rng(5);
  autograd::NoGradGuard no_grad;
  const Variable x(Tensor::randn(Shape{32, 4, 32, 32}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(autograd::max_pool2d(x, 3, 2, 1));
  }
}
BENCHMARK(BM_MaxPool);

void BM_BatchNorm(benchmark::State& state) {
  Rng rng(6);
  autograd::NoGradGuard no_grad;
  const Variable x(Tensor::randn(Shape{32, 4, 16, 16}, rng));
  const Variable gamma(Tensor::ones(Shape{4}));
  const Variable beta(Tensor::zeros(Shape{4}));
  Tensor rm = Tensor::zeros(Shape{4});
  Tensor rv = Tensor::ones(Shape{4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        autograd::batch_norm(x, gamma, beta, rm, rv, true, 0.1f, 1e-5f));
  }
}
BENCHMARK(BM_BatchNorm);

void BM_Binarize(benchmark::State& state) {
  Rng rng(7);
  autograd::NoGradGuard no_grad;
  const Variable x(Tensor::randn(Shape{32, 4, 16, 16}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(autograd::binarize(x));
  }
}
BENCHMARK(BM_Binarize);

void BM_DeviceConvPBlock(benchmark::State& state) {
  // A full fused device block at batch 1: the per-sample compute a simulated
  // end device performs.
  Rng rng(8);
  autograd::NoGradGuard no_grad;
  nn::ConvPBlock block(3, 4, rng);
  block.set_training(false);
  const Variable x(Tensor::randn(Shape{1, 3, 32, 32}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.forward(x));
  }
}
BENCHMARK(BM_DeviceConvPBlock);

void BM_BinaryConv2dInfer(benchmark::State& state) {
  // The engine path of a binarized conv on ±1 input: cached bit-packed
  // weights + XNOR-popcount over a packed im2col. Compare BM_DeviceConvPBlock
  // and the BENCH_engine.json comparison this binary writes on exit.
  Rng rng(8);
  nn::BinaryConv2d conv(4, 8, 3, 1, 1, rng);
  conv.set_training(false);
  const Tensor x = ops::sign(Tensor::randn(Shape{8, 4, 16, 16}, rng));
  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                infer::next_section_id(), "bench_binary_conv"};
  auto body = [&](const std::vector<Tensor>& in, infer::Workspace& w) {
    return std::vector<Tensor>{conv.infer(in[0], w)};
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::run_section(ws, desc, {x}, "", body));
  }
}
BENCHMARK(BM_BinaryConv2dInfer);

void BM_BinaryLinearInfer(benchmark::State& state) {
  Rng rng(8);
  nn::BinaryLinear fc(1024, 128, rng);
  fc.set_training(false);
  const Tensor x = ops::sign(Tensor::randn(Shape{8, 1024}, rng));
  infer::Workspace ws;
  const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                infer::next_section_id(), "bench_binary_fc"};
  auto body = [&](const std::vector<Tensor>& in, infer::Workspace& w) {
    return std::vector<Tensor>{fc.infer(in[0], w)};
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::run_section(ws, desc, {x}, "", body));
  }
}
BENCHMARK(BM_BinaryLinearInfer);

void BM_PackSigns(benchmark::State& state) {
  Rng rng(9);
  const Tensor feats = ops::sign(Tensor::randn(Shape{4, 16, 16}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack_signs(feats));
  }
  state.SetBytesProcessed(state.iterations() *
                          packed_size_bytes(feats.numel()));
}
BENCHMARK(BM_PackSigns);

void BM_WireBinaryVsFloat(benchmark::State& state) {
  // Ablation (DESIGN.md §5): bytes-on-wire for binary vs float32 transport
  // of a device feature map. The timed work is the full encode, and the
  // byte counters show the 32x payload difference.
  Rng rng(10);
  const Tensor feats = ops::sign(Tensor::randn(Shape{1, 4, 16, 16}, rng));
  const bool binary = state.range(0) == 1;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    if (binary) {
      const auto msg = dist::encode_binary_feature_map(feats);
      bytes = msg.payload_bytes();
      benchmark::DoNotOptimize(msg.payload.data());
    } else {
      const auto msg = dist::encode_class_scores(feats);  // float32 payload
      bytes = msg.payload_bytes();
      benchmark::DoNotOptimize(msg.payload.data());
    }
  }
  state.counters["payload_B"] = static_cast<double>(bytes);
}
BENCHMARK(BM_WireBinaryVsFloat)->Arg(1)->Arg(0);

void BM_NormalizedEntropy(benchmark::State& state) {
  const std::vector<float> probs{0.5f, 0.3f, 0.2f};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::normalized_entropy(probs));
  }
}
BENCHMARK(BM_NormalizedEntropy);

void BM_StackAggregation(benchmark::State& state) {
  // MP aggregation across 6 device branches.
  Rng rng(11);
  autograd::NoGradGuard no_grad;
  std::vector<Variable> branches;
  for (int i = 0; i < 6; ++i) {
    branches.emplace_back(Tensor::randn(Shape{32, 3}, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(autograd::stack_max(branches));
  }
}
BENCHMARK(BM_StackAggregation);

// ------------------------------------------------- autograd vs engine JSON

/// Best-of-N wall time of fn() in milliseconds (after warmup). Best-of
/// rather than mean: the comparison machine may be a shared core, and the
/// minimum is the least contaminated by scheduler noise.
template <typename Fn>
double min_time_ms(Fn&& fn, int warmup = 10, int reps = 120) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct EngineRow {
  const char* name;
  double autograd_ms;
  double engine_ms;
  double speedup() const { return autograd_ms / engine_ms; }
};

/// Times the autograd forward against the engine plan on the binarized
/// primitives and a full device section, and writes BENCH_engine.json to
/// $DDNN_RESULTS_DIR (default `results/`). The engine acceptance bar
/// is the device-section row: >= 3x over the autograd path at batch 1.
void write_engine_comparison() {
  Rng rng(8);
  autograd::NoGradGuard no_grad;
  std::vector<EngineRow> rows;

  {
    nn::BinaryConv2d conv(4, 8, 3, 1, 1, rng);
    conv.set_training(false);
    const Tensor x = ops::sign(Tensor::randn(Shape{8, 4, 16, 16}, rng));
    const Variable vx(x);
    infer::Workspace ws;
    const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                  infer::next_section_id(), "cmp_binary_conv"};
    auto body = [&](const std::vector<Tensor>& in, infer::Workspace& w) {
      return std::vector<Tensor>{conv.infer(in[0], w)};
    };
    rows.push_back(
        {"binary_conv",
         min_time_ms([&] { benchmark::DoNotOptimize(conv.forward(vx)); }),
         min_time_ms([&] {
           benchmark::DoNotOptimize(infer::run_section(ws, desc, {x}, "", body));
         })});
  }
  {
    nn::BinaryLinear fc(1024, 128, rng);
    fc.set_training(false);
    const Tensor x = ops::sign(Tensor::randn(Shape{8, 1024}, rng));
    const Variable vx(x);
    infer::Workspace ws;
    const infer::SectionDesc desc{infer::SectionTier::kDevice,
                                  infer::next_section_id(), "cmp_binary_fc"};
    auto body = [&](const std::vector<Tensor>& in, infer::Workspace& w) {
      return std::vector<Tensor>{fc.infer(in[0], w)};
    };
    rows.push_back(
        {"binary_fc",
         min_time_ms([&] { benchmark::DoNotOptimize(fc.forward(vx)); }),
         min_time_ms([&] {
           benchmark::DoNotOptimize(infer::run_section(ws, desc, {x}, "", body));
         })});
  }
  {
    // A full device section (trunk + local exit head) at batch 1: the
    // per-sample work of one simulated end device, preset (c).
    core::DdnnModel model(
        core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud));
    model.set_training(false);
    const Variable view(
        Tensor::rand_uniform(Shape{1, 3, 32, 32}, rng, 0.0f, 1.0f));
    auto run_section = [&] {
      const Variable features = model.device_section_features(0, view);
      benchmark::DoNotOptimize(model.device_section_logits(0, features));
    };
    infer::set_engine_kind(infer::EngineKind::kAutograd);
    const double autograd_ms = min_time_ms(run_section);
    infer::set_engine_kind(infer::EngineKind::kPlan);
    const double engine_ms = min_time_ms(run_section);
    infer::clear_engine_override();
    rows.push_back({"device_section", autograd_ms, engine_ms});
  }

  const std::string dir = env_string("DDNN_RESULTS_DIR", "results");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/BENCH_engine.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"autograd_ms\": %.6f, "
                 "\"engine_ms\": %.6f, \"speedup\": %.2f}%s\n",
                 r.name, r.autograd_ms, r.engine_ms, r.speedup(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nautograd vs engine (best-of-120, written to %s):\n",
              path.c_str());
  for (const auto& r : rows) {
    std::printf("  %-16s autograd %8.4f ms   engine %8.4f ms   %5.2fx\n",
                r.name, r.autograd_ms, r.engine_ms, r.speedup());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_engine_comparison();
  return 0;
}
