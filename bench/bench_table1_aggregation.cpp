// Table I: accuracy of local/cloud aggregation-scheme pairs.
//
// Trains one 6-device DDNN per (local, cloud) scheme pair in
// {MP, AP, CC} x {MP, AP, CC} and reports Local Accuracy (100% of samples
// exited at the local aggregator) and Cloud Accuracy (100% exited in the
// cloud). Paper finding to reproduce: MP-CC dominates; MP-* is strong
// locally (per-class max across devices is meaningful); *-CC is strong in
// the cloud (concatenation preserves the feature information); AP is diluted
// locally by devices that do not see the object.
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Table I — Accuracy of aggregation schemes",
               "Teerapittayanon et al., ICDCS'17, Table I");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  // Paper row order.
  const std::vector<std::pair<std::string, std::string>> schemes = {
      {"MP", "MP"}, {"MP", "CC"}, {"AP", "AP"}, {"AP", "CC"}, {"CC", "CC"},
      {"AP", "MP"}, {"MP", "AP"}, {"CC", "MP"}, {"CC", "AP"}};

  Table table({"Schemes", "Local Acc. (%)", "Cloud Acc. (%)"});
  for (const auto& [local, cloud] : schemes) {
    auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
    cfg.local_agg = core::parse_agg_kind(local);
    cfg.cloud_agg = core::parse_agg_kind(cloud);
    const auto model = trained_ddnn(cfg, devices, dataset, env);
    const auto eval =
        core::evaluate_exits(*model, dataset.test(), devices);
    table.add_row({local + "-" + cloud,
                   Table::num(100.0 * core::exit_accuracy(eval, 0), 1),
                   Table::num(100.0 * core::exit_accuracy(eval, 1), 1)});
  }
  maybe_write_csv(table, "table1_aggregation");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: MP-CC best overall; MP-* strong locally; *-CC strong "
      "in the cloud;\nAP-* weaker locally (absent-object devices dilute the "
      "average).\n");
  return 0;
}
