// Ablation (paper Section IV-A): sensitivity to the per-exit loss weights.
//
// "We explored heavily weighting both the local exit and the cloud exit,
// but neither weighting scheme significantly changed the accuracy of the
// system" (the paper uses equal weights, citing GoogLeNet's <1% weight
// sensitivity). This bench trains the same architecture under three
// weightings and reports all accuracy measures.
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Ablation — per-exit loss weights",
               "Teerapittayanon et al., ICDCS'17, Section IV-A");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};
  const auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);

  struct Arm {
    const char* name;
    std::vector<float> weights;
    const char* suffix;
  };
  const std::vector<Arm> arms = {
      {"equal (1, 1) — paper", {}, ""},
      {"local-heavy (3, 1)", {3.0f, 1.0f}, "_w3-1"},
      {"cloud-heavy (1, 3)", {1.0f, 3.0f}, "_w1-3"},
  };

  Table table({"Exit weights", "Local (%)", "Cloud (%)", "Overall (%)",
               "Local Exit (%)"});
  for (const auto& arm : arms) {
    auto train_cfg = standard_train_config(env);
    train_cfg.exit_weights = arm.weights;
    const auto model =
        trained_ddnn(cfg, devices, dataset, env, train_cfg, arm.suffix);
    const auto eval = core::evaluate_exits(*model, dataset.test(), devices);
    const auto policy = core::apply_policy(eval, {0.8});
    table.add_row({arm.name,
                   Table::num(100.0 * core::exit_accuracy(eval, 0), 1),
                   Table::num(100.0 * core::exit_accuracy(eval, 1), 1),
                   Table::num(100.0 * policy.overall_accuracy, 1),
                   pct(policy.local_exit_fraction(), 1)});
  }
  maybe_write_csv(table, "ablation_exit_weights");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: all three weightings land within a few points of each "
      "other — the\njoint objective is not weight-sensitive on this task, "
      "matching the paper's finding.\n");
  return 0;
}
