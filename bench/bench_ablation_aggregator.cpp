// Ablation (paper Section VI future work): learned gated aggregation (GA)
// against the paper's MP / AP / CC local aggregators.
//
// GA learns one softmax gate per device and renormalizes over the surviving
// devices under failures — the trainable middle ground between MP (winner
// takes all) and AP (uniform dilution). The cloud aggregator is fixed to CC
// (the paper's best) in all arms; the table also reports accuracy with the
// single best device failed, where GA's renormalization matters most.
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Ablation — learned gated aggregation (GA extension)",
               "Teerapittayanon et al., ICDCS'17, Sections III-B and VI");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  Table table({"Local agg", "Local (%)", "Cloud (%)", "Overall (%)",
               "Overall, best device failed (%)"});
  for (const auto local : {"MP", "AP", "GA"}) {
    auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
    cfg.local_agg = core::parse_agg_kind(local);
    const auto model = trained_ddnn(cfg, devices, dataset, env);
    const auto eval = core::evaluate_exits(*model, dataset.test(), devices);
    const auto policy = core::apply_policy(eval, {0.8});
    // Fail the best (last) device.
    std::vector<bool> active(6, true);
    active[5] = false;
    const auto degraded_eval =
        core::evaluate_exits(*model, dataset.test(), devices, active);
    const auto degraded = core::apply_policy(degraded_eval, {0.8});
    table.add_row({std::string(local) + "-CC",
                   Table::num(100.0 * core::exit_accuracy(eval, 0), 1),
                   Table::num(100.0 * core::exit_accuracy(eval, 1), 1),
                   Table::num(100.0 * policy.overall_accuracy, 1),
                   Table::num(100.0 * degraded.overall_accuracy, 1)});
  }
  maybe_write_csv(table, "ablation_aggregator");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: GA lands at or above AP locally (it can down-weight "
      "blind devices)\nand degrades gracefully under failure thanks to gate "
      "renormalization; MP remains the\nstrong, parameter-free baseline the "
      "paper chose.\n");
  return 0;
}
