// Ablation (paper Section VI future work): mixed-precision cloud.
//
// "While binary layers are a requirement for end devices due to the limited
// space on devices, it is not necessary in the cloud. We will explore ...
// mixed precision schemes where the end devices use binary NN layers and
// the cloud uses mixed-precision or floating-point NN layers."
//
// Two otherwise-identical DDNNs: binary cloud (the paper's evaluated
// system) vs float32 cloud (conv->pool->BN->ReLU). Devices stay binary and
// the device->cloud wire format is unchanged (bit-packed features), so the
// communication column is identical by construction; only cloud-side
// accuracy can move.
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Ablation — binary vs floating-point cloud section",
               "Teerapittayanon et al., ICDCS'17, Section VI (future work)");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  Table table({"Cloud precision", "Local (%)", "Cloud (%)", "Overall (%)",
               "Local Exit (%)", "Comm. (B)"});
  for (const bool float_cloud : {false, true}) {
    auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
    cfg.float_cloud = float_cloud;
    const auto model = trained_ddnn(cfg, devices, dataset, env);
    const auto eval = core::evaluate_exits(*model, dataset.test(), devices);
    const auto policy = core::apply_policy(eval, {0.8});
    table.add_row({float_cloud ? "float32" : "binary",
                   Table::num(100.0 * core::exit_accuracy(eval, 0), 1),
                   Table::num(100.0 * core::exit_accuracy(eval, 1), 1),
                   Table::num(100.0 * policy.overall_accuracy, 1),
                   pct(policy.local_exit_fraction(), 1),
                   Table::num(core::ddnn_comm_bytes(
                                  policy.local_exit_fraction(),
                                  cfg.comm_params()), 1)});
  }
  maybe_write_csv(table, "ablation_precision");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: the float cloud matches or beats the binary cloud's "
      "accuracy at\nidentical communication cost — precision only matters "
      "above the physical boundary.\n");
  return 0;
}
