// Figure 10: fault tolerance under single-device failure.
//
// The trained 6-device MP-CC model is evaluated with each device failed in
// turn — the failed device transmits nothing; MP/AP aggregation pools the
// survivors and CC zero-fills the missing slot. Expected shape: overall
// accuracy stays high regardless of which device fails, including the best
// one (paper: >95% overall, worst single loss ~3 points).
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Figure 10 — DDNN fault tolerance",
               "Teerapittayanon et al., ICDCS'17, Figure 10");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  const auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  const auto model = trained_ddnn(cfg, devices, dataset, env);

  const auto healthy_eval =
      core::evaluate_exits(*model, dataset.test(), devices);
  const auto healthy = core::apply_policy(healthy_eval, {0.8});
  std::printf("healthy system: overall %.1f%%, local %.1f%%, cloud %.1f%%\n\n",
              100.0 * healthy.overall_accuracy,
              100.0 * core::exit_accuracy(healthy_eval, 0),
              100.0 * core::exit_accuracy(healthy_eval, 1));

  Table table({"Failed device", "Individual (%)", "Local (%)", "Cloud (%)",
               "Overall (%)", "Delta vs healthy"});
  for (int failed = 0; failed < 6; ++failed) {
    std::vector<bool> active(6, true);
    active[static_cast<std::size_t>(failed)] = false;
    const auto eval =
        core::evaluate_exits(*model, dataset.test(), devices, active);
    const auto policy = core::apply_policy(eval, {0.8});
    const auto individual = trained_individual(failed, dataset, env);
    table.add_row(
        {std::to_string(failed + 1),
         Table::num(100.0 * core::individual_accuracy(
                                *individual, dataset.test(), failed), 1),
         Table::num(100.0 * core::exit_accuracy(eval, 0), 1),
         Table::num(100.0 * core::exit_accuracy(eval, 1), 1),
         Table::num(100.0 * policy.overall_accuracy, 1),
         Table::num(100.0 * (policy.overall_accuracy -
                             healthy.overall_accuracy), 1)});
  }
  maybe_write_csv(table, "fig10_fault_tolerance");
  std::printf("%s\n", table.to_string().c_str());

  // The Section IV-G extension: progressive failures (read Figure 8 right to
  // left) — dropping from 6 to 4 devices costs only a few points.
  Table multi({"#Failed (worst-first)", "Overall (%)"});
  std::vector<bool> active(6, true);
  multi.add_row({"0", Table::num(100.0 * healthy.overall_accuracy, 1)});
  for (int k = 0; k < 3; ++k) {
    active[static_cast<std::size_t>(k)] = false;
    const auto eval =
        core::evaluate_exits(*model, dataset.test(), devices, active);
    const auto policy = core::apply_policy(eval, {0.8});
    multi.add_row({std::to_string(k + 1),
                   Table::num(100.0 * policy.overall_accuracy, 1)});
  }
  maybe_write_csv(multi, "fig10_multi_failure");
  std::printf("%s\n", multi.to_string().c_str());
  std::printf(
      "Expected shape: no single failure collapses the system; losing even "
      "the best device\ncosts only a few points; accuracy degrades gradually "
      "with multiple failures.\n");
  return 0;
}
