// Figure 9: impact of cloud offloading as the device model grows.
//
// For each device filter count f, the local exit threshold is tuned on the
// test sweep so that ~75% of samples exit locally (the paper's setup), then
// Local / Cloud / Overall accuracy are reported against the resulting
// communication cost (Eq. 1) and the on-device memory footprint. Expected
// shape: overall beats local-only at every size (cloud offloading helps even
// with bigger device models), and every device section stays under 2 KB.
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Figure 9 — Accuracy vs communication under cloud offloading",
               "Teerapittayanon et al., ICDCS'17, Figure 9");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  Table table({"Filters", "T(75% local)", "Comm. (B)", "Local (%)",
               "Cloud (%)", "Overall (%)", "Device mem (B)"});
  for (const int f : {2, 4, 8, 12}) {
    const auto cfg =
        core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud, 6, f);
    const auto model = trained_ddnn(cfg, devices, dataset, env);
    const auto eval = core::evaluate_exits(*model, dataset.test(), devices);
    const double t = core::search_threshold_for_local_fraction(eval, 0.75);
    const auto policy = core::apply_policy(eval, {t});
    const double comm = core::ddnn_comm_bytes(policy.local_exit_fraction(),
                                              cfg.comm_params());
    table.add_row({std::to_string(f), Table::num(t, 2), Table::num(comm, 1),
                   Table::num(100.0 * core::exit_accuracy(eval, 0), 1),
                   Table::num(100.0 * core::exit_accuracy(eval, 1), 1),
                   Table::num(100.0 * policy.overall_accuracy, 1),
                   std::to_string(model->device_memory_bytes())});
  }
  maybe_write_csv(table, "fig9_offloading");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: overall accuracy exceeds local-only accuracy at every "
      "filter count\n(paper: ~5 points from offloading ~25%% of samples); "
      "device memory stays under 2 KB.\n");
  return 0;
}
