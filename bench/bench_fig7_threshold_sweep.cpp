// Figure 7: overall accuracy and local-exit fraction vs the exit threshold T
// on a fine grid (the line-plot version of Table II), for the 4-filter
// MP-CC model.
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Figure 7 — Impact of the exit threshold",
               "Teerapittayanon et al., ICDCS'17, Figure 7");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  const auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  const auto model = trained_ddnn(cfg, devices, dataset, env);
  const auto eval = core::evaluate_exits(*model, dataset.test(), devices);

  Table table({"T", "Overall Acc. (%)", "Local Exit (%)"});
  for (int i = 0; i <= 20; ++i) {
    const double t = static_cast<double>(i) / 20.0;
    const auto policy = core::apply_policy(eval, {t});
    table.add_row({Table::num(t, 2),
                   Table::num(100.0 * policy.overall_accuracy, 1),
                   pct(policy.local_exit_fraction(), 1)});
  }
  maybe_write_csv(table, "fig7_threshold_sweep");
  std::printf("%s\n", table.to_string().c_str());

  const double best_t = core::search_threshold_best_overall(eval, 0.05);
  const auto best = core::apply_policy(eval, {best_t});
  std::printf("best threshold on the test sweep: T=%.2f -> %.1f%% overall, "
              "%.1f%% exited locally\n",
              best_t, 100.0 * best.overall_accuracy,
              100.0 * best.local_exit_fraction());
  std::printf(
      "Expected shape: local-exit %% rises monotonically with T; overall "
      "accuracy holds at the\ncloud level through mid T and degrades toward "
      "the local-only accuracy as T -> 1.\n");
  return 0;
}
