// Section IV-H: communication reduction vs the traditional raw-offload
// baseline.
//
// Baseline: every device ships its raw 32x32 RGB frame (3072 B) to a cloud
// DNN for every sample. DDNN: 12 B of class scores always, plus 128 B of
// bit-packed binary features only for samples that do not exit locally.
// Both are *measured* on the simulated hierarchy's links; the paper's
// headline claim is a >20x reduction even in the worst case (T -> 0).
#include "dist/runtime.hpp"

#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Section IV-H — Reducing communication costs",
               "Teerapittayanon et al., ICDCS'17, Section IV-H");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  const auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  const auto model = trained_ddnn(cfg, devices, dataset, env);
  const auto eval = core::evaluate_exits(*model, dataset.test(), devices);

  const double raw = static_cast<double>(core::raw_offload_bytes(3, 32, 32));
  std::printf("raw-offload baseline: %.0f B per sample per device\n\n", raw);

  Table table({"Policy", "Local Exit (%)", "Overall Acc. (%)",
               "Comm. (B/sample/device)", "Reduction vs raw"});
  for (const double t : {0.0, 0.8, 1.0}) {
    const auto policy = core::apply_policy(eval, {t});
    dist::HierarchyRuntime runtime(*model, {t}, devices);
    runtime.run(dataset.test());
    const double measured = runtime.metrics().device_bytes_per_sample(0);
    table.add_row({"DDNN T=" + Table::num(t, 1),
                   pct(policy.local_exit_fraction(), 1),
                   Table::num(100.0 * policy.overall_accuracy, 1),
                   Table::num(measured, 1),
                   Table::num(raw / measured, 1) + "x"});
  }
  maybe_write_csv(table, "comm_reduction");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: even the worst case (T=0: every sample offloaded as "
      "binary features)\nbeats raw offloading by >20x; at the operating "
      "threshold the reduction is far larger.\n");
  return 0;
}
