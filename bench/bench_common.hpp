// Shared setup for the experiment harness (one binary per paper table /
// figure; see DESIGN.md §3).
//
// Environment knobs:
//   DDNN_EPOCHS     training epochs per configuration (default 40; the paper
//                   trains 100 — the shapes stabilize well before that)
//   DDNN_SEED       dataset + training seed (default 42)
//   DDNN_BATCH      mini-batch size (default 32)
//   DDNN_CACHE_DIR  trained-model cache ('.ddnn_cache' by default, "off"
//                   disables). Several benches share the same trained model;
//                   the first to run trains it, the rest load it.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cache.hpp"
#include "core/inference.hpp"
#include "core/trainer.hpp"
#include "data/mvmc.hpp"
#include "obs/ledger.hpp"
#include "util/env.hpp"
#include "util/results.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ddnn::bench {

struct BenchEnv {
  int epochs;
  std::uint64_t seed;
  std::size_t batch;

  static BenchEnv load() {
    return {static_cast<int>(env_int("DDNN_EPOCHS", 40)),
            static_cast<std::uint64_t>(env_int("DDNN_SEED", 42)),
            static_cast<std::size_t>(env_int("DDNN_BATCH", 32))};
  }
};

/// The evaluation dataset (paper Section IV-B sizes).
inline data::MvmcDataset standard_dataset(const BenchEnv& env) {
  data::MvmcConfig cfg;
  cfg.seed = env.seed;
  return data::MvmcDataset::generate(cfg);
}

inline core::TrainConfig standard_train_config(const BenchEnv& env) {
  core::TrainConfig cfg;
  cfg.epochs = env.epochs;
  cfg.batch_size = env.batch;
  cfg.shuffle_seed = env.seed ^ 0x5eedULL;
  return cfg;
}

/// Cache key covering everything that influences the trained weights.
inline std::string train_key(const core::DdnnConfig& cfg,
                             const std::vector<int>& devices,
                             const BenchEnv& env) {
  std::ostringstream os;
  os << cfg.cache_key() << "_ep" << env.epochs << "_b" << env.batch << "_s"
     << env.seed << "_dev";
  for (int d : devices) os << d;
  return os.str();
}

/// Train (or load from cache) a DDNN for `cfg` on the given dataset devices.
/// `train_cfg` overrides the standard training recipe; anything that changes
/// the weights beyond cfg/env must be reflected in `key_suffix`.
inline std::unique_ptr<core::DdnnModel> trained_ddnn(
    const core::DdnnConfig& cfg, const std::vector<int>& devices,
    const data::MvmcDataset& dataset, const BenchEnv& env,
    const core::TrainConfig& train_cfg, const std::string& key_suffix) {
  auto model = std::make_unique<core::DdnnModel>(cfg);
  Stopwatch sw;
  const bool cached = core::train_or_load(
      *model, train_key(cfg, devices, env) + key_suffix, [&] {
        core::train_ddnn(*model, dataset.train(), devices, train_cfg);
      });
  std::fprintf(stderr, "[bench] %s %s%s in %.1f s\n",
               cached ? "loaded" : "trained", cfg.cache_key().c_str(),
               key_suffix.c_str(), sw.seconds());
  model->set_training(false);
  return model;
}

inline std::unique_ptr<core::DdnnModel> trained_ddnn(
    const core::DdnnConfig& cfg, const std::vector<int>& devices,
    const data::MvmcDataset& dataset, const BenchEnv& env) {
  return trained_ddnn(cfg, devices, dataset, env, standard_train_config(env),
                      "");
}

/// Train (or load) the standalone per-device baseline model.
inline std::unique_ptr<core::IndividualModel> trained_individual(
    int device, const data::MvmcDataset& dataset, const BenchEnv& env,
    int filters = 4) {
  auto model = std::make_unique<core::IndividualModel>(
      3, dataset.config().image_size, filters, dataset.num_classes(),
      env.seed + static_cast<std::uint64_t>(device) + 1);
  std::ostringstream key;
  key << "individual_dev" << device << "_f" << filters << "_ep" << env.epochs
      << "_b" << env.batch << "_s" << env.seed;
  core::train_or_load(*model, key.str(), [&] {
    core::train_individual(*model, dataset.train(), device,
                           standard_train_config(env));
  });
  model->set_training(false);
  return model;
}

/// Slug for a ledger metric key derived from a table column header:
/// lowercase, runs of non-alphanumerics collapse to one underscore.
inline std::string metric_slug(const std::string& header) {
  std::string out;
  for (const char c : header) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

/// Persist the table as $DDNN_RESULTS_DIR/<name>.csv (shared results-dir
/// helper; DDNN_RESULTS_DIR=off disables) and append a "bench.<name>" run
/// record to the ledger: every fully numeric column contributes
/// <slug>.mean and <slug>.last metrics, which is what
/// scripts/check_bench.py gates against bench/baselines/.
inline void maybe_write_csv(const Table& table, const std::string& name) {
  const std::string path = ddnn::write_results_csv(table, name);
  if (path.empty()) return;

  const BenchEnv env = BenchEnv::load();
  obs::LedgerRecord rec;
  rec.command = "bench." + name;
  rec.add_info("epochs", std::to_string(env.epochs));
  rec.add_info("seed", std::to_string(env.seed));
  rec.add_info("batch", std::to_string(env.batch));
  rec.add_info("threads", std::to_string(ThreadPool::instance().size()));
  rec.add_info("csv", path);
  const auto& rows = table.rows();
  for (std::size_t c = 0; c < table.headers().size(); ++c) {
    double sum = 0.0, last = 0.0;
    bool all_numeric = !rows.empty();
    for (const auto& row : rows) {
      char* end = nullptr;
      const double v = std::strtod(row[c].c_str(), &end);
      if (row[c].empty() || end != row[c].c_str() + row[c].size()) {
        all_numeric = false;
        break;
      }
      sum += v;
      last = v;
    }
    if (!all_numeric) continue;
    const std::string slug = metric_slug(table.headers()[c]);
    if (slug.empty()) continue;
    rec.add_metric(slug + ".mean", sum / static_cast<double>(rows.size()));
    rec.add_metric(slug + ".last", last);
  }
  obs::append_record(rec);
}

inline std::string pct(double fraction, int precision = 1) {
  return Table::num(100.0 * fraction, precision);
}

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("=== %s ===\n", experiment);
  std::printf("Reproduces: %s\n\n", paper_ref);
}

}  // namespace ddnn::bench
