// Table II: effect of the local exit threshold T.
//
// One trained MP-CC model; for each T the staged policy is applied to the
// cached exit probabilities, and the communication cost is reported twice:
// analytically via Eq. 1 and measured on the simulated hierarchy's links
// (they must agree to the byte).
#include "dist/runtime.hpp"

#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Table II — Exit threshold settings for the local exit",
               "Teerapittayanon et al., ICDCS'17, Table II");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  const auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  const auto model = trained_ddnn(cfg, devices, dataset, env);
  const auto eval = core::evaluate_exits(*model, dataset.test(), devices);

  Table table({"T", "Local Exit (%)", "Overall Acc. (%)", "Comm. (B, Eq.1)",
               "Comm. (B, measured)"});
  for (const double t : {0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const auto policy = core::apply_policy(eval, {t});
    const double analytic = core::ddnn_comm_bytes(
        policy.local_exit_fraction(), cfg.comm_params());

    dist::HierarchyRuntime runtime(*model, {t}, devices);
    runtime.run(dataset.test());
    const double measured = runtime.metrics().device_bytes_per_sample(0);

    table.add_row({Table::num(t, 1), pct(policy.local_exit_fraction(), 2),
                   Table::num(100.0 * policy.overall_accuracy, 1),
                   Table::num(analytic, 1), Table::num(measured, 1)});
  }
  maybe_write_csv(table, "table2_threshold");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: local-exit %% grows with T; comm. falls monotonically "
      "to 12 B at T=1\n(only the 4x|C| score vector); a mid/high-T sweet spot "
      "keeps accuracy at the cloud level\nwhile exiting most samples "
      "locally (paper: T=0.8, 60.8%% local, 62 B).\n");
  return 0;
}
