// Ablation (paper Section III-D): normalized entropy vs BranchyNet's
// unnormalized entropy vs max-probability as the exit confidence criterion.
//
// The paper switches from BranchyNet's unnormalized entropy to normalized
// entropy because its [0, 1] range "allows easier interpretation and
// searching of its corresponding threshold T". This ablation quantifies
// that: for each criterion, sweep the threshold over the criterion's range
// and report the best achievable overall accuracy and the accuracy/exit
// trade-off — the criteria rank samples almost identically, so the paper's
// choice is about usability, not accuracy.
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Ablation — exit confidence criteria",
               "Teerapittayanon et al., ICDCS'17, Section III-D");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  const auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  const auto model = trained_ddnn(cfg, devices, dataset, env);
  const auto eval = core::evaluate_exits(*model, dataset.test(), devices);

  Table table({"Criterion", "Threshold range", "Best T", "Best overall (%)",
               "Local exit @ best T (%)"});
  for (const auto criterion :
       {core::ConfidenceCriterion::kNormalizedEntropy,
        core::ConfidenceCriterion::kUnnormalizedEntropy,
        core::ConfidenceCriterion::kMaxProbability}) {
    const double hi =
        core::max_confidence_score(cfg.num_classes, criterion);
    double best_t = 0.0, best_acc = -1.0, best_local = 0.0;
    for (int i = 0; i <= 40; ++i) {
      const double t = hi * static_cast<double>(i) / 40.0;
      const auto r = core::apply_policy(eval, {t}, criterion);
      if (r.overall_accuracy >= best_acc) {
        best_acc = r.overall_accuracy;
        best_t = t;
        best_local = r.local_exit_fraction();
      }
    }
    table.add_row({std::string(core::to_string(criterion)),
                   "[0, " + Table::num(hi, 3) + "]", Table::num(best_t, 3),
                   Table::num(100.0 * best_acc, 1),
                   Table::num(100.0 * best_local, 1)});
  }
  maybe_write_csv(table, "ablation_entropy");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: all criteria reach essentially the same best overall "
      "accuracy (they\ninduce nearly the same sample ranking); normalized "
      "entropy's fixed [0, 1] range is the\nusability win the paper cites.\n");
  return 0;
}
