// Queueing study: response time under streaming load (extension of the
// paper's latency claims, Sections I and V).
//
// Per-sample traces from the simulated hierarchy are replayed as a Poisson
// arrival stream; escalated samples contend for a single cloud server. At
// low thresholds (everything offloaded) the cloud saturates as the arrival
// rate approaches 1/service_time and tail latency explodes; at the paper's
// operating threshold most samples never touch the shared queue.
#include "dist/queueing.hpp"

#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Queueing study — tail latency under streaming load",
               "Teerapittayanon et al., ICDCS'17, Sections I and V "
               "(load extension)");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  const auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  const auto model = trained_ddnn(cfg, devices, dataset, env);

  Table table({"T", "Local Exit (%)", "Arrivals (Hz)", "Cloud util. (%)",
               "Mean (ms)", "p95 (ms)", "Max (ms)"});
  for (const double t : {0.0, 0.8, 1.0}) {
    dist::HierarchyRuntime runtime(*model, {t}, devices);
    std::vector<dist::InferenceTrace> traces;
    traces.reserve(dataset.test().size());
    for (const auto& sample : dataset.test()) {
      traces.push_back(runtime.classify(sample));
    }
    const double local_pct =
        100.0 * static_cast<double>(runtime.metrics().exit_counts[0]) /
        static_cast<double>(runtime.metrics().samples);
    for (const double hz : {20.0, 60.0, 90.0}) {
      dist::QueueingConfig qcfg;
      qcfg.arrival_rate_hz = hz;
      qcfg.seed = env.seed;
      const auto stats = dist::simulate_stream(traces, qcfg);
      table.add_row({Table::num(t, 1), Table::num(local_pct, 1),
                     Table::num(hz, 0),
                     Table::num(100.0 * stats.cloud_utilization, 1),
                     Table::num(1e3 * stats.mean_latency_s, 1),
                     Table::num(1e3 * stats.p95_latency_s, 1),
                     Table::num(1e3 * stats.max_latency_s, 1)});
    }
  }
  maybe_write_csv(table, "queueing");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: at T=0 the cloud approaches saturation as arrivals "
      "near 1/service\n(10 ms -> 100 Hz) and p95 explodes; at the operating "
      "threshold most samples bypass the\nshared queue and latency stays "
      "flat; at T=1 load has no effect at all.\n");
  return 0;
}
