// Figure 2: the six DDNN hierarchy configurations (a)-(f), executed
// end-to-end on the simulated distributed runtime.
//
// The paper evaluates configuration (c) and presents (a)-(f) as the design
// space; this bench trains each shape and reports where samples exit, the
// measured per-device communication, simulated latency and accuracy — the
// systems-level comparison the architecture section implies.
#include "dist/runtime.hpp"

#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

namespace {

/// Reasonable per-config thresholds: non-final exits at T=0.8.
std::vector<double> thresholds_for(const core::DdnnConfig& cfg) {
  return std::vector<double>(
      static_cast<std::size_t>(cfg.num_exits()) - 1, 0.8);
}

}  // namespace

int main() {
  print_header("Figure 2 — Hierarchy configurations (a)-(f)",
               "Teerapittayanon et al., ICDCS'17, Figure 2 (systems view)");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> all_devices{0, 1, 2, 3, 4, 5};

  Table table({"Config", "Exits", "Exit split (%)", "Acc. (%)",
               "Dev B/sample", "Latency (ms)"});
  for (const auto preset :
       {core::HierarchyPreset::kCloudOnly, core::HierarchyPreset::kDeviceCloud,
        core::HierarchyPreset::kDevicesCloud,
        core::HierarchyPreset::kDeviceEdgeCloud,
        core::HierarchyPreset::kDevicesEdgeCloud,
        core::HierarchyPreset::kDevicesEdgesCloud}) {
    const auto cfg = core::DdnnConfig::preset(preset);
    const std::vector<int> devices(all_devices.begin(),
                                   all_devices.begin() + cfg.num_devices);
    const auto model = trained_ddnn(cfg, devices, dataset, env);

    dist::HierarchyRuntime runtime(*model, thresholds_for(cfg), devices);
    const auto metrics = runtime.run(dataset.test());

    std::string split;
    for (std::size_t e = 0; e < metrics.exit_counts.size(); ++e) {
      if (e != 0) split += "/";
      split += Table::num(100.0 * static_cast<double>(metrics.exit_counts[e]) /
                              static_cast<double>(metrics.samples), 0);
    }
    table.add_row({core::to_string(preset), std::to_string(cfg.num_exits()),
                   split, Table::num(100.0 * metrics.accuracy(), 1),
                   Table::num(metrics.device_bytes_per_sample(0), 1),
                   Table::num(1e3 * metrics.mean_latency_s(), 1)});
  }
  maybe_write_csv(table, "fig2_configs");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: (a) pays full raw-offload bytes and the highest "
      "latency; configs with\na local exit cut both dramatically; edge tiers "
      "trade a little latency for an extra\nexit level.\n");
  return 0;
}
