// Figure 8: accuracy of the DDNN as end devices are added.
//
// Trains the six standalone per-device baselines ("Individual"), sorts
// devices by individual accuracy (worst first, as the paper does), then for
// every prefix of that order trains a DDNN and reports Local / Cloud /
// Overall accuracy. Expected shape: all curves rise with device count; cloud
// >= local (widest gap at few devices); fused accuracy beats the best
// individual device by a wide margin.
#include <algorithm>
#include <numeric>

#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Figure 8 — Scaling across end devices",
               "Teerapittayanon et al., ICDCS'17, Figure 8");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const int n = dataset.num_devices();

  // Individual baselines (trained on present frames, evaluated on ALL test
  // frames, per Section III-F).
  std::vector<double> individual(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    const auto model = trained_individual(d, dataset, env);
    individual[static_cast<std::size_t>(d)] =
        core::individual_accuracy(*model, dataset.test(), d);
  }

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return individual[static_cast<std::size_t>(a)] <
           individual[static_cast<std::size_t>(b)];
  });

  std::printf("device order (worst -> best individual): ");
  for (int d : order) std::printf("%d ", d + 1);
  std::printf("\n\n");

  Table table({"#Devices", "Individual (%)", "Local (%)", "Cloud (%)",
               "Overall (%)", "Local Exit (%)"});
  for (int k = 1; k <= n; ++k) {
    const std::vector<int> devices(order.begin(), order.begin() + k);
    auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
    cfg.num_devices = k;
    const auto model = trained_ddnn(cfg, devices, dataset, env);
    const auto eval = core::evaluate_exits(*model, dataset.test(), devices);
    const auto policy = core::apply_policy(eval, {0.8});
    // "Individual" column: the accuracy of the k-th added device's
    // standalone model (the paper plots it the same way).
    table.add_row(
        {std::to_string(k),
         Table::num(100.0 * individual[static_cast<std::size_t>(
                                devices.back())], 1),
         Table::num(100.0 * core::exit_accuracy(eval, 0), 1),
         Table::num(100.0 * core::exit_accuracy(eval, 1), 1),
         Table::num(100.0 * policy.overall_accuracy, 1),
         pct(policy.local_exit_fraction(), 1)});
  }
  maybe_write_csv(table, "fig8_scaling");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: every DDNN curve rises with device count; cloud >= "
      "local with the\nwidest gap at few devices; the fused system beats the "
      "best individual device by a\nlarge margin (paper: >20 points).\n");
  return 0;
}
