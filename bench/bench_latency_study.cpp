// Latency study: the response-time benefit of local exits (paper Sections I
// and V — "samples which exit locally enjoy lowered latency in response
// time") quantified on the simulated hierarchy across uplink bandwidths.
//
// For each device-uplink bandwidth, run the same trained model under three
// policies (always offload, paper threshold, always local) and report the
// mean simulated per-sample latency and total bytes. No accuracy is traded
// here — this isolates the networking effect.
#include "dist/runtime.hpp"

#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Latency study — local exits vs uplink bandwidth",
               "Teerapittayanon et al., ICDCS'17, Sections I and V");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  const std::vector<int> devices{0, 1, 2, 3, 4, 5};

  const auto cfg = core::DdnnConfig::preset(core::HierarchyPreset::kDevicesCloud);
  const auto model = trained_ddnn(cfg, devices, dataset, env);

  Table table({"Uplink (kB/s)", "Policy", "Local Exit (%)", "Mean latency (ms)",
               "Bytes/sample/device"});
  for (const double kbps : {25.0, 250.0, 2500.0}) {
    for (const double t : {0.0, 0.8, 1.0}) {
      dist::RuntimeConfig rt_cfg;
      rt_cfg.device_link.bandwidth_bytes_per_s = kbps * 1e3;
      dist::HierarchyRuntime runtime(*model, {t}, devices, rt_cfg);
      const auto metrics = runtime.run(dataset.test());
      table.add_row(
          {Table::num(kbps, 0), "T=" + Table::num(t, 1),
           Table::num(100.0 * static_cast<double>(metrics.exit_counts[0]) /
                          static_cast<double>(metrics.samples), 1),
           Table::num(1e3 * metrics.mean_latency_s(), 2),
           Table::num(metrics.device_bytes_per_sample(0), 1)});
    }
  }
  maybe_write_csv(table, "latency_study");
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape: at every bandwidth, higher T (more local exits) cuts "
      "mean latency;\nthe gap widens as the uplink gets slower — the "
      "constrained-wireless regime the paper\ntargets.\n");
  return 0;
}
