// Figure 6: per-device class-sample distribution of the training split.
//
// Prints the SynthMVMC counterpart of the paper's histogram: per device, the
// number of training samples of each class the device actually sees, plus
// the not-present count. The paper's key property — strongly imbalanced
// visibility across devices — must be visible here, since it is what drives
// the spread of individual accuracies in Figure 8.
#include "bench_common.hpp"

using namespace ddnn;
using namespace ddnn::bench;

int main() {
  print_header("Figure 6 — Class distribution per end device",
               "Teerapittayanon et al., ICDCS'17, Figure 6");
  const BenchEnv env = BenchEnv::load();
  const auto dataset = standard_dataset(env);
  std::printf("%s\n", dataset.distribution_table().to_string().c_str());
  std::printf(
      "Expected shape: visibility (non-grey frames) rises from device 1 to "
      "device 6;\nclass mix is imbalanced (person > car > bus).\n");
  return 0;
}
