#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_mode.hpp"
#include "autograd/ops.hpp"
#include "autograd/variable.hpp"
#include "gradcheck.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ddnn::autograd {
namespace {

using ddnn::testing::expect_gradients_match;

/// Sum of all elements as a differentiable scalar (via a ones matmul), used
/// to reduce op outputs for grad checking.
Variable reduce_sum(const Variable& x) {
  const std::int64_t n = x.numel();
  Variable flat = reshape(x, Shape{1, n});
  Variable ones = Variable(Tensor::ones(Shape{n, 1}));
  return matmul(flat, ones);
}

TEST(Variable, LeafBasics) {
  Variable v(Tensor::full(Shape{2}, 3.0f));
  EXPECT_TRUE(v.defined());
  EXPECT_FALSE(v.requires_grad());
  Variable p = Variable::parameter(Tensor::zeros(Shape{2}));
  EXPECT_TRUE(p.requires_grad());
  EXPECT_FALSE(p.has_grad());
  p.grad();  // allocates
  EXPECT_TRUE(p.has_grad());
}

TEST(Variable, BackwardRequiresScalar) {
  Variable p = Variable::parameter(Tensor::zeros(Shape{2}));
  Variable y = add(p, p);
  EXPECT_THROW(y.backward(), Error);
}

TEST(Variable, GradAccumulatesAcrossConsumers) {
  // y = sum(p + p): each element's gradient must be 2 (fan-out of p).
  Variable p = Variable::parameter(Tensor::full(Shape{3}, 1.0f));
  Variable y = reduce_sum(add(p, p));
  y.backward();
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(p.grad()[i], 2.0f);
}

TEST(Variable, DiamondGraphAccumulates) {
  // z = sum(a*a + a): dz/da = 2a + 1. Exercises the multi-exit DAG pattern.
  Variable a = Variable::parameter(Tensor::from_vector(Shape{3}, {1, 2, 3}));
  Variable y = add(mul(a, a), a);
  reduce_sum(y).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 5.0f);
  EXPECT_FLOAT_EQ(a.grad()[2], 7.0f);
}

TEST(Variable, DetachBlocksGradient) {
  Variable a = Variable::parameter(Tensor::full(Shape{2}, 2.0f));
  Variable y = reduce_sum(mul(a.detach(), a));
  y.backward();
  // Only the non-detached operand receives gradient (value of detached = 2).
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(GradMode, NoGradGuardDisablesTape) {
  Variable p = Variable::parameter(Tensor::full(Shape{2}, 1.0f));
  {
    NoGradGuard guard;
    EXPECT_FALSE(grad_enabled());
    Variable y = add(p, p);
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_TRUE(grad_enabled());
  Variable y = add(p, p);
  EXPECT_TRUE(y.requires_grad());
}

TEST(GradMode, GuardsNest) {
  NoGradGuard a;
  {
    NoGradGuard b;
    EXPECT_FALSE(grad_enabled());
  }
  EXPECT_FALSE(grad_enabled());
}

TEST(Ops, ConstantSubgraphRecordsNoTape) {
  Variable a(Tensor::full(Shape{2}, 1.0f));
  Variable b(Tensor::full(Shape{2}, 2.0f));
  EXPECT_FALSE(add(a, b).requires_grad());
}

// ------------------------------------------------------- gradient checking

TEST(GradCheck, AddSubMul) {
  Rng rng(1);
  Variable a = Variable::parameter(Tensor::randn(Shape{2, 3}, rng));
  Variable b = Variable::parameter(Tensor::randn(Shape{2, 3}, rng));
  expect_gradients_match(
      [&] { return reduce_sum(mul(add(a, b), sub(a, b))); }, {a, b});
}

TEST(GradCheck, MulScalar) {
  Rng rng(2);
  Variable a = Variable::parameter(Tensor::randn(Shape{4}, rng));
  expect_gradients_match([&] { return reduce_sum(mul_scalar(a, -2.5f)); },
                         {a});
}

TEST(GradCheck, LinearWithBias) {
  Rng rng(3);
  Variable x = Variable::parameter(Tensor::randn(Shape{4, 3}, rng));
  Variable w = Variable::parameter(Tensor::randn(Shape{2, 3}, rng));
  Variable b = Variable::parameter(Tensor::randn(Shape{2}, rng));
  expect_gradients_match([&] { return reduce_sum(linear(x, w, b)); },
                         {x, w, b});
}

TEST(GradCheck, Matmul) {
  Rng rng(4);
  Variable a = Variable::parameter(Tensor::randn(Shape{3, 4}, rng));
  Variable b = Variable::parameter(Tensor::randn(Shape{4, 2}, rng));
  expect_gradients_match([&] { return reduce_sum(matmul(a, b)); }, {a, b});
}

TEST(GradCheck, Conv2d) {
  Rng rng(5);
  Variable x = Variable::parameter(Tensor::randn(Shape{2, 2, 5, 5}, rng));
  Variable w = Variable::parameter(Tensor::randn(Shape{3, 2, 3, 3}, rng));
  Variable b = Variable::parameter(Tensor::randn(Shape{3}, rng));
  expect_gradients_match(
      [&] { return reduce_sum(conv2d(x, w, b, 1, 1)); }, {x, w, b});
}

TEST(GradCheck, Conv2dStride2NoBias) {
  Rng rng(6);
  Variable x = Variable::parameter(Tensor::randn(Shape{1, 2, 6, 6}, rng));
  Variable w = Variable::parameter(Tensor::randn(Shape{2, 2, 3, 3}, rng));
  expect_gradients_match(
      [&] { return reduce_sum(conv2d(x, w, Variable(), 2, 1)); }, {x, w});
}

TEST(GradCheck, MaxPool) {
  // Distinct values so the pooling argmax is stable under perturbation.
  Variable x = Variable::parameter(Tensor::from_vector(
      Shape{1, 1, 4, 4},
      {1, 5, 2, 8, 3, 9, 4, 6, 11, 7, 15, 10, 12, 13, 14, 16}));
  expect_gradients_match([&] { return reduce_sum(max_pool2d(x, 3, 2, 1)); },
                         {x});
}

TEST(GradCheck, BatchNormTraining) {
  Rng rng(7);
  Variable x = Variable::parameter(Tensor::randn(Shape{6, 3}, rng));
  Variable gamma = Variable::parameter(
      Tensor::rand_uniform(Shape{3}, rng, 0.5f, 1.5f));
  Variable beta = Variable::parameter(Tensor::randn(Shape{3}, rng));
  Tensor rm = Tensor::zeros(Shape{3});
  Tensor rv = Tensor::ones(Shape{3});
  // Weight the output summands so the per-feature gradients are nontrivial
  // (plain sums of normalized outputs have zero input gradient).
  Variable w(Tensor::randn(Shape{3, 3}, rng));
  expect_gradients_match(
      [&] {
        return reduce_sum(
            matmul(batch_norm(x, gamma, beta, rm, rv, true, 0.1f, 1e-5f), w));
      },
      {x, gamma, beta}, 1e-2f, 5e-2f);
}

TEST(GradCheck, BatchNormEval) {
  Rng rng(8);
  Variable x = Variable::parameter(Tensor::randn(Shape{4, 2}, rng));
  Variable gamma = Variable::parameter(Tensor::ones(Shape{2}));
  Variable beta = Variable::parameter(Tensor::zeros(Shape{2}));
  Tensor rm = Tensor::from_vector(Shape{2}, {0.5f, -0.5f});
  Tensor rv = Tensor::from_vector(Shape{2}, {2.0f, 0.5f});
  expect_gradients_match(
      [&] {
        return reduce_sum(
            batch_norm(x, gamma, beta, rm, rv, false, 0.1f, 1e-5f));
      },
      {x, gamma, beta});
}

TEST(GradCheck, BatchNorm4d) {
  Rng rng(9);
  Variable x = Variable::parameter(Tensor::randn(Shape{2, 2, 3, 3}, rng));
  Variable gamma = Variable::parameter(
      Tensor::rand_uniform(Shape{2}, rng, 0.5f, 1.5f));
  Variable beta = Variable::parameter(Tensor::randn(Shape{2}, rng));
  Tensor rm = Tensor::zeros(Shape{2});
  Tensor rv = Tensor::ones(Shape{2});
  // Elementwise weighting makes the per-channel input gradients nontrivial.
  Variable w(Tensor::randn(Shape{2, 2, 3, 3}, rng));
  expect_gradients_match(
      [&] {
        Variable y = batch_norm(x, gamma, beta, rm, rv, true, 0.1f, 1e-5f);
        return reduce_sum(mul(y, w));
      },
      {x, gamma, beta}, 1e-2f, 5e-2f);
}

TEST(GradCheck, ReluAwayFromKink) {
  Variable x = Variable::parameter(
      Tensor::from_vector(Shape{4}, {-2.0f, -0.5f, 0.5f, 2.0f}));
  expect_gradients_match([&] { return reduce_sum(relu(x)); }, {x});
}

TEST(GradCheck, ConcatAxis1) {
  Rng rng(10);
  Variable a = Variable::parameter(Tensor::randn(Shape{2, 2}, rng));
  Variable b = Variable::parameter(Tensor::randn(Shape{2, 3}, rng));
  Variable w(Tensor::randn(Shape{5, 1}, rng));
  expect_gradients_match(
      [&] { return reduce_sum(matmul(concat({a, b}, 1), w)); }, {a, b});
}

TEST(GradCheck, ConcatChannels4d) {
  Rng rng(11);
  Variable a = Variable::parameter(Tensor::randn(Shape{2, 2, 2, 2}, rng));
  Variable b = Variable::parameter(Tensor::randn(Shape{2, 1, 2, 2}, rng));
  expect_gradients_match(
      [&] { return reduce_sum(mul(concat({a, b}, 1), concat({a, b}, 1))); },
      {a, b});
}

TEST(GradCheck, StackMeanSplitsEvenly) {
  Rng rng(12);
  Variable a = Variable::parameter(Tensor::randn(Shape{3}, rng));
  Variable b = Variable::parameter(Tensor::randn(Shape{3}, rng));
  Variable c = Variable::parameter(Tensor::randn(Shape{3}, rng));
  expect_gradients_match(
      [&] { return reduce_sum(mul(stack_mean({a, b, c}), a)); }, {a, b, c});
}

TEST(GradCheck, StackMaxAwayFromTies) {
  Variable a = Variable::parameter(Tensor::from_vector(Shape{3}, {1, 5, 2}));
  Variable b = Variable::parameter(Tensor::from_vector(Shape{3}, {4, 1, 7}));
  expect_gradients_match([&] { return reduce_sum(stack_max({a, b})); },
                         {a, b});
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(13);
  Variable logits = Variable::parameter(Tensor::randn(Shape{5, 3}, rng));
  const std::vector<std::int64_t> labels{0, 2, 1, 1, 0};
  expect_gradients_match(
      [&] { return softmax_cross_entropy(logits, labels); }, {logits}, 1e-2f,
      1e-2f);
}

TEST(GradCheck, Reshape) {
  Rng rng(14);
  Variable x = Variable::parameter(Tensor::randn(Shape{2, 6}, rng));
  expect_gradients_match(
      [&] {
        Variable y = reshape(x, Shape{3, 4});
        return reduce_sum(mul(y, y));
      },
      {x});
}

// ------------------------------------------------ STE / defined semantics

TEST(Binarize, ForwardIsSign) {
  Variable x(Tensor::from_vector(Shape{4}, {-3.0f, -0.2f, 0.0f, 2.0f}));
  const Tensor y = binarize(x).value();
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], -1.0f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
  EXPECT_FLOAT_EQ(y[3], 1.0f);
}

TEST(Binarize, StraightThroughGateOnUnitInterval) {
  // Gradient passes where |x| <= 1 and is blocked elsewhere.
  Variable x = Variable::parameter(
      Tensor::from_vector(Shape{5}, {-2.0f, -1.0f, 0.3f, 1.0f, 1.5f}));
  Variable y = binarize(x);
  reduce_sum(y).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[3], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[4], 0.0f);
}

TEST(MaxPool, OutputShapeConvP) {
  Variable x(Tensor::zeros(Shape{2, 4, 32, 32}));
  EXPECT_EQ(max_pool2d(x, 3, 2, 1).shape(), Shape({2, 4, 16, 16}));
}

TEST(MaxPool, RoutesGradientToWinnerOnly) {
  Variable x = Variable::parameter(
      Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 4}));
  Variable y = max_pool2d(x, 2, 2, 0);
  ASSERT_EQ(y.numel(), 1);
  reshape(y, Shape{1}).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[3], 1.0f);
}

TEST(StackMax, TieBreaksToFirstInput) {
  Variable a = Variable::parameter(Tensor::full(Shape{2}, 3.0f));
  Variable b = Variable::parameter(Tensor::full(Shape{2}, 3.0f));
  Variable y = stack_max({a, b});
  reduce_sum(y).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 0.0f);
}

TEST(SoftmaxCrossEntropy, MatchesHandComputedValue) {
  // Uniform logits over 3 classes: loss = log(3).
  Variable logits(Tensor::zeros(Shape{2, 3}));
  Variable loss = softmax_cross_entropy(logits, {0, 2});
  EXPECT_NEAR(loss.value()[0], std::log(3.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  Variable logits(Tensor::zeros(Shape{2, 3}));
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 3}), Error);
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), Error);
}

TEST(Flatten, CollapsesTrailingDims) {
  Variable x(Tensor::zeros(Shape{2, 3, 4, 4}));
  EXPECT_EQ(flatten2d(x).shape(), Shape({2, 48}));
}

TEST(Concat, ValidatesShapes) {
  Variable a(Tensor::zeros(Shape{2, 2}));
  Variable b(Tensor::zeros(Shape{3, 2}));
  EXPECT_THROW(concat({a, b}, 1), Error);
  EXPECT_THROW(concat({}, 1), Error);
}

}  // namespace
}  // namespace ddnn::autograd
