// Tests for the distributed-trace toolchain: the small JSON parser
// (obs/json.hpp) and the multi-process trace merge (obs/tracemerge.hpp) —
// clock-offset alignment, the negative-timestamp global shift, default
// handling for inputs without metadata, and byte-identical determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "obs/tracemerge.hpp"
#include "util/error.hpp"

namespace ddnn::obs {
namespace {

// ------------------------------------------------------------ JSON parser

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse_json("42").i, 42);
  EXPECT_EQ(parse_json("-7").i, -7);
  EXPECT_TRUE(parse_json("true").b);
  EXPECT_FALSE(parse_json("false").b);
  EXPECT_EQ(parse_json("null").kind, JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(parse_json("2.5e3").d, 2500.0);
  EXPECT_EQ(parse_json("\"hi\\n\\\"there\\\"\"").s, "hi\n\"there\"");
}

TEST(Json, IntVersusDoubleDetection) {
  // Integer-looking literals stay exact int64; anything with '.', 'e' or
  // 'E' becomes a double. Merged spans depend on this to re-emit int args
  // (sample_index, trace_id) without a stray ".0".
  EXPECT_EQ(parse_json("1099511627776").kind, JsonValue::Kind::kInt);
  EXPECT_EQ(parse_json("1099511627776").i, 1099511627776LL);
  EXPECT_EQ(parse_json("1.0").kind, JsonValue::Kind::kDouble);
  EXPECT_EQ(parse_json("1e2").kind, JsonValue::Kind::kDouble);
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue doc = parse_json(
      "{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": true}, \"d\": null}");
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  ASSERT_EQ(doc.members.size(), 3u);  // file order preserved
  EXPECT_EQ(doc.members[0].first, "a");
  ASSERT_EQ(doc.at("a").items.size(), 3u);
  EXPECT_EQ(doc.at("a").items[0].i, 1);
  EXPECT_DOUBLE_EQ(doc.at("a").items[1].d, 2.5);
  EXPECT_EQ(doc.at("a").items[2].s, "x");
  EXPECT_TRUE(doc.at("b").at("c").b);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(parse_json("\"\\u00e9\"").s, "\xC3\xA9");        // é
  EXPECT_EQ(parse_json("\"\\u2192\"").s, "\xE2\x86\x92");    // →
}

TEST(Json, MalformedInputThrowsNamedError) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\": }", "tru", "\"unterminated", "1 2",
        "{\"a\" 1}", "nan"}) {
    EXPECT_THROW((void)parse_json(bad), Error) << "'" << bad << "'";
  }
}

TEST(Json, RoundTripsSpanTracerOutput) {
  SpanTracer tracer;
  tracer.set_process(2, "cloud");
  tracer.set_meta("epoch_s", 1234.5);
  tracer.set_track_name(0, "cloud");
  tracer.add("cloud_classify", "compute", 0, 0.25, 0.5)
      .with("sample_index", std::int64_t{7})
      .with("entropy", 0.125)
      .with("mode", std::string("raw_offload"));
  const JsonValue doc = parse_json(tracer.to_json());
  EXPECT_EQ(doc.at("ddnn").at("process").s, "cloud");
  EXPECT_EQ(doc.at("ddnn").at("pid").i, 2);
  EXPECT_DOUBLE_EQ(doc.at("ddnn").at("meta").at("epoch_s").number(), 1234.5);
  const auto& events = doc.at("traceEvents").items;
  ASSERT_EQ(events.size(), 3u);  // process_name, thread_name, the span
  const JsonValue& span = events[2];
  EXPECT_EQ(span.at("name").s, "cloud_classify");
  EXPECT_DOUBLE_EQ(span.at("ts").number(), 250000.0);
  EXPECT_EQ(span.at("args").at("sample_index").i, 7);
  EXPECT_EQ(span.at("args").at("mode").s, "raw_offload");
}

// ------------------------------------------------------------ trace merge

std::string write_trace(const std::string& name, const SpanTracer& tracer) {
  const std::string path = ::testing::TempDir() + "/" + name;
  tracer.write_json(path);
  return path;
}

/// Driver + cloud pair: the driver's clock is the reference; the cloud's
/// spans are recorded against its own epoch and must land on the driver
/// timeline via epoch difference + handshake offset.
struct TwoProcessRun {
  std::string driver_path;
  std::string cloud_path;
};

TwoProcessRun make_run(double driver_epoch, double cloud_epoch,
                       double offset_cloud_s) {
  SpanTracer driver;
  driver.set_process(0, "driver");
  driver.set_meta("epoch_s", driver_epoch);
  driver.set_meta("offset_cloud_s", offset_cloud_s);
  driver.set_track_name(0, "samples");
  driver.add("sample", "sample", 0, 0.010, 0.100)
      .with("sample_index", std::int64_t{0});

  SpanTracer cloud;
  cloud.set_process(2, "cloud");
  cloud.set_meta("epoch_s", cloud_epoch);
  cloud.set_track_name(0, "cloud");
  cloud.add("cloud_classify", "compute", 0, 0.020, 0.050)
      .with("sample_index", std::int64_t{0});

  return {write_trace("merge_driver.json", driver),
          write_trace("merge_cloud.json", cloud)};
}

double span_ts_us(const JsonValue& merged, const std::string& span_name) {
  for (const JsonValue& ev : merged.at("traceEvents").items) {
    if (ev.at("ph").s == "X" && ev.at("name").s == span_name) {
      return ev.at("ts").number();
    }
  }
  ADD_FAILURE() << "span '" << span_name << "' not in merged trace";
  return NAN;
}

TEST(TraceMerge, AlignsRemoteSpansViaEpochAndOffset) {
  // Cloud epoch sits 1 s after the driver's, and the handshake measured the
  // cloud clock running 2 ms behind (offset +0.002): a span at cloud-local
  // 20 ms lands at 1.022 s on the driver timeline.
  const auto run = make_run(100.0, 101.0, 0.002);
  TraceMergeResult stats;
  const JsonValue merged = parse_json(
      merge_traces_json({run.driver_path, run.cloud_path}, &stats));
  EXPECT_EQ(stats.processes, 2);
  EXPECT_EQ(stats.spans, 2u);
  EXPECT_DOUBLE_EQ(stats.max_abs_offset_s, 0.002);
  EXPECT_DOUBLE_EQ(stats.shift_s, 0.0);  // nothing went negative
  EXPECT_NEAR(span_ts_us(merged, "sample"), 10000.0, 0.5);
  EXPECT_NEAR(span_ts_us(merged, "cloud_classify"), 1022000.0, 0.5);
}

TEST(TraceMerge, NegativeOffsetTriggersGlobalShift) {
  // The cloud epoch *precedes* the driver's: its span would land at a
  // negative timestamp, so the whole timeline shifts right to keep ts >= 0
  // and relative distances intact.
  const auto run = make_run(100.0, 99.5, 0.0);
  TraceMergeResult stats;
  const JsonValue merged = parse_json(
      merge_traces_json({run.driver_path, run.cloud_path}, &stats));
  // cloud_classify raw position: (99.5 - 100.0) + 0.020 = -0.480 s.
  EXPECT_NEAR(stats.shift_s, 0.480, 1e-9);
  EXPECT_NEAR(span_ts_us(merged, "cloud_classify"), 0.0, 0.5);
  EXPECT_NEAR(span_ts_us(merged, "sample"), 490000.0, 0.5);
}

TEST(TraceMerge, ReassignsPidsByInputOrder) {
  const auto run = make_run(0.0, 0.0, 0.0);
  const JsonValue merged =
      parse_json(merge_traces_json({run.driver_path, run.cloud_path}, nullptr));
  // Input index, not the per-process pid recorded in the file (the cloud
  // writes pid 2 but merges as process 1 of this two-file merge).
  for (const JsonValue& ev : merged.at("traceEvents").items) {
    if (ev.at("ph").s == "X") {
      EXPECT_EQ(ev.at("pid").i, ev.at("name").s == "sample" ? 0 : 1);
    }
  }
  // Per-process metadata survives: names + per-track threads.
  int process_names = 0;
  for (const JsonValue& ev : merged.at("traceEvents").items) {
    if (ev.at("ph").s == "M" && ev.at("name").s == "process_name") {
      ++process_names;
    }
  }
  EXPECT_EQ(process_names, 2);
}

TEST(TraceMerge, DeterministicByteIdenticalOutput) {
  const auto run = make_run(50.0, 51.25, -0.003);
  const std::string once =
      merge_traces_json({run.driver_path, run.cloud_path}, nullptr);
  const std::string twice =
      merge_traces_json({run.driver_path, run.cloud_path}, nullptr);
  EXPECT_EQ(once, twice);
  // Args survive the re-emit with their original order and int-ness.
  EXPECT_NE(once.find("\"sample_index\": 0"), std::string::npos);
}

TEST(TraceMerge, InputWithoutMetadataMergesAsOffsetZero) {
  // A legacy single-process trace (no "ddnn" block) merges under a
  // synthesized name with epoch 0 and offset 0.
  SpanTracer legacy;
  legacy.add("sample", "sample", 0, 0.5, 0.1);
  SpanTracer driver;
  driver.set_process(0, "driver");
  driver.set_meta("epoch_s", 0.0);
  driver.add("sample", "sample", 0, 0.0, 0.2);
  const std::string ref = write_trace("merge_ref.json", driver);
  const std::string old = write_trace("merge_legacy.json", legacy);
  TraceMergeResult stats;
  const std::string merged = merge_traces_json({ref, old}, &stats);
  EXPECT_EQ(stats.processes, 2);
  EXPECT_DOUBLE_EQ(stats.max_abs_offset_s, 0.0);
  EXPECT_NE(merged.find("\"name\": \"p1\""), std::string::npos);
}

TEST(TraceMerge, EmptyTraceContributesNothing) {
  SpanTracer driver;
  driver.set_process(0, "driver");
  driver.set_meta("epoch_s", 1.0);
  driver.add("sample", "sample", 0, 0.0, 0.1);
  SpanTracer idle;
  idle.set_process(2, "cloud");
  idle.set_meta("epoch_s", 1.0);
  const std::string a = write_trace("merge_busy.json", driver);
  const std::string b = write_trace("merge_idle.json", idle);
  TraceMergeResult stats;
  (void)merge_traces_json({a, b}, &stats);
  EXPECT_EQ(stats.processes, 2);
  EXPECT_EQ(stats.spans, 1u);
}

TEST(TraceMerge, RejectsGarbageInputs) {
  const std::string path = ::testing::TempDir() + "/merge_garbage.json";
  {
    std::ofstream out(path);
    out << "{\"displayTimeUnit\": \"ms\"}";  // no traceEvents
  }
  EXPECT_THROW((void)merge_traces_json({path}, nullptr), Error);
  EXPECT_THROW((void)merge_traces_json({"/nonexistent/trace.json"}, nullptr),
               Error);
  EXPECT_THROW((void)merge_traces_json({}, nullptr), Error);
}

}  // namespace
}  // namespace ddnn::obs
