#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/logging.hpp"

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ddnn {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    DDNN_CHECK(1 == 2, "one is not " << 2);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("one is not 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckWithoutMessage) {
  EXPECT_THROW(DDNN_CHECK(false), Error);
  EXPECT_NO_THROW(DDNN_CHECK(true));
}

TEST(Rng, DeterministicStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(31), b(31);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Parent streams stay in sync with each other too.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Env, StringFallback) {
  unsetenv("DDNN_TEST_STR");
  EXPECT_EQ(env_string("DDNN_TEST_STR", "dflt"), "dflt");
  setenv("DDNN_TEST_STR", "value", 1);
  EXPECT_EQ(env_string("DDNN_TEST_STR", "dflt"), "value");
  unsetenv("DDNN_TEST_STR");
}

TEST(Env, IntParsesAndValidates) {
  setenv("DDNN_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("DDNN_TEST_INT", 0), 42);
  setenv("DDNN_TEST_INT", "-7", 1);
  EXPECT_EQ(env_int("DDNN_TEST_INT", 0), -7);
  setenv("DDNN_TEST_INT", "4x", 1);
  EXPECT_THROW(env_int("DDNN_TEST_INT", 0), Error);
  unsetenv("DDNN_TEST_INT");
  EXPECT_EQ(env_int("DDNN_TEST_INT", 9), 9);
}

TEST(Env, DoubleParsesAndValidates) {
  setenv("DDNN_TEST_DBL", "0.75", 1);
  EXPECT_DOUBLE_EQ(env_double("DDNN_TEST_DBL", 0.0), 0.75);
  setenv("DDNN_TEST_DBL", "abc", 1);
  EXPECT_THROW(env_double("DDNN_TEST_DBL", 0.0), Error);
  unsetenv("DDNN_TEST_DBL");
}

TEST(Env, BoolAcceptsCommonSpellings) {
  for (const char* t : {"1", "true", "YES", "On"}) {
    setenv("DDNN_TEST_BOOL", t, 1);
    EXPECT_TRUE(env_bool("DDNN_TEST_BOOL", false)) << t;
  }
  for (const char* f : {"0", "False", "no", "OFF"}) {
    setenv("DDNN_TEST_BOOL", f, 1);
    EXPECT_FALSE(env_bool("DDNN_TEST_BOOL", true)) << f;
  }
  setenv("DDNN_TEST_BOOL", "maybe", 1);
  EXPECT_THROW(env_bool("DDNN_TEST_BOOL", false), Error);
  unsetenv("DDNN_TEST_BOOL");
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a"});
  t.add_row({"plain"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, WriteCsvProducesFile) {
  Table t({"a", "b"});
  t.add_row({"1", "x,y"});
  const std::string path = ::testing::TempDir() + "/ddnn_table.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::filesystem::remove(path);
  EXPECT_THROW(t.write_csv("/nonexistent-dir/x.csv"), Error);
}

TEST(Logging, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kInfo);  // safe default
}

TEST(Logging, SetLevelSuppressesBelow) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // The macro must not evaluate its stream when suppressed.
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return "x";
  };
  DDNN_DEBUG("never " << count());
  EXPECT_EQ(evaluations, 0);
  set_log_level(saved);
}

}  // namespace
}  // namespace ddnn
